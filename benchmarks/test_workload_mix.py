"""Workload mix (Section 5.1.3) — the 110k-transaction composition.

Paper: "We have sent 110,000 transactions to each system comprising of
CREATE: 50,000, BID: 50,000, REQUEST: 5000, ACCEPT_BID: 5000."  We
verify the generator reproduces the mix at scale and run a 1/200-scale
end-to-end mixed workload through the declarative system.
"""

from __future__ import annotations

from _harness import write_report

from repro.metrics.report import format_table
from repro.workloads import WorkloadGenerator, WorkloadSpec
from repro.workloads.generator import PAPER_MIX
from repro.workloads.scenarios import ScenarioSpec, run_scdb_scenario


def test_workload_mix_generation(benchmark):
    generator = WorkloadGenerator(WorkloadSpec(total=1_100))
    counts = benchmark.pedantic(generator.counts, rounds=1, iterations=1)

    rows = [
        [operation, PAPER_MIX[operation], counts.get(operation, 0)]
        for operation in ("CREATE", "BID", "REQUEST", "ACCEPT_BID")
    ]
    table = format_table(
        ["type", "paper count", "generated (1/100 scale)"],
        rows,
        title="Workload mix — Section 5.1.3",
    )
    print("\n" + table)
    write_report("workload_mix", table)

    # Proportions match the paper's mix exactly at 1/100 scale.
    assert counts["REQUEST"] == 50
    assert counts["ACCEPT_BID"] == 50
    assert abs(counts["CREATE"] - 500) <= 50
    assert abs(counts["BID"] - 500) <= 50


def test_mixed_workload_end_to_end(benchmark):
    """A scaled paper-mix run must fully commit on the declarative side."""

    def run():
        # 10 requests x (5 creates + 5 bids) + accepts ~ paper ratios.
        spec = ScenarioSpec(
            n_windows=10, creates_per_window=5, bids_per_window=5,
            payload_bytes=1_115, phased=True,
        )
        return run_scdb_scenario(spec)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    metrics = result.metrics
    table = format_table(
        ["metric", "value"],
        [
            ["submitted", metrics.submitted],
            ["committed", metrics.committed],
            ["throughput (tps)", metrics.throughput_tps],
        ],
        title="Mixed workload end-to-end (1/200 scale)",
    )
    print("\n" + table)
    write_report("workload_mix_e2e", table)

    assert metrics.committed == metrics.submitted
    assert metrics.throughput_tps > 20
