"""Ablations for the design choices DESIGN.md calls out.

1. Blockchain pipelining on/off — the mechanism behind Fig. 8c's upward
   slope for SCDB.
2. Indexed vs unindexed storage — why SCDB's validation latency stays
   flat while the contract's O(n) scans grow (Section 5.2.1 analysis).
3. Nested-transaction worker parallelism — time for all RETURNs to
   commit after an ACCEPT_BID.
"""

from __future__ import annotations

from _harness import write_report

from repro.consensus.tendermint import tendermint_config
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import keypair_from_string
from repro.metrics.collector import collect_metrics
from repro.metrics.report import format_table
from repro.storage.database import make_smartchaindb_database

ALICE = keypair_from_string("alice")


def _throughput(pipelining: bool) -> float:
    cluster = SmartchainCluster(
        ClusterConfig(
            n_validators=4,
            seed=21,
            consensus=tendermint_config(max_block_txs=8, pipelining=pipelining),
        )
    )
    for index in range(120):
        create = cluster.driver.prepare_create(ALICE, {"n": index})
        cluster.submit_payload(create.to_dict())
    cluster.run()
    metrics = collect_metrics("SCDB", cluster.records.values())
    return metrics.throughput_tps


def test_ablation_pipelining(benchmark):
    with_pipelining = benchmark.pedantic(lambda: _throughput(True), rounds=1, iterations=1)
    without_pipelining = _throughput(False)
    table = format_table(
        ["configuration", "throughput_tps"],
        [
            ["pipelining on (BigchainDB)", with_pipelining],
            ["pipelining off (sequential finality)", without_pipelining],
        ],
        title="Ablation — blockchain pipelining",
    )
    print("\n" + table)
    write_report("ablation_pipelining", table)
    assert with_pipelining > without_pipelining * 1.05


def test_ablation_indexing(benchmark):
    """Indexed point lookups examine O(1) documents; scans examine O(n)."""

    def populate(indexed: bool):
        database = make_smartchaindb_database(indexed=indexed)
        transactions = database.create_collection("transactions")
        for index in range(2_000):
            transactions.insert_one(
                {
                    "id": f"{index:064d}"[-64:],
                    "operation": "CREATE" if index % 2 else "BID",
                    "asset": {"id": f"{index % 97:064d}"[-64:]},
                }
            )
        return transactions

    indexed = populate(True)
    unindexed = populate(False)

    def probe(collection):
        before = collection.stats["documents_examined"]
        for index in range(0, 2_000, 100):
            collection.find_one({"id": f"{index:064d}"[-64:]})
        return collection.stats["documents_examined"] - before

    examined_indexed = benchmark.pedantic(lambda: probe(indexed), rounds=1, iterations=1)
    examined_unindexed = probe(unindexed)
    table = format_table(
        ["configuration", "documents examined (20 lookups)"],
        [
            ["hash-indexed (SmartchainDB layout)", examined_indexed],
            ["unindexed (full scans)", examined_unindexed],
        ],
        title="Ablation — indexed vs scan transaction lookup",
    )
    print("\n" + table)
    write_report("ablation_indexing", table)
    assert examined_indexed * 100 < examined_unindexed


def test_ablation_worker_parallelism(benchmark):
    """More RETURN workers drain the queue of children faster."""

    def time_to_full_commit(workers: int) -> float:
        cluster = SmartchainCluster(
            ClusterConfig(
                n_validators=4,
                seed=23,
                consensus=tendermint_config(max_block_txs=8),
                worker_parallelism=workers,
                worker_poll_interval=0.05,
            )
        )
        driver = cluster.driver
        bidders = [keypair_from_string(f"bidder-{index}") for index in range(6)]
        sally = keypair_from_string("sally")
        creates = []
        for keypair in bidders:
            create = driver.prepare_create(keypair, {"capabilities": ["cap"]})
            cluster.submit_payload(create.to_dict())
            creates.append((keypair, create))
        cluster.run()
        request = driver.prepare_request(sally, ["cap"])
        cluster.submit_and_settle(request)
        bids = []
        for keypair, create in creates:
            bid = driver.prepare_bid(keypair, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)])
            cluster.submit_payload(bid.to_dict())
            bids.append(bid)
        cluster.run()
        accept = driver.prepare_accept_bid(sally, request.tx_id, bids[0])
        start = cluster.loop.clock.now
        cluster.submit_payload(accept.to_dict())
        cluster.run()
        last_commit = max(r.committed_at for r in cluster.records.values() if r.committed_at)
        server = cluster.any_server()
        assert server.nested.recovery.is_fully_committed(accept.tx_id)
        return last_commit - start

    single = benchmark.pedantic(lambda: time_to_full_commit(1), rounds=1, iterations=1)
    parallel = time_to_full_commit(4)
    table = format_table(
        ["workers", "time to eventual commit (s)"],
        [[1, single], [4, parallel]],
        title="Ablation — RETURN worker parallelism (5 losing bids)",
    )
    print("\n" + table)
    write_report("ablation_workers", table)
    assert parallel <= single


def test_ablation_speculative_validation_width(benchmark):
    """Conflict-aware parallel validation of a realistic block.

    Declarative access sets let independent transactions validate in
    parallel lanes with zero speculative aborts; conflicting spends
    serialise within a group (Section 6's higher-abstraction conflicts).
    """
    from repro.core.builders import build_bid, build_create, build_request
    from repro.core.parallel import parallel_validation_cost
    from repro.core.server import ServerCostModel
    from repro.crypto.keys import ReservedAccounts, keypair_from_string

    reserved = ReservedAccounts()
    costs = ServerCostModel()
    payloads = []
    # A block of 5 RFQ windows x (1 request + 3 independent bids).
    for window in range(5):
        requester = keypair_from_string(f"req-{window}")
        request = build_request(requester, [f"cap-{window}"]).sign([requester])
        payloads.append(request.to_dict())
        for bid_index in range(3):
            bidder = keypair_from_string(f"bidder-{window}-{bid_index}")
            create = build_create(bidder, {"capabilities": [f"cap-{window}"]}).sign([bidder])
            payloads.append(create.to_dict())
            bid = build_bid(
                bidder, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)],
                reserved.escrow.public_key,
            ).sign([bidder])
            payloads.append(bid.to_dict())

    def cost_of(payload):
        return costs.validation_cost(payload["operation"], 600)

    def run():
        return {
            lanes: parallel_validation_cost(payloads, cost_of, lanes)
            for lanes in (1, 2, 4, 8)
        }

    by_lanes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[lanes, cost, by_lanes[1] / cost] for lanes, cost in sorted(by_lanes.items())]
    table = format_table(
        ["lanes", "block validation time (s)", "speedup"],
        rows,
        title="Ablation — speculative parallel validation width (35-tx block)",
    )
    print("\n" + table)
    write_report("ablation_speculative_validation", table)

    assert by_lanes[4] < by_lanes[1] * 0.5   # real parallelism
    assert by_lanes[8] <= by_lanes[4] + 1e-9  # monotone
