"""Queryability (Section 2.1) — the motivating query, measured.

"Finding open service requests for 3-D printing manufacturing
capabilities ... involves specifying conditions on the metadata of the
service request that are not queryable on the blockchain" with smart
contracts.  On SmartchainDB the query is an indexed document lookup; on
the contract it requires an O(n) view scan per request plus client-side
decoding.  We measure documents/slots examined for the same question on
both systems as marketplace state grows.
"""

from __future__ import annotations

from _harness import write_report

from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import keypair_from_string
from repro.ethereum.chain import QuorumChain, QuorumChainConfig
from repro.ethereum.client import Web3Client
from repro.ethereum.contract import CallContext
from repro.ethereum.evmstate import StorageView
from repro.ethereum.gas import GasMeter
from repro.metrics.report import format_table

SALLY = keypair_from_string("sally")


def _populate_scdb(n_requests: int) -> SmartchainCluster:
    cluster = SmartchainCluster(ClusterConfig(n_validators=4, seed=51))
    for index in range(n_requests):
        capability = "3d-print" if index % 5 == 0 else f"other-{index % 7}"
        request = cluster.driver.prepare_request(SALLY, [capability], metadata={"n": index})
        cluster.submit_payload(request.to_dict())
    cluster.run()
    return cluster


def _populate_eth(n_requests: int) -> tuple[QuorumChain, Web3Client]:
    chain = QuorumChain(QuorumChainConfig(n_validators=4, seed=51), accounts=["0xbuyer"])
    client = Web3Client(chain)
    client.deploy("ReverseAuctionMarketplace", "market", "0xbuyer")
    for index in range(n_requests):
        capability = "3d-print" if index % 5 == 0 else f"other-{index % 7}"
        client.transact("market", "create_rfq", [[capability], ""], "0xbuyer", settle=False)
    chain.run()
    return chain, client


def test_open_request_discovery(benchmark):
    n_requests = 50

    cluster = _populate_scdb(n_requests)
    server = cluster.any_server()
    transactions = server.database.collection("transactions")

    def scdb_query():
        before = transactions.stats["documents_examined"]
        matches = transactions.find(
            {"operation": "REQUEST", "asset.data.capabilities": "3d-print"}
        )
        return len(matches), transactions.stats["documents_examined"] - before

    scdb_matches, scdb_examined = benchmark.pedantic(scdb_query, rounds=1, iterations=1)

    chain, client = _populate_eth(n_requests)
    application = chain.any_application()
    address = application.deployed["market"]
    contract = application.runtime.contracts[address]

    # The contract has no query interface: a client must call get_request
    # for every id and filter locally.  Count the storage slots touched.
    meter = GasMeter()
    ctx = CallContext(
        sender="0xviewer", value=0, meter=meter,
        storage=StorageView(application.runtime.state, address, meter),
    )
    eth_matches = 0
    for rfq_id in range(1, n_requests + 1):
        request = contract.get_request(ctx, rfq_id)
        if request["open"] and "3d-print" in request["capabilities"]:
            eth_matches += 1
    eth_view_gas = meter.used

    table = format_table(
        ["system", "matches", "work for one discovery query"],
        [
            ["SCDB (indexed document query)", scdb_matches,
             f"{scdb_examined} documents examined"],
            ["ETH-SC (per-id view scan + client filter)", eth_matches,
             f"{eth_view_gas:,} gas of view reads"],
        ],
        title="Queryability — 'open requests for 3-D printing' over "
              f"{n_requests} RFQs (Section 2.1)",
    )
    print("\n" + table)
    write_report("queryability", table)

    assert scdb_matches == eth_matches  # same answer...
    # ...but SCDB examines only the operation-indexed candidates, while
    # the contract burns hundreds of thousands of gas-units of storage
    # reads (n get_request calls, each an O(n) registry scan; warm-slot
    # caching inside the single view session is already counted in its
    # favour).
    assert scdb_examined <= n_requests
    assert eth_view_gas > 200_000
