"""Shared helpers for the figure/table benchmarks.

Every benchmark regenerates one artifact of the paper's evaluation
section: it sweeps the same independent variable, prints the same
rows/series, writes them under ``benchmarks/results/`` and asserts the
*shape* criteria recorded in DESIGN.md (who wins, how curves move).
Absolute values differ from the paper's DigitalOcean testbed; see
EXPERIMENTS.md for the paper-vs-measured record.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Transaction-size sweep (bytes) for Experiment 1 (Figs. 7a-7c).
#: 1115 B ~ the 1.09 KB Experiment-2 operating point; 1740 B ~ the
#: 1.74 KB headline point.
SIZE_SWEEP = (200, 600, 1115, 1740)

#: Cluster-size sweep for Experiment 2 (Figs. 8a-8c).
CLUSTER_SWEEP = (4, 8, 16, 32)

#: Fixed transaction size for Experiment 2 ("kept constant at 1.09KB").
EXPERIMENT2_PAYLOAD = 1115


def write_report(name: str, text: str) -> str:
    """Persist a benchmark's table under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path


def fig7_spec(payload_bytes: int, n_validators: int = 4):
    """The Experiment-1 scenario at one payload size."""
    from repro.workloads import ScenarioSpec

    return ScenarioSpec(
        n_windows=6,
        creates_per_window=8,
        bids_per_window=8,
        payload_bytes=payload_bytes,
        n_validators=n_validators,
        phased=True,
        scale_caps_with_payload=True,
        eth_block_gas_limit=6_000_000,
    )


def fig8_spec(n_validators: int):
    """The Experiment-2 scenario at one cluster size (fixed 1.09 KB)."""
    return fig7_spec(EXPERIMENT2_PAYLOAD, n_validators=n_validators)
