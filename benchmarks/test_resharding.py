"""Elastic-resharding benchmark: what a live split costs the workload.

Three measurements of the migration protocol under Zipf-skewed load:

* **cutover_pause** — the write-pause window: simulated seconds between
  a migration entering ``drain`` (the fence refusing spends of the
  moving set) and the cutover landing.  The gate bounds it: a split's
  only unavailability is that pause, and it must stay a small fraction
  of the run, not a stop-the-world rebalance.
* **hot_share** — the detection loop closing: one shard carries the
  skewed head of the key space, the policy auto-splits it, and spends
  of the moved keys route to their new home.  The gate asserts the hot
  shard's share of the commit window *drops* after the split.
* **throughput_recovery** — commit rate on the moved keys after the
  split vs the pre-split commit rate.  The gate is the ISSUE-9 floor:
  >= 80% recovery (the split must not strand or slow the keys it
  moved).

The controller is crash-restarted at the cutover of the first split
(torn journal tail) while the measurement runs — the numbers above are
taken *through* a crash, not on the happy path.

Results go to ``BENCH_resharding.json`` at the repo root; CI runs
``--smoke`` and uploads the artifact.
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.crypto.keys import keypair_from_string
from repro.durability.node import DurabilityConfig
from repro.sharding.cluster import ShardedCluster, ShardedClusterConfig
from repro.sharding.migration import MigrationPolicy
from repro.sharding.router import SHARD_KEY_METADATA

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_resharding.json")

RECOVERY_FLOOR = 0.8


def run_split(seed: int, hot_txs: int, torn_bytes: int = 17, crash: bool = True) -> dict:
    cluster = ShardedCluster(
        ShardedClusterConfig(
            n_shards=2,
            seed=seed,
            durability=DurabilityConfig(snapshot_interval=80),
            auto_split=True,
            migration_policy=MigrationPolicy(
                hot_share_threshold=0.55, window=24, min_observations=12, cooldown=1.0
            ),
        )
    )
    driver = cluster.driver
    alice = keypair_from_string("alice")
    bob = keypair_from_string("bob")
    hot = cluster.shard_ids[0]
    pin = {SHARD_KEY_METADATA: cluster.ring.key_landing_on(hot, prefix="zipf")}

    crash_state = {"sprung": False}

    def crash_at_cutover(migration_id, phase):
        if crash and phase == "cutover" and not crash_state["sprung"]:
            crash_state["sprung"] = True
            cluster.loop.schedule_in(
                0.0,
                lambda: cluster.migrator.restart_from_disk(torn_bytes=torn_bytes),
            )

    cluster.migrator.phase_listeners.append(crash_at_cutover)

    # Phase 1: Zipf head — every create pinned onto one shard.
    creates = []
    for index in range(hot_txs):
        create = driver.prepare_create(
            alice, {"capabilities": ["3d-print"], "rank": index}, metadata=dict(pin)
        )
        cluster.submit_payload(create.to_dict())
        creates.append(create)
    cluster.run()
    committed_before = len(cluster.committed_records())
    _shard, share_before = cluster.migrator.hot_shard_share()

    stats = cluster.migrator.stats
    if stats["auto_splits"] == 0:
        raise AssertionError("hot-shard policy never tripped; raise hot_txs")

    done = [
        (mid, doc)
        for mid in sorted(cluster.migrator.migrations)
        if (doc := cluster.migrator.journal_record(mid)) and doc["phase"] == "done"
    ]
    moved_txs = {row[0] for _mid, doc in done for row in doc["moved"]}

    # Phase 2: spend the moved keys — traffic follows them to the new home.
    submitted = 0
    for create in creates:
        if create.tx_id not in moved_txs:
            continue
        transfer = driver.prepare_transfer(
            alice, [(create.tx_id, 0, 1)], create.tx_id, [(bob.public_key, 1)]
        )
        driver.submit(transfer)
        submitted += 1
    cluster.run()
    committed_after = len(cluster.committed_records()) - committed_before
    _shard, share_after = cluster.migrator.hot_shard_share()

    pauses = [
        report["write_pause"]
        for report in cluster.migrator.reports.values()
        if report.get("write_pause") is not None
    ]
    before_rate = committed_before / max(1, hot_txs)
    after_rate = committed_after / max(1, submitted)
    return {
        "seed": seed,
        "crashed": crash,
        "hot_txs": hot_txs,
        "auto_splits": stats["auto_splits"],
        "migrations_done": stats["done"],
        "refs_moved": stats["refs_moved"],
        "crash_at_cutover": crash_state["sprung"],
        "cutover_pause_s": round(max(pauses), 4) if pauses else None,
        "hot_share_before": round(share_before, 3),
        "hot_share_after": round(share_after, 3),
        "moved_spends_submitted": submitted,
        "moved_spends_committed": committed_after,
        "throughput_recovery": round(after_rate / max(1e-9, before_rate), 3),
    }


def main() -> int:
    smoke = "--smoke" in sys.argv
    started = time.perf_counter()
    # The crashed run measures recovery through the fault; the clean run
    # measures the write pause (the crash wipes the controller's
    # in-memory phase clocks, so the pause is only observable uncrashed).
    rows = [run_split(seed=19, hot_txs=28), run_split(seed=19, hot_txs=28, crash=False)]
    if not smoke:
        rows.append(run_split(seed=29, hot_txs=40))
        rows.append(run_split(seed=37, hot_txs=56, crash=False))

    for row in rows:
        # Acceptance gates (ISSUE 9): the split completes (through a
        # cutover crash on the crashed runs), the hot share drops, the
        # moved keys keep committing at >= 80% of the pre-split rate,
        # and the write pause stays bounded.
        assert row["auto_splits"] >= 1, row
        assert row["crash_at_cutover"] == row["crashed"], row
        assert row["hot_share_after"] < row["hot_share_before"], row
        assert row["throughput_recovery"] >= RECOVERY_FLOOR, row
        if not row["crashed"]:
            assert row["cutover_pause_s"] is not None, row
            assert row["cutover_pause_s"] < 5.0, row

    report = {
        "bench": "resharding",
        "smoke": smoke,
        "recovery_floor": RECOVERY_FLOOR,
        "wall_s": round(time.perf_counter() - started, 2),
        "runs": rows,
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
