"""Sharding scaling benchmark: throughput vs shard count.

The single-cluster evaluation caps aggregate throughput at whatever one
BFT group can order; this benchmark measures how far consistent-hash
partitioning lifts that ceiling, and what the two enemies of linear
scaling cost:

* **uniform_scaling** — the asset-churn workload (uniform key mix,
  single-shard-dominant: 5% of transfers migrate cross-shard) at
  1/2/4/8 shards.  The acceptance gate asserts >= 2.5x aggregate
  committed-tx throughput at 4 shards vs 1.
* **skew** — the same workload under Zipfian hot-asset popularity: the
  shards owning the leading ranks absorb most traffic, so the hot-shard
  share rises and aggregate throughput falls toward the hot shard's
  ceiling.
* **cross_shard_sweep** — the 2PC tax: aggregate throughput at 4 shards
  as the fraction of asset-migrating (two-phase-committed) transfers
  grows.

Results go to ``BENCH_sharding.json`` at the repo root (committed, like
``BENCH_hotpath.json``, so the scaling trajectory is visible across
PRs).  ``--smoke`` (CI perf gate) runs a 2-shard configuration and only
checks it beats 1 shard.
"""

from __future__ import annotations

import json
import os
import sys

from repro.workloads import ShardedScenarioSpec, run_sharded_scenario

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_sharding.json")

#: Uniform, single-shard-dominant operating point of the scaling sweep.
UNIFORM_ASSETS = 72
UNIFORM_ROUNDS = 2
UNIFORM_CROSS_RATIO = 0.05

SHARD_SWEEP = (1, 2, 4, 8)
SKEW_POINT = 2.0
CROSS_SWEEP = (0.0, 0.15, 0.3)


def _run(n_shards: int, **kwargs) -> dict:
    spec = ShardedScenarioSpec(
        n_shards=n_shards,
        n_assets=kwargs.pop("n_assets", UNIFORM_ASSETS),
        transfer_rounds=kwargs.pop("transfer_rounds", UNIFORM_ROUNDS),
        cross_shard_ratio=kwargs.pop("cross_shard_ratio", UNIFORM_CROSS_RATIO),
        **kwargs,
    )
    result = run_sharded_scenario(spec)
    metrics = result.metrics
    # Tail latencies from the telemetry registry (exact nearest-rank over
    # every committed transaction's commit latency, facade + shards).
    percentiles = metrics.percentiles_ms or {}
    return {
        "shards": n_shards,
        "submitted": metrics.submitted,
        "committed": metrics.committed,
        "throughput_tps": round(metrics.throughput_tps, 2),
        "p50_ms": round(percentiles.get("p50_ms", 0.0), 3),
        "p99_ms": round(percentiles.get("p99_ms", 0.0), 3),
        "p999_ms": round(percentiles.get("p999_ms", 0.0), 3),
        "sim_time_s": round(result.detail["sim_time"], 3),
        "cross_submitted": int(result.detail["cross_submitted"]),
        "hot_shard_share": round(result.detail["hot_shard_share"], 3),
    }


def measure_uniform_scaling(shard_sweep=SHARD_SWEEP) -> list[dict]:
    rows = []
    baseline_tps: float | None = None
    for n_shards in shard_sweep:
        row = _run(n_shards)
        if baseline_tps is None:
            baseline_tps = row["throughput_tps"]
        row["speedup_vs_1_shard"] = round(row["throughput_tps"] / baseline_tps, 2)
        rows.append(row)
    return rows


def measure_skew(n_shards: int = 4) -> dict:
    uniform = _run(n_shards, n_assets=48, transfer_rounds=3, cross_shard_ratio=0.0)
    skewed = _run(
        n_shards,
        n_assets=48,
        transfer_rounds=3,
        cross_shard_ratio=0.0,
        zipf_skew=SKEW_POINT,
    )
    return {
        "shards": n_shards,
        "zipf_skew": SKEW_POINT,
        "uniform": uniform,
        "skewed": skewed,
        "hot_shard_share_delta": round(
            skewed["hot_shard_share"] - uniform["hot_shard_share"], 3
        ),
    }


def measure_cross_shard_sweep(n_shards: int = 4) -> list[dict]:
    rows = []
    for ratio in CROSS_SWEEP:
        row = _run(n_shards, n_assets=48, cross_shard_ratio=ratio)
        row["cross_shard_ratio"] = ratio
        rows.append(row)
    return rows


def _write(report: dict) -> None:
    with open(BENCH_PATH, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def _print(report: dict) -> None:
    lines = ["sharding scaling benchmark"]
    for row in report.get("uniform_scaling", []):
        lines.append(
            f"  {row['shards']} shard(s): {row['throughput_tps']} tps "
            f"({row['committed']}/{row['submitted']} committed, "
            f"{row['speedup_vs_1_shard']}x)"
        )
    skew = report.get("skew")
    if skew:
        lines.append(
            f"  skew {skew['zipf_skew']}: hot-shard share "
            f"{skew['uniform']['hot_shard_share']} -> {skew['skewed']['hot_shard_share']}, "
            f"tps {skew['uniform']['throughput_tps']} -> {skew['skewed']['throughput_tps']}"
        )
    for row in report.get("cross_shard_sweep", []):
        lines.append(
            f"  cross-ratio {row['cross_shard_ratio']}: {row['throughput_tps']} tps "
            f"({row['cross_submitted']} 2PC transfers)"
        )
    print("\n".join(lines))


def run_full() -> dict:
    report = {
        "workload": {
            "n_assets": UNIFORM_ASSETS,
            "transfer_rounds": UNIFORM_ROUNDS,
            "cross_shard_ratio": UNIFORM_CROSS_RATIO,
        },
        "uniform_scaling": measure_uniform_scaling(),
        "skew": measure_skew(),
        "cross_shard_sweep": measure_cross_shard_sweep(),
    }
    _write(report)
    _print(report)
    return report


def run_smoke() -> dict:
    """CI perf gate: 2 shards, small mix, must beat 1 shard."""
    report = {
        "workload": {"n_assets": 32, "transfer_rounds": 1, "cross_shard_ratio": 0.1},
        "uniform_scaling": [
            dict(_run(n, n_assets=32, transfer_rounds=1, cross_shard_ratio=0.1))
            for n in (1, 2)
        ],
    }
    base, two = report["uniform_scaling"]
    two["speedup_vs_1_shard"] = round(
        two["throughput_tps"] / base["throughput_tps"], 2
    )
    base["speedup_vs_1_shard"] = 1.0
    _write(report)
    _print(report)
    assert two["committed"] == two["submitted"], two
    assert two["speedup_vs_1_shard"] >= 1.3, two
    return report


def test_sharding_scaling():
    report = run_full()
    rows = {row["shards"]: row for row in report["uniform_scaling"]}
    # Nothing lost at any scale: every submitted transaction commits.
    for row in rows.values():
        assert row["committed"] == row["submitted"], row
    # Acceptance gate: >= 2.5x aggregate committed-tx throughput at 4
    # shards on the uniform single-shard-dominant mix.
    assert rows[4]["speedup_vs_1_shard"] >= 2.5, rows[4]
    assert rows[2]["speedup_vs_1_shard"] >= 1.5, rows[2]
    # Skew hurts: hot-shard traffic share strictly grows.
    assert report["skew"]["hot_shard_share_delta"] > 0, report["skew"]
    # The 2PC tax is real but bounded: the heaviest cross-shard mix still
    # clears the single-shard baseline.
    heaviest = report["cross_shard_sweep"][-1]
    assert heaviest["throughput_tps"] > rows[1]["throughput_tps"], heaviest


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        run_smoke()
    else:
        test_sharding_scaling()
