"""Read scaling benchmark: materialized views vs per-query rescans.

The queryability story (Section 2.1) said the *data model* makes
marketplace queries expressible; this PR's tentpole makes them *cheap*.
Before it, every analytics call — operation volume, capability demand,
bid competition, settlement rate, provenance and wash-trade walks —
re-derived its answer from the transactions collection, O(history) per
query, on the same node that validates and commits blocks.  Now a
:class:`~repro.views.ViewManager` fed from the durability WAL maintains
every hot read set incrementally, so a repeated query costs O(answer).

Measured here, on one committed marketplace history:

* **repeated-query speedup** — the analytics dashboard mix served from
  views vs forced collection rescans (gate: >= 10x);
* **reads off the commit path** — view-served reads touch the document
  store zero times (counted via instrumented collections);
* **view freshness** — at idle the views have applied every committed
  block on every node (lag 0), so the speedup is not bought with
  staleness.

Wallet reads (``outputs_for`` / ``open_requests``) are reported too but
not gated at 10x: those scans were already index-served, so the views'
win there is bounded — the O(history) wins live on the analytics
surface.

Results go to ``BENCH_reads.json`` at the repo root; CI uploads the file
so the read-path trajectory is visible across PRs.
"""

from __future__ import annotations

import json
import os
import time

from repro.analytics import FraudAnalyzer, MarketplaceAnalytics
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import keypair_from_string
from repro.durability.node import DurabilityConfig

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_reads.json")

N_ASSETS = 1000
N_REQUESTS = 16
N_TRANSFERS = 120
DASHBOARD_ROUNDS = 15
WALLET_ROUNDS = 150
OWNERS = 6
CAPABILITIES = 4


def _build_history() -> tuple[SmartchainCluster, list[str]]:
    cluster = SmartchainCluster(
        ClusterConfig(
            n_validators=4,
            seed=47,
            durability=DurabilityConfig(snapshot_interval=400),
        )
    )
    driver = cluster.driver
    owners = [keypair_from_string(f"owner-{i}") for i in range(OWNERS)]
    sally = keypair_from_string("sally")
    creates = []
    for number in range(N_ASSETS):
        owner = owners[number % OWNERS]
        create = driver.prepare_create(
            owner,
            {"capabilities": ["3d-print", f"cap-{number % CAPABILITIES}"], "rank": number},
        )
        cluster.submit_payload(create.to_dict())
        creates.append((owner, create))
    cluster.run()
    for number in range(N_REQUESTS):
        request = driver.prepare_request(sally, [f"cap-{number % CAPABILITIES}"])
        cluster.submit_payload(request.to_dict())
    cluster.run()
    for number in range(N_TRANSFERS):
        owner, create = creates[number]
        recipient = owners[(number + 1) % OWNERS]
        transfer = driver.prepare_transfer(
            owner, [(create.tx_id, 0, 1)], create.tx_id, [(recipient.public_key, 1)]
        )
        cluster.submit_payload(transfer.to_dict())
    cluster.run()
    sample_assets = [create.tx_id for _, create in creates[N_TRANSFERS : N_TRANSFERS + 3]]
    return cluster, sample_assets


def _dashboard_mix(server, source: str, sample_assets: list[str]) -> int:
    """One analytics dashboard refresh; returns a checksum of result
    sizes so both sides provably computed the same answers."""
    analytics = MarketplaceAnalytics(server, source=source)
    fraud = FraudAnalyzer(server, source=source)
    total = sum(analytics.operation_volume().values())
    total += sum(analytics.capability_demand().values())
    total += sum(analytics.bid_competition().values())
    total += int(analytics.settlement_rate() * 1000)
    for number in range(CAPABILITIES):
        total += len(analytics.open_requests(f"cap-{number}"))
    for asset_id in sample_assets:
        total += len(analytics.provenance(asset_id))
    total += len(fraud.rapid_flips())
    return total


def _wallet_mix(server, source: str, owner_keys: list[str]) -> int:
    total = len(server.open_requests("3d-print", source=source))
    for public_key in owner_keys:
        total += len(server.outputs_for(public_key, source=source))
    return total


def _timed(rounds: int, mix) -> tuple[float, int]:
    checksum = 0
    start = time.perf_counter()
    for _ in range(rounds):
        checksum = mix()
    return time.perf_counter() - start, checksum


class _CountingCollection:
    """Counts document-store reads passing through one collection."""

    def __init__(self, inner, counter):
        self._inner = inner
        self._counter = counter

    def find(self, *args, **kwargs):
        self._counter["finds"] += 1
        return self._inner.find(*args, **kwargs)

    def find_one(self, *args, **kwargs):
        self._counter["finds"] += 1
        return self._inner.find_one(*args, **kwargs)

    def count(self, *args, **kwargs):
        self._counter["finds"] += 1
        return self._inner.count(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _count_store_reads(server, sample_assets) -> dict:
    """View-served reads must bypass the document store entirely."""
    counter = {"finds": 0}
    database = server.database
    original = database.collection

    def counting(name):
        return _CountingCollection(original(name), counter)

    database.collection = counting
    try:
        _dashboard_mix(server, "views", sample_assets)
        view_finds = counter["finds"]
        _dashboard_mix(server, "scan", sample_assets)
        scan_finds = counter["finds"] - view_finds
    finally:
        database.collection = original
    return {"view_served_finds": view_finds, "scan_finds": scan_finds}


def _view_lag(cluster) -> int:
    views = cluster.views
    return max(
        len(cluster.engine.validator(node_id).chain)
        - views.height(cluster.view_shard_key)
        for node_id in cluster.engine.validator_order
    )


def test_read_scaling():
    cluster, sample_assets = _build_history()
    server = cluster.any_server()
    assert server.views_current()
    owner_keys = [
        keypair_from_string(f"owner-{number}").public_key for number in range(OWNERS)
    ]

    scan_s, scan_sum = _timed(
        DASHBOARD_ROUNDS, lambda: _dashboard_mix(server, "scan", sample_assets)
    )
    view_s, view_sum = _timed(
        DASHBOARD_ROUNDS, lambda: _dashboard_mix(server, "views", sample_assets)
    )
    assert view_sum == scan_sum, "both paths must answer identically"
    speedup = scan_s / view_s if view_s > 0 else float("inf")

    wallet_scan_s, wallet_scan_sum = _timed(
        WALLET_ROUNDS, lambda: _wallet_mix(server, "scan", owner_keys)
    )
    wallet_view_s, wallet_view_sum = _timed(
        WALLET_ROUNDS, lambda: _wallet_mix(server, "views", owner_keys)
    )
    assert wallet_view_sum == wallet_scan_sum

    store_reads = _count_store_reads(server, sample_assets)
    lag = _view_lag(cluster)

    report = {
        "history": {
            "assets": N_ASSETS,
            "requests": N_REQUESTS,
            "transfers": N_TRANSFERS,
            "blocks": cluster.views.height(cluster.view_shard_key),
        },
        "analytics_dashboard": {
            "rounds": DASHBOARD_ROUNDS,
            "scan_ms": round(scan_s * 1000, 2),
            "views_ms": round(view_s * 1000, 2),
            "speedup": round(speedup, 1),
        },
        "wallet_reads": {
            "rounds": WALLET_ROUNDS,
            "scan_ms": round(wallet_scan_s * 1000, 2),
            "views_ms": round(wallet_view_s * 1000, 2),
            "speedup": round(wallet_scan_s / wallet_view_s, 2)
            if wallet_view_s > 0
            else None,
        },
        "commit_path": store_reads,
        "freshness": {
            "view_lag_blocks_at_idle": lag,
            "view_stats": dict(cluster.views.stats),
        },
        "read_stats": dict(server.read_stats),
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    dashboard = report["analytics_dashboard"]
    print(
        f"read scaling: dashboard {dashboard['scan_ms']}ms scans vs "
        f"{dashboard['views_ms']}ms views ({dashboard['speedup']}x), "
        f"view-served store reads={store_reads['view_served_finds']}, lag={lag}"
    )

    # Acceptance gates (ISSUE 8): repeated analytics queries >= 10x
    # faster from views, served without touching the document store,
    # with zero staleness once the loop is idle.
    assert speedup >= 10.0, dashboard
    assert store_reads["view_served_finds"] == 0, store_reads
    assert store_reads["scan_finds"] > 0, store_reads  # the counter works
    assert lag == 0, report["freshness"]


if __name__ == "__main__":
    test_read_scaling()
