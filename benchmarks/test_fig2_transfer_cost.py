"""Fig. 2 — TRANSFER runtime and GAS cost, native vs smart contract.

Paper: "using smart contracts instead of native transaction primitives
increased GAS costs by 40% in Ethereum, reflecting higher transaction
latencies".  We regenerate both bars: gas (native 21 000 vs contract
transfer) and commit latency on a 4-node Quorum network, plus the
SmartchainDB native TRANSFER latency for context.
"""

from __future__ import annotations

from _harness import write_report

from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import keypair_from_string
from repro.ethereum.chain import QuorumChain, QuorumChainConfig
from repro.ethereum.client import Web3Client
from repro.metrics.report import format_table


def _run_fig2() -> dict:
    accounts = [f"0xuser{i}" for i in range(4)]
    chain = QuorumChain(QuorumChainConfig(n_validators=4, seed=2), accounts=accounts)
    client = Web3Client(chain)
    client.deploy("ReverseAuctionMarketplace", "market", accounts[0])
    client.transact("market", "create_asset", [["cap"], ""], accounts[1])

    native_records = [
        client.native_transfer(accounts[0], accounts[2], 10) for _ in range(10)
    ]
    contract_records = []
    owner = accounts[1]
    for index in range(10):
        target = accounts[(index + 2) % 4]
        record = client.transact("market", "transfer_asset", [1, target], owner)
        contract_records.append(record)
        owner = target

    scdb = SmartchainCluster(ClusterConfig(n_validators=4, seed=2))
    alice = keypair_from_string("alice")
    bob = keypair_from_string("bob")
    create = scdb.driver.prepare_create(alice, {"name": "asset"})
    scdb.submit_and_settle(create)
    transfer = scdb.driver.prepare_transfer(
        alice, [(create.tx_id, 0, 1)], create.tx_id, [(bob.public_key, 1)]
    )
    scdb_record = scdb.submit_and_settle(transfer)

    native_gas = sum(r.gas_used for r in native_records) / len(native_records)
    contract_gas = sum(r.gas_used for r in contract_records) / len(contract_records)
    native_latency = sum(r.latency for r in native_records) / len(native_records)
    contract_latency = sum(r.latency for r in contract_records) / len(contract_records)
    return {
        "native_gas": native_gas,
        "contract_gas": contract_gas,
        "gas_overhead": contract_gas / native_gas - 1.0,
        "native_latency": native_latency,
        "contract_latency": contract_latency,
        "scdb_latency": scdb_record.latency,
    }


def test_fig2_transfer_runtime_and_cost(benchmark):
    result = benchmark.pedantic(_run_fig2, rounds=1, iterations=1)

    table = format_table(
        ["variant", "gas", "latency_s"],
        [
            ["ETH native TRANSFER", result["native_gas"], result["native_latency"]],
            ["ETH contract transfer", result["contract_gas"], result["contract_latency"]],
            ["SCDB native TRANSFER", "-", result["scdb_latency"]],
        ],
        title="Fig. 2 — TRANSFER runtime and cost (log scale in the paper)",
    )
    print("\n" + table)
    write_report("fig2_transfer_cost", table)
    benchmark.extra_info.update(result)

    # Shape: paper reports ~40% gas overhead; we accept 20-100%.
    assert 0.2 <= result["gas_overhead"] <= 1.0
    # Contract path must be slower than the native path.
    assert result["contract_latency"] > result["native_latency"]
    # The declarative TRANSFER must beat both Ethereum variants.
    assert result["scdb_latency"] < result["native_latency"]
