"""Crypto microbenchmark: windowed Ed25519, batch verification, sig cache.

Measures the three layers of the batched validation pipeline's crypto
fast path:

* **single verify** — the extended-coordinate windowed implementation
  against a faithful *naive affine* baseline: affine double-and-add where
  every point addition pays two modular inversions (``pow(.., P-2, P)``),
  the textbook formulation the fast path exists to avoid;
* **batch verify** — :func:`repro.crypto.ed25519.verify_batch`'s single
  random-linear-combination check (one shared doubling chain via Straus
  interleaving) against one-at-a-time fast verifies, at several batch
  sizes;
* **signature cache** — the cluster-wide verdict cache under the
  replicated pipeline's access pattern: the proposer verifies a block's
  signatures once (batch), then N-1 replicas check the same triples.
  Hit rate is counted directly from the cache's own stats: each replica
  pass performs ``len(triples)`` lookups, all of which must hit, so the
  expected rate is ``(n_replicas - 1) / n_replicas`` of all lookups.

Results go to ``BENCH_crypto.json`` at the repo root.  Acceptance gates
(also enforced by the CI perf smoke job): fast single verify >= 10x the
naive affine baseline, and batch-32 >= 1.5x over single fast verifies.
"""

from __future__ import annotations

import json
import os
import time

from repro.crypto import ed25519
from repro.crypto.ed25519 import D, L, P
from repro.crypto.sigcache import SignatureCache, set_shared_cache

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_crypto.json")

N_KEYS = 32
N_FAST_VERIFIES = 24
N_NAIVE_VERIFIES = 2
BATCH_SIZES = (8, 32)
N_CACHE_REPLICAS = 4


# -- baseline: naive affine Ed25519 verification ------------------------------
#
# The textbook implementation this module's history started from: affine
# coordinates, so every group operation performs modular inversions, and
# plain double-and-add, so a ~253-bit scalar costs ~256 doublings plus
# ~128 additions — each carrying two ``pow(.., P-2, P)`` calls.


def _affine_add(p1, p2):
    """Affine Edwards addition (a = -1); two inversions per call."""
    if p1 is None:
        return p2
    if p2 is None:
        return p1
    x1, y1 = p1
    x2, y2 = p2
    product = D * x1 * x2 * y1 * y2 % P
    x3 = (x1 * y2 + x2 * y1) * pow(1 + product, P - 2, P) % P
    y3 = (y1 * y2 + x1 * x2) * pow(1 - product, P - 2, P) % P
    return (x3, y3)


def _affine_scalar_mult(point, scalar):
    """Double-and-add on affine coordinates (None is the identity)."""
    result = None
    addend = point
    while scalar > 0:
        if scalar & 1:
            result = _affine_add(result, addend)
        addend = _affine_add(addend, addend)
        scalar >>= 1
    return result


def _affine_decompress(data):
    point = ed25519._point_decompress(data)
    x, y, z, _ = point
    z_inv = pow(z, P - 2, P)
    return (x * z_inv % P, y * z_inv % P)


_AFFINE_BASE = _affine_decompress(
    ed25519._point_compress(ed25519._BASE)
)


def naive_affine_verify(public_key: bytes, message: bytes, signature: bytes) -> bool:
    """RFC 8032 verification on the naive affine arithmetic."""
    if len(public_key) != 32 or len(signature) != 64:
        return False
    a_point = _affine_decompress(public_key)
    r_point = _affine_decompress(signature[:32])
    s = int.from_bytes(signature[32:], "little")
    if s >= L:
        return False
    challenge = ed25519._sha512_int(signature[:32], public_key, message) % L
    left = _affine_scalar_mult(_AFFINE_BASE, s)
    right = _affine_add(r_point, _affine_scalar_mult(a_point, challenge))
    if left is None or right is None:
        return left is right
    return left == right


# -- workload -----------------------------------------------------------------


def make_signatures(count: int):
    """Deterministic (public_key, message, signature) byte triples."""
    triples = []
    for number in range(count):
        seed = number.to_bytes(4, "big") * 8
        public = ed25519.public_key_from_seed(seed)
        message = f"crypto-bench-payload-{number}".encode() * 8
        triples.append((public, message, ed25519.sign(seed, message)))
    return triples


def timed(thunk) -> float:
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


# -- sections -----------------------------------------------------------------


def measure_single_verify() -> dict[str, float]:
    triples = make_signatures(N_KEYS)
    # Sanity: the baseline is a real verifier, not a strawman.
    assert naive_affine_verify(*triples[0])
    assert not naive_affine_verify(triples[0][0], b"tampered", triples[0][2])

    def run_naive() -> None:
        for public, message, signature in triples[:N_NAIVE_VERIFIES]:
            assert naive_affine_verify(public, message, signature)

    def run_fast() -> None:
        for public, message, signature in triples[:N_FAST_VERIFIES]:
            assert ed25519.verify(public, message, signature)

    run_fast()  # warm the decompressed-public-key cache (steady state)
    naive_s = timed(run_naive) / N_NAIVE_VERIFIES
    fast_s = timed(run_fast) / N_FAST_VERIFIES
    return {
        "naive_affine_ms": round(naive_s * 1000, 3),
        "fast_ms": round(fast_s * 1000, 3),
        "speedup": round(naive_s / fast_s, 2),
    }


def measure_batch_verify() -> dict[str, object]:
    triples = make_signatures(max(BATCH_SIZES))
    for public, message, signature in triples:
        assert ed25519.verify(public, message, signature)  # warm + sanity

    sizes = {}
    single_s = timed(
        lambda: [ed25519.verify(*triple) for triple in triples]
    ) / len(triples)
    for size in BATCH_SIZES:
        batch = triples[:size]
        best = min(timed(lambda: ed25519.verify_batch(batch)) for _ in range(3))
        per_sig = best / size
        sizes[str(size)] = {
            "batch_ms_per_sig": round(per_sig * 1000, 3),
            "speedup_vs_single": round(single_s / per_sig, 2),
        }
    return {"single_fast_ms": round(single_s * 1000, 3), "batch": sizes}


def measure_signature_cache() -> dict[str, float]:
    raw_triples = make_signatures(N_KEYS)
    cache = SignatureCache(maxsize=4096)
    previous = set_shared_cache(cache)
    try:
        def proposer_pass() -> None:
            # Mirror verify_signatures_batch: look up first (all misses on
            # a cold cache), batch-verify, write the verdicts back.
            for public, message, signature in raw_triples:
                assert cache.get(cache.key(public, message, signature)) is None
            verdicts = ed25519.verify_batch(raw_triples)
            assert all(verdicts)
            for (public, message, signature), verdict in zip(raw_triples, verdicts):
                cache.put(cache.key(public, message, signature), verdict)

        def replica_pass() -> None:
            for public, message, signature in raw_triples:
                verdict = cache.get(cache.key(public, message, signature))
                if verdict is None:  # pragma: no cover - cache misconfigured
                    verdict = ed25519.verify(public, message, signature)
                    cache.put(cache.key(public, message, signature), verdict)
                assert verdict

        proposer_s = timed(proposer_pass)
        replica_s = sum(timed(replica_pass) for _ in range(N_CACHE_REPLICAS - 1))
        replica_per_pass = replica_s / (N_CACHE_REPLICAS - 1)
        lookups = cache.hits + cache.misses
        hit_rate = cache.hit_rate()
    finally:
        set_shared_cache(previous)
    return {
        "signatures": N_KEYS,
        "replicas": N_CACHE_REPLICAS,
        "proposer_batch_ms": round(proposer_s * 1000, 3),
        "replica_pass_ms": round(replica_per_pass * 1000, 3),
        "cache_lookups": lookups,
        "hit_rate": round(hit_rate, 4),
        "replica_speedup": round(proposer_s / replica_per_pass, 2),
    }


def test_crypto_batching():
    report = {
        "single_verify": measure_single_verify(),
        "batch_verify": measure_batch_verify(),
        "signature_cache": measure_signature_cache(),
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    lines = ["crypto batching microbenchmark"]
    for section, numbers in report.items():
        lines.append(f"  {section}: {json.dumps(numbers)}")
    print("\n".join(lines))

    # Acceptance gates (ISSUE 4): the windowed extended-coordinate path
    # clears 10x the naive affine baseline, and batch-32 adds >= 1.5x on
    # top of single fast verifies.
    assert report["single_verify"]["speedup"] >= 10.0, report["single_verify"]
    assert (
        report["batch_verify"]["batch"]["32"]["speedup_vs_single"] >= 1.5
    ), report["batch_verify"]
    # Replica passes are pure cache reads: every lookup after the proposer
    # pass must hit, and hits must be dramatically cheaper than verifying.
    assert report["signature_cache"]["hit_rate"] >= 0.74, report["signature_cache"]
    assert report["signature_cache"]["replica_speedup"] >= 5.0, report["signature_cache"]


if __name__ == "__main__":
    test_crypto_batching()
