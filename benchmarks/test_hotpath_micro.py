"""Hot-path microbenchmark: compiled queries + zero-copy vs the interpreter.

Measures the three storage/transaction hot paths the compiled-query PR
rewired, each against a faithful re-implementation of the previous
(interpreted / deep-copy / flat-index / uncached) behaviour:

* **query throughput** on a 10k-document indexed workload —
  per-candidate ``matches()`` interpretation plus a deep copy per result
  vs compiled predicates on the ``copy=False`` read path;
* **insert throughput** into an ordered index — the previous flat
  ``list.insert`` O(n) sorted index vs the blocked two-level structure;
* **end-to-end commit latency** through the validation pipeline
  (receiver validate + 4x CheckTx + DeliverTx) — the cache-free seed
  configuration (no verification cache, no cluster-wide signature cache)
  against the production path with both caches on;
* **mempool reaping** — the seed head-pop loop (fresh ``items()`` view
  iterator + key re-hash per transaction, per-transaction dedup-window
  trims) against the ``popitem``-based reap with batched window upkeep.

Results are written to ``BENCH_hotpath.json`` at the repo root so the
perf trajectory is tracked across PRs.  The acceptance gates double as
the CI perf-regression floor: query >= 4x, commit >= 4x (ISSUE 4).
"""

from __future__ import annotations

import bisect
import json
import os
import time
from typing import Any

from repro.consensus.mempool import Mempool
from repro.consensus.types import TxEnvelope
from repro.core.builders import build_create
from repro.core.context import ValidationContext
from repro.core.validation import TransactionValidator
from repro.crypto.keys import ReservedAccounts, keypair_from_string
from repro.crypto.sigcache import SignatureCache, set_shared_cache
from repro.common.encoding import deep_copy_json
from repro.storage.collection import Collection
from repro.storage.compiler import clear_cache
from repro.storage.documents import matches
from repro.storage.database import make_smartchaindb_database
from repro.telemetry.registry import exact_percentile

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_hotpath.json")

N_DOCUMENTS = 10_000
N_QUERIES = 2_000
N_INDEX_INSERTS = 30_000
N_COMMIT_TXS = 60
N_MEMPOOL_TXS = 24_000
MEMPOOL_BLOCK_TXS = 32
MEMPOOL_BLOCK_WEIGHT = 64


# -- baselines: the previous implementations, verbatim ------------------------


def interpreted_find(collection: Collection, query: dict[str, Any]) -> list[dict[str, Any]]:
    """The seed read path: plan, then per-candidate ``matches`` + deep copy."""
    plan, candidate_ids = collection._planner.plan(query, len(collection))
    if plan.kind == "index":
        candidates = sorted(candidate_ids) if candidate_ids else []
    else:
        candidates = list(collection._documents)
    results = []
    for doc_id in candidates:
        document = collection._documents.get(doc_id)
        if document is None:
            continue
        if matches(document, query):
            results.append(deep_copy_json(document))
    return results


class FlatSortedIndex:
    """The seed ordered index: one flat list, O(n) memmove per insert."""

    def __init__(self) -> None:
        self._keys: list[Any] = []
        self._ids: list[int] = []

    def add(self, key: Any, doc_id: int) -> None:
        position = bisect.bisect_right(self._keys, key)
        self._keys.insert(position, key)
        self._ids.insert(position, doc_id)


# -- workload -----------------------------------------------------------------


def build_collection() -> Collection:
    collection = Collection("transactions")
    collection.create_index("id", unique=True)
    collection.create_index("operation")
    collection.create_index("references")
    operations = ("CREATE", "BID", "TRANSFER", "REQUEST")
    for number in range(N_DOCUMENTS):
        collection.insert_one(
            {
                "id": f"{number:064d}",
                "operation": operations[number % len(operations)],
                "references": [f"r{number % 500}"],
                "outputs": [
                    {
                        "public_keys": [f"K{number % 200}"],
                        "amount": 1 + number % 7,
                        "condition": {"type": "ed25519-sha-256", "threshold": 1},
                    }
                ],
                "metadata": {"payload": "x" * 64, "window": number % 37},
            }
        )
    return collection


def query_workload() -> list[dict[str, Any]]:
    """The repeated query shapes validation and analytics actually issue."""
    shapes = []
    for number in range(N_QUERIES):
        bucket = number % 4
        if bucket == 0:
            shapes.append({"id": f"{(number * 7) % N_DOCUMENTS:064d}"})
        elif bucket == 1:
            shapes.append({"references": f"r{number % 500}"})
        elif bucket == 2:
            shapes.append({"operation": "BID", "references": f"r{number % 500}"})
        else:
            shapes.append(
                {"operation": "TRANSFER", "outputs.amount": {"$gte": 4}, "metadata.window": number % 37}
            )
    return shapes


def timed(thunk) -> float:
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


# -- the benchmark ------------------------------------------------------------


def measure_query_throughput() -> dict[str, float]:
    collection = build_collection()
    queries = query_workload()

    def run_interpreted() -> None:
        for query in queries:
            interpreted_find(collection, query)

    def run_compiled() -> None:
        for query in queries:
            collection.find(query, copy=False)

    # Warm-up: let the compiler cache fill so the measured pass reflects
    # steady state (the same query shapes repeat on the real hot path).
    clear_cache()
    collection.find(queries[0], copy=False)

    interpreted_s = timed(run_interpreted)
    compiled_s = timed(run_compiled)
    return {
        "documents": N_DOCUMENTS,
        "queries": N_QUERIES,
        "interpreted_qps": round(N_QUERIES / interpreted_s, 1),
        "compiled_qps": round(N_QUERIES / compiled_s, 1),
        "speedup": round(interpreted_s / compiled_s, 2),
    }


def measure_insert_throughput() -> dict[str, float]:
    keys = [(number * 2_654_435_761) % 1_000_003 for number in range(N_INDEX_INSERTS)]

    def run_flat() -> None:
        index = FlatSortedIndex()
        for doc_id, key in enumerate(keys):
            index.add(key, doc_id)

    def run_blocked() -> None:
        from repro.storage.indexes import SortedIndex

        index = SortedIndex("height")
        for doc_id, key in enumerate(keys):
            index._insert(key, doc_id)

    flat_s = timed(run_flat)
    blocked_s = timed(run_blocked)
    return {
        "inserts": N_INDEX_INSERTS,
        "flat_ips": round(N_INDEX_INSERTS / flat_s, 1),
        "blocked_ips": round(N_INDEX_INSERTS / blocked_s, 1),
        "speedup": round(flat_s / blocked_s, 2),
    }


def measure_commit_latency() -> dict[str, float]:
    alice = keypair_from_string("alice")
    payloads = [
        build_create(alice, {"name": f"asset-{number}", "blob": "y" * 256})
        .sign([alice])
        .to_dict()
        for number in range(N_COMMIT_TXS)
    ]

    def pipeline(verification_cache: bool, signature_cache: bool) -> list[float]:
        database = make_smartchaindb_database("bench")
        reserved = ReservedAccounts(escrow=keypair_from_string("escrow"))
        ctx = ValidationContext(database, reserved)
        validator = TransactionValidator(verification_cache=verification_cache)
        # The cluster-wide signature cache is process-global; pin it to a
        # known state per phase so neither the seed baseline nor earlier
        # tests in the session leak verdicts into the measurement.
        previous = set_shared_cache(SignatureCache() if signature_cache else None)
        durations = []
        try:
            for payload in payloads:
                start = time.perf_counter()
                validator.validate(ctx, payload)          # receiver node
                for _ in range(4):
                    assert validator.check_tx(payload)    # validator CheckTx
                validator.validate_semantics(ctx, payload)  # DeliverTx
                durations.append(time.perf_counter() - start)
            return durations
        finally:
            set_shared_cache(previous)

    uncached = pipeline(verification_cache=False, signature_cache=False)
    cached = pipeline(verification_cache=True, signature_cache=True)
    uncached_s, cached_s = sum(uncached), sum(cached)
    ordered = sorted(cached)
    return {
        "transactions": N_COMMIT_TXS,
        "uncached_ms_per_tx": round(1000 * uncached_s / N_COMMIT_TXS, 3),
        "cached_ms_per_tx": round(1000 * cached_s / N_COMMIT_TXS, 3),
        # Nearest-rank tail percentiles of the cached path (same
        # extraction the telemetry registry uses everywhere else).
        "cached_p50_ms": round(1000 * exact_percentile(ordered, 0.50), 3),
        "cached_p99_ms": round(1000 * exact_percentile(ordered, 0.99), 3),
        "cached_p999_ms": round(1000 * exact_percentile(ordered, 0.999), 3),
        "speedup": round(uncached_s / cached_s, 2),
    }


def measure_mempool_reap() -> dict[str, float]:
    def envelope(number: int) -> TxEnvelope:
        # ~2% of transactions are heavier than the block weight limit, so
        # both implementations exercise their oversized-skip path.
        weight = 100 if number % 50 == 0 else 1
        return TxEnvelope(
            tx_id=f"{number:032d}", payload={}, size_bytes=100, weight=weight
        )

    def fill() -> Mempool:
        pool = Mempool(capacity=N_MEMPOOL_TXS + 10)
        for number in range(N_MEMPOOL_TXS):
            pool.add(envelope(number))
        return pool

    def seed_reap(pool: Mempool, max_txs: int, max_weight: int) -> list[TxEnvelope]:
        """The previous reap, verbatim: fresh items() iterator and key
        re-hash per transaction, dedup-window trim per reaped id."""
        batch: list[TxEnvelope] = []
        weight = 0
        skipped: list[TxEnvelope] = []
        while pool._pool:
            if len(batch) >= max_txs:
                break
            tx_id, item = next(iter(pool._pool.items()))
            if weight + item.weight > max_weight:
                if item.weight > max_weight:
                    pool._pool.pop(tx_id)
                    skipped.append(item)
                    continue
                break
            pool._pool.pop(tx_id)
            batch.append(item)
            weight += item.weight
        for item in skipped:
            pool._pool[item.tx_id] = item
        for item in batch:
            pool._seen[item.tx_id] = None
            pool._seen.move_to_end(item.tx_id)
            while len(pool._seen) > pool.seen_capacity:
                pool._seen.popitem(last=False)
        return batch

    def drain(pool: Mempool, reap) -> int:
        total = 0
        while True:
            batch = reap(pool, MEMPOOL_BLOCK_TXS, MEMPOOL_BLOCK_WEIGHT)
            if not batch:
                return total
            total += len(batch)

    # Best-of-3 per implementation: a full drain is tens of milliseconds,
    # where scheduler noise would otherwise dominate a CI gate.
    seed_s = new_s = float("inf")
    for _ in range(3):
        seed_pool, new_pool = fill(), fill()
        seed_s = min(seed_s, timed(lambda: drain(seed_pool, seed_reap)))
        new_s = min(
            new_s,
            timed(
                lambda: drain(
                    new_pool, lambda pool, txs, wt: pool.reap(max_txs=txs, max_weight=wt)
                )
            ),
        )
        # Both implementations must reap the same transactions — the fix
        # is pure mechanics, not policy.
        assert seed_pool.pending_ids() == new_pool.pending_ids()
    return {
        "transactions": N_MEMPOOL_TXS,
        "seed_reap_ms": round(seed_s * 1000, 2),
        "reap_ms": round(new_s * 1000, 2),
        "speedup": round(seed_s / new_s, 2),
    }


def test_hotpath_micro():
    report = {
        "query_throughput": measure_query_throughput(),
        "insert_throughput": measure_insert_throughput(),
        "commit_latency": measure_commit_latency(),
        "mempool_reap": measure_mempool_reap(),
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    lines = ["hot-path microbenchmark"]
    for section, numbers in report.items():
        lines.append(f"  {section}: " + ", ".join(f"{k}={v}" for k, v in numbers.items()))
    print("\n".join(lines))

    # Perf-regression floors (ISSUE 4): the CI perf smoke job fails when
    # these drop, so a PR cannot silently give the speedups back.
    assert report["query_throughput"]["speedup"] >= 4.0, report["query_throughput"]
    assert report["commit_latency"]["speedup"] >= 4.0, report["commit_latency"]
    # Conservative bounds for the remaining paths (typical measurements
    # are far higher; reap is a micro-fix, so the floor only guards
    # against regressing below the seed implementation).
    assert report["insert_throughput"]["speedup"] >= 1.5, report["insert_throughput"]
    assert report["mempool_reap"]["speedup"] >= 1.0, report["mempool_reap"]


if __name__ == "__main__":
    test_hotpath_micro()
