"""Figs. 8a-8c — the effect of cluster size (Experiment 2).

Sweeps validator counts 4 -> 32 at a fixed 1.09 KB transaction size and
regenerates:

* 8a — SCDB latency per transaction type;
* 8b — ETH-SC latency per transaction type;
* 8c — throughput (paper: SCDB 43.5 -> 45.3 tps; ETH-SC ~0.77 flat).

Shape criteria: latency roughly stable with cluster growth in both
systems (IBFT finality / Tendermint quorum latency grow only mildly);
SCDB throughput does not degrade (blockchain pipelining absorbs the
added communication); ETH-SC throughput stays below 1-2 tps and far
below SCDB (paper: "minimum of 60" improvement factor).
"""

from __future__ import annotations

import pytest
from _harness import CLUSTER_SWEEP, fig8_spec, write_report

from repro.metrics.report import format_table, ratio
from repro.workloads import run_eth_scenario, run_scdb_scenario

OPERATIONS = ("CREATE", "REQUEST", "BID", "ACCEPT_BID")


@pytest.fixture(scope="module")
def sweep():
    results = []
    for n_validators in CLUSTER_SWEEP:
        spec = fig8_spec(n_validators)
        scdb = run_scdb_scenario(spec)
        eth = run_eth_scenario(spec)
        results.append((n_validators, scdb.metrics, eth.metrics))
    return results


def _latency_table(title, sweep, metrics_index):
    rows = []
    for n_validators, scdb, eth in sweep:
        metrics = (scdb, eth)[metrics_index]
        rows.append(
            [n_validators] + [metrics.latency(operation) for operation in OPERATIONS]
        )
    return format_table(["validators"] + list(OPERATIONS), rows, title=title)


def test_fig8a_scdb_latency_by_cluster_size(benchmark, sweep):
    table = benchmark.pedantic(
        lambda: _latency_table("Fig. 8a — SCDB latency vs cluster size", sweep, 0),
        rounds=1, iterations=1,
    )
    print("\n" + table)
    write_report("fig8a_scdb_latency", table)

    smallest, largest = sweep[0][1], sweep[-1][1]
    # Latency stays roughly stable from 4 to 32 validators (within 2x).
    for operation in OPERATIONS:
        assert largest.latency(operation) < smallest.latency(operation) * 2.0


def test_fig8b_eth_latency_by_cluster_size(benchmark, sweep):
    table = benchmark.pedantic(
        lambda: _latency_table("Fig. 8b — ETH-SC latency vs cluster size", sweep, 1),
        rounds=1, iterations=1,
    )
    print("\n" + table)
    write_report("fig8b_eth_latency", table)

    smallest, largest = sweep[0][2], sweep[-1][2]
    for operation in OPERATIONS:
        # "ETH-SC's latency does not significantly increase as more
        # nodes are added" — stable within 2x.
        assert largest.latency(operation) < smallest.latency(operation) * 2.0
    # But the ETH-SC baseline sits far above SCDB at every cluster size.
    for n_validators, scdb, eth in sweep:
        assert eth.latency("BID") > scdb.latency("BID") * 10


def test_fig8c_throughput_by_cluster_size(benchmark, sweep):
    def build():
        rows = [
            [n, scdb.throughput_tps, eth.throughput_tps,
             ratio(scdb.throughput_tps, eth.throughput_tps)]
            for n, scdb, eth in sweep
        ]
        return format_table(
            ["validators", "SCDB_tps", "ETH-SC_tps", "improvement"],
            rows,
            title="Fig. 8c — throughput vs cluster size",
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n" + table)
    write_report("fig8c_throughput", table)

    scdb_first, scdb_last = sweep[0][1], sweep[-1][1]
    # SCDB throughput holds up (paper shows a slight increase 43.5->45.3;
    # we require no worse than a mild dip as communication grows).
    assert scdb_last.throughput_tps > scdb_first.throughput_tps * 0.8
    # ETH-SC throughput low and flat-ish.
    for _, _, eth in sweep:
        assert eth.throughput_tps < 2.5
    # The headline: a large throughput improvement factor at every size
    # (paper: "a minimum of 60").
    for _, scdb, eth in sweep:
        assert ratio(scdb.throughput_tps, eth.throughput_tps) > 25
