"""Nested-transaction crash handling (Section 4.2.1).

Regenerates the paper's crash analysis as a measurable experiment: an
ACCEPT_BID commits non-locking, its receiver node crashes before the
RETURN children drain, and the recovery log restores eventual commit
after the node rejoins.  Reports time-to-full-commit with and without
the crash.
"""

from __future__ import annotations

from _harness import write_report

from repro.consensus.tendermint import tendermint_config
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import keypair_from_string
from repro.metrics.report import format_table

ALICE = keypair_from_string("alice")
BOB = keypair_from_string("bob")
CAROL = keypair_from_string("carol")
SALLY = keypair_from_string("sally")


def _run_auction(crash_receiver: bool) -> dict:
    cluster = SmartchainCluster(
        ClusterConfig(
            n_validators=4,
            seed=13,
            consensus=tendermint_config(max_block_txs=8, propose_timeout=0.5),
            worker_poll_interval=0.3 if crash_receiver else 0.002,
        )
    )
    driver = cluster.driver
    bidders = [ALICE, BOB, CAROL]
    creates = []
    for index, keypair in enumerate(bidders):
        create = driver.prepare_create(keypair, {"capabilities": ["cap"], "n": index})
        cluster.submit_payload(create.to_dict())
        creates.append((keypair, create))
    cluster.run()
    request = driver.prepare_request(SALLY, ["cap"])
    cluster.submit_and_settle(request)
    bids = []
    for keypair, create in creates:
        bid = driver.prepare_bid(keypair, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)])
        cluster.submit_payload(bid.to_dict())
        bids.append(bid)
    cluster.run()

    accept = driver.prepare_accept_bid(SALLY, request.tx_id, bids[0])
    accept_submit_time = cluster.loop.clock.now
    cluster.submit_payload(accept.to_dict())

    crashed = False
    if crash_receiver:
        cluster.loop.run(until=cluster.loop.clock.now + 0.28)
        receiver = cluster._accept_receivers.get(accept.tx_id)
        parent_committed = cluster.records[accept.tx_id].committed_at is not None
        if receiver is not None and parent_committed:
            cluster.failures.crash_now(receiver)
            crashed = True
            cluster.run(duration=3.0)
            cluster.failures.recover_now(receiver)
    cluster.run(duration=60.0)
    cluster.run()

    server = cluster.any_server()
    record = cluster.records[accept.tx_id]
    fully = server.nested.recovery.is_fully_committed(accept.tx_id)
    returns = server.database.collection("transactions").count({"operation": "RETURN"})
    last_commit = max(
        (r.committed_at for r in cluster.records.values() if r.committed_at), default=0.0
    )
    return {
        "crashed": crashed,
        "parent_latency": record.latency or float("inf"),
        "time_to_full_commit": last_commit - accept_submit_time,
        "returns_committed": returns,
        "fully_committed": fully,
    }


def test_nested_recovery_under_receiver_crash(benchmark):
    baseline = _run_auction(crash_receiver=False)
    crashed = benchmark.pedantic(
        lambda: _run_auction(crash_receiver=True), rounds=1, iterations=1
    )

    table = format_table(
        ["scenario", "parent_lat_s", "full_commit_s", "returns", "eventual_commit"],
        [
            ["no failure", baseline["parent_latency"], baseline["time_to_full_commit"],
             baseline["returns_committed"], baseline["fully_committed"]],
            ["receiver crash + recovery", crashed["parent_latency"],
             crashed["time_to_full_commit"], crashed["returns_committed"],
             crashed["fully_committed"]],
        ],
        title="Non-locking nested transactions under failure (Section 4.2.1)",
    )
    print("\n" + table)
    write_report("nested_recovery", table)

    # Both scenarios end fully committed (Definition 2's eventual commit).
    assert baseline["fully_committed"]
    assert crashed["fully_committed"]
    assert baseline["returns_committed"] == 2
    assert crashed["returns_committed"] == 2
    # Non-locking: the parent's own latency is unaffected by child fate.
    assert crashed["parent_latency"] < 5.0
