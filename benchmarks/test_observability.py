"""Observability overhead benchmark: what the telemetry layer costs.

Every hot surface carries a ``tel = self.telemetry; if tel is not None
and tel.enabled:`` guard, so instrumentation has three operating points:

* **baseline** — the attribute is ``None`` (no telemetry object at all):
  the pre-telemetry hot path plus one attribute load and branch;
* **disabled** — a constructed :class:`~repro.telemetry.Telemetry` with
  ``enabled=False``: the production off-switch, same guard verdict;
* **enabled** — telemetry on at the default 1/64 trace sampling rate:
  counters/gauges/histograms record on every operation, span events only
  for sampled transactions.

Two component microbenchmarks (mempool add+reap, WAL group commit) show
the per-operation guard and registry costs in isolation; the acceptance
gate runs on the **end-to-end commit pipeline** (submit -> receiver
validate -> consensus -> apply through a real 4-validator cluster),
where the ISSUE-7 bars live: <= 5% regression with default sampling,
<= 1% with telemetry disabled.

Results go to ``BENCH_observability.json`` at the repo root; CI uploads
the file so the overhead trajectory is visible across PRs.
"""

from __future__ import annotations

import json
import os
import time

from repro.consensus.mempool import Mempool
from repro.consensus.types import TxEnvelope
from repro.core.builders import build_create
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import keypair_from_string
from repro.crypto.sigcache import SignatureCache, set_shared_cache
from repro.durability.commitlog import GroupCommitLog
from repro.durability.wal import SegmentedWal, SimDisk
from repro.sim.events import EventLoop
from repro.telemetry import DEFAULT_SAMPLE_RATE, Telemetry

BENCH_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_observability.json"
)

MODES = ("baseline", "disabled", "enabled")
N_MEMPOOL_TXS = 12_000
N_WAL_RECORDS = 6_000
WAL_BATCH = 16
N_PIPELINE_TXS = 18
COMPONENT_TRIALS = 5
PIPELINE_TRIALS = 3


class _Clock:
    """Fixed clock for component benches (they never advance sim time)."""

    now = 0.0


def _telemetry(mode: str, clock=None) -> Telemetry | None:
    if mode == "baseline":
        return None
    return Telemetry(
        clock or _Clock(),
        sample_salt=7,
        sample_rate=DEFAULT_SAMPLE_RATE,
        enabled=(mode == "enabled"),
    )


def timed(thunk) -> float:
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


def _overheads(times: dict[str, float]) -> dict[str, float]:
    base = times["baseline"]
    return {
        "disabled_overhead_pct": round(100.0 * (times["disabled"] / base - 1.0), 2),
        "enabled_overhead_pct": round(100.0 * (times["enabled"] / base - 1.0), 2),
    }


# -- component microbenchmarks -------------------------------------------------


def _mempool_cycle(telemetry) -> None:
    pool = Mempool(capacity=N_MEMPOOL_TXS + 10)
    pool.telemetry = telemetry
    pool.telemetry_label = "bench"
    for number in range(N_MEMPOOL_TXS):
        pool.add(
            TxEnvelope(tx_id=f"{number:032d}", payload={}, size_bytes=100, weight=1)
        )
    while pool.reap(max_txs=32, max_weight=64):
        pass


def _commitlog_cycle(telemetry) -> None:
    loop = EventLoop()
    log = GroupCommitLog(SegmentedWal(SimDisk(), segment_max_bytes=1 << 20), loop)
    log.telemetry = telemetry
    log.telemetry_label = "bench"
    for number in range(N_WAL_RECORDS):
        log.append({"k": "r", "n": number})
        if number % WAL_BATCH == WAL_BATCH - 1:
            loop.run_until_idle()
    loop.run_until_idle()


def _measure_component(name: str, cycle, scale: int) -> dict:
    # Interleave modes and keep the minimum: on a shared CI box the floor
    # of several trials is the signal, the rest is scheduler noise.
    times = {mode: float("inf") for mode in MODES}
    for _ in range(COMPONENT_TRIALS):
        for mode in MODES:
            telemetry = _telemetry(mode)
            times[mode] = min(times[mode], timed(lambda: cycle(telemetry)))
    report = {"operations": scale}
    report.update(
        {f"{mode}_ms": round(times[mode] * 1000, 3) for mode in MODES}
    )
    report.update(_overheads(times))
    return report


# -- the gated end-to-end pipeline ---------------------------------------------


def _build_payloads() -> list[dict]:
    owner = keypair_from_string("bench-owner")
    return [
        build_create(owner, {"name": f"asset-{number}", "blob": "z" * 200})
        .sign([owner])
        .to_dict()
        for number in range(N_PIPELINE_TXS)
    ]


def _strip_telemetry(cluster: SmartchainCluster) -> None:
    """Null every component's telemetry attribute: the true no-telemetry
    baseline (guard loads still happen; nothing else does)."""
    cluster.telemetry = None
    for server in cluster.servers.values():
        server.telemetry = None
    for durability in cluster.node_durability.values():
        durability.log.telemetry = None
    for node_id in cluster.engine.validator_order:
        validator = cluster.engine.validator(node_id)
        validator.telemetry = None
        validator.mempool.telemetry = None


def _pipeline_run(mode: str, payloads: list[dict]) -> None:
    cluster = SmartchainCluster(
        ClusterConfig(
            seed=31,
            telemetry_enabled=(mode == "enabled"),
            trace_sample_rate=DEFAULT_SAMPLE_RATE,
        )
    )
    if mode == "baseline":
        _strip_telemetry(cluster)
    for payload in payloads:
        cluster.submit_payload(payload)
    cluster.run()
    committed = sum(
        1 for record in cluster.records.values() if record.committed_at is not None
    )
    assert committed == len(payloads), (mode, committed)


def _measure_pipeline() -> dict:
    payloads = _build_payloads()
    times = {mode: float("inf") for mode in MODES}
    for _ in range(PIPELINE_TRIALS):
        for mode in MODES:
            # Pin a fresh process-global signature cache per run so no
            # mode inherits the previous mode's verdicts.
            previous = set_shared_cache(SignatureCache())
            try:
                times[mode] = min(
                    times[mode], timed(lambda: _pipeline_run(mode, payloads))
                )
            finally:
                set_shared_cache(previous)
    report = {
        "transactions": N_PIPELINE_TXS,
        "sample_rate": DEFAULT_SAMPLE_RATE,
    }
    report.update({f"{mode}_ms": round(times[mode] * 1000, 2) for mode in MODES})
    report.update(_overheads(times))
    return report


def test_observability_overhead():
    report = {
        "mempool": _measure_component("mempool", _mempool_cycle, N_MEMPOOL_TXS),
        "commitlog": _measure_component("commitlog", _commitlog_cycle, N_WAL_RECORDS),
        "commit_pipeline": _measure_pipeline(),
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    lines = ["observability overhead benchmark"]
    for section, numbers in report.items():
        lines.append(
            f"  {section}: " + ", ".join(f"{k}={v}" for k, v in numbers.items())
        )
    print("\n".join(lines))

    # ISSUE-7 acceptance gates, on the end-to-end hot path: default
    # sampling costs <= 5%, the off-switch <= 1%.  (Min-of-N interleaved
    # trials; negative deltas mean the difference is below noise.)
    pipeline = report["commit_pipeline"]
    assert pipeline["enabled_overhead_pct"] <= 5.0, pipeline
    assert pipeline["disabled_overhead_pct"] <= 1.0, pipeline


if __name__ == "__main__":
    test_observability_overhead()
