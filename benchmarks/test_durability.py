"""Durability microbenchmark: group commit, recovery scaling, snapshots.

Three measurements of the persistence stack:

* **group commit vs naive flush** — the same record stream written
  through a real-file backend (real ``fsync``) two ways: one sync per
  record (the naive write-through) vs one sync per 32-record batch (the
  :class:`~repro.durability.commitlog.GroupCommitLog` discipline at the
  event-loop-tick cadence).  The gate is the ISSUE-5 floor: group
  commit >= 3x naive throughput.  Sync counts are reported alongside —
  the amortisation is structural (N/32 syncs), not a timing accident.
* **recovery time vs log length** — scan-to-torn-tail replay of
  journal-only logs of growing length on a :class:`SimDisk`; shows the
  linear replay cost snapshots exist to bound.
* **snapshot-amortised replay** — the same 8 000-record history
  recovered with and without checkpoints every 1 000 records.  The
  replayed-record ratio is deterministic (>= 4x fewer with snapshots);
  wall speedup is reported alongside.

Results go to ``BENCH_durability.json`` at the repo root; CI uploads
the artifact and enforces the gates.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time

from repro.durability.node import DurabilityConfig, NodeDurability
from repro.durability.recovery import collections_state, diff_databases, recover
from repro.durability.wal import FileBackend, SegmentedWal
from repro.sim.events import EventLoop
from repro.storage.database import Database

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_durability.json")

N_RECORDS = 600
GROUP_BATCH = 32
RECOVERY_SWEEP = (1_000, 4_000, 16_000)
SNAPSHOT_HISTORY = 8_000
SNAPSHOT_INTERVAL = 1_000


def _record(index: int) -> dict:
    return {
        "k": "db",
        "op": "insert",
        "c": "transactions",
        "d": {"id": f"tx-{index:06d}", "operation": "TRANSFER", "amount": index},
    }


def measure_group_commit() -> dict:
    workdir = tempfile.mkdtemp(prefix="repro-durability-bench-")
    try:
        naive_dir = os.path.join(workdir, "naive")
        group_dir = os.path.join(workdir, "group")

        naive_backend = FileBackend(naive_dir)
        naive_wal = SegmentedWal(naive_backend, segment_max_bytes=1 << 22)
        start = time.perf_counter()
        for index in range(N_RECORDS):
            naive_wal.append(_record(index))
            naive_wal.sync()  # one fsync per record: the naive discipline
        naive_s = time.perf_counter() - start
        naive_syncs = naive_backend.stats["syncs"]
        naive_backend.close()

        group_backend = FileBackend(group_dir)
        group_wal = SegmentedWal(group_backend, segment_max_bytes=1 << 22)
        start = time.perf_counter()
        for index in range(N_RECORDS):
            group_wal.append(_record(index))
            if (index + 1) % GROUP_BATCH == 0:
                group_wal.sync()  # one fsync per tick's batch
        group_wal.sync()
        group_s = time.perf_counter() - start
        group_syncs = group_backend.stats["syncs"]
        group_backend.close()

        return {
            "records": N_RECORDS,
            "batch": GROUP_BATCH,
            "naive_ms": round(naive_s * 1000, 3),
            "group_ms": round(group_s * 1000, 3),
            "naive_syncs": naive_syncs,
            "group_syncs": group_syncs,
            "sync_amortisation": round(naive_syncs / max(group_syncs, 1), 2),
            "speedup": round(naive_s / group_s, 2),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _build_history(n_records: int, snapshot_interval: int | None) -> NodeDurability:
    """A journaled insert history on a SimDisk, optionally checkpointed."""
    loop = EventLoop()
    config = DurabilityConfig(
        snapshot_interval=snapshot_interval or (n_records * 2),
        segment_max_bytes=1 << 16,
    )
    durability = NodeDurability("bench", loop, config)
    database = Database("bench", wal=durability.log)
    if snapshot_interval is not None:
        durability.state_provider = lambda: {
            "collections": collections_state(database)
        }
    transactions = database.create_collection("transactions")
    for index in range(n_records):
        transactions.insert_one(
            {"id": f"tx-{index:06d}", "operation": "TRANSFER", "amount": index}
        )
        if (index + 1) % GROUP_BATCH == 0:
            loop.run_until_idle()  # one tick per batch: the cluster cadence
    loop.run_until_idle()
    return durability


def measure_recovery_scaling() -> dict:
    sweep = {}
    for n_records in RECOVERY_SWEEP:
        durability = _build_history(n_records, snapshot_interval=None)
        start = time.perf_counter()
        recovered = recover(durability, lambda: Database("rebuilt"), repair=False)
        elapsed = time.perf_counter() - start
        assert recovered.replayed == n_records
        sweep[str(n_records)] = {
            "replayed": recovered.replayed,
            "recover_ms": round(elapsed * 1000, 3),
        }
    return sweep


def measure_snapshot_amortisation() -> dict:
    full = _build_history(SNAPSHOT_HISTORY, snapshot_interval=None)
    start = time.perf_counter()
    full_recovered = recover(full, lambda: Database("rebuilt"), repair=False)
    full_s = time.perf_counter() - start

    snapshotted = _build_history(SNAPSHOT_HISTORY, snapshot_interval=SNAPSHOT_INTERVAL)
    start = time.perf_counter()
    snap_recovered = recover(snapshotted, lambda: Database("rebuilt"), repair=False)
    snap_s = time.perf_counter() - start

    # Same end state either way — the checkpoint changes cost, not truth.
    assert diff_databases(full_recovered.database, snap_recovered.database) == []
    return {
        "history_records": SNAPSHOT_HISTORY,
        "snapshot_interval": SNAPSHOT_INTERVAL,
        "full_replayed": full_recovered.replayed,
        "snapshot_replayed": snap_recovered.replayed,
        "replay_ratio": round(
            full_recovered.replayed / max(snap_recovered.replayed, 1), 2
        ),
        "full_recover_ms": round(full_s * 1000, 3),
        "snapshot_recover_ms": round(snap_s * 1000, 3),
        "wall_speedup": round(full_s / snap_s, 2),
        "retired_segments": snapshotted.wal.stats["retired_segments"],
    }


def test_durability():
    report = {
        "group_commit": measure_group_commit(),
        "recovery_scaling": measure_recovery_scaling(),
        "snapshot_amortisation": measure_snapshot_amortisation(),
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    lines = ["durability microbenchmark"]
    for section, numbers in report.items():
        lines.append(f"  {section}: {json.dumps(numbers)}")
    print("\n".join(lines))

    # Acceptance gates (ISSUE 5): group commit >= 3x a per-record flush,
    # with the structural sync amortisation to match; snapshots cut the
    # replayed suffix by >= 4x on an evenly checkpointed history.
    group = report["group_commit"]
    assert group["speedup"] >= 3.0, group
    assert group["sync_amortisation"] >= 8.0, group
    snap = report["snapshot_amortisation"]
    assert snap["replay_ratio"] >= 4.0, snap
    assert snap["snapshot_replayed"] <= SNAPSHOT_INTERVAL + GROUP_BATCH, snap
    # Replay cost grows with log length (the curve snapshots flatten) —
    # compare the sweep's endpoints with generous slack to stay unflaky.
    sweep = report["recovery_scaling"]
    assert sweep[str(RECOVERY_SWEEP[-1])]["recover_ms"] >= sweep[
        str(RECOVERY_SWEEP[0])
    ]["recover_ms"], sweep


if __name__ == "__main__":
    test_durability()
