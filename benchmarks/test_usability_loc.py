"""Usability table (Section 5.2.2) — user lines of code per marketplace.

Paper: "SmartchainDB didn't require any user-implemented code, whereas
the equivalent smart contract required 175 lines of code to establish
one marketplace."  We count the reconstruction's Solidity source and the
declarative side's user code (zero — the types ship with the platform).
"""

from __future__ import annotations

from _harness import write_report

from repro.ethereum.solidity_source import (
    REVERSE_AUCTION_SOLIDITY,
    SMARTCHAINDB_USER_LOC,
    count_code_lines,
)
from repro.metrics.report import format_table


def test_usability_lines_of_code(benchmark):
    loc = benchmark.pedantic(
        lambda: count_code_lines(REVERSE_AUCTION_SOLIDITY), rounds=1, iterations=1
    )
    table = format_table(
        ["approach", "user LoC"],
        [
            ["SmartchainDB (declarative types)", SMARTCHAINDB_USER_LOC],
            ["Ethereum smart contract (Solidity)", loc],
            ["paper-reported Solidity LoC", 175],
        ],
        title="Usability — lines of code to establish one marketplace",
    )
    print("\n" + table)
    write_report("usability_loc", table)
    benchmark.extra_info["solidity_loc"] = loc

    assert SMARTCHAINDB_USER_LOC == 0
    # Our reconstruction fleshes out the paper's Fig. 1 skeleton; it must
    # land within a few lines of the reported 175.
    assert abs(loc - 175) <= 9
