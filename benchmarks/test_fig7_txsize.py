"""Figs. 7a-7c — the effect of transaction size (Experiment 1).

Sweeps the payload target over SIZE_SWEEP on fixed 4-node clusters and
regenerates all three panels:

* 7a — latency of REQUEST and CREATE (both systems);
* 7b — latency of BID and ACCEPT_BID (both systems);
* 7c — throughput.

Shape criteria (paper Section 5.2.1): SCDB flat in size on every panel;
ETH-SC CREATE grows several-fold, REQUEST about two-fold; ETH-SC BID is
the slowest-growing-to-worst type with a large ratio over SCDB (635x at
the paper's 110k-transaction scale — see the O(n)-scan extrapolation
printed below and recorded in EXPERIMENTS.md); ETH-SC throughput decays
while SCDB stays level.
"""

from __future__ import annotations

import pytest
from _harness import SIZE_SWEEP, fig7_spec, write_report

from repro.metrics.report import format_table, ratio
from repro.workloads import run_eth_scenario, run_scdb_scenario

OPERATIONS = ("CREATE", "REQUEST", "BID", "ACCEPT_BID")


@pytest.fixture(scope="module")
def sweep():
    results = []
    for payload in SIZE_SWEEP:
        spec = fig7_spec(payload)
        scdb = run_scdb_scenario(spec)
        eth = run_eth_scenario(spec)
        results.append((payload, scdb.metrics, eth.metrics))
    return results


def _series_table(title, sweep, operations):
    rows = []
    for payload, scdb, eth in sweep:
        for operation in operations:
            rows.append(
                [
                    payload,
                    operation,
                    scdb.latency(operation),
                    eth.latency(operation),
                    ratio(eth.latency(operation), scdb.latency(operation)),
                ]
            )
    return format_table(
        ["size_B", "type", "SCDB_lat_s", "ETH-SC_lat_s", "ratio"], rows, title=title
    )


def test_fig7a_latency_request_create(benchmark, sweep):
    table = benchmark.pedantic(
        lambda: _series_table("Fig. 7a — latency of REQUEST and CREATE", sweep, ("REQUEST", "CREATE")),
        rounds=1, iterations=1,
    )
    print("\n" + table)
    write_report("fig7a_latency_request_create", table)

    first, last = sweep[0], sweep[-1]
    # SCDB is flat in size (within 25%).
    for operation in ("REQUEST", "CREATE"):
        assert last[1].latency(operation) < first[1].latency(operation) * 1.25
    # ETH-SC grows: CREATE several-fold, REQUEST at least ~2x.
    assert last[2].latency("CREATE") > first[2].latency("CREATE") * 2.5
    assert last[2].latency("REQUEST") > first[2].latency("REQUEST") * 1.8
    # ETH-SC sits far above SCDB throughout.
    assert first[2].latency("CREATE") > first[1].latency("CREATE") * 4


def test_fig7b_latency_bid_accept(benchmark, sweep):
    table = benchmark.pedantic(
        lambda: _series_table("Fig. 7b — latency of BID and ACCEPT_BID", sweep, ("BID", "ACCEPT_BID")),
        rounds=1, iterations=1,
    )
    print("\n" + table)

    first, last = sweep[0], sweep[-1]
    # SCDB flat; ETH-SC BID grows with size and dominates SCDB heavily.
    assert last[1].latency("BID") < first[1].latency("BID") * 1.25
    assert last[2].latency("BID") > first[2].latency("BID") * 1.15
    bid_ratio = ratio(last[2].latency("BID"), last[1].latency("BID"))
    assert bid_ratio > 15
    # ACCEPT_BID stable in both systems, ETH-SC > 4x SCDB (paper).
    assert last[2].latency("ACCEPT_BID") > last[1].latency("ACCEPT_BID") * 4
    assert last[2].latency("ACCEPT_BID") < first[2].latency("ACCEPT_BID") * 1.5

    # The paper's 635x arises at 110k-transaction scale, where the
    # contract's O(n) registry scans run over ~50k assets/bids.  Measure
    # our per-entry scan cost and extrapolate to that operating point.
    from repro.ethereum.auction import estimate_gas
    from repro.ethereum.gas import execution_seconds

    small = estimate_gas("create_bid", [1, 1], {"assets": 100, "requests": 10, "bids": 100})
    large = estimate_gas("create_bid", [1, 1], {"assets": 200, "requests": 10, "bids": 200})
    per_entry_gas = (large - small) / 200
    paper_scale_gas = per_entry_gas * (50_000 + 50_000)
    extrapolated_latency = execution_seconds(paper_scale_gas)
    extrapolation = format_table(
        ["quantity", "value"],
        [
            ["per-registry-entry scan gas", per_entry_gas],
            ["extrapolated BID gas at paper scale (100k entries)", paper_scale_gas],
            ["extrapolated BID execution latency (s)", extrapolated_latency],
            ["paper-reported BID latency at 1.74 KB (s)", 66.43],
            ["measured BID ratio at our scale", bid_ratio],
            ["paper-reported ratio at full scale", 635.0],
        ],
        title="Fig. 7b scale extrapolation — O(n) registry scans at 110k txs",
    )
    print("\n" + extrapolation)
    write_report("fig7b_latency_bid_accept", table + "\n\n" + extrapolation)
    # The mechanism extrapolates to the paper's order of magnitude.
    assert 20 <= extrapolated_latency <= 300


def test_fig7c_throughput(benchmark, sweep):
    def build():
        rows = [
            [payload, scdb.throughput_tps, eth.throughput_tps]
            for payload, scdb, eth in sweep
        ]
        return format_table(
            ["size_B", "SCDB_tps", "ETH-SC_tps"], rows, title="Fig. 7c — throughput"
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n" + table)
    write_report("fig7c_throughput", table)

    first, last = sweep[0], sweep[-1]
    # SCDB throughput flat in size.
    assert last[1].throughput_tps > first[1].throughput_tps * 0.85
    # ETH-SC decays with size (paper: 0.72 -> 0.02 tps over their sweep).
    assert last[2].throughput_tps < first[2].throughput_tps * 0.5
    # SCDB wins by a wide margin at every size.
    for _, scdb, eth in sweep:
        assert scdb.throughput_tps > eth.throughput_tps * 20
