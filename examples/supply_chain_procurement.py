"""Multi-stage supply-chain procurement with workflow validation.

Run:  python examples/supply_chain_procurement.py

Models the paper's supply-chain motivation end to end: a manufacturer
procures machined parts through a reverse auction, then moves the won
asset down a logistics chain with plain TRANSFERs.  Every committed
sequence is checked against the declared marketplace workflows
(Definition 5), and the chain is queried like a database throughout.
"""

from repro.core import ClusterConfig, SmartchainCluster
from repro.core.workflow import WorkflowEngine, WorkflowTrace
from repro.crypto import keypair_from_string


def main() -> None:
    cluster = SmartchainCluster(ClusterConfig(n_validators=4))
    driver = cluster.driver
    engine = WorkflowEngine()
    trace = WorkflowTrace()

    # Observe every commit on one node to build workflow traces.
    observer = cluster.any_server()
    observer.commit_hooks.append(trace.observe)

    oem = keypair_from_string("oem-manufacturer")
    machinist = keypair_from_string("precision-machining-co")
    forwarder = keypair_from_string("freight-forwarder")
    warehouse = keypair_from_string("regional-warehouse")

    # Stage 1 — the machinist registers a certified production asset.
    create = driver.prepare_create(
        machinist,
        {
            "capabilities": ["cnc-milling-5axis", "as-9100-certified"],
            "machine": "DMG-MORI-DMU50",
        },
    )
    cluster.submit_and_settle(create)
    print(f"asset minted: {create.tx_id[:12]}...")

    # Stage 2 — the OEM requests quotes for a machined housing.
    request = driver.prepare_request(
        oem,
        ["cnc-milling-5axis", "as-9100-certified"],
        metadata={"part": "sensor-housing", "quantity": 2500},
    )
    cluster.submit_and_settle(request)
    print(f"RFQ posted:   {request.tx_id[:12]}...")

    # Stage 3 — the machinist bids with the asset as the guarantee.
    bid = driver.prepare_bid(
        machinist, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)],
        metadata={"unit_price": 14.2, "lead_time_days": 21},
    )
    cluster.submit_and_settle(bid)
    print(f"bid escrowed: {bid.tx_id[:12]}...")

    # Stage 4 — the OEM accepts; the asset (production commitment)
    # transfers to the OEM natively.
    accept = driver.prepare_accept_bid(oem, request.tx_id, bid)
    cluster.submit_and_settle(accept)
    print(f"bid accepted: {accept.tx_id[:12]}...")

    # Stage 5 — downstream logistics: OEM -> forwarder -> warehouse.
    hop_1 = driver.prepare_transfer(
        oem, [(accept.tx_id, 0, 1)], bid.tx_id, [(forwarder.public_key, 1)],
        metadata={"leg": "factory->port"},
    )
    cluster.submit_and_settle(hop_1)
    hop_2 = driver.prepare_transfer(
        forwarder, [(hop_1.tx_id, 0, 1)], bid.tx_id, [(warehouse.public_key, 1)],
        metadata={"leg": "port->warehouse"},
    )
    cluster.submit_and_settle(hop_2)
    print(f"logistics:    {hop_1.tx_id[:12]}... -> {hop_2.tx_id[:12]}...")

    # The full sequence is a valid registered workflow.
    sequence = [create, request, bid, accept, hop_1]
    spec = engine.classify([transaction.to_dict() for transaction in sequence])
    print(f"\nworkflow classified as: {spec.name!r} (Definition 5 holds)")

    # Provenance query: who held the asset, in order? Pure DB reads.
    server = cluster.any_server()
    history = server.database.collection("transactions").find(
        {"$or": [{"asset.id": bid.tx_id}, {"id": bid.tx_id}]}
    )
    print("\nasset provenance:")
    for payload in history:
        owners = payload["outputs"][0]["public_keys"][0][:12]
        print(f"  {payload['operation']:<11} -> holder {owners}...")

    print(f"\nwarehouse holds the commitment: "
          f"{bool(server.outputs_for(warehouse.public_key))}")


if __name__ == "__main__":
    main()
