"""Non-locking nested transactions surviving a receiver crash.

Run:  python examples/crash_recovery_demo.py

Reproduces Section 4.2.1's crash case (2.b): the node that received the
ACCEPT_BID commits the parent, then crashes before its workers finish
sending the RETURN children.  The durable ``accept_tx_recovery`` log
re-enqueues the pending RETURNs when the node rejoins — eventual commit
(Definition 2) holds despite the failure.
"""

from repro.consensus.tendermint import tendermint_config
from repro.core import ClusterConfig, SmartchainCluster
from repro.crypto import keypair_from_string


def main() -> None:
    cluster = SmartchainCluster(
        ClusterConfig(
            n_validators=4,
            seed=13,
            consensus=tendermint_config(max_block_txs=8, propose_timeout=0.5),
            worker_poll_interval=0.3,  # slow workers so the crash wins
        )
    )
    driver = cluster.driver
    sally = keypair_from_string("sally")
    bidders = [keypair_from_string(f"supplier-{index}") for index in range(3)]

    creates = []
    for keypair in bidders:
        create = driver.prepare_create(keypair, {"capabilities": ["cap"]})
        cluster.submit_payload(create.to_dict())
        creates.append(create)
    cluster.run()
    request = driver.prepare_request(sally, ["cap"])
    cluster.submit_and_settle(request)
    bids = []
    for keypair, create in zip(bidders, creates):
        bid = driver.prepare_bid(keypair, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)])
        cluster.submit_payload(bid.to_dict())
        bids.append(bid)
    cluster.run()
    print(f"auction ready: 3 bids escrowed on request {request.tx_id[:12]}...")

    accept = driver.prepare_accept_bid(sally, request.tx_id, bids[0])
    cluster.submit_payload(accept.to_dict())
    cluster.loop.run(until=cluster.loop.clock.now + 0.28)

    receiver = cluster._accept_receivers.get(accept.tx_id)
    committed = cluster.records[accept.tx_id].committed_at is not None
    print(f"parent ACCEPT_BID committed: {committed} (receiver node {receiver})")

    server = cluster.servers[receiver]
    print(f"RETURN queue on receiver before crash: {len(server.nested.queue)} job(s)")
    print(f"recovery log status: {server.nested.recovery.status(accept.tx_id)['status']}")

    print(f"\n!! crashing receiver node {receiver} before RETURNs drain")
    cluster.failures.crash_now(receiver)
    cluster.run(duration=3.0)

    live = cluster.any_server()
    returns_during_outage = live.database.collection("transactions").count(
        {"operation": "RETURN"}
    )
    print(f"RETURNs committed while receiver is down: {returns_during_outage}")

    print(f"\n>> recovering node {receiver}; recovery log re-enqueues RETURNs")
    cluster.failures.recover_now(receiver)
    cluster.run(duration=60.0)
    cluster.run()

    returns = live.database.collection("transactions").count({"operation": "RETURN"})
    fully = live.nested.recovery.is_fully_committed(accept.tx_id)
    print(f"RETURNs committed after recovery: {returns} (expected 2)")
    print(f"eventual commit (Definition 2) holds: {fully}")
    for index, keypair in enumerate(bidders[1:], start=1):
        holdings = live.outputs_for(keypair.public_key)
        print(f"  losing supplier-{index} got asset back: {bool(holdings)}")


if __name__ == "__main__":
    main()
