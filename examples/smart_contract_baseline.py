"""Side-by-side: the same auction on the Ethereum smart-contract baseline.

Run:  python examples/smart_contract_baseline.py

Deploys the 175-line-equivalent Solidity marketplace on a 4-node Quorum
(IBFT) network, runs one auction, and prints the gas bill alongside the
declarative system's timings for the identical business flow — a small
interactive version of the paper's evaluation.
"""

from repro.core import ClusterConfig, SmartchainCluster
from repro.crypto import keypair_from_string
from repro.ethereum import QuorumChain, QuorumChainConfig, Web3Client


def run_contract_side() -> dict:
    buyer, sup1, sup2 = "0xbuyer", "0xsupplier1", "0xsupplier2"
    chain = QuorumChain(QuorumChainConfig(n_validators=4), accounts=[buyer, sup1, sup2])
    client = Web3Client(chain)

    deploy = client.deploy("ReverseAuctionMarketplace", "market", buyer)
    a1 = client.transact("market", "create_asset", [["3d-print", "iso"], "printer A"], sup1)
    a2 = client.transact("market", "create_asset", [["3d-print", "iso"], "printer B"], sup2)
    rfq = client.transact("market", "create_rfq", [["3d-print"], "500 brackets"], buyer)
    b1 = client.transact("market", "create_bid", [1, 1], sup1, value=1_000)
    b2 = client.transact("market", "create_bid", [1, 2], sup2, value=900)
    acc = client.transact("market", "accept_bid", [1, 2], buyer)

    print("ETH-SC gas bill (and committed latency):")
    for label, record in [
        ("deploy contract", deploy), ("createAsset x1", a1), ("createAsset x2", a2),
        ("createrfq", rfq), ("createbid x1", b1), ("createbid x2", b2),
        ("acceptBid", acc),
    ]:
        print(f"  {label:<16} gas={record.gas_used:>9,}  latency={record.latency:.3f}s")
    print(f"  losing deposit refunded: {client.balance(sup1) == 10**21}")
    total_gas = sum(r.gas_used for r in (deploy, a1, a2, rfq, b1, b2, acc))
    total_latency = sum(r.latency for r in (a1, a2, rfq, b1, b2, acc))
    return {"gas": total_gas, "latency": total_latency}


def run_declarative_side() -> dict:
    cluster = SmartchainCluster(ClusterConfig(n_validators=4))
    driver = cluster.driver
    sally = keypair_from_string("sally")
    sup1 = keypair_from_string("sup1")
    sup2 = keypair_from_string("sup2")

    records = []
    a1 = driver.prepare_create(sup1, {"capabilities": ["3d-print", "iso"]})
    a2 = driver.prepare_create(sup2, {"capabilities": ["3d-print", "iso"]})
    records.append(cluster.submit_and_settle(a1))
    records.append(cluster.submit_and_settle(a2))
    rfq = driver.prepare_request(sally, ["3d-print"])
    records.append(cluster.submit_and_settle(rfq))
    b1 = driver.prepare_bid(sup1, rfq.tx_id, a1.tx_id, [(a1.tx_id, 0, 1)])
    b2 = driver.prepare_bid(sup2, rfq.tx_id, a2.tx_id, [(a2.tx_id, 0, 1)])
    records.append(cluster.submit_and_settle(b1))
    records.append(cluster.submit_and_settle(b2))
    acc = driver.prepare_accept_bid(sally, rfq.tx_id, b2)
    records.append(cluster.submit_and_settle(acc))

    print("\nSCDB latencies for the identical flow (no gas, no contract):")
    for record in records:
        print(f"  {record.operation:<11} latency={record.latency:.3f}s")
    return {"latency": sum(record.latency for record in records)}


def main() -> None:
    eth = run_contract_side()
    scdb = run_declarative_side()
    print("\n== summary ==")
    print(f"ETH-SC : {eth['gas']:,} total gas, {eth['latency']:.2f}s summed latency")
    print(f"SCDB   : 0 gas, {scdb['latency']:.2f}s summed latency "
          f"({eth['latency'] / scdb['latency']:.0f}x faster)")
    print("user code needed — Solidity: ~175 lines; SmartchainDB: 0 lines")


if __name__ == "__main__":
    main()
