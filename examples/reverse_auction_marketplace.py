"""The paper's running example: a procurement reverse auction.

Run:  python examples/reverse_auction_marketplace.py

Sally posts a REQUEST for 3-D printing capacity; three suppliers answer
with asset-backed BIDs held in escrow; Sally ACCEPT_BIDs the winner.
The platform then settles everything natively: the winning asset moves
to Sally, and RETURN children send every losing bid back to its owner
(non-locking nested execution, Section 4.2).
"""

from repro.core import ClusterConfig, SmartchainCluster
from repro.crypto import keypair_from_string


def main() -> None:
    cluster = SmartchainCluster(ClusterConfig(n_validators=4))
    driver = cluster.driver

    sally = keypair_from_string("sally-the-buyer")
    suppliers = {
        name: keypair_from_string(name)
        for name in ("alpha-printing", "beta-fabrication", "gamma-additive")
    }

    # Suppliers register their production assets (digital twins with
    # certified capabilities).
    print("== suppliers mint capability assets ==")
    assets = {}
    for name, keypair in suppliers.items():
        capabilities = ["3d-printing-sls", "iso-9001-certified"]
        if name == "gamma-additive":
            capabilities.append("titanium-machining")
        create = driver.prepare_create(
            keypair, {"capabilities": capabilities, "operator": name}
        )
        cluster.submit_payload(create.to_dict())
        assets[name] = create
        print(f"  {name}: asset {create.tx_id[:12]}... caps={capabilities}")
    cluster.run()

    # Sally posts the RFQ with a bidding deadline.
    request = driver.prepare_request(
        sally,
        ["3d-printing-sls", "iso-9001-certified"],
        metadata={"quantity": 500, "part": "bracket-v2", "deadline": 3600.0},
    )
    cluster.submit_and_settle(request)
    print(f"\n== sally posts REQUEST {request.tx_id[:12]}... ==")

    # Suppliers discover the open request by querying the chain — the
    # metadata query Section 2.1 says smart contracts cannot answer.
    server = cluster.any_server()
    open_requests = server.open_requests(capability="3d-printing-sls")
    print(f"open 3d-printing requests on chain: {len(open_requests)}")

    # Everyone bids; assets are escrowed automatically (CBID.6).
    print("\n== suppliers BID (assets move to escrow) ==")
    bids = {}
    for name, keypair in suppliers.items():
        create = assets[name]
        bid = driver.prepare_bid(
            keypair, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)],
            metadata={"price": 1000 + hash(name) % 500},
        )
        cluster.submit_payload(bid.to_dict())
        bids[name] = bid
        print(f"  {name}: bid {bid.tx_id[:12]}...")
    cluster.run()
    print(f"escrow-locked bids: {len(server.context.locked_bids(request.tx_id))}")

    # Sally accepts beta's bid; the nested transaction settles the rest.
    winner = "beta-fabrication"
    accept = driver.prepare_accept_bid(sally, request.tx_id, bids[winner])
    cluster.submit_payload(accept.to_dict())
    cluster.run()
    print(f"\n== sally ACCEPT_BIDs {winner} ==")

    recovery = server.nested.recovery.status(accept.tx_id)
    print(f"recovery log: status={recovery['status']}, children={len(recovery['children'])}")
    for name, keypair in suppliers.items():
        outputs = server.outputs_for(keypair.public_key)
        state = "asset returned" if outputs else "asset escrowed/transferred"
        print(f"  {name}: {state}")
    won = server.outputs_for(sally.public_key)
    print(f"  sally now holds {len(won)} output(s) (request + winning asset)")

    # A second accept attempt is rejected — the reinitiation attack from
    # Section 4.2 cannot happen.
    second = driver.prepare_accept_bid(
        sally, request.tx_id, bids["alpha-printing"], metadata={"attempt": 2}
    )
    outcome: list[str] = []
    cluster.submit_payload(second.to_dict(), callback=lambda status, _: outcome.append(status))
    cluster.run()
    print(f"\nsecond ACCEPT_BID on the same request -> {outcome[0]}")


if __name__ == "__main__":
    main()
