"""Extension types + on-chain analytics and fraud screening.

Run:  python examples/marketplace_analytics.py

Shows the two future-work pillars the library implements beyond the
paper's core: (1) new transaction types composed declaratively from
condition predicates (INTEREST, PRE_REQUEST), and (2) the queryability
payoff of Section 2.1 — market discovery, provenance and fraud
heuristics as plain database queries.
"""

from repro.analytics import FraudAnalyzer, MarketplaceAnalytics
from repro.core import ClusterConfig, SmartchainCluster
from repro.core.extensions import build_interest, build_pre_request
from repro.crypto import keypair_from_string


def main() -> None:
    cluster = SmartchainCluster(ClusterConfig(n_validators=4, enable_extensions=True))
    driver = cluster.driver
    sally = keypair_from_string("sally")
    suppliers = [keypair_from_string(f"supplier-{index}") for index in range(3)]

    # A draft RFQ goes out first (PRE_REQUEST, a declaratively composed
    # extension type), then the real REQUEST.
    draft = build_pre_request(sally, ["3d-printing-sls"], metadata={"note": "RFC"})
    draft.sign([sally])
    cluster.submit_and_settle(draft)
    print(f"PRE_REQUEST committed: {draft.tx_id[:12]}...")

    request = driver.prepare_request(sally, ["3d-printing-sls"])
    cluster.submit_and_settle(request)

    # Suppliers register INTEREST before committing assets to escrow.
    for keypair in suppliers:
        interest = build_interest(keypair, request.tx_id).sign([keypair])
        cluster.submit_payload(interest.to_dict())
    cluster.run()

    # Two suppliers follow through with asset-backed bids.
    bids = []
    for keypair in suppliers[:2]:
        create = driver.prepare_create(keypair, {"capabilities": ["3d-printing-sls"]})
        cluster.submit_and_settle(create)
        bid = driver.prepare_bid(keypair, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)])
        cluster.submit_and_settle(bid)
        bids.append(bid)
    accept = driver.prepare_accept_bid(sally, request.tx_id, bids[0])
    cluster.submit_and_settle(accept)

    # -- analytics: all of this is plain queries over indexed collections.
    analytics = MarketplaceAnalytics(cluster.any_server())
    summary = analytics.request_summary(request.tx_id)
    print(f"\nrequest {request.tx_id[:12]}...:")
    print(f"  interests registered : {summary.interest_count}")
    print(f"  bids received        : {summary.bid_count}")
    print(f"  settled              : {summary.settled}")
    print(f"  winning bid          : {summary.winning_bid[:12]}...")
    print(f"capability demand      : {analytics.capability_demand()}")
    print(f"settlement rate        : {analytics.settlement_rate():.0%}")
    print(f"operation volume       : {analytics.operation_volume()}")

    # -- fraud screening over the same state.
    findings = FraudAnalyzer(cluster.any_server()).screen()
    print(f"\nfraud screen findings  : {len(findings)} (clean market)")


if __name__ == "__main__":
    main()
