"""Quickstart: mint an asset and transfer it with native declarative types.

Run:  python examples/quickstart.py

Spins up an in-process 4-node SmartchainDB cluster (Tendermint consensus,
MongoDB-style storage), CREATEs an asset for Alice and TRANSFERs it to
Bob — no smart contract anywhere.
"""

from repro.core import ClusterConfig, SmartchainCluster
from repro.crypto import generate_keypair


def main() -> None:
    cluster = SmartchainCluster(ClusterConfig(n_validators=4))
    driver = cluster.driver

    alice = generate_keypair()
    bob = generate_keypair()
    print(f"alice: {alice.public_key[:16]}...")
    print(f"bob:   {bob.public_key[:16]}...")

    # 1. CREATE — mint a divisible asset (100 shares) owned by Alice.
    create = driver.prepare_create(
        alice,
        {"name": "carbon-credit-batch", "region": "EU", "capabilities": ["verified"]},
        amount=100,
    )
    record = cluster.submit_and_settle(create)
    print(f"\nCREATE committed in {record.latency:.3f}s (simulated): {create.tx_id[:16]}...")

    # 2. TRANSFER — send 40 shares to Bob, keep 60.
    transfer = driver.prepare_transfer(
        alice,
        spent=[(create.tx_id, 0, 100)],
        asset_id=create.tx_id,
        recipients=[(bob.public_key, 40), (alice.public_key, 60)],
    )
    record = cluster.submit_and_settle(transfer)
    print(f"TRANSFER committed in {record.latency:.3f}s: {transfer.tx_id[:16]}...")

    # 3. Query the replicated state — wallets, assets, blocks.
    server = cluster.any_server()
    print("\nUnspent outputs:")
    for owner, keypair in (("alice", alice), ("bob", bob)):
        outputs = server.outputs_for(keypair.public_key)
        total = sum(output["amount"] for output in outputs)
        print(f"  {owner}: {total} shares across {len(outputs)} output(s)")

    # 4. Double spends are rejected natively — no user validation code.
    replay = driver.prepare_transfer(
        alice, [(create.tx_id, 0, 100)], create.tx_id, [(bob.public_key, 100)]
    )
    outcome: list[str] = []
    cluster.submit_payload(replay.to_dict(), callback=lambda status, _: outcome.append(status))
    cluster.run()
    print(f"\nReplaying the spent output -> {outcome[0]} (double-spend caught by the platform)")


if __name__ == "__main__":
    main()
