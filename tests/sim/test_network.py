"""Simulated network: delivery, latency, crashes, partitions."""

from repro.sim.events import EventLoop
from repro.sim.network import Network, NetworkConfig
from repro.sim.rng import SeededRng


def make_network(loop=None, **config_kwargs):
    loop = loop or EventLoop()
    network = Network(loop, SeededRng(1), NetworkConfig(**config_kwargs))
    return loop, network


class TestDelivery:
    def test_basic_send(self):
        loop, network = make_network()
        inbox = []
        network.register("a", lambda m: None)
        network.register("b", inbox.append)
        network.send("a", "b", "PING", {"x": 1})
        loop.run_until_idle()
        assert len(inbox) == 1
        assert inbox[0].kind == "PING"
        assert inbox[0].sender == "a"

    def test_delivery_is_delayed(self):
        loop, network = make_network(base_latency=0.01, jitter=0.0)
        times = []
        network.register("a", lambda m: None)
        network.register("b", lambda m: times.append(loop.clock.now))
        network.send("a", "b", "PING", None)
        loop.run_until_idle()
        assert times[0] >= 0.01

    def test_large_payloads_take_longer(self):
        loop, network = make_network(base_latency=0.0, jitter=0.0, bandwidth_bytes_per_sec=1000.0)
        times = {}
        network.register("a", lambda m: None)
        network.register("b", lambda m: times.setdefault(m.kind, loop.clock.now))
        network.send("a", "b", "SMALL", None, size_bytes=10)
        network.send("a", "b", "BIG", None, size_bytes=1000)
        loop.run_until_idle()
        assert times["BIG"] > times["SMALL"]

    def test_broadcast_excludes_sender(self):
        loop, network = make_network()
        inboxes = {name: [] for name in "abc"}
        for name in "abc":
            network.register(name, inboxes[name].append)
        network.broadcast("a", "HELLO", None)
        loop.run_until_idle()
        assert inboxes["a"] == []
        assert len(inboxes["b"]) == 1
        assert len(inboxes["c"]) == 1

    def test_unknown_recipient_dropped(self):
        loop, network = make_network()
        network.register("a", lambda m: None)
        network.send("a", "ghost", "PING", None)
        loop.run_until_idle()
        assert network.stats["dropped"] == 1


class TestFaults:
    def test_crashed_recipient_gets_nothing(self):
        loop, network = make_network()
        inbox = []
        network.register("a", lambda m: None)
        network.register("b", inbox.append)
        network.crash("b")
        network.send("a", "b", "PING", None)
        loop.run_until_idle()
        assert inbox == []

    def test_crashed_sender_messages_dropped(self):
        loop, network = make_network()
        inbox = []
        network.register("a", lambda m: None)
        network.register("b", inbox.append)
        network.crash("a")
        network.send("a", "b", "PING", None)
        loop.run_until_idle()
        assert inbox == []

    def test_crash_mid_flight_drops(self):
        loop, network = make_network(base_latency=1.0, jitter=0.0)
        inbox = []
        network.register("a", lambda m: None)
        network.register("b", inbox.append)
        network.send("a", "b", "PING", None)
        loop.schedule_in(0.5, lambda: network.crash("b"))
        loop.run_until_idle()
        assert inbox == []

    def test_recovery_restores_delivery(self):
        loop, network = make_network()
        inbox = []
        network.register("a", lambda m: None)
        network.register("b", inbox.append)
        network.crash("b")
        network.recover("b")
        network.send("a", "b", "PING", None)
        loop.run_until_idle()
        assert len(inbox) == 1

    def test_partition_blocks_cross_group(self):
        loop, network = make_network()
        inboxes = {name: [] for name in "abcd"}
        for name in "abcd":
            network.register(name, inboxes[name].append)
        network.partition([{"a", "b"}, {"c", "d"}])
        network.send("a", "b", "IN", None)
        network.send("a", "c", "ACROSS", None)
        loop.run_until_idle()
        assert len(inboxes["b"]) == 1
        assert inboxes["c"] == []
        network.heal_partition()
        network.send("a", "c", "ACROSS", None)
        loop.run_until_idle()
        assert len(inboxes["c"]) == 1


class TestDeterminism:
    def test_same_seed_same_delays(self):
        def run(seed):
            loop = EventLoop()
            network = Network(loop, SeededRng(seed))
            times = []
            network.register("a", lambda m: None)
            network.register("b", lambda m: times.append(loop.clock.now))
            for _ in range(5):
                network.send("a", "b", "PING", None)
            loop.run_until_idle()
            return times

        assert run(42) == run(42)
        assert run(42) != run(43)
