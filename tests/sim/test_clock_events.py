"""Simulated clock and discrete-event loop."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.events import EventLoop


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(1.5)
        assert clock.now == 1.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_advance_to_never_rewinds(self):
        clock = SimClock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0
        clock.advance_to(12.0)
        assert clock.now == 12.0


class TestEventLoop:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule_in(2.0, lambda: order.append("late"))
        loop.schedule_in(1.0, lambda: order.append("early"))
        loop.run_until_idle()
        assert order == ["early", "late"]

    def test_ties_break_by_insertion(self):
        loop = EventLoop()
        order = []
        loop.schedule_in(1.0, lambda: order.append("first"))
        loop.schedule_in(1.0, lambda: order.append("second"))
        loop.run_until_idle()
        assert order == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        loop = EventLoop()
        seen = []
        loop.schedule_in(3.5, lambda: seen.append(loop.clock.now))
        loop.run_until_idle()
        assert seen == [3.5]
        assert loop.clock.now == 3.5

    def test_callbacks_can_schedule_more(self):
        loop = EventLoop()
        hits = []

        def recurse(depth):
            hits.append(depth)
            if depth < 3:
                loop.schedule_in(1.0, lambda: recurse(depth + 1))

        loop.schedule_in(0.0, lambda: recurse(0))
        loop.run_until_idle()
        assert hits == [0, 1, 2, 3]

    def test_cancel(self):
        loop = EventLoop()
        hits = []
        handle = loop.schedule_in(1.0, lambda: hits.append(1))
        handle.cancel()
        loop.run_until_idle()
        assert hits == []
        assert handle.cancelled

    def test_run_until_bound(self):
        loop = EventLoop()
        hits = []
        loop.schedule_in(1.0, lambda: hits.append(1))
        loop.schedule_in(5.0, lambda: hits.append(5))
        loop.run(until=2.0)
        assert hits == [1]
        assert loop.clock.now == 2.0
        loop.run_until_idle()
        assert hits == [1, 5]

    def test_max_events_bound(self):
        loop = EventLoop()

        def forever():
            loop.schedule_in(0.1, forever)

        loop.schedule_in(0.0, forever)
        executed = loop.run(max_events=10)
        assert executed == 10

    def test_scheduling_in_past_rejected(self):
        loop = EventLoop()
        loop.clock.advance(5.0)
        with pytest.raises(ValueError):
            loop.schedule_at(1.0, lambda: None)
        with pytest.raises(ValueError):
            loop.schedule_in(-1.0, lambda: None)

    def test_pending_and_processed_counters(self):
        loop = EventLoop()
        loop.schedule_in(1.0, lambda: None)
        loop.schedule_in(2.0, lambda: None)
        assert loop.pending == 2
        loop.run_until_idle()
        assert loop.processed == 2
        assert loop.pending == 0
