"""Failure injection schedules."""

import pytest

from repro.sim.events import EventLoop
from repro.sim.failures import CrashEvent, FailureInjector
from repro.sim.network import Network
from repro.sim.rng import SeededRng


@pytest.fixture()
def harness():
    loop = EventLoop()
    network = Network(loop, SeededRng(5))
    network.register("n0", lambda m: None)
    network.register("n1", lambda m: None)
    injector = FailureInjector(loop, network)
    return loop, network, injector


class TestFailureInjector:
    def test_scheduled_crash_and_recovery(self, harness):
        loop, network, injector = harness
        injector.schedule([CrashEvent("n0", crash_at=1.0, recover_at=2.0)])
        loop.run(until=1.5)
        assert network.is_crashed("n0")
        loop.run(until=2.5)
        assert not network.is_crashed("n0")

    def test_callbacks_invoked(self, harness):
        loop, network, injector = harness
        events = []
        injector.register_callbacks(
            "n0", on_crash=lambda: events.append("crash"), on_recover=lambda: events.append("up")
        )
        injector.schedule([CrashEvent("n0", crash_at=1.0, recover_at=2.0)])
        loop.run_until_idle()
        assert events == ["crash", "up"]

    def test_log_records_timeline(self, harness):
        loop, network, injector = harness
        injector.schedule([CrashEvent("n1", crash_at=0.5, recover_at=1.5)])
        loop.run_until_idle()
        assert injector.log == [(0.5, "crash", "n1"), (1.5, "recover", "n1")]

    def test_crash_without_recovery(self, harness):
        loop, network, injector = harness
        injector.schedule([CrashEvent("n0", crash_at=1.0)])
        loop.run_until_idle()
        assert network.is_crashed("n0")

    def test_recovery_before_crash_rejected(self, harness):
        loop, network, injector = harness
        with pytest.raises(ValueError):
            injector.schedule([CrashEvent("n0", crash_at=2.0, recover_at=1.0)])

    def test_immediate_crash_and_recover(self, harness):
        loop, network, injector = harness
        injector.crash_now("n0")
        assert network.is_crashed("n0")
        injector.recover_now("n0")
        assert not network.is_crashed("n0")


class TestSameTickOrdering:
    """Crash/delivery ties at one simulated instant must be deterministic
    and independent of installation order (the replay tie-break)."""

    def test_crash_scheduled_after_send_still_beats_delivery(self):
        loop = EventLoop()
        network = Network(loop, SeededRng(5))
        delivered = []
        network.register("n0", lambda m: delivered.append(m.kind))
        network.register("n1", lambda m: None)
        network.config.jitter = 0.0
        network.config.base_latency = 1.0
        # The message is scheduled first (earlier heap sequence)...
        network.send("n1", "n0", "PING", None, size_bytes=0)
        arrival = 1.0
        # ...and the crash lands at exactly its arrival tick, afterwards.
        injector = FailureInjector(loop, network)
        injector.schedule([CrashEvent("n0", crash_at=arrival)])
        loop.run_until_idle()
        assert delivered == []  # failure priority wins the tie
        assert network.stats["dropped"] == 1

    def test_recovery_at_delivery_tick_lets_the_message_through(self):
        loop = EventLoop()
        network = Network(loop, SeededRng(5))
        delivered = []
        network.register("n0", lambda m: delivered.append(m.kind))
        network.register("n1", lambda m: None)
        network.config.jitter = 0.0
        network.config.base_latency = 1.0
        network.send("n1", "n0", "PING", None, size_bytes=0)
        injector = FailureInjector(loop, network)
        injector.schedule([CrashEvent("n0", crash_at=0.5, recover_at=1.0)])
        loop.run_until_idle()
        # Recovery (failure priority) applies before the same-tick
        # delivery: the node is back up when the message lands.
        assert delivered == ["PING"]

    def test_installation_order_does_not_change_the_outcome(self):
        outcomes = []
        for install_first in (True, False):
            loop = EventLoop()
            network = Network(loop, SeededRng(5))
            delivered = []
            network.register("n0", lambda m: delivered.append(m.kind))
            network.register("n1", lambda m: None)
            network.config.jitter = 0.0
            network.config.base_latency = 1.0
            injector = FailureInjector(loop, network)
            if install_first:
                injector.schedule([CrashEvent("n0", crash_at=1.0)])
                network.send("n1", "n0", "PING", None, size_bytes=0)
            else:
                network.send("n1", "n0", "PING", None, size_bytes=0)
                injector.schedule([CrashEvent("n0", crash_at=1.0)])
            loop.run_until_idle()
            outcomes.append(list(delivered))
        assert outcomes[0] == outcomes[1] == []
