"""BFT engine: commits, safety, liveness, crashes, pipelining."""

import hashlib

import pytest

from repro.consensus.abci import NullApplication, envelope_for
from repro.consensus.bft import BftConfig, BftEngine
from repro.consensus.ibft import ibft_config
from repro.consensus.tendermint import make_tendermint_cluster, tendermint_config
from repro.sim.events import EventLoop
from repro.sim.failures import FailureInjector
from repro.sim.network import Network
from repro.sim.rng import SeededRng


def build_cluster(n=4, config=None, seed=3):
    loop = EventLoop()
    network = Network(loop, SeededRng(seed))
    apps = {}

    def factory(node_id):
        apps[node_id] = NullApplication()
        return apps[node_id]

    engine = make_tendermint_cluster(loop, network, factory, n_validators=n, config=config)
    injector = FailureInjector(loop, network)
    for node_id in engine.validator_order:
        validator = engine.validator(node_id)
        injector.register_callbacks(node_id, validator.on_crash, validator.on_recover)
    return loop, network, engine, apps, injector


def submit_batch(loop, engine, count, start=0):
    for index in range(start, start + count):
        tx_id = hashlib.sha3_256(f"tx-{index}".encode()).hexdigest()
        envelope = envelope_for({"n": index}, tx_id, 200, now=loop.clock.now)
        node = engine.validator_order[index % len(engine.validator_order)]
        engine.validator(node).submit_transaction(envelope)


class TestHappyPath:
    def test_all_transactions_commit(self):
        loop, network, engine, apps, _ = build_cluster()
        submit_batch(loop, engine, 50)
        loop.run(until=60.0)
        assert len(engine.committed_envelopes()) == 50

    def test_heights_are_sequential(self):
        loop, network, engine, apps, _ = build_cluster()
        submit_batch(loop, engine, 30)
        loop.run(until=60.0)
        heights = [record.block.height for record in engine.commits]
        assert heights == list(range(1, len(heights) + 1))

    def test_no_forks_across_nodes(self):
        loop, network, engine, apps, _ = build_cluster(n=7)
        submit_batch(loop, engine, 40)
        loop.run(until=60.0)
        chains = {nid: [b.block_id for b in v.chain] for nid, v in engine.validators.items()}
        reference = max(chains.values(), key=len)
        for chain in chains.values():
            assert chain == reference[: len(chain)]

    def test_no_duplicate_commits(self):
        loop, network, engine, apps, _ = build_cluster()
        submit_batch(loop, engine, 40)
        loop.run(until=60.0)
        tx_ids = [envelope.tx_id for envelope, _ in engine.committed_envelopes()]
        assert len(tx_ids) == len(set(tx_ids))

    def test_loop_goes_idle_after_commit(self):
        """No runaway timers once all work is decided."""
        loop, network, engine, apps, _ = build_cluster()
        submit_batch(loop, engine, 8)
        executed = loop.run(max_events=500_000)
        assert executed < 500_000  # reached natural idleness
        assert len(engine.committed_envelopes()) == 8

    def test_deterministic_given_seed(self):
        def run(seed):
            loop, network, engine, apps, _ = build_cluster(seed=seed)
            submit_batch(loop, engine, 20)
            loop.run(until=60.0)
            return [record.committed_at for record in engine.commits]

        assert run(11) == run(11)


class TestValidationPath:
    def test_check_tx_rejection_keeps_tx_out(self):
        loop, network, engine, apps, _ = build_cluster()

        class Rejecting(NullApplication):
            def check_tx(self, envelope):
                return envelope.payload.get("ok", True)

        node = engine.validator_order[0]
        engine.validators[node].app = Rejecting()
        good = envelope_for({"ok": True}, "a" * 64, 100)
        bad = envelope_for({"ok": False}, "b" * 64, 100)
        assert engine.validator(node).submit_transaction(good)
        assert not engine.validator(node).submit_transaction(bad)

    def test_deliver_tx_filter_drops_invalid(self):
        loop, network, engine, apps, _ = build_cluster()

        class HalfDeliver(NullApplication):
            def deliver_tx(self, envelope):
                if envelope.payload["n"] % 2 == 0:
                    return super().deliver_tx(envelope)
                return False

        for app in apps.values():
            app.__class__ = HalfDeliver
        submit_batch(loop, engine, 10)
        loop.run(until=30.0)
        for app in apps.values():
            if app.delivered:
                assert all(int(tx[-1], 16) >= 0 for tx in app.delivered)


class TestCrashFaults:
    def test_minority_crash_preserves_liveness(self):
        loop, network, engine, apps, injector = build_cluster(n=4)
        injector.crash_now(engine.validator_order[3])
        submit_batch(loop, engine, 12)
        loop.run(until=120.0)
        assert len(engine.committed_envelopes()) >= 12 - 3  # txs routed to dead node lost

    def test_majority_crash_halts_chain(self):
        """> 1/3 offline: BFT must stop committing (paper case 2)."""
        loop, network, engine, apps, injector = build_cluster(n=4)
        submit_batch(loop, engine, 4)
        loop.run(until=5.0)
        committed_before = len(engine.committed_envelopes())
        injector.crash_now(engine.validator_order[0])
        injector.crash_now(engine.validator_order[1])
        submit_batch(loop, engine, 8, start=100)
        loop.run(until=30.0)
        newly = len(engine.committed_envelopes()) - committed_before
        assert newly == 0

    def test_quorum_recovery_resumes(self):
        """Chain resumes once voting power is back (paper case 2.a)."""
        loop, network, engine, apps, injector = build_cluster(n=4)
        injector.crash_now(engine.validator_order[0])
        injector.crash_now(engine.validator_order[1])
        submit_batch(loop, engine, 6, start=200)
        loop.run(until=10.0)
        assert len(engine.committed_envelopes()) == 0
        injector.recover_now(engine.validator_order[0])
        injector.recover_now(engine.validator_order[1])
        submit_batch(loop, engine, 6, start=300)
        loop.run(until=120.0)
        assert len(engine.committed_envelopes()) >= 6

    def test_recovered_node_catches_up(self):
        loop, network, engine, apps, injector = build_cluster(n=4)
        dead = engine.validator_order[3]
        injector.crash_now(dead)
        submit_batch(loop, engine, 9)
        loop.run(until=60.0)
        committed = len(engine.validator(engine.validator_order[0]).chain)
        assert committed > 0
        injector.recover_now(dead)
        submit_batch(loop, engine, 3, start=400)
        loop.run(until=180.0)
        assert len(engine.validator(dead).chain) >= committed

    def test_online_power_fraction(self):
        loop, network, engine, apps, injector = build_cluster(n=4)
        assert engine.online_power_fraction() == 1.0
        injector.crash_now(engine.validator_order[0])
        assert engine.online_power_fraction() == 0.75


class TestPipelining:
    def _throughput(self, pipelining: bool) -> float:
        config = tendermint_config(max_block_txs=4, pipelining=pipelining)
        loop, network, engine, apps, _ = build_cluster(config=config)
        submit_batch(loop, engine, 40)
        loop.run(until=300.0)
        records = engine.commits
        assert records, "nothing committed"
        span = records[-1].committed_at - records[0].committed_at
        if span <= 0:
            return float("inf")
        return sum(len(r.block.transactions) for r in records) / span

    def test_pipelining_improves_throughput(self):
        """The BigchainDB pipelining ablation: on > off."""
        assert self._throughput(True) > self._throughput(False)


class TestIbftConfig:
    def test_block_gas_limit_enforced(self):
        loop = EventLoop()
        network = Network(loop, SeededRng(9))
        apps = {}

        def factory(node_id):
            apps[node_id] = NullApplication()
            return apps[node_id]

        config = ibft_config(block_gas_limit=100, block_period=0.1)
        engine = BftEngine(loop, network, factory, [f"q{i}" for i in range(4)], config)
        for index in range(6):
            tx_id = hashlib.sha3_256(f"g{index}".encode()).hexdigest()
            envelope = envelope_for({"n": index}, tx_id, 100, weight=60, now=loop.clock.now)
            engine.validator("q0").submit_transaction(envelope)
        loop.run(until=120.0)
        # 60-gas txs against a 100-gas limit: one tx per block.
        for record in engine.commits:
            assert len(record.block.transactions) == 1
        assert len(engine.committed_envelopes()) == 6

    def test_min_block_interval_spacing(self):
        loop = EventLoop()
        network = Network(loop, SeededRng(9))
        config = ibft_config(block_period=1.0)
        engine = BftEngine(
            loop, network, lambda nid: NullApplication(), [f"q{i}" for i in range(4)], config
        )
        for index in range(8):
            tx_id = hashlib.sha3_256(f"s{index}".encode()).hexdigest()
            envelope = envelope_for({"n": index}, tx_id, 100, weight=1, now=loop.clock.now)
            engine.validator(f"q{index % 4}").submit_transaction(envelope)
        loop.run(until=120.0)
        same_proposer_times: dict[str, list[float]] = {}
        for record in engine.commits:
            same_proposer_times.setdefault(record.block.proposer, []).append(record.committed_at)
