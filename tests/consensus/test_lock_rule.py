"""The Tendermint lock rule and value-based block identity.

Found by the chaos harness (seed 606) once lane-parallel validation
tightened the vote races: a round-0 proposal and a round-1 re-proposal of
the same single transaction each gathered a quorum, and one replica
committed the round-0 block while the rest committed the round-1 block —
a height fork.  Three mechanisms close it, each pinned here:

* **value identity** — a block's id hashes height/parent/transactions,
  not round or proposer, so cross-round re-proposals of one value cannot
  fork the id;
* **round discipline** — a validator joins the newest round it sees,
  never prevotes a stale-round proposal, and never precommits (or adopts
  a lock from) a stale polka, except for its own locked block;
* **the lock** — after observing a polka a validator prevotes NIL against
  conflicting proposals at that height, re-proposes the locked value when
  it is the proposer, and keeps the lock across crashes (consensus WAL).
"""

import hashlib

from repro.consensus.abci import NullApplication, envelope_for
from repro.consensus.bft import GENESIS_ID
from repro.consensus.tendermint import make_tendermint_cluster
from repro.consensus.types import NIL, PREVOTE, Block, Vote
from repro.sim.events import EventLoop
from repro.sim.network import Network
from repro.sim.rng import SeededRng


def build_cluster(n=4):
    loop = EventLoop()
    network = Network(loop, SeededRng(17))
    engine = make_tendermint_cluster(
        loop, network, lambda node_id: NullApplication(), n_validators=n
    )
    return loop, engine


def envelope(tag: str):
    tx_id = hashlib.sha3_256(tag.encode()).hexdigest()
    return envelope_for({"tag": tag}, tx_id, 100)


def proposer_for(engine, height, round_number):
    order = engine.validator_order
    return order[(height + round_number) % len(order)]


class TestValueIdentity:
    def test_round_and_proposer_do_not_change_the_id(self):
        txs = [envelope("a"), envelope("b")]
        first = Block.build(3, 0, "n0", txs, "p" * 64)
        re_proposed = Block.build(3, 4, "n2", txs, "p" * 64)
        assert first.block_id == re_proposed.block_id

    def test_content_still_changes_the_id(self):
        txs = [envelope("a")]
        base = Block.build(3, 0, "n0", txs, "p" * 64)
        assert base.block_id != Block.build(4, 0, "n0", txs, "p" * 64).block_id
        assert base.block_id != Block.build(3, 0, "n0", [envelope("b")], "p" * 64).block_id
        assert base.block_id != Block.build(3, 0, "n0", txs, "q" * 64).block_id


class TestRoundDiscipline:
    def test_future_round_proposal_joins_the_round(self):
        loop, engine = build_cluster()
        validator = engine.validator(engine.validator_order[0])
        block = Block.build(1, 2, proposer_for(engine, 1, 2), [envelope("x")], GENESIS_ID)
        validator._handle_proposal(block)
        assert validator.round == 2
        assert (1, 2) in validator._prevoted

    def test_stale_round_proposal_is_not_prevoted(self):
        loop, engine = build_cluster()
        validator = engine.validator(engine.validator_order[0])
        validator.round = 1
        block = Block.build(1, 0, proposer_for(engine, 1, 0), [envelope("x")], GENESIS_ID)
        validator._handle_proposal(block)
        assert (1, 0) not in validator._prevoted
        # The proposal is still stored so a late commit can apply it.
        assert validator._proposals[(1, 0)][block.block_id] is block

    def test_stale_polka_earns_no_precommit_and_no_lock(self):
        loop, engine = build_cluster()
        validator = engine.validator(engine.validator_order[0])
        block = Block.build(1, 0, proposer_for(engine, 1, 0), [envelope("x")], GENESIS_ID)
        validator.round = 1  # this node has moved on before the proposal lands
        validator._handle_proposal(block)
        for voter in engine.validator_order[1:]:
            validator._handle_vote(Vote(PREVOTE, 1, 0, block.block_id, voter), voter)
        loop.run(until=loop.clock.now + 0.01)
        assert validator._locked_block is None
        assert (1, 0) not in validator._precommitted


class TestLockRule:
    def lock_via_polka(self, loop, engine, validator, block):
        validator._handle_proposal(block)
        loop.run(until=loop.clock.now + 0.01)
        peers = [n for n in engine.validator_order if n != validator.node_id][:2]
        for voter in peers:
            validator._handle_vote(
                Vote(PREVOTE, block.height, block.round, block.block_id, voter), voter
            )
        loop.run(until=loop.clock.now + 0.01)

    def test_polka_locks_and_conflicting_proposal_gets_nil(self):
        loop, engine = build_cluster()
        node_id = engine.validator_order[0]
        validator = engine.validator(node_id)
        locked = Block.build(1, 0, proposer_for(engine, 1, 0), [envelope("x")], GENESIS_ID)
        self.lock_via_polka(loop, engine, validator, locked)
        assert validator._locked_block is not None
        assert validator._locked_block.block_id == locked.block_id

        # A different value at a later round: this node must prevote NIL.
        rival = Block.build(1, 1, proposer_for(engine, 1, 1), [envelope("y")], GENESIS_ID)
        nil_votes = []
        original = validator._broadcast

        def spy(kind, payload, size):
            if kind == "VOTE" and payload.phase == PREVOTE and payload.block_id == NIL:
                nil_votes.append(payload)
            original(kind, payload, size)

        validator._broadcast = spy
        validator._handle_proposal(rival)
        loop.run(until=loop.clock.now + 0.01)
        assert nil_votes, "locked validator must prevote NIL against a rival value"

    def test_locked_proposer_reproposes_the_locked_value(self):
        loop, engine = build_cluster()
        height = 1
        # Find the validator that proposes (height, round=1).
        node_id = proposer_for(engine, height, 1)
        validator = engine.validator(node_id)
        locked = Block.build(
            height, 0, proposer_for(engine, height, 0), [envelope("x")], GENESIS_ID
        )
        self.lock_via_polka(loop, engine, validator, locked)
        assert validator._locked_block is not None
        proposals = []
        original = validator._broadcast

        def spy(kind, payload, size):
            if kind == "PROPOSAL":
                proposals.append(payload)
            original(kind, payload, size)

        validator._broadcast = spy
        validator.round = 1
        validator.maybe_propose()
        loop.run(until=loop.clock.now + 0.01)
        assert proposals, "locked proposer must re-propose"
        # Same value id, fresh round: peers locked on it will prevote it.
        assert proposals[-1].block_id == locked.block_id
        assert proposals[-1].round == 1

    def test_lock_survives_crash(self):
        loop, engine = build_cluster()
        node_id = engine.validator_order[0]
        validator = engine.validator(node_id)
        locked = Block.build(1, 0, proposer_for(engine, 1, 0), [envelope("x")], GENESIS_ID)
        self.lock_via_polka(loop, engine, validator, locked)
        assert validator._locked_block is not None
        validator.on_crash()
        assert validator._locked_block is not None, "the lock is consensus WAL state"

    def test_lock_clears_when_the_height_commits(self):
        loop, engine = build_cluster()
        submitted = envelope("commit-me")
        for node_id in engine.validator_order:
            engine.validator(node_id).submit_transaction(submitted, gossip=False)
        loop.run(until=30.0)
        assert len(engine.committed_envelopes()) == 1
        for node_id in engine.validator_order:
            assert engine.validator(node_id)._locked_block is None


class TestNoForkUnderRoundRace:
    def test_competing_rounds_for_the_same_value_converge(self):
        """The seed-606 shape: the same transaction proposed at round 0
        and round 1 must commit as one block id everywhere."""
        loop, engine = build_cluster()
        shared = [envelope("contested")]
        r0 = Block.build(1, 0, proposer_for(engine, 1, 0), shared, GENESIS_ID)
        r1 = Block.build(1, 1, proposer_for(engine, 1, 1), shared, GENESIS_ID)
        assert r0.block_id == r1.block_id
        # Half the cluster sees round 0 first, half sees round 1 first.
        order = engine.validator_order
        for node_id in order[:2]:
            engine.validator(node_id)._handle_proposal(r0)
            engine.validator(node_id)._handle_proposal(r1)
        for node_id in order[2:]:
            engine.validator(node_id)._handle_proposal(r1)
            engine.validator(node_id)._handle_proposal(r0)
        loop.run(until=30.0)
        ids = {
            node_id: [block.block_id for block in engine.validator(node_id).chain]
            for node_id in order
            if engine.validator(node_id).chain
        }
        assert ids, "nothing committed"
        assert len({tuple(chain) for chain in ids.values()}) == 1, ids
