"""Mempool dedup under adversarial double-submission (ISSUE 6).

The ``_seen`` window is a bounded FIFO, so a patient adversary *can*
replay a transaction after its id falls out — the defense in depth is
layered: within the window the pool itself rejects the replay; past the
window the consensus layer's committed-id set stops re-admission; and at
the facade, resubmitting an in-flight or settled id returns the original
record instead of opening a second lifecycle.  Each layer is pinned here
against the exact replay patterns the chaos workload's adversarial
clients generate.
"""

import hashlib

from repro.consensus.abci import NullApplication, envelope_for
from repro.consensus.mempool import Mempool
from repro.consensus.tendermint import make_tendermint_cluster
from repro.crypto.keys import keypair_from_string
from repro.sharding.cluster import ShardedCluster, ShardedClusterConfig
from repro.sim.events import EventLoop
from repro.sim.network import Network
from repro.sim.rng import SeededRng


def envelope(tag: str):
    tx_id = hashlib.sha3_256(tag.encode()).hexdigest()
    return envelope_for({"tag": tag}, tx_id, 100)


def build_cluster(n=4):
    loop = EventLoop()
    network = Network(loop, SeededRng(31))
    engine = make_tendermint_cluster(
        loop, network, lambda node_id: NullApplication(), n_validators=n
    )
    return loop, engine


class TestSeenWindowUnderReplayFlood:
    def test_window_stays_bounded_under_sustained_reaping(self):
        pool = Mempool(capacity=1000, seen_capacity=8)
        for index in range(64):
            pool.add(envelope(f"flood-{index}"))
            pool.reap(max_txs=1)
            assert pool.seen_size() <= 8
        assert pool.seen_size() == 8

    def test_replay_within_the_window_is_rejected(self):
        pool = Mempool(capacity=16, seen_capacity=8)
        item = envelope("replayed")
        assert pool.add(item)
        pool.reap()
        duplicates_before = pool.stats["duplicates"]
        for _ in range(5):
            assert pool.add(item) is False
        assert pool.stats["duplicates"] == duplicates_before + 5
        assert item.tx_id not in pool

    def test_pooled_id_is_its_own_dedup(self):
        pool = Mempool(capacity=16, seen_capacity=8)
        item = envelope("pooled")
        assert pool.add(item)
        assert pool.add(item) is False
        assert len(pool) == 1

    def test_replay_after_window_eviction_reenters_the_pool(self):
        """The window alone is *not* the whole defense: evict an id and
        the pool will take it again — which is exactly why the consensus
        layer keeps its committed-id set (next test)."""
        pool = Mempool(capacity=64, seen_capacity=4)
        target = envelope("evict-me")
        pool.add(target)
        pool.reap()
        for index in range(4):  # push the target out of the window
            pool.add(envelope(f"filler-{index}"))
        pool.reap()
        assert pool.add(target) is True


class TestCommittedIdBackstop:
    def test_replay_past_the_evicted_window_is_still_refused(self):
        """An adversary that waits out the dedup window hits the
        committed-id filter in ``submit_transaction`` instead."""
        loop, engine = build_cluster()
        item = envelope("commit-once")
        for node_id in engine.validator_order:
            engine.validator(node_id).submit_transaction(item, gossip=False)
        loop.run(until=30.0)
        assert len(engine.committed_envelopes()) == 1
        validator = engine.validator(engine.validator_order[0])
        validator.mempool._seen.clear()  # the window eviction, forced
        assert validator.submit_transaction(item) is False
        assert item.tx_id not in validator.mempool

    def test_gossiped_replay_is_equally_refused(self):
        loop, engine = build_cluster()
        item = envelope("gossip-once")
        for node_id in engine.validator_order:
            engine.validator(node_id).submit_transaction(item, gossip=False)
        loop.run(until=30.0)
        committed = len(engine.committed_envelopes())
        assert committed == 1
        # Replay through the gossip entry point on every node at once.
        for node_id in engine.validator_order:
            validator = engine.validator(node_id)
            validator.mempool._seen.clear()
            network = engine.network
            network.send(engine.validator_order[0], node_id, "TX", item, 100)
        loop.run(until=60.0)
        assert len(engine.committed_envelopes()) == committed
        for node_id in engine.validator_order:
            assert item.tx_id not in engine.validator(node_id).mempool


class TestFacadeResubmission:
    def test_shard_routed_resubmit_commits_exactly_once(self):
        """Double-submitting through the sharded facade — same payload,
        twice, plus a direct injection into the home shard's validator —
        must produce exactly one applied copy on every replica."""
        cluster = ShardedCluster(ShardedClusterConfig(n_shards=2, seed=9))
        owner = keypair_from_string("adversarial-owner")
        payload = cluster.driver.prepare_create(
            owner, {"capabilities": ["dup"]}
        ).to_dict()
        first = cluster.submit_payload(payload)
        second = cluster.submit_payload(payload)  # in-flight resubmit
        assert first.tx_id == second.tx_id
        cluster.run()
        record = cluster.record_for(first.tx_id)
        assert record is not None and record.committed_at is not None
        third = cluster.submit_payload(payload)  # post-commit resubmit
        assert third.tx_id == first.tx_id
        home = cluster.router.home_of_tx(first.tx_id)
        shard = cluster.shards[home]
        replay = envelope_for(payload, payload["id"], 100)
        for node_id in shard.engine.validator_order:
            shard.engine.validator(node_id).submit_transaction(replay)
        cluster.run()
        for node_id in shard.engine.validator_order:
            appearances = sum(
                block["transaction_ids"].count(first.tx_id)
                for block in shard.servers[node_id]
                .database.collection("blocks")
                .find({}, copy=False)
            )
            assert appearances == 1, f"{node_id} applied the replay"
