"""Mempool admission, dedup, reaping."""

import pytest

from repro.common.errors import MempoolFullError
from repro.consensus.mempool import Mempool
from repro.consensus.types import TxEnvelope


def env(tx_id: str, weight: int = 1, size: int = 100) -> TxEnvelope:
    return TxEnvelope(tx_id=tx_id, payload={}, size_bytes=size, weight=weight)


class TestAdmission:
    def test_add_and_contains(self):
        pool = Mempool()
        assert pool.add(env("a"))
        assert "a" in pool
        assert len(pool) == 1

    def test_duplicate_rejected(self):
        pool = Mempool()
        pool.add(env("a"))
        assert not pool.add(env("a"))
        assert len(pool) == 1

    def test_reaped_tx_cannot_reenter(self):
        pool = Mempool()
        pool.add(env("a"))
        pool.reap()
        assert not pool.add(env("a"))

    def test_capacity(self):
        pool = Mempool(capacity=2)
        pool.add(env("a"))
        pool.add(env("b"))
        with pytest.raises(MempoolFullError):
            pool.add(env("c"))


class TestReaping:
    def test_fifo_order(self):
        pool = Mempool()
        for name in "abc":
            pool.add(env(name))
        assert [e.tx_id for e in pool.reap()] == ["a", "b", "c"]

    def test_max_txs(self):
        pool = Mempool()
        for name in "abcd":
            pool.add(env(name))
        assert len(pool.reap(max_txs=2)) == 2
        assert len(pool) == 2

    def test_max_weight_respected(self):
        pool = Mempool()
        pool.add(env("a", weight=5))
        pool.add(env("b", weight=5))
        pool.add(env("c", weight=5))
        batch = pool.reap(max_weight=10)
        assert [e.tx_id for e in batch] == ["a", "b"]

    def test_oversized_tx_skipped_not_blocking(self):
        """A tx heavier than the block gas limit must not wedge the queue."""
        pool = Mempool()
        pool.add(env("huge", weight=100))
        pool.add(env("small", weight=1))
        batch = pool.reap(max_weight=10)
        assert [e.tx_id for e in batch] == ["small"]
        assert "huge" in pool

    def test_remove_marks_seen(self):
        pool = Mempool()
        pool.add(env("a"))
        pool.remove(["a"])
        assert len(pool) == 0
        assert not pool.add(env("a"))  # committed elsewhere: stays out


class TestSeenWindow:
    """The reaped-id dedup memory is bounded (regression: it grew forever)."""

    def test_seen_memory_is_bounded(self):
        pool = Mempool(capacity=1000, seen_capacity=100)
        for index in range(500):
            pool.add(env(f"tx-{index}"))
            pool.reap()
        assert pool.seen_size() == 100

    def test_recent_committed_ids_stay_excluded(self):
        pool = Mempool(capacity=1000, seen_capacity=100)
        for index in range(500):
            pool.add(env(f"tx-{index}"))
            pool.reap()
        # Everything inside the window still cannot re-enter...
        for index in range(400, 500):
            assert not pool.add(env(f"tx-{index}"))
        # ...while ids evicted from the window may (consensus keeps its
        # own committed-id set to stop them further up the stack).
        assert pool.add(env("tx-0"))

    def test_remove_feeds_the_window(self):
        pool = Mempool(seen_capacity=10)
        pool.add(env("a"))
        pool.remove(["a"])
        assert pool.seen_size() == 1
        assert not pool.add(env("a"))

    def test_pending_ids_do_not_consume_window_space(self):
        pool = Mempool(seen_capacity=5)
        for name in "abcdefgh":
            pool.add(env(name))
        assert pool.seen_size() == 0
        assert len(pool) == 8

    def test_default_window_scales_with_capacity(self):
        assert Mempool(capacity=50).seen_capacity == 200

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            Mempool(seen_capacity=0)


class TestReapMechanics:
    """Regressions for the popitem-based reap (profile-guided micro-fix)."""

    def test_weight_break_leaves_next_tx_at_the_head(self):
        """A tx that merely doesn't fit this block must stay first in line."""
        pool = Mempool()
        pool.add(env("a", weight=6))
        pool.add(env("b", weight=6))
        pool.add(env("c", weight=6))
        assert [e.tx_id for e in pool.reap(max_weight=10)] == ["a"]
        # "b" was popped to be examined but must be back at the head.
        assert [e.tx_id for e in pool.reap(max_weight=10)] == ["b"]
        assert [e.tx_id for e in pool.reap(max_weight=10)] == ["c"]

    def test_oversized_rotation_is_preserved(self):
        """Skipped-oversized envelopes rotate to the back (seed behaviour),
        so repeated reaps don't rescan them at the head."""
        pool = Mempool()
        pool.add(env("huge", weight=100))
        pool.add(env("s1", weight=1))
        pool.add(env("s2", weight=1))
        assert [e.tx_id for e in pool.reap(max_txs=1, max_weight=10)] == ["s1"]
        assert pool.pending_ids() == ["s2", "huge"]

    def test_reap_counts_and_window_upkeep(self):
        pool = Mempool(seen_capacity=4)
        for index in range(8):
            pool.add(env(f"t{index}"))
        batch = pool.reap(max_txs=8)
        assert len(batch) == 8
        assert pool.stats["reaped"] == 8
        # Batched window trim: bounded, retaining the newest ids.
        assert pool.seen_size() == 4
        assert not pool.add(env("t7"))

    def test_remove_batch_trims_window_once(self):
        pool = Mempool(seen_capacity=3)
        for name in "abcde":
            pool.add(env(name))
        pool.remove(list("abcde"))
        assert len(pool) == 0
        assert pool.seen_size() == 3
        for name in "cde":
            assert not pool.add(env(name))


class TestCrashSemantics:
    def test_flush_volatile_loses_pending(self):
        pool = Mempool()
        pool.add(env("pending"))
        pool.flush_volatile()
        assert len(pool) == 0
        # A re-gossiped pending tx may be re-admitted after the crash.
        assert pool.add(env("pending"))

    def test_flush_keeps_reaped_dedup(self):
        pool = Mempool()
        pool.add(env("done"))
        pool.reap()
        pool.flush_volatile()
        assert not pool.add(env("done"))
