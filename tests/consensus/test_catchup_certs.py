"""Catch-up trust: quorum commit certificates on the sync path.

ROADMAP item 5's open edge: a recovering node used to adopt whatever
chain suffix its catch-up peer served (catch-up poisoning).  Blocks now
travel with commit certificates — the quorum's precommit signatures over
``precommit|height|round|block_id`` — and a forged block fails
verification no matter how consistent the forged suffix looks.
"""

import pytest

from repro.consensus.byzantine import make_behavior
from repro.consensus.types import precommit_message
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import keypair_from_string
from repro.durability.node import DurabilityConfig


def durable_cluster(seed=7):
    return SmartchainCluster(
        ClusterConfig(
            n_validators=4,
            seed=seed,
            durability=DurabilityConfig(snapshot_interval=60),
        )
    )


def commit_creates(cluster, count, tag="x"):
    driver = cluster.driver
    alice = keypair_from_string("alice")
    for rank in range(count):
        create = driver.prepare_create(
            alice, {"capabilities": [tag], "rank": rank}
        )
        cluster.submit_payload(create.to_dict())
    cluster.run()


def lag_and_catchup(cluster, peer_kind=None, disable_verify=False):
    """Crash node 0, commit traffic past it, recover it and direct its
    catch-up at node 1 (optionally byzantine)."""
    nodes = cluster.engine.validator_order
    lagger, peer = nodes[0], nodes[1]
    v_lag = cluster.engine.validator(lagger)
    if peer_kind is not None:
        cluster.engine.validator(peer).byzantine = make_behavior(peer_kind)
    if disable_verify:
        v_lag._verify_commit_cert = lambda block, cert: True
    cluster.failures.crash_now(lagger)
    commit_creates(cluster, 6, tag="while-down")
    cluster.failures.recover_now(lagger)
    v_lag._catchup_requested_at = float("-inf")
    v_lag._request_catchup(peer)
    cluster.run()
    reference = cluster.engine.validator(nodes[2])
    return v_lag, reference


class TestCommitCertificates:
    def test_every_committed_height_carries_a_quorum_cert(self):
        cluster = durable_cluster()
        commit_creates(cluster, 8)
        quorum = (2 * 4) // 3 + 1
        for node_id in cluster.engine.validator_order:
            validator = cluster.engine.validator(node_id)
            assert len(validator.chain) > 1
            for block in validator.chain:
                cert = validator.commit_certs.get(block.height)
                assert cert is not None
                assert cert["id"] == block.block_id
                assert len(cert["sigs"]) >= quorum
                assert validator._verify_commit_cert(block, cert)

    def test_cert_binds_the_block_id(self):
        cluster = durable_cluster()
        commit_creates(cluster, 4)
        validator = cluster.engine.validator(cluster.engine.validator_order[0])
        block = validator.chain[-1]
        cert = validator.commit_certs[block.height]
        assert not validator._verify_commit_cert(block, {**cert, "id": "f" * 64})
        assert not validator._verify_commit_cert(block, None)
        assert not validator._verify_commit_cert(block, {**cert, "sigs": {}})
        # A signature moved to another validator's name must not count.
        voters = list(cert["sigs"])
        swapped = dict(cert["sigs"])
        swapped[voters[0]], swapped[voters[1]] = swapped[voters[1]], swapped[voters[0]]
        assert not validator._verify_commit_cert(block, {**cert, "sigs": swapped})

    def test_precommit_message_binds_height_round_and_id(self):
        assert precommit_message(3, 1, "abc") == b"precommit|3|1|abc"
        assert precommit_message(3, 2, "abc") != precommit_message(3, 1, "abc")

    def test_certs_survive_restart_from_disk(self):
        cluster = durable_cluster()
        commit_creates(cluster, 8)
        node = cluster.engine.validator_order[0]
        before = dict(cluster.engine.validator(node).commit_certs)
        assert before
        cluster.restart_node_from_disk(node)
        validator = cluster.engine.validator(node)
        assert validator.commit_certs == before
        # And the restarted node can serve verifiable catch-up answers.
        for block in validator.chain:
            assert validator._verify_commit_cert(
                block, validator.commit_certs[block.height]
            )


class TestCatchupPoisoning:
    def test_honest_catchup_succeeds_without_evidence(self):
        cluster = durable_cluster()
        commit_creates(cluster, 4)
        lagger, reference = lag_and_catchup(cluster)
        assert [(b.height, b.block_id) for b in lagger.chain] == [
            (b.height, b.block_id) for b in reference.chain
        ]
        assert [e for e in lagger.evidence if e["kind"] == "forged_catchup"] == []

    def test_forged_suffix_is_rejected_and_recovery_routes_around(self):
        cluster = durable_cluster()
        commit_creates(cluster, 4)
        lagger, reference = lag_and_catchup(cluster, peer_kind="poison")
        forged = [e for e in lagger.evidence if e["kind"] == "forged_catchup"]
        assert forged, "the poisoned answer must leave evidence"
        assert forged[0]["sender"] == cluster.engine.validator_order[1]
        # The retry hit an honest peer: the node still caught up, and to
        # the *real* chain.
        assert [(b.height, b.block_id) for b in lagger.chain] == [
            (b.height, b.block_id) for b in reference.chain
        ]

    def test_without_verification_the_forged_chain_wins(self):
        """Mutation check: disable `_verify_commit_cert` and the same
        poisoned catch-up is adopted wholesale — proof the certificate
        check is what defeats the attack, not some other guard."""
        cluster = durable_cluster()
        commit_creates(cluster, 4)
        lagger, reference = lag_and_catchup(
            cluster, peer_kind="poison", disable_verify=True
        )
        assert [(b.height, b.block_id) for b in lagger.chain] != [
            (b.height, b.block_id) for b in reference.chain
        ]
