"""Quorum accounting under lying validators (ISSUE 6).

The f<n/3 safety argument leans on four admission checks in the round
machine, each pinned here at the unit level and then exercised end-to-end
with real byzantine behaviors installed:

* **per-validator tallies** — a quorum is counted over distinct voters,
  never messages, so no flood of copies (or conflicting pairs) from one
  validator assembles ``2f+1`` alone;
* **vote-sender authentication** — votes are never relayed, so a vote
  claiming another validator's identity is a forgery by the wire sender
  and counts for nothing;
* **proposer legitimacy** — only the rotation's due proposer for a
  (height, round) may propose, and the wire sender must be that proposer;
* **parent check** — a proposal that does not extend this node's chain
  earns a NIL prevote.
"""

import hashlib

from repro.consensus.abci import NullApplication, envelope_for
from repro.consensus.bft import GENESIS_ID
from repro.consensus.byzantine import (
    conflicting_vote,
    make_behavior,
    sibling_block,
)
from repro.consensus.tendermint import make_tendermint_cluster
from repro.consensus.types import NIL, PREVOTE, Block, Vote
from repro.sim.events import EventLoop
from repro.sim.network import Network
from repro.sim.rng import SeededRng


def build_cluster(n=4):
    loop = EventLoop()
    network = Network(loop, SeededRng(23))
    engine = make_tendermint_cluster(
        loop, network, lambda node_id: NullApplication(), n_validators=n
    )
    return loop, engine


def envelope(tag: str):
    tx_id = hashlib.sha3_256(tag.encode()).hexdigest()
    return envelope_for({"tag": tag}, tx_id, 100)


def proposer_for(engine, height, round_number):
    order = engine.validator_order
    return order[(height + round_number) % len(order)]


def evidence_kinds(validator):
    return [item["kind"] for item in validator.evidence]


class TestPerValidatorTally:
    def test_duplicate_copies_add_nothing(self):
        loop, engine = build_cluster()
        validator = engine.validator(engine.validator_order[0])
        voter = engine.validator_order[1]
        vote = Vote(PREVOTE, 1, 0, "b" * 64, voter)
        counts = [validator._tally_vote(vote) for _ in range(validator._quorum() + 2)]
        assert counts == [1] * len(counts)

    def test_conflicting_second_vote_counts_zero_with_evidence(self):
        loop, engine = build_cluster()
        validator = engine.validator(engine.validator_order[0])
        voter = engine.validator_order[1]
        assert validator._tally_vote(Vote(PREVOTE, 1, 0, "b" * 64, voter)) == 1
        assert validator._tally_vote(Vote(PREVOTE, 1, 0, "c" * 64, voter)) == 0
        assert "double_vote" in evidence_kinds(validator)
        # Neither bucket grew past the single first vote.
        assert len(validator._votes.get((PREVOTE, 1, 0, "b" * 64), set())) == 1
        assert len(validator._votes.get((PREVOTE, 1, 0, "c" * 64), set())) == 0 or (
            (PREVOTE, 1, 0, "c" * 64) not in validator._votes
        )

    def test_double_voter_alone_cannot_form_quorum(self):
        """The regression the per-validator dedupe exists for: one
        validator spamming quorum-many copies of two conflicting votes
        must not polka anything."""
        loop, engine = build_cluster()
        validator = engine.validator(engine.validator_order[0])
        block = Block.build(1, 0, proposer_for(engine, 1, 0), [envelope("x")], GENESIS_ID)
        validator._handle_proposal(block)
        loop.run(until=loop.clock.now + 0.01)  # own prevote tallies

        liar = engine.validator_order[1]
        vote = Vote(PREVOTE, 1, 0, block.block_id, liar)
        rival = Vote(PREVOTE, 1, 0, "d" * 64, liar)
        for _ in range(validator._quorum()):
            validator._handle_vote(vote, liar)
            validator._handle_vote(rival, liar)
        loop.run(until=loop.clock.now + 0.01)
        # Two distinct voters (self + liar's first vote) < quorum of 3.
        assert validator._locked_block is None
        assert len(validator._votes[(PREVOTE, 1, 0, block.block_id)]) == 2

    def test_honest_votes_still_reach_quorum(self):
        """Sanity for the test above: two honest peers + own prevote lock."""
        loop, engine = build_cluster()
        validator = engine.validator(engine.validator_order[0])
        block = Block.build(1, 0, proposer_for(engine, 1, 0), [envelope("x")], GENESIS_ID)
        validator._handle_proposal(block)
        loop.run(until=loop.clock.now + 0.01)
        for voter in engine.validator_order[1:3]:
            validator._handle_vote(Vote(PREVOTE, 1, 0, block.block_id, voter), voter)
        loop.run(until=loop.clock.now + 0.01)
        assert validator._locked_block is not None
        assert validator._locked_block.block_id == block.block_id


class TestVoteSenderAuthentication:
    def test_forged_voter_identity_is_dropped(self):
        loop, engine = build_cluster()
        validator = engine.validator(engine.validator_order[0])
        impersonated = engine.validator_order[2]
        forger = engine.validator_order[1]
        validator._handle_vote(Vote(PREVOTE, 1, 0, "b" * 64, impersonated), forger)
        assert (PREVOTE, 1, 0, "b" * 64) not in validator._votes
        assert "forged_vote" in evidence_kinds(validator)

    def test_one_sender_cannot_mint_a_phantom_quorum(self):
        loop, engine = build_cluster()
        validator = engine.validator(engine.validator_order[0])
        block = Block.build(1, 0, proposer_for(engine, 1, 0), [envelope("x")], GENESIS_ID)
        validator._handle_proposal(block)
        loop.run(until=loop.clock.now + 0.01)
        forger = engine.validator_order[1]
        for claimed in engine.validator_order:
            if claimed == validator.node_id:
                continue
            validator._handle_vote(
                Vote(PREVOTE, 1, 0, block.block_id, claimed), forger
            )
        loop.run(until=loop.clock.now + 0.01)
        # Only the forger's self-signed vote counted alongside our own.
        assert len(validator._votes[(PREVOTE, 1, 0, block.block_id)]) == 2
        assert validator._locked_block is None


class TestProposerLegitimacy:
    def test_undue_proposer_is_dropped_with_evidence(self):
        loop, engine = build_cluster()
        validator = engine.validator(engine.validator_order[0])
        undue = next(
            node for node in engine.validator_order if node != proposer_for(engine, 1, 0)
        )
        block = Block.build(1, 0, undue, [envelope("x")], GENESIS_ID)
        validator._handle_proposal(block, undue)
        assert (1, 0) not in validator._proposals
        assert "forged_proposal" in evidence_kinds(validator)

    def test_impostor_sender_is_dropped_with_evidence(self):
        """A block *naming* the due proposer but arriving from another
        node is an impostor proposal — proposals are never relayed."""
        loop, engine = build_cluster()
        validator = engine.validator(engine.validator_order[0])
        due = proposer_for(engine, 1, 0)
        impostor = next(
            node
            for node in engine.validator_order
            if node not in (due, validator.node_id)
        )
        block = Block.build(1, 0, due, [envelope("x")], GENESIS_ID)
        validator._handle_proposal(block, impostor)
        assert (1, 0) not in validator._proposals
        assert "forged_proposal" in evidence_kinds(validator)

    def test_trusted_local_path_skips_only_the_sender_check(self):
        loop, engine = build_cluster()
        validator = engine.validator(engine.validator_order[0])
        block = Block.build(1, 0, proposer_for(engine, 1, 0), [envelope("x")], GENESIS_ID)
        validator._handle_proposal(block)  # sender=None: local/test path
        assert validator._proposals[(1, 0)][block.block_id] is block


class TestEquivocationHandling:
    def test_sibling_recorded_with_evidence_and_both_retained(self):
        loop, engine = build_cluster()
        validator = engine.validator(engine.validator_order[0])
        due = proposer_for(engine, 1, 0)
        block = Block.build(1, 0, due, [envelope("x"), envelope("y")], GENESIS_ID)
        sibling = sibling_block(block)
        assert sibling is not None and sibling.block_id != block.block_id
        validator._handle_proposal(block, due)
        validator._handle_proposal(sibling, due)
        slot = validator._proposals[(1, 0)]
        assert set(slot) == {block.block_id, sibling.block_id}
        assert "equivocation" in evidence_kinds(validator)

    def test_single_prevote_despite_two_siblings(self):
        loop, engine = build_cluster()
        validator = engine.validator(engine.validator_order[0])
        due = proposer_for(engine, 1, 0)
        block = Block.build(1, 0, due, [envelope("x"), envelope("y")], GENESIS_ID)
        sibling = sibling_block(block)
        prevotes = []
        original = validator._broadcast

        def spy(kind, payload, size):
            if kind == "VOTE" and payload.phase == PREVOTE:
                prevotes.append(payload)
            original(kind, payload, size)

        validator._broadcast = spy
        validator._handle_proposal(block, due)
        validator._handle_proposal(sibling, due)
        loop.run(until=loop.clock.now + 0.01)
        assert len(prevotes) == 1, "one prevote per (height, round), not per sibling"
        assert prevotes[0].block_id == block.block_id  # first-seen sibling

    def test_conflicting_vote_prefers_a_real_rival(self):
        loop, engine = build_cluster()
        validator = engine.validator(engine.validator_order[0])
        due = proposer_for(engine, 1, 0)
        block = Block.build(1, 0, due, [envelope("x"), envelope("y")], GENESIS_ID)
        sibling = sibling_block(block)
        validator._handle_proposal(block, due)
        validator._handle_proposal(sibling, due)
        vote = Vote(PREVOTE, 1, 0, block.block_id, validator.node_id)
        rival = conflicting_vote(validator, vote)
        assert rival.block_id == sibling.block_id


class TestParentCheck:
    def test_wrong_parent_earns_a_nil_prevote(self):
        loop, engine = build_cluster()
        validator = engine.validator(engine.validator_order[0])
        block = Block.build(1, 0, proposer_for(engine, 1, 0), [envelope("x")], "f" * 64)
        nil_votes = []
        original = validator._broadcast

        def spy(kind, payload, size):
            if kind == "VOTE" and payload.phase == PREVOTE and payload.block_id == NIL:
                nil_votes.append(payload)
            original(kind, payload, size)

        validator._broadcast = spy
        validator._handle_proposal(block)
        loop.run(until=loop.clock.now + 0.01)
        assert nil_votes, "a proposal off our chain must be prevoted NIL"


class TestByzantineBehaviorsEndToEnd:
    def submit_everywhere(self, engine, tags):
        for tag in tags:
            item = envelope(tag)
            for node_id in engine.validator_order:
                engine.validator(node_id).submit_transaction(item, gossip=False)

    def honest_chains(self, engine, liar):
        return {
            node_id: tuple(
                block.block_id for block in engine.validator(node_id).chain
            )
            for node_id in engine.validator_order
            if node_id != liar
        }

    def test_equivocating_proposer_is_contained(self):
        loop, engine = build_cluster()
        liar = proposer_for(engine, 1, 0)
        engine.validator(liar).byzantine = make_behavior("equivocate")
        self.submit_everywhere(engine, ["m1", "m2"])
        loop.run(until=60.0)
        chains = self.honest_chains(engine, liar)
        assert all(chains.values()), f"honest nodes never committed: {chains}"
        assert len(set(chains.values())) == 1, chains
        # The proposer's double-voting left evidence on honest nodes.
        assert any(
            item["kind"] in ("double_vote", "equivocation")
            for node_id in chains
            for item in engine.validator(node_id).evidence
        )

    def test_vote_withholder_does_not_stall_the_quorum(self):
        loop, engine = build_cluster()
        liar = next(
            node
            for node in engine.validator_order
            if node != proposer_for(engine, 1, 0)
        )
        engine.validator(liar).byzantine = make_behavior("withhold")
        self.submit_everywhere(engine, ["w1"])
        loop.run(until=60.0)
        chains = self.honest_chains(engine, liar)
        assert all(chains.values())
        assert len(set(chains.values())) == 1

    def test_stale_replica_freezes_while_honest_nodes_advance(self):
        loop, engine = build_cluster()
        liar = next(
            node
            for node in engine.validator_order
            if node != proposer_for(engine, 1, 0)
        )
        engine.validator(liar).byzantine = make_behavior("stale")
        self.submit_everywhere(engine, ["s1"])
        loop.run(until=60.0)
        chains = self.honest_chains(engine, liar)
        assert all(chains.values())
        assert len(set(chains.values())) == 1
        assert len(engine.validator(liar).chain) < len(
            next(iter(chains.values()))
        ) + 1  # the frozen replica fell behind the honest commit
