"""Regression: CheckTx runs once per transaction per node, not per phase.

The engine used to re-run ``app.check_tx`` on every block transaction at
proposal validation even though mempool admission had already validated
it on the same node — doubling (or worse, across rounds) the most
expensive per-transaction work.  The bounded, identity-guarded verdict
memo makes every post-admission check a lookup; these tests count actual
application invocations to pin that down.
"""

import hashlib

from repro.consensus.abci import NullApplication, envelope_for
from repro.consensus.bft import BftConfig
from repro.consensus.tendermint import make_tendermint_cluster
from repro.core.builders import build_create
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import keypair_from_string
from repro.sim.events import EventLoop
from repro.sim.network import Network
from repro.sim.rng import SeededRng


class CountingApplication(NullApplication):
    def __init__(self):
        super().__init__()
        self.check_calls = 0

    def check_tx(self, envelope):
        self.check_calls += 1
        return super().check_tx(envelope)


def build_cluster(n=4, config=None):
    loop = EventLoop()
    network = Network(loop, SeededRng(11))
    apps = {}

    def factory(node_id):
        apps[node_id] = CountingApplication()
        return apps[node_id]

    engine = make_tendermint_cluster(loop, network, factory, n_validators=n, config=config)
    return loop, engine, apps


def submit(loop, engine, count):
    for index in range(count):
        tx_id = hashlib.sha3_256(f"memo-{index}".encode()).hexdigest()
        envelope = envelope_for({"n": index}, tx_id, 200, now=loop.clock.now)
        node = engine.validator_order[index % len(engine.validator_order)]
        engine.validator(node).submit_transaction(envelope)


class TestCheckTxMemo:
    def test_one_app_check_per_tx_per_node(self):
        """Admission checks once; proposal/block validation hit the memo."""
        n_txs = 24
        loop, engine, apps = build_cluster()
        submit(loop, engine, n_txs)
        loop.run(until=60.0)
        assert len(engine.committed_envelopes()) == n_txs
        for node_id, app in apps.items():
            assert app.check_calls == n_txs, (node_id, app.check_calls)

    def test_block_validation_is_all_memo_hits(self):
        loop, engine, apps = build_cluster()
        submit(loop, engine, 16)
        loop.run(until=60.0)
        for node_id in engine.validator_order:
            stats = engine.validator(node_id).check_stats
            assert stats["app_checks"] == 16, (node_id, stats)
            # Every committed block re-checked its transactions via memo.
            assert stats["memo_hits"] >= 16, (node_id, stats)

    def test_memo_is_identity_guarded(self):
        """A different payload object under a known id re-validates."""
        loop, engine, apps = build_cluster(n=1)
        validator = engine.validator(engine.validator_order[0])
        app = apps[engine.validator_order[0]]
        tx_id = "f" * 64
        first = envelope_for({"n": 1}, tx_id, 100)
        assert validator.check_tx_cached(first)
        assert app.check_calls == 1
        assert validator.check_tx_cached(first)
        assert app.check_calls == 1  # same object: memo hit
        forged = envelope_for({"n": "forged"}, tx_id, 100)
        assert validator.check_tx_cached(forged)
        assert app.check_calls == 2  # different object: full re-check

    def test_memo_is_bounded(self):
        config = BftConfig(check_memo_size=8)
        loop, engine, apps = build_cluster(n=1, config=config)
        validator = engine.validator(engine.validator_order[0])
        for index in range(40):
            envelope = envelope_for({"n": index}, f"{index:064d}", 100)
            validator.check_tx_cached(envelope)
        assert len(validator._check_memo) <= 8

    def test_memo_cleared_on_crash(self):
        loop, engine, apps = build_cluster(n=1)
        validator = engine.validator(engine.validator_order[0])
        validator.check_tx_cached(envelope_for({"n": 1}, "a" * 64, 100))
        assert len(validator._check_memo) == 1
        validator.on_crash()
        assert len(validator._check_memo) == 0


class TestFullPipelineCheckCounts:
    def test_smartchain_server_checks_once_per_tx_per_node(self):
        """End-to-end: the real application's CheckTx counter stays at one
        validation per transaction per node across the whole commit path."""
        cluster = SmartchainCluster(ClusterConfig(n_validators=4, seed=5))
        alice = keypair_from_string("alice")
        n_txs = 10
        for number in range(n_txs):
            payload = (
                build_create(alice, {"name": f"asset-{number}"}).sign([alice]).to_dict()
            )
            cluster.submit_payload(payload)
        cluster.run()
        committed = cluster.committed_records()
        assert len(committed) == n_txs
        for node_id, server in cluster.servers.items():
            assert server.stats["checked"] == n_txs, (node_id, server.stats)
