"""Network partitions: safety holds, liveness needs a 2/3 partition."""

import hashlib

from repro.consensus.abci import NullApplication, envelope_for
from repro.consensus.tendermint import make_tendermint_cluster
from repro.sim.events import EventLoop
from repro.sim.network import Network
from repro.sim.rng import SeededRng


def build(n=4, seed=71):
    loop = EventLoop()
    network = Network(loop, SeededRng(seed))
    engine = make_tendermint_cluster(loop, network, lambda nid: NullApplication(), n)
    return loop, network, engine


def submit(loop, engine, count, start=0):
    for index in range(start, start + count):
        tx_id = hashlib.sha3_256(f"p{index}".encode()).hexdigest()
        envelope = envelope_for({"n": index}, tx_id, 150, now=loop.clock.now)
        node = engine.validator_order[index % len(engine.validator_order)]
        engine.validator(node).submit_transaction(envelope)


class TestPartitions:
    def test_even_split_halts(self):
        """2-2 split of 4 validators: no group has a 2/3 quorum."""
        loop, network, engine, = build()
        nodes = engine.validator_order
        network.partition([set(nodes[:2]), set(nodes[2:])])
        submit(loop, engine, 8)
        loop.run(until=30.0)
        assert len(engine.committed_envelopes()) == 0

    def test_majority_partition_commits(self):
        """A 3-1 split: the 3-node side has quorum and keeps committing."""
        loop, network, engine = build()
        nodes = engine.validator_order
        network.partition([set(nodes[:3]), {nodes[3]}])
        submit(loop, engine, 8)
        loop.run(until=60.0)
        majority_chain = engine.validator(nodes[0]).chain
        minority_chain = engine.validator(nodes[3]).chain
        assert len(majority_chain) > 0
        assert len(minority_chain) == 0

    def test_no_fork_across_partition(self):
        loop, network, engine = build()
        nodes = engine.validator_order
        network.partition([set(nodes[:3]), {nodes[3]}])
        submit(loop, engine, 8)
        loop.run(until=30.0)
        network.heal_partition()
        submit(loop, engine, 4, start=100)
        loop.run(until=200.0)
        chains = {nid: [b.block_id for b in v.chain] for nid, v in engine.validators.items()}
        reference = max(chains.values(), key=len)
        for chain in chains.values():
            assert chain == reference[: len(chain)]

    def test_healed_partition_resumes_liveness(self):
        loop, network, engine = build()
        nodes = engine.validator_order
        network.partition([set(nodes[:2]), set(nodes[2:])])
        submit(loop, engine, 4)
        loop.run(until=20.0)
        committed_during = len(engine.committed_envelopes())
        network.heal_partition()
        submit(loop, engine, 4, start=50)
        loop.run(until=300.0)
        assert committed_during == 0
        assert len(engine.committed_envelopes()) >= 4
