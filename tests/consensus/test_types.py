"""Consensus data types."""

from repro.consensus.abci import NullApplication, envelope_for
from repro.consensus.types import Block, TxEnvelope, Vote, PREVOTE


class TestBlock:
    def envelopes(self, n=3):
        return [
            envelope_for({"n": index}, f"{index:064d}"[-64:], 100) for index in range(n)
        ]

    def test_block_id_is_content_addressed(self):
        txs = self.envelopes()
        left = Block.build(1, 0, "n0", txs, "0" * 64)
        right = Block.build(1, 0, "n0", txs, "0" * 64)
        assert left.block_id == right.block_id

    def test_block_id_changes_with_content(self):
        txs = self.envelopes()
        base = Block.build(1, 0, "n0", txs, "0" * 64)
        different_height = Block.build(2, 0, "n0", txs, "0" * 64)
        different_txs = Block.build(1, 0, "n0", txs[:2], "0" * 64)
        assert base.block_id != different_height.block_id
        assert base.block_id != different_txs.block_id

    def test_size_includes_payloads(self):
        txs = self.envelopes()
        block = Block.build(1, 0, "n0", txs, "0" * 64)
        assert block.size_bytes == 512 + 300


class TestEnvelope:
    def test_envelope_fields(self):
        envelope = envelope_for({"x": 1}, "a" * 64, 256, weight=7, now=3.5)
        assert envelope.tx_id == "a" * 64
        assert envelope.weight == 7
        assert envelope.submitted_at == 3.5


class TestNullApplication:
    def test_accepts_and_records(self):
        app = NullApplication()
        envelope = envelope_for({}, "b" * 64, 10)
        assert app.check_tx(envelope)
        assert app.deliver_tx(envelope)
        assert app.delivered == ["b" * 64]
        block = Block.build(1, 0, "n0", [envelope], "0" * 64)
        app.commit_block(block, [envelope])
        assert app.committed == [block]
        assert app.execution_cost(envelope) > 0
        assert app.commit_cost(block) > 0


class TestVote:
    def test_vote_identity(self):
        vote = Vote(PREVOTE, 3, 0, "b" * 64, "n1")
        assert vote.height == 3
        assert vote.voter == "n1"
