"""Epoch-guarded coordinator timers: fire-after-cancel races are no-ops.

The 2PC agent arms volatile named timers (prepare timeout, lock-inquiry
cadence, decision-retry spacing).  Three races must all be harmless:

* a timer cancelled by :meth:`_disarm` must never fire;
* a timer armed before a crash must not fire after it, even if the
  cancellation itself were lost — the epoch guard is the backstop;
* re-arming a (kind, tx) pair replaces the previous timer instead of
  stacking a duplicate.

And one restart obligation (the ISSUE-5 latent bug): an agent rebuilt
*from disk* mid-protocol must re-arm inquiry timers for every lock its
recovered tables say is still prepared — rebuilding the tables without
resuming leaves presumed-abort stalled forever.
"""

import pytest

from repro.crypto import keypair_from_string
from repro.durability.node import DurabilityConfig
from repro.sharding.cluster import ShardedCluster, ShardedClusterConfig
from repro.sharding.router import SHARD_KEY_METADATA


@pytest.fixture()
def agent_and_loop():
    cluster = ShardedCluster(ShardedClusterConfig(n_shards=2, seed=3))
    return cluster.agents["shard-0"], cluster.loop


class TestDisarm:
    def test_disarmed_timer_never_fires(self, agent_and_loop):
        agent, loop = agent_and_loop
        fired = []
        agent._arm("probe", "tx-1", 0.1, lambda: fired.append("boom"))
        agent._disarm("probe", "tx-1")
        loop.run(until=1.0)
        assert fired == []

    def test_disarm_of_unknown_timer_is_a_noop(self, agent_and_loop):
        agent, _ = agent_and_loop
        agent._disarm("probe", "never-armed")  # must not raise

    def test_rearm_replaces_instead_of_stacking(self, agent_and_loop):
        agent, loop = agent_and_loop
        fired = []
        agent._arm("probe", "tx-1", 0.1, lambda: fired.append("first"))
        agent._arm("probe", "tx-1", 0.2, lambda: fired.append("second"))
        loop.run(until=1.0)
        assert fired == ["second"]


class TestEpochGuard:
    def test_crash_cancels_pending_timers(self, agent_and_loop):
        agent, loop = agent_and_loop
        fired = []
        agent._arm("probe", "tx-1", 0.1, lambda: fired.append("boom"))
        agent.on_crash()
        loop.run(until=1.0)
        assert fired == []

    def test_stale_epoch_fire_is_a_noop_even_without_cancel(self, agent_and_loop):
        """The fire-after-cancel race distilled: if the handle's cancel
        were lost, the epoch check alone must suppress the callback."""
        agent, loop = agent_and_loop
        fired = []
        agent._arm("probe", "tx-1", 0.1, lambda: fired.append("boom"))
        # Simulate the lost-cancellation race: the epoch moves on but the
        # scheduled event survives in the loop.
        agent._epoch += 1
        agent._timers.clear()
        loop.run(until=1.0)
        assert fired == []

    def test_crashed_agent_suppresses_inflight_fire(self, agent_and_loop):
        agent, loop = agent_and_loop
        fired = []
        agent._arm("probe", "tx-1", 0.1, lambda: fired.append("boom"))
        # Crash without the callback bookkeeping (flag only): the fire
        # path itself checks the flag.
        agent._timers.clear()  # lose the handles, keep the events
        agent.crashed = True
        loop.run(until=1.0)
        assert fired == []

    def test_fresh_epoch_timers_fire_normally(self, agent_and_loop):
        agent, loop = agent_and_loop
        agent.on_crash()
        agent.on_recover()
        fired = []
        agent._arm("probe", "tx-1", 0.1, lambda: fired.append("ok"))
        loop.run(until=1.0)
        assert fired == ["ok"]


class TestRestartFromDiskRearmsInquiryTimers:
    """Regression: a participant rebuilt from disk with an in-flight
    prepared lock must leave restart with a live inquiry timer, so that
    presumed abort can terminate the transaction once the coordinator is
    reachable again — instead of the lock parking silently forever."""

    def _cross_shard_prepare(self, cluster):
        """Drive a cross-shard transfer to its prepare phase and return
        (participant_shard, coordinator_shard, tx_id) via a phase hook."""
        driver = cluster.driver
        alice = keypair_from_string("alice")
        bob = keypair_from_string("bob")
        create = driver.prepare_create(alice, {"capabilities": ["x"]})
        cluster.submit_and_settle(create)
        home = cluster.router.home_of_tx(create.tx_id)
        target = next(s for s in cluster.shard_ids if s != home)
        transfer = driver.prepare_transfer(
            alice, [(create.tx_id, 0, 1)], create.tx_id, [(bob.public_key, 1)],
            metadata={
                SHARD_KEY_METADATA: cluster.ring.key_landing_on(target, prefix="mig")
            },
        )
        return transfer

    def test_restarted_participant_has_live_inquiry_timer_and_resolves(self):
        cluster = ShardedCluster(
            ShardedClusterConfig(n_shards=2, seed=11, durability=DurabilityConfig())
        )
        transfer = self._cross_shard_prepare(cluster)
        observed = {}
        timer_checks = []

        def on_phase(shard_id, phase, tx_id):
            if phase == "prepared" and "participant" not in observed:
                observed["participant"] = shard_id
                observed["tx"] = tx_id
                coordinator = next(s for s in cluster.shard_ids if s != shard_id)
                observed["coordinator"] = coordinator
                # Kill the coordinator agent (no decision will come),
                # then rebuild the participant purely from its disk.
                cluster.loop.schedule_in(
                    0.0, lambda: cluster.crash_coordinator(coordinator)
                )
                cluster.loop.schedule_in(
                    0.0,
                    lambda: cluster.restart_coordinator_from_disk(shard_id, 3),
                )
                # Shortly after the restart, the recovered lock must have
                # a re-armed inquiry timer — the regression under test.
                cluster.loop.schedule_in(
                    0.01,
                    lambda: timer_checks.append(
                        [
                            kind
                            for (kind, holder) in cluster.agents[shard_id]._timers
                            if holder == tx_id
                        ]
                    ),
                )

        for agent in cluster.agents.values():
            agent.phase_listeners.append(on_phase)
        cluster.submit_payload(transfer.to_dict())
        cluster.run()

        assert observed, "prepare phase never reached"
        participant = cluster.agents[observed["participant"]]
        assert timer_checks and "lock" in timer_checks[0], (
            "restart-from-disk failed to re-arm the inquiry timer for the "
            f"recovered prepared lock (timers seen: {timer_checks})"
        )
        # With the coordinator down, bounded retries park the lock
        # durably instead of spinning the loop.
        assert [lock["holder"] for lock in participant.active_locks()] == [
            observed["tx"]
        ]
        # Once the coordinator recovers, presumed abort terminates it.
        cluster.recover_coordinator(observed["coordinator"])
        cluster.run()
        assert participant.active_locks() == []
        assert participant.unfinished() == []
