"""Epoch-guarded coordinator timers: fire-after-cancel races are no-ops.

The 2PC agent arms volatile named timers (prepare timeout, lock-inquiry
cadence, decision-retry spacing).  Three races must all be harmless:

* a timer cancelled by :meth:`_disarm` must never fire;
* a timer armed before a crash must not fire after it, even if the
  cancellation itself were lost — the epoch guard is the backstop;
* re-arming a (kind, tx) pair replaces the previous timer instead of
  stacking a duplicate.
"""

import pytest

from repro.sharding.cluster import ShardedCluster, ShardedClusterConfig


@pytest.fixture()
def agent_and_loop():
    cluster = ShardedCluster(ShardedClusterConfig(n_shards=2, seed=3))
    return cluster.agents["shard-0"], cluster.loop


class TestDisarm:
    def test_disarmed_timer_never_fires(self, agent_and_loop):
        agent, loop = agent_and_loop
        fired = []
        agent._arm("probe", "tx-1", 0.1, lambda: fired.append("boom"))
        agent._disarm("probe", "tx-1")
        loop.run(until=1.0)
        assert fired == []

    def test_disarm_of_unknown_timer_is_a_noop(self, agent_and_loop):
        agent, _ = agent_and_loop
        agent._disarm("probe", "never-armed")  # must not raise

    def test_rearm_replaces_instead_of_stacking(self, agent_and_loop):
        agent, loop = agent_and_loop
        fired = []
        agent._arm("probe", "tx-1", 0.1, lambda: fired.append("first"))
        agent._arm("probe", "tx-1", 0.2, lambda: fired.append("second"))
        loop.run(until=1.0)
        assert fired == ["second"]


class TestEpochGuard:
    def test_crash_cancels_pending_timers(self, agent_and_loop):
        agent, loop = agent_and_loop
        fired = []
        agent._arm("probe", "tx-1", 0.1, lambda: fired.append("boom"))
        agent.on_crash()
        loop.run(until=1.0)
        assert fired == []

    def test_stale_epoch_fire_is_a_noop_even_without_cancel(self, agent_and_loop):
        """The fire-after-cancel race distilled: if the handle's cancel
        were lost, the epoch check alone must suppress the callback."""
        agent, loop = agent_and_loop
        fired = []
        agent._arm("probe", "tx-1", 0.1, lambda: fired.append("boom"))
        # Simulate the lost-cancellation race: the epoch moves on but the
        # scheduled event survives in the loop.
        agent._epoch += 1
        agent._timers.clear()
        loop.run(until=1.0)
        assert fired == []

    def test_crashed_agent_suppresses_inflight_fire(self, agent_and_loop):
        agent, loop = agent_and_loop
        fired = []
        agent._arm("probe", "tx-1", 0.1, lambda: fired.append("boom"))
        # Crash without the callback bookkeeping (flag only): the fire
        # path itself checks the flag.
        agent._timers.clear()  # lose the handles, keep the events
        agent.crashed = True
        loop.run(until=1.0)
        assert fired == []

    def test_fresh_epoch_timers_fire_normally(self, agent_and_loop):
        agent, loop = agent_and_loop
        agent.on_crash()
        agent.on_recover()
        fired = []
        agent._arm("probe", "tx-1", 0.1, lambda: fired.append("ok"))
        loop.run(until=1.0)
        assert fired == ["ok"]
