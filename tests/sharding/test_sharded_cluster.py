"""ShardedCluster facade: driver compatibility, placement, metrics."""

from repro.crypto.keys import keypair_from_string
from repro.sharding import ShardedCluster, ShardedClusterConfig
from repro.workloads import ShardedScenarioSpec, run_sharded_scenario


def test_driver_flow_is_cluster_agnostic():
    """The same prepare/submit/settle code drives 1 shard or N."""
    cluster = ShardedCluster(ShardedClusterConfig(n_shards=3, seed=3))
    alice = keypair_from_string("alice")
    bob = keypair_from_string("bob")
    create = cluster.driver.prepare_create(alice, {"capabilities": ["cnc"]})
    assert cluster.submit_and_settle(create).committed_at is not None
    transfer = cluster.driver.prepare_transfer(
        alice, [(create.tx_id, 0, 1)], create.tx_id, [(bob.public_key, 1)]
    )
    record = cluster.submit_and_settle(transfer)
    assert record.committed_at is not None
    # Lineage routing keeps the plain transfer on the asset's shard.
    assert cluster.router.home_of_tx(transfer.tx_id) == cluster.router.home_of_tx(
        create.tx_id
    )


def test_genesis_placement_spreads_across_shards():
    cluster = ShardedCluster(ShardedClusterConfig(n_shards=4, seed=5))
    alice = keypair_from_string("alice")
    for index in range(40):
        create = cluster.driver.prepare_create(alice, {"capabilities": ["cnc"], "n": index})
        cluster.submit_payload(create.to_dict())
    cluster.run()
    per_shard = [
        sum(1 for r in shard.records.values() if r.committed_at is not None)
        for shard in cluster.shards.values()
    ]
    assert sum(per_shard) == 40
    # Balanced enough that no shard sits idle.
    assert all(count > 0 for count in per_shard)


def test_aggregate_metrics_merge_all_shards():
    spec = ShardedScenarioSpec(n_shards=2, n_assets=16, transfer_rounds=1, seed=9)
    result = run_sharded_scenario(spec)
    assert result.metrics.committed == result.metrics.submitted == 32
    assert result.metrics.throughput_tps > 0
    assert result.detail["committed_shard-0"] + result.detail["committed_shard-1"] == 32


def test_shard_hint_pins_home():
    cluster = ShardedCluster(ShardedClusterConfig(n_shards=2, seed=4))
    alice = keypair_from_string("alice")
    create = cluster.driver.prepare_create(alice, {"capabilities": ["cnc"]})
    result = cluster.driver.submit(create, shard_hint="shard-1")
    cluster.run()
    assert result.accepted
    assert cluster.shards["shard-1"].records[create.tx_id].committed_at is not None


def test_zipf_skew_concentrates_traffic():
    uniform = run_sharded_scenario(
        ShardedScenarioSpec(n_shards=4, n_assets=48, transfer_rounds=3, seed=13)
    )
    skewed = run_sharded_scenario(
        ShardedScenarioSpec(
            n_shards=4, n_assets=48, transfer_rounds=3, zipf_skew=2.0, seed=13
        )
    )
    # The hot-shard share of transfer traffic exceeds the uniform run's.
    assert skewed.detail["hot_shard_share"] > uniform.detail["hot_shard_share"]
    # And fewer distinct assets absorb the same round count.
    assert skewed.metrics.submitted < uniform.metrics.submitted
