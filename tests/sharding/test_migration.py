"""Live shard migration: split under traffic, the crash matrix, repair.

The migration protocol's contract is two-sided: a *completed* cutover is
a point of no return (roll forward from the journal, whatever crashed),
and anything short of it is presumed abort (roll back, release the
fence, lose nothing).  These tests drive both sides deterministically —
the chaos harness covers the same matrix stochastically.
"""

import pytest

from repro.crypto.keys import keypair_from_string
from repro.durability.node import DurabilityConfig
from repro.sharding.cluster import ShardedCluster, ShardedClusterConfig
from repro.sharding.migration import MigrationPolicy


def build(seed: int = 11, **kwargs) -> ShardedCluster:
    return ShardedCluster(
        ShardedClusterConfig(
            n_shards=2,
            seed=seed,
            durability=DurabilityConfig(snapshot_interval=60),
            **kwargs,
        )
    )


def mint(cluster: ShardedCluster, owner, n: int):
    creates = []
    for index in range(n):
        tx = cluster.driver.prepare_create(owner, {"capabilities": [f"c{index}"]})
        cluster.submit_payload(tx.to_dict())
        creates.append(tx)
    cluster.run()
    return creates


def utxo_on(cluster: ShardedCluster, shard_id: str, tx_id: str, index: int) -> bool:
    server = cluster.shards[shard_id].any_server()
    return (
        server.database.collection("utxos").find_one(
            {"transaction_id": tx_id, "output_index": index}, copy=False
        )
        is not None
    )


class TestBasicSplit:
    def test_moved_refs_live_only_on_target(self):
        cluster = build()
        alice = keypair_from_string("alice")
        mint(cluster, alice, 8)
        migration_id = cluster.reshard("shard-0")
        cluster.run()
        doc = cluster.migrator.journal_record(migration_id)
        assert doc["phase"] == "done"
        assert doc["moved"], "split moved nothing"
        target = doc["target"]
        for tx_id, index, _doc in doc["moved"]:
            assert cluster.router.home_of_tx(tx_id) == target
            for shard_id in cluster.shard_ids:
                assert utxo_on(cluster, shard_id, tx_id, index) == (shard_id == target)

    def test_epoch_bumps_at_cutover(self):
        cluster = build()
        mint(cluster, keypair_from_string("alice"), 6)
        before = cluster.router.epoch
        cluster.reshard("shard-0")
        cluster.run()
        assert cluster.router.epoch > before

    def test_moved_output_spendable_after_cutover(self):
        cluster = build()
        alice = keypair_from_string("alice")
        creates = mint(cluster, alice, 8)
        migration_id = cluster.reshard("shard-0")
        cluster.run()
        doc = cluster.migrator.journal_record(migration_id)
        moved_tx = doc["moved"][0][0]
        create = next(c for c in creates if c.tx_id == moved_tx)
        bob = keypair_from_string("bob")
        transfer = cluster.driver.prepare_transfer(
            alice, [(create.tx_id, 0, 1)], create.tx_id, [(bob.public_key, 1)]
        )
        record = cluster.submit_and_settle(transfer)
        assert record.committed_at is not None, record.rejected

    def test_merge_onto_existing_shard(self):
        cluster = build(seed=17)
        mint(cluster, keypair_from_string("alice"), 8)
        migration_id = cluster.reshard("shard-0", target="shard-1")
        cluster.run()
        doc = cluster.migrator.journal_record(migration_id)
        assert doc["phase"] == "done"
        assert doc["target"] == "shard-1"
        assert len(cluster.shard_ids) == 2  # merge grows nothing


class TestControllerCrashMatrix:
    """restart_from_disk at each phase: pre-cutover rolls back, the
    forced cutover record rolls forward."""

    @pytest.mark.parametrize("phase", ["snapshot_ship", "wal_tail", "drain"])
    def test_pre_cutover_crash_rolls_back(self, phase):
        cluster = build(seed=12)
        mint(cluster, keypair_from_string("alice"), 8)

        def crash(mid, entered):
            if entered == phase:
                cluster.loop.schedule_in(
                    0.0, lambda: cluster.migrator.restart_from_disk()
                )

        cluster.migrator.phase_listeners.append(crash)
        migration_id = cluster.reshard("shard-0")
        cluster.run()
        doc = cluster.migrator.journal_record(migration_id)
        assert doc["phase"] == "rolled_back", (phase, doc["phase"])
        assert not cluster.migrator.unfinished()
        # Nothing may have leaked onto the target.
        target = doc["target"]
        for tx_id, index in doc.get("planned_refs") or []:
            assert not utxo_on(cluster, target, tx_id, index)

    def test_cutover_crash_rolls_forward(self):
        cluster = build(seed=13)
        mint(cluster, keypair_from_string("alice"), 8)

        def crash(mid, entered):
            if entered == "cutover":
                cluster.loop.schedule_in(
                    0.0, lambda: cluster.migrator.restart_from_disk()
                )

        cluster.migrator.phase_listeners.append(crash)
        migration_id = cluster.reshard("shard-0")
        cluster.run()
        doc = cluster.migrator.journal_record(migration_id)
        assert doc["phase"] == "done"
        for tx_id, index, _doc in doc["moved"]:
            assert utxo_on(cluster, doc["target"], tx_id, index)

    def test_torn_journal_tail_still_recovers(self):
        cluster = build(seed=14)
        mint(cluster, keypair_from_string("alice"), 8)

        def crash(mid, entered):
            if entered == "wal_tail":
                cluster.loop.schedule_in(
                    0.0, lambda: cluster.migrator.restart_from_disk(torn_bytes=24)
                )

        cluster.migrator.phase_listeners.append(crash)
        migration_id = cluster.reshard("shard-0")
        cluster.run()
        doc = cluster.migrator.journal_record(migration_id)
        assert doc is None or doc["phase"] in ("rolled_back", "done")
        assert not cluster.migrator.unfinished()


class TestNodeCrashDuringMigration:
    @pytest.mark.parametrize("role", ["source", "target"])
    def test_shard_node_restart_mid_migration(self, role):
        cluster = build(seed=15)
        mint(cluster, keypair_from_string("alice"), 8)
        sprung = []

        def crash(mid, entered):
            if entered == "wal_tail" and not sprung:
                sprung.append(mid)
                migration = cluster.migrator.migrations[mid]
                shard_id = migration.source if role == "source" else migration.target
                shard = cluster.shards[shard_id]
                node = shard.engine.validator_order[0]
                cluster.loop.schedule_in(
                    0.0, lambda: shard.restart_node_from_disk(node, torn_bytes=8)
                )

        cluster.migrator.phase_listeners.append(crash)
        migration_id = cluster.reshard("shard-0")
        cluster.run()
        doc = cluster.migrator.journal_record(migration_id)
        assert doc["phase"] in ("done", "rolled_back")
        if doc["phase"] == "done":
            for tx_id, index, _doc in doc["moved"]:
                assert utxo_on(cluster, doc["target"], tx_id, index)
                assert not utxo_on(cluster, doc["source"], tx_id, index)


class TestScrubIdempotence:
    def test_scrub_after_done_changes_nothing(self):
        cluster = build(seed=16)
        mint(cluster, keypair_from_string("alice"), 8)
        migration_id = cluster.reshard("shard-0")
        cluster.run()
        doc = cluster.migrator.journal_record(migration_id)
        assert doc["phase"] == "done"
        for _ in range(2):
            cluster.migrator.scrub_shard(doc["source"])
            cluster.migrator.scrub_shard(doc["target"])
        for tx_id, index, _d in doc["moved"]:
            assert utxo_on(cluster, doc["target"], tx_id, index)
            assert not utxo_on(cluster, doc["source"], tx_id, index)
            holders = [
                sid for sid in cluster.shard_ids if utxo_on(cluster, sid, tx_id, index)
            ]
            assert holders == [doc["target"]]


class TestScrubAgainstNewerHistory:
    """Re-running an *old* done migration (the node-recovery scrub path)
    must not undo what later migrations or later spends did."""

    def test_scrub_of_old_hop_keeps_round_tripped_refs_on_source(self):
        """Regression (chaos seed 808): refs that left shard-0 and later
        migrated back were deleted from every shard-0 replica when the
        scrub re-ran the *first* hop — its source-side delete loop had no
        newer-history guard, unlike the target-side insert."""
        cluster = build(seed=21)
        alice = keypair_from_string("alice")
        creates = mint(cluster, alice, 8)
        plan = [
            c.tx_id
            for c in creates
            if cluster.router.home_of_tx(c.tx_id) == "shard-0"
        ][:2]
        assert plan, "seeded placement put no mints on shard-0"
        out_id = cluster.reshard("shard-0", target="shard-1", plan_txs=plan)
        cluster.run()
        back_id = cluster.reshard("shard-1", target="shard-0", plan_txs=plan)
        cluster.run()
        out_doc = cluster.migrator.journal_record(out_id)
        back_doc = cluster.migrator.journal_record(back_id)
        assert out_doc["phase"] == "done" and back_doc["phase"] == "done"
        round_tripped = [
            (tx_id, index)
            for tx_id, index, _d in out_doc["moved"]
            if any(t == tx_id and i == index for t, i, _x in back_doc["moved"])
        ]
        assert round_tripped, "second hop moved none of the first hop's refs"
        # The recovery scrub replays both hops in order; the first hop's
        # delete must see the refs came back.
        cluster.migrator.scrub_shard("shard-0")
        for tx_id, index in round_tripped:
            assert utxo_on(cluster, "shard-0", tx_id, index)
            assert not utxo_on(cluster, "shard-1", tx_id, index)
            assert cluster.router.home_of_tx(tx_id) == "shard-0"

    def test_scrub_spend_check_is_per_replica(self):
        """Regression (chaos seed 505): the spent-on-target probe asked
        one reference node only.  When that node lags the spender block,
        a scrub re-run re-inserted the spent output on every *up-to-date*
        replica — ghosts on exactly the nodes whose own chains had
        consumed it."""
        cluster = build(seed=22)
        alice = keypair_from_string("alice")
        creates = mint(cluster, alice, 8)
        migration_id = cluster.reshard("shard-0")
        cluster.run()
        doc = cluster.migrator.journal_record(migration_id)
        assert doc["phase"] == "done" and doc["moved"]
        target = doc["target"]
        moved_tx, moved_index = doc["moved"][0][0], doc["moved"][0][1]
        create = next(c for c in creates if c.tx_id == moved_tx)
        bob = keypair_from_string("bob")
        transfer = cluster.driver.prepare_transfer(
            alice, [(moved_tx, moved_index, 1)], moved_tx, [(bob.public_key, 1)]
        )
        record = cluster.submit_and_settle(transfer)
        assert record.committed_at is not None, record.rejected
        del create
        shard = cluster.shards[target]
        # Simulate the reference node lagging the spend: any_server is
        # the first live node in validator order; tear the spender out of
        # its transaction log so the cluster-wide probe misses it.
        laggard = shard.any_server()
        laggard.database.collection("transactions").delete_many(
            {"id": transfer.tx_id}
        )
        cluster.migrator.scrub_shard(target)
        for node_id in shard.engine.validator_order:
            server = shard.servers[node_id]
            if server is laggard:
                continue
            assert (
                server.database.collection("utxos").find_one(
                    {"transaction_id": moved_tx, "output_index": moved_index},
                    copy=False,
                )
                is None
            ), f"spent output resurrected on up-to-date replica {node_id}"


class TestCatchupSuppressor:
    def test_lagging_replica_does_not_resurrect_migrated_outputs(self):
        """Regression: a minority node partitioned across a migration
        missed the minting block; post-heal catch-up re-delivers it
        *after* the cutover deletion ran, and without the registry
        suppressor the replica re-mints a UTXO the shard no longer owns."""
        cluster = build(seed=18)
        alice = keypair_from_string("alice")
        mint(cluster, alice, 6)
        shard = cluster.shards["shard-0"]
        laggard = shard.engine.validator_order[-1]
        majority = set(shard.engine.validator_order[:-1])
        shard.network.partition([majority, {laggard}])
        # Mint while the minority is deaf, then migrate the fresh outputs.
        fresh = mint(cluster, alice, 4)
        plan = [
            t.tx_id for t in fresh if cluster.router.home_of_tx(t.tx_id) == "shard-0"
        ]
        if not plan:
            pytest.skip("seeded placement put no fresh mints on shard-0")
        migration_id = cluster.reshard("shard-0", plan_txs=plan)
        cluster.run()
        doc = cluster.migrator.journal_record(migration_id)
        assert doc["phase"] == "done"
        shard.network.heal_partition()
        shard.resync_node(laggard)
        cluster.run()
        laggard_utxos = shard.servers[laggard].database.collection("utxos")
        for tx_id, index, _d in doc["moved"]:
            assert (
                laggard_utxos.find_one(
                    {"transaction_id": tx_id, "output_index": index}, copy=False
                )
                is None
            ), (tx_id, index)


class TestAutoSplit:
    def test_hot_shard_triggers_a_split(self):
        cluster = build(
            seed=19,
            auto_split=True,
            migration_policy=MigrationPolicy(
                hot_share_threshold=0.55, window=24, min_observations=12, cooldown=1.0
            ),
        )
        alice = keypair_from_string("alice")
        shards_before = len(cluster.shard_ids)
        # Zipf-ish: hammer whatever shard the first asset homed on.
        mint(cluster, alice, 24)
        cluster.run()
        assert cluster.migrator.stats["auto_splits"] >= 1
        assert len(cluster.shard_ids) > shards_before
        assert not cluster.migrator.unfinished()

    def test_cooldown_bounds_split_storms(self):
        cluster = build(
            seed=20,
            auto_split=True,
            migration_policy=MigrationPolicy(
                hot_share_threshold=0.5,
                window=24,
                min_observations=12,
                cooldown=1e9,
                max_shards=4,
            ),
        )
        mint(cluster, keypair_from_string("alice"), 30)
        cluster.run()
        assert cluster.migrator.stats["auto_splits"] <= 1
