"""Routing rules: home-shard selection and single- vs cross-shard classing."""

import pytest

from repro.core import builders
from repro.crypto.keys import keypair_from_string
from repro.sharding.ring import ConsistentHashRing
from repro.sharding.router import SHARD_KEY_METADATA, ShardRouter


@pytest.fixture()
def router() -> ShardRouter:
    return ShardRouter(ConsistentHashRing(["s0", "s1", "s2", "s3"]))


@pytest.fixture()
def alice():
    return keypair_from_string("alice")


@pytest.fixture()
def bob():
    return keypair_from_string("bob")


def _create(alice) -> dict:
    return builders.build_create(alice, {"capabilities": ["cnc"]}).sign([alice]).to_dict()


class TestHomeSelection:
    def test_genesis_routes_by_own_id(self, router, alice):
        payload = _create(alice)
        decision = router.route(payload)
        assert decision.home == router.ring.shard_for(payload["id"])
        assert not decision.cross_shard
        assert decision.input_shards == {}

    def test_transfer_follows_its_input(self, router, alice, bob):
        create = _create(alice)
        router.record_home(create["id"], "s2")
        transfer = (
            builders.build_transfer(
                alice, [(create["id"], 0, 1)], create["id"], [(bob.public_key, 1)]
            )
            .sign([alice])
            .to_dict()
        )
        decision = router.route(transfer)
        assert decision.home == "s2"
        assert not decision.cross_shard

    def test_shard_key_metadata_overrides(self, router, alice, bob):
        create = _create(alice)
        router.record_home(create["id"], "s0")
        key = next(k for k in (f"k{i}" for i in range(200)) if router.ring.shard_for(k) == "s3")
        transfer = (
            builders.build_transfer(
                alice,
                [(create["id"], 0, 1)],
                create["id"],
                [(bob.public_key, 1)],
                metadata={SHARD_KEY_METADATA: key},
            )
            .sign([alice])
            .to_dict()
        )
        decision = router.route(transfer)
        assert decision.home == "s3"
        assert decision.cross_shard
        assert decision.remote_shards == ["s0"]
        refs = decision.input_shards["s0"]
        assert [(ref.transaction_id, ref.output_index) for ref in refs] == [(create["id"], 0)]

    def test_submit_time_hint_beats_metadata(self, router, alice):
        payload = _create(alice)
        assert router.route(payload, shard_hint="s1").home == "s1"

    def test_unknown_hint_rejected(self, router, alice):
        with pytest.raises(LookupError):
            router.route(_create(alice), shard_hint="nope")


class TestMarketplaceRouting:
    def test_bid_and_accept_follow_the_rfq(self, router, alice, bob):
        request = builders.build_request(alice, ["cnc"]).sign([alice]).to_dict()
        router.record_home(request["id"], "s1")
        create = _create(bob)
        router.record_home(create["id"], "s0")
        escrow = keypair_from_string("smartchaindb-escrow")
        bid = (
            builders.build_bid(
                bob, request["id"], create["id"], [(create["id"], 0, 1)], escrow.public_key
            )
            .sign([bob])
            .to_dict()
        )
        decision = router.route(bid)
        # The whole auction clusters on the RFQ's shard; the bid asset
        # escrow is the cross-shard spend.
        assert decision.home == "s1"
        assert decision.cross_shard
        assert decision.remote_shards == ["s0"]

    def test_routing_memory_follows_migration(self, router):
        # An asset that migrated keeps routing to where it lives now.
        router.record_home("tx-old", "s0")
        assert router.home_of_tx("tx-old") == "s0"
        router.record_home("tx-old", "s2")
        assert router.home_of_tx("tx-old") == "s2"

    def test_unknown_tx_falls_back_to_ring(self, router):
        assert router.home_of_tx("never-seen") == router.ring.shard_for("never-seen")


class TestStats:
    def test_classification_counters(self, router, alice, bob):
        create = _create(alice)
        router.route(create)
        router.record_home(create["id"], "s0")
        key = next(k for k in (f"k{i}" for i in range(200)) if router.ring.shard_for(k) == "s1")
        transfer = (
            builders.build_transfer(
                alice,
                [(create["id"], 0, 1)],
                create["id"],
                [(bob.public_key, 1)],
                metadata={SHARD_KEY_METADATA: key},
            )
            .sign([alice])
            .to_dict()
        )
        router.route(transfer)
        assert router.stats == {
            "routed": 2,
            "single_shard": 1,
            "cross_shard": 1,
            "stale_epoch_rejected": 0,
        }
