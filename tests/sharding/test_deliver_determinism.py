"""Replica determinism vs the 2PC lock oracle (ISSUE 6 regression).

The byzantine chaos sweep (seed 7) caught block delivery consulting the
shard agent's *live* lock table: replicas deliver the same block at
different simulated instants, so a lock released in between made one
replica reject a transaction its peers applied — committed-state
divergence with identical block ids.  The fix relocates lock
enforcement to the admission edges and makes DeliverTx a pure function
of committed + staged state:

* ``deliver_tx`` ignores spend guards entirely;
* ``check_tx`` (gossip / direct mempool injection) consults them, so a
  locked or tombstoned ref can never enter a pool once the lock exists;
* the 2PC participant's prepare vote refuses to lock an output some
  validator already has a pooled rival spend for (proposals assemble by
  non-destructive peek, so in-flight block contents are still pooled).
"""

import pytest

from repro.common.errors import DoubleSpendError
from repro.consensus.abci import envelope_for
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.core.transaction import OutputRef
from repro.crypto.keys import keypair_from_string
from repro.sharding.cluster import ShardedCluster, ShardedClusterConfig


def _committed_create(cluster, material="holder"):
    owner = keypair_from_string(material)
    create = cluster.driver.prepare_create(owner, {"capabilities": ["x"]})
    cluster.submit_payload(create.to_dict())
    cluster.run()
    return owner, create


def _transfer_payload(cluster, owner, create, recipient="recipient"):
    transfer = cluster.driver.prepare_transfer(
        owner,
        [(create.tx_id, 0, 1)],
        create.tx_id,
        [(keypair_from_string(recipient).public_key, 1)],
    )
    return transfer.to_dict()


class TestDeliverIgnoresTheLockOracle:
    def test_deliver_applies_despite_a_reported_lock(self):
        """The exact divergence mechanism, reduced: a guard that claims
        the input is locked must not affect DeliverTx — only committed
        state may."""
        cluster = SmartchainCluster(ClusterConfig(seed=3))
        owner, create = _committed_create(cluster)
        payload = _transfer_payload(cluster, owner, create)
        cluster.add_spend_guard(lambda ref: "shard-lock:phantom")
        server = cluster.any_server()
        envelope = envelope_for(payload, payload["id"], 100)
        assert server.deliver_tx(envelope) is True
        assert server.context.use_spend_guards is True  # restored after

    def test_deliver_still_rejects_a_committed_double_spend(self):
        """Determinism must not weaken the committed-state check."""
        cluster = SmartchainCluster(ClusterConfig(seed=3))
        owner, create = _committed_create(cluster)
        first = _transfer_payload(cluster, owner, create, recipient="r1")
        cluster.submit_payload(first)
        cluster.run()
        rival = _transfer_payload(cluster, owner, create, recipient="r2")
        server = cluster.any_server()
        assert server.deliver_tx(envelope_for(rival, rival["id"], 100)) is False

    def test_receiver_validation_still_honors_the_lock(self):
        """Admission is where locks bite: the same phantom lock that
        delivery ignores must keep rejecting fresh submissions."""
        cluster = SmartchainCluster(ClusterConfig(seed=3))
        owner, create = _committed_create(cluster)
        payload = _transfer_payload(cluster, owner, create)
        cluster.add_spend_guard(lambda ref: "shard-lock:phantom")
        with pytest.raises(DoubleSpendError):
            cluster.any_server().receiver_validate(payload)


class TestAdmissionHonorsTheLockOracle:
    def test_check_tx_refuses_a_guarded_input(self):
        """Direct mempool injection (an adversarial client, or gossip
        from one) is stopped at admission — the last place a lock can
        be consulted without breaking replica determinism."""
        cluster = SmartchainCluster(ClusterConfig(seed=3))
        owner, create = _committed_create(cluster)
        payload = _transfer_payload(cluster, owner, create)
        envelope = envelope_for(payload, payload["id"], 100)
        server = cluster.any_server()
        assert server.check_tx(envelope) is True
        cluster.add_spend_guard(
            lambda ref: "shard-lock:t1" if ref.transaction_id == create.tx_id else None
        )
        assert server.check_tx(envelope) is False
        validator = cluster.engine.validator(cluster.engine.validator_order[0])
        assert validator.submit_transaction(envelope) is False
        assert payload["id"] not in validator.mempool

    def test_inputless_operations_are_unaffected(self):
        cluster = SmartchainCluster(ClusterConfig(seed=3))
        cluster.add_spend_guard(lambda ref: "shard-lock:anything")
        create = cluster.driver.prepare_create(
            keypair_from_string("fresh"), {"capabilities": ["x"]}
        ).to_dict()
        assert cluster.any_server().check_tx(envelope_for(create, create["id"], 100))


class TestPrepareRefusesPooledRivals:
    def test_prepare_votes_no_while_a_rival_spend_is_pooled(self):
        """A lock granted over a pooled rival could be broken by that
        rival's commit (delivery no longer reads the lock table), so the
        participant must refuse to promise the output."""
        cluster = ShardedCluster(ShardedClusterConfig(n_shards=2, seed=9))
        owner, create = _committed_create(cluster, material="contended")
        home = cluster.router.home_of_tx(create.tx_id)
        shard = cluster.shards[home]
        rival = _transfer_payload(shard, owner, create, recipient="local-rival")
        envelope = envelope_for(rival, rival["id"], 100)
        node = shard.engine.validator_order[0]
        assert shard.engine.validator(node).submit_transaction(envelope, gossip=False)
        agent = cluster.agents[home]
        refused_before = agent.stats["locks_refused"]
        agent.handle_prepare("other-shard", "remote-tx", [[create.tx_id, 0]])
        assert agent.stats["locks_refused"] == refused_before + 1
        assert agent.active_locks() == []

    def test_prepare_still_locks_an_uncontended_output(self):
        cluster = ShardedCluster(ShardedClusterConfig(n_shards=2, seed=9))
        _, create = _committed_create(cluster, material="uncontended")
        home = cluster.router.home_of_tx(create.tx_id)
        agent = cluster.agents[home]
        granted_before = agent.stats["locks_granted"]
        agent.handle_prepare("other-shard", "remote-tx", [[create.tx_id, 0]])
        assert agent.stats["locks_granted"] == granted_before + 1
        holders = [lock["holder"] for lock in agent.active_locks()]
        assert holders == ["remote-tx"]
