"""Ring rebalance edge cases: emptying, duplicates, degenerate vnodes."""

import pytest

from repro.sharding.ring import ConsistentHashRing


def _keys(n: int = 200) -> list[str]:
    return [f"edge-key-{index}" for index in range(n)]


class TestRemovingTheLastShard:
    def test_ring_empties_cleanly(self):
        ring = ConsistentHashRing(["only"])
        ring.remove_shard("only")
        assert len(ring) == 0
        assert ring.shards == []
        with pytest.raises(LookupError):
            ring.shard_for("anything")

    def test_empty_ring_can_be_repopulated(self):
        ring = ConsistentHashRing(["a"])
        ring.remove_shard("a")
        ring.add_shard("b")
        assert all(ring.shard_for(key) == "b" for key in _keys(32))

    def test_double_remove_raises(self):
        ring = ConsistentHashRing(["a"])
        ring.remove_shard("a")
        with pytest.raises(KeyError):
            ring.remove_shard("a")


class TestDuplicateShardIds:
    def test_duplicate_add_does_not_inflate_placement(self):
        ring = ConsistentHashRing(["a", "b"])
        baseline = ring.assignment(_keys())
        ring.add_shard("a")
        ring.add_shard("a")
        assert ring.shards == ["a", "b"]
        assert ring.assignment(_keys()) == baseline

    def test_duplicate_seed_membership_collapses(self):
        ring = ConsistentHashRing(["a", "a", "b", "b", "a"])
        assert ring.shards == ["a", "b"]
        spread = ring.spread(_keys())
        # Two members must split the keys, not 3:2-weight them.
        assert set(spread) == {"a", "b"}
        assert min(spread.values()) > 0

    def test_remove_after_duplicate_add_fully_evicts(self):
        ring = ConsistentHashRing(["a", "b"])
        ring.add_shard("a")  # duplicate
        ring.remove_shard("a")
        assert "a" not in ring
        assert all(ring.shard_for(key) == "b" for key in _keys(32))


class TestDegenerateVnodeCount:
    def test_vnode_count_one_still_covers_the_circle(self):
        ring = ConsistentHashRing(["a", "b", "c"], virtual_nodes=1)
        spread = ring.spread(_keys(1000))
        assert sum(spread.values()) == 1000
        # One point per shard: wrap-around must still map every key.
        assert set(spread) == {"a", "b", "c"}

    def test_vnode_count_one_minimal_movement_on_remove(self):
        ring = ConsistentHashRing(["a", "b", "c"], virtual_nodes=1)
        before = ring.assignment(_keys(500))
        ring.remove_shard("c")
        after = ring.assignment(_keys(500))
        for key, owner in before.items():
            if owner != "c":
                assert after[key] == owner  # survivors keep their keys

    def test_vnode_count_below_one_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(["a"], virtual_nodes=0)

    def test_single_shard_single_vnode_owns_everything(self):
        ring = ConsistentHashRing(["solo"], virtual_nodes=1)
        assert all(ring.shard_for(key) == "solo" for key in _keys(64))


class TestResizeMovementProperties:
    """Elastic-resharding contract: a resize may only move the ranges
    the membership change itself implies — grown shards steal, removed
    shards donate, everything else stays put."""

    def test_add_shard_only_moves_keys_onto_the_new_member(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        before = ring.assignment(_keys(1000))
        ring.add_shard("d")
        after = ring.assignment(_keys(1000))
        for key, owner in before.items():
            assert after[key] in (owner, "d"), key

    def test_remove_shard_only_moves_the_departed_keys(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"])
        before = ring.assignment(_keys(1000))
        ring.remove_shard("d")
        after = ring.assignment(_keys(1000))
        for key, owner in before.items():
            if owner != "d":
                assert after[key] == owner, key
            else:
                assert after[key] != "d"

    def test_add_then_remove_round_trips_placement(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        before = ring.assignment(_keys(600))
        ring.add_shard("d")
        ring.remove_shard("d")
        assert ring.assignment(_keys(600)) == before

    def test_growth_steals_a_bounded_fraction(self):
        # Growing n -> n+1 should claim roughly 1/(n+1) of the keyspace,
        # not reshuffle it wholesale.
        ring = ConsistentHashRing(["a", "b", "c"])
        before = ring.assignment(_keys(2000))
        ring.add_shard("d")
        after = ring.assignment(_keys(2000))
        moved = sum(1 for key in before if after[key] != before[key])
        assert moved / len(before) < 0.5

    def test_every_resize_bumps_the_epoch(self):
        ring = ConsistentHashRing(["a", "b"])
        seen = [ring.epoch]
        ring.add_shard("c")
        seen.append(ring.epoch)
        ring.remove_shard("a")
        seen.append(ring.epoch)
        assert seen == sorted(set(seen)), "epochs must strictly increase"


class TestEpochStampedLookups:
    """A caller holding a pre-resize routing decision must be refused,
    never handed a retired owner (or a silently recomputed one)."""

    def test_stale_epoch_is_refused_after_add(self):
        from repro.common.errors import StaleEpochError

        ring = ConsistentHashRing(["a", "b"])
        stamped = ring.epoch
        ring.add_shard("c")
        with pytest.raises(StaleEpochError):
            ring.shard_for_at("some-key", stamped)

    def test_stale_epoch_is_refused_after_remove(self):
        from repro.common.errors import StaleEpochError

        ring = ConsistentHashRing(["a", "b", "c"])
        stamped = ring.epoch
        ring.remove_shard("c")
        with pytest.raises(StaleEpochError):
            ring.shard_for_at("some-key", stamped)

    def test_stale_error_carries_the_fresh_epoch_for_retry(self):
        from repro.common.errors import StaleEpochError

        ring = ConsistentHashRing(["a", "b"])
        stamped = ring.epoch
        ring.add_shard("c")
        ring.remove_shard("a")
        try:
            ring.shard_for_at("some-key", stamped)
        except StaleEpochError as error:
            assert error.current_epoch == ring.epoch
        else:
            raise AssertionError("stale lookup was not refused")

    def test_current_epoch_lookup_never_returns_a_retired_owner(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        ring.remove_shard("b")
        for key in _keys(300):
            assert ring.shard_for_at(key, ring.epoch) != "b"

    def test_refresh_after_refusal_converges(self):
        from repro.common.errors import StaleEpochError

        ring = ConsistentHashRing(["a", "b"])
        stamped = ring.epoch
        ring.add_shard("c")
        try:
            ring.shard_for_at("k", stamped)
        except StaleEpochError as error:
            stamped = error.current_epoch
        assert ring.shard_for_at("k", stamped) == ring.shard_for("k")
