"""Ring rebalance edge cases: emptying, duplicates, degenerate vnodes."""

import pytest

from repro.sharding.ring import ConsistentHashRing


def _keys(n: int = 200) -> list[str]:
    return [f"edge-key-{index}" for index in range(n)]


class TestRemovingTheLastShard:
    def test_ring_empties_cleanly(self):
        ring = ConsistentHashRing(["only"])
        ring.remove_shard("only")
        assert len(ring) == 0
        assert ring.shards == []
        with pytest.raises(LookupError):
            ring.shard_for("anything")

    def test_empty_ring_can_be_repopulated(self):
        ring = ConsistentHashRing(["a"])
        ring.remove_shard("a")
        ring.add_shard("b")
        assert all(ring.shard_for(key) == "b" for key in _keys(32))

    def test_double_remove_raises(self):
        ring = ConsistentHashRing(["a"])
        ring.remove_shard("a")
        with pytest.raises(KeyError):
            ring.remove_shard("a")


class TestDuplicateShardIds:
    def test_duplicate_add_does_not_inflate_placement(self):
        ring = ConsistentHashRing(["a", "b"])
        baseline = ring.assignment(_keys())
        ring.add_shard("a")
        ring.add_shard("a")
        assert ring.shards == ["a", "b"]
        assert ring.assignment(_keys()) == baseline

    def test_duplicate_seed_membership_collapses(self):
        ring = ConsistentHashRing(["a", "a", "b", "b", "a"])
        assert ring.shards == ["a", "b"]
        spread = ring.spread(_keys())
        # Two members must split the keys, not 3:2-weight them.
        assert set(spread) == {"a", "b"}
        assert min(spread.values()) > 0

    def test_remove_after_duplicate_add_fully_evicts(self):
        ring = ConsistentHashRing(["a", "b"])
        ring.add_shard("a")  # duplicate
        ring.remove_shard("a")
        assert "a" not in ring
        assert all(ring.shard_for(key) == "b" for key in _keys(32))


class TestDegenerateVnodeCount:
    def test_vnode_count_one_still_covers_the_circle(self):
        ring = ConsistentHashRing(["a", "b", "c"], virtual_nodes=1)
        spread = ring.spread(_keys(1000))
        assert sum(spread.values()) == 1000
        # One point per shard: wrap-around must still map every key.
        assert set(spread) == {"a", "b", "c"}

    def test_vnode_count_one_minimal_movement_on_remove(self):
        ring = ConsistentHashRing(["a", "b", "c"], virtual_nodes=1)
        before = ring.assignment(_keys(500))
        ring.remove_shard("c")
        after = ring.assignment(_keys(500))
        for key, owner in before.items():
            if owner != "c":
                assert after[key] == owner  # survivors keep their keys

    def test_vnode_count_below_one_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(["a"], virtual_nodes=0)

    def test_single_shard_single_vnode_owns_everything(self):
        ring = ConsistentHashRing(["solo"], virtual_nodes=1)
        assert all(ring.shard_for(key) == "solo" for key in _keys(64))
