"""Consistent-hash ring properties: balance, determinism, minimal movement."""

import pytest

from repro.sharding.ring import ConsistentHashRing
from repro.sim.rng import SeededRng


def _keys(n: int, seed: int = 11) -> list[str]:
    rng = SeededRng(seed).stream("ring-keys")
    return [f"key-{rng.getrandbits(64):016x}" for _ in range(n)]


class TestMembership:
    def test_empty_ring_rejects_lookup(self):
        with pytest.raises(LookupError):
            ConsistentHashRing().shard_for("anything")

    def test_add_is_idempotent(self):
        ring = ConsistentHashRing(["a", "b"])
        ring.add_shard("a")
        assert ring.shards == ["a", "b"]

    def test_remove_unknown_raises(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(KeyError):
            ring.remove_shard("zzz")

    def test_single_shard_owns_everything(self):
        ring = ConsistentHashRing(["solo"])
        assert all(ring.shard_for(key) == "solo" for key in _keys(100))


class TestDeterminism:
    def test_same_membership_same_mapping(self):
        keys = _keys(2_000)
        first = ConsistentHashRing(["s0", "s1", "s2", "s3"]).assignment(keys)
        # Insertion order must not matter.
        second = ConsistentHashRing(["s3", "s1", "s0", "s2"]).assignment(keys)
        assert first == second

    def test_repeated_lookup_stable(self):
        ring = ConsistentHashRing([f"s{index}" for index in range(5)])
        for key in _keys(50):
            assert ring.shard_for(key) == ring.shard_for(key)


class TestBalance:
    @pytest.mark.parametrize("n_shards", [2, 4, 8])
    def test_virtual_nodes_spread_load(self, n_shards):
        """Every shard's share stays within 2x of perfectly uniform —
        the tolerance 64 virtual nodes comfortably achieves."""
        ring = ConsistentHashRing([f"s{index}" for index in range(n_shards)])
        spread = ring.spread(_keys(20_000))
        expected = 20_000 / n_shards
        for shard, count in spread.items():
            assert 0.5 * expected <= count <= 2.0 * expected, (shard, dict(spread))

    def test_more_vnodes_tightens_spread(self):
        keys = _keys(20_000)
        shards = [f"s{index}" for index in range(4)]

        def imbalance(vnodes: int) -> float:
            spread = ConsistentHashRing(shards, virtual_nodes=vnodes).spread(keys)
            return max(spread.values()) / min(spread.values())

        assert imbalance(128) <= imbalance(1)


class TestMinimalMovement:
    def test_adding_a_shard_only_moves_keys_to_it(self):
        keys = _keys(10_000)
        ring = ConsistentHashRing(["s0", "s1", "s2"])
        before = ring.assignment(keys)
        ring.add_shard("s3")
        after = ring.assignment(keys)
        moved = [key for key in keys if before[key] != after[key]]
        # Every displaced key lands on the new shard, never reshuffles
        # between the survivors.
        assert all(after[key] == "s3" for key in moved)
        # And roughly 1/4 of the keyspace moves (within loose bounds).
        assert 0.10 <= len(moved) / len(keys) <= 0.45

    def test_removing_a_shard_only_moves_its_keys(self):
        keys = _keys(10_000)
        ring = ConsistentHashRing(["s0", "s1", "s2", "s3"])
        before = ring.assignment(keys)
        ring.remove_shard("s2")
        after = ring.assignment(keys)
        for key in keys:
            if before[key] != "s2":
                assert after[key] == before[key]
            else:
                assert after[key] != "s2"

    def test_add_then_remove_roundtrips(self):
        keys = _keys(5_000)
        ring = ConsistentHashRing(["s0", "s1", "s2"])
        before = ring.assignment(keys)
        ring.add_shard("s3")
        ring.remove_shard("s3")
        assert ring.assignment(keys) == before
