"""Cross-shard atomicity under failure injection.

The invariants every scenario asserts, straight from the PR contract:
**no half-spent outputs** (an origin UTXO is consumed iff the cross-shard
transaction committed on its home chain), **no double-spends** (of two
conflicting spends at most one commits), and **no permanently locked
UTXO** (once both sides are back up, an undecided lock always resolves).
"""

import pytest

from repro.crypto.keys import keypair_from_string
from repro.sharding import ShardedCluster, ShardedClusterConfig
from repro.sharding.router import SHARD_KEY_METADATA


def _sharded(n_shards: int = 2, **kwargs) -> ShardedCluster:
    return ShardedCluster(ShardedClusterConfig(n_shards=n_shards, seed=7, **kwargs))


def _migration_key(cluster: ShardedCluster, target_shard: str) -> str:
    return next(
        key
        for key in (f"mig-{index}" for index in range(512))
        if cluster.ring.shard_for(key) == target_shard
    )


@pytest.fixture()
def staged():
    """A committed asset plus a signed cross-shard transfer for it.

    Returns (cluster, owner, create_tx, transfer_tx, origin, target).
    """
    cluster = _sharded()
    owner = keypair_from_string("owner")
    recipient = keypair_from_string("recipient")
    create_tx = cluster.driver.prepare_create(owner, {"capabilities": ["cnc"]})
    cluster.submit_payload(create_tx.to_dict())
    cluster.run()
    origin = cluster.router.home_of_tx(create_tx.tx_id)
    target = next(shard for shard in cluster.shard_ids if shard != origin)
    transfer_tx = cluster.driver.prepare_transfer(
        owner,
        [(create_tx.tx_id, 0, 1)],
        create_tx.tx_id,
        [(recipient.public_key, 1)],
        metadata={SHARD_KEY_METADATA: _migration_key(cluster, target)},
    )
    return cluster, owner, create_tx, transfer_tx, origin, target


def _origin_utxo_present(cluster, create_tx, origin) -> bool:
    utxos = cluster.shards[origin].any_server().database.collection("utxos")
    return utxos.find_one({"transaction_id": create_tx.tx_id, "output_index": 0}) is not None


class TestHappyPath:
    def test_cross_shard_transfer_migrates_the_asset(self, staged):
        cluster, _, create_tx, transfer_tx, origin, target = staged
        record = cluster.submit_and_settle(transfer_tx)
        assert record.committed_at is not None
        # Origin: UTXO consumed, lock tombstoned as committed.
        assert not _origin_utxo_present(cluster, create_tx, origin)
        tombstones = cluster.agents[origin].durable.collection("shard_locks").find(
            {"holder": transfer_tx.tx_id}
        )
        assert [lock["status"] for lock in tombstones] == ["committed"]
        # Target: the new output exists; the asset now routes there.
        target_utxos = cluster.shards[target].any_server().database.collection("utxos")
        assert target_utxos.find_one({"transaction_id": transfer_tx.tx_id}) is not None
        assert cluster.router.home_of_tx(transfer_tx.tx_id) == target
        # Protocol fully drained: outbox done, no locks held anywhere.
        assert cluster.agents[target].unfinished() == []
        assert all(not agent.active_locks() for agent in cluster.agents.values())

    def test_callback_contract_matches_single_cluster(self, staged):
        cluster, _, _, transfer_tx, _, _ = staged
        outcomes = []
        cluster.submit_payload(
            transfer_tx.to_dict(), callback=lambda status, detail: outcomes.append(status)
        )
        cluster.run()
        assert outcomes == ["committed"]

    def test_migrated_asset_spendable_on_new_home_only(self, staged):
        cluster, _, create_tx, transfer_tx, origin, target = staged
        recipient = keypair_from_string("recipient")
        carol = keypair_from_string("carol")
        cluster.submit_and_settle(transfer_tx)
        onward = cluster.driver.prepare_transfer(
            recipient, [(transfer_tx.tx_id, 0, 1)], create_tx.tx_id, [(carol.public_key, 1)]
        )
        decision = cluster.router.route(onward.to_dict())
        assert decision.home == target and not decision.cross_shard
        assert cluster.submit_and_settle(onward).committed_at is not None


class TestDoubleSpendRaces:
    def test_cross_vs_local_spend_at_most_one_commits(self, staged):
        cluster, owner, create_tx, transfer_tx, origin, _ = staged
        carol = keypair_from_string("carol")
        local = cluster.driver.prepare_transfer(
            owner, [(create_tx.tx_id, 0, 1)], create_tx.tx_id, [(carol.public_key, 1)]
        )
        cluster.submit_payload(transfer_tx.to_dict())
        cluster.submit_payload(local.to_dict())
        cluster.run()
        committed = [
            record
            for record in (cluster.records[transfer_tx.tx_id], cluster.records[local.tx_id])
            if record.committed_at is not None
        ]
        assert len(committed) <= 1
        assert all(not agent.active_locks() for agent in cluster.agents.values())

    def test_two_cross_shard_spends_of_one_output(self, staged):
        cluster, owner, create_tx, transfer_tx, origin, target = staged
        carol = keypair_from_string("carol")
        rival = cluster.driver.prepare_transfer(
            owner,
            [(create_tx.tx_id, 0, 1)],
            create_tx.tx_id,
            [(carol.public_key, 1)],
            metadata={SHARD_KEY_METADATA: _migration_key(cluster, target)},
        )
        cluster.submit_payload(transfer_tx.to_dict())
        cluster.submit_payload(rival.to_dict())
        cluster.run()
        committed = [
            record
            for record in (cluster.records[transfer_tx.tx_id], cluster.records[rival.tx_id])
            if record.committed_at is not None
        ]
        assert len(committed) == 1
        # Exactly one committed tombstone holds the output.
        locks = cluster.agents[origin].durable.collection("shard_locks").find(
            {"transaction_id": create_tx.tx_id}
        )
        assert [lock["status"] for lock in locks] == ["committed"]


class TestCoordinatorCrash:
    def test_crash_between_prepare_and_commit_aborts_cleanly(self, staged):
        """The headline recovery case: intent is durable but undecided."""
        cluster, owner, create_tx, transfer_tx, origin, target = staged
        start = cluster.loop.clock.now
        cluster.submit_payload(transfer_tx.to_dict())
        # Stop just after PREPARE went out, before the vote returns.
        cluster.loop.run(until=start + 0.007)
        cluster.crash_coordinator(target)
        cluster.run()
        # While the coordinator is down the origin lock is held...
        assert len(cluster.agents[origin].active_locks()) == 1
        assert _origin_utxo_present(cluster, create_tx, origin)
        cluster.recover_coordinator(target)
        cluster.run()
        # ...and recovery presumed-aborts: no half-spent state anywhere.
        record = cluster.records[transfer_tx.tx_id]
        assert record.committed_at is None and record.rejected is not None
        assert cluster.agents[origin].active_locks() == []
        assert _origin_utxo_present(cluster, create_tx, origin)
        # The asset is spendable again — exactly once.
        carol = keypair_from_string("carol")
        respend = cluster.driver.prepare_transfer(
            owner, [(create_tx.tx_id, 0, 1)], create_tx.tx_id, [(carol.public_key, 1)]
        )
        assert cluster.submit_and_settle(respend).committed_at is not None

    def test_crash_after_home_commit_still_consumes_origin(self, staged):
        """Commit-pending recovery: the home chain is the source of truth."""
        cluster, _, create_tx, transfer_tx, origin, target = staged
        start = cluster.loop.clock.now
        cluster.submit_payload(transfer_tx.to_dict())
        # Let prepare + vote + home submit happen, then kill the
        # coordinator while the home BFT is still ordering the block.
        cluster.loop.run(until=start + 0.02)
        cluster.crash_coordinator(target)
        cluster.run()
        cluster.recover_coordinator(target)
        cluster.run()
        record = cluster.records[transfer_tx.tx_id]
        if record.committed_at is not None:
            # Atomic: origin consumed, tombstone committed.
            assert not _origin_utxo_present(cluster, create_tx, origin)
            locks = cluster.agents[origin].durable.collection("shard_locks").find(
                {"holder": transfer_tx.tx_id}
            )
            assert [lock["status"] for lock in locks] == ["committed"]
        else:
            # Atomic the other way: nothing consumed, nothing locked.
            assert _origin_utxo_present(cluster, create_tx, origin)
            assert cluster.agents[origin].active_locks() == []
        assert all(not agent.active_locks() for agent in cluster.agents.values())


class TestParticipantFailure:
    def test_participant_down_at_prepare_times_out_to_abort(self, staged):
        cluster, _, create_tx, transfer_tx, origin, _ = staged
        cluster.crash_coordinator(origin)  # participant agent for this 2PC
        cluster.submit_payload(transfer_tx.to_dict())
        cluster.run()
        record = cluster.records[transfer_tx.tx_id]
        assert record.committed_at is None and record.rejected is not None
        assert "timeout" in record.rejected
        # Nothing was consumed or locked on the origin shard.
        assert _origin_utxo_present(cluster, create_tx, origin)
        cluster.recover_coordinator(origin)
        cluster.run()
        assert cluster.agents[origin].active_locks() == []

    def test_participant_crash_after_lock_recovers_and_releases(self, staged):
        """Participant timeout case: the lock must not outlive the abort."""
        cluster, _, create_tx, transfer_tx, origin, target = staged
        start = cluster.loop.clock.now
        cluster.submit_payload(transfer_tx.to_dict())
        # Participant locks at ~0.01 (prepare delivery); crash right after
        # so its YES vote is sent but the later decision finds it down.
        cluster.loop.run(until=start + 0.012)
        cluster.crash_coordinator(origin)
        cluster.run()
        cluster.recover_coordinator(origin)
        cluster.run()
        # Whatever the outcome, the lock resolved after recovery.
        assert cluster.agents[origin].active_locks() == []
        record = cluster.records[transfer_tx.tx_id]
        consumed = not _origin_utxo_present(cluster, create_tx, origin)
        assert consumed == (record.committed_at is not None)


class TestRetryAfterAbort:
    def test_rejected_cross_shard_tx_can_be_resubmitted(self, staged):
        """A client retry of an aborted 2PC replaces the terminal outbox
        row instead of tripping its unique index (regression)."""
        cluster, owner, create_tx, transfer_tx, origin, target = staged
        start = cluster.loop.clock.now
        cluster.submit_payload(transfer_tx.to_dict())
        cluster.loop.run(until=start + 0.007)
        cluster.crash_coordinator(target)
        cluster.run()
        cluster.recover_coordinator(target)
        cluster.run()
        assert cluster.records[transfer_tx.tx_id].rejected is not None
        # Same payload, second attempt: must commit cleanly this time.
        record = cluster.submit_and_settle(transfer_tx.to_dict())
        assert record.committed_at is not None

    def test_rebegin_clears_the_aborted_rounds_volatile_state(self, staged):
        """A re-begin must drop the aborted round's ack set and its
        armed decision-broadcast retry: a stale timer replaying into the
        fresh round could mark it done before any participant prepared
        (byzantine chaos sweep, seed 16)."""
        cluster, owner, create_tx, transfer_tx, origin, target = staged
        tx_id = transfer_tx.tx_id
        agent = cluster.agents[target]  # the transfer's home coordinator
        cluster.crash_coordinator(origin)  # participant down: prepare lost
        start = cluster.loop.clock.now
        cluster.submit_payload(transfer_tx.to_dict())
        # Past the 1.0s prepare timeout: round 1 is aborted, the decision
        # broadcast to the dead participant is unacked, the retry armed.
        cluster.loop.run(until=start + 1.1)
        assert agent.outbox_record(tx_id)["outcome"] == "aborted"
        assert ("retry", tx_id) in agent._timers
        assert tx_id in agent._acks
        cluster.submit_payload(transfer_tx.to_dict())  # client retry
        assert agent.outbox_record(tx_id)["state"] == "preparing"
        assert ("retry", tx_id) not in agent._timers
        assert tx_id not in agent._acks
        cluster.recover_coordinator(origin)
        cluster.run()
        assert cluster.records[tx_id].committed_at is not None
        assert not _origin_utxo_present(cluster, create_tx, origin)
        assert cluster.agents[origin].active_locks() == []

    def test_stale_abort_broadcast_cannot_finish_a_fresh_round(self, staged):
        """Defense in depth for the same race: even if a stale timer
        fires, a broadcast armed for an outcome the outbox no longer
        carries must be a no-op — not zombify the new round as
        ``done`` with no outcome."""
        cluster, owner, create_tx, transfer_tx, origin, target = staged
        tx_id = transfer_tx.tx_id
        agent = cluster.agents[target]
        cluster.crash_coordinator(origin)
        start = cluster.loop.clock.now
        cluster.submit_payload(transfer_tx.to_dict())
        cluster.loop.run(until=start + 1.1)
        cluster.submit_payload(transfer_tx.to_dict())  # re-begin: preparing
        # Replay the aborted round's broadcast with its ack set complete,
        # exactly what the leaked timer + late acks produced in the wild.
        agent._acks[tx_id] = set(agent.outbox_record(tx_id)["participants"])
        agent._broadcast_decision(tx_id, "aborted", attempt=0)
        doc = agent.outbox_record(tx_id)
        assert doc["state"] == "preparing" and doc["outcome"] is None
        del agent._acks[tx_id]
        cluster.recover_coordinator(origin)
        cluster.run()
        assert cluster.records[tx_id].committed_at is not None


class TestAdversarialInjection:
    def test_cross_shard_payload_cannot_bypass_2pc_via_direct_injection(self, staged):
        """The ingress gate: a cross-shard payload pushed straight into a
        home-shard validator mempool (adversarial double-submit) must be
        refused at admission.  Committing it intra-shard would bypass the
        prepare phase entirely — the remote input is never locked or
        consumed, and the coordinator's own home submission would later
        be deduplicated against the rogue copy, parking the round in
        ``commit_pending`` with the participant's locks held forever."""
        from repro.common.encoding import canonical_bytes
        from repro.consensus.abci import envelope_for

        cluster, owner, create_tx, transfer_tx, origin, target = staged
        payload = transfer_tx.to_dict()
        envelope = envelope_for(payload, payload["id"], len(canonical_bytes(payload)))
        home = cluster.shards[target]  # router homes the transfer on target
        for node in home.engine.validator_order:
            server = home.servers[node]
            assert server.check_tx(envelope) is False
            assert not home.engine.validator(node).submit_transaction(envelope)
            assert payload["id"] not in home.engine.validator(node).mempool
        # The legitimate 2PC path through the facade still commits it.
        record = cluster.submit_and_settle(payload)
        assert record.committed_at is not None
        assert not _origin_utxo_present(cluster, create_tx, origin)
        assert not _origin_utxo_present(cluster, create_tx, origin)


class TestHomeShardDown:
    def test_all_home_validators_down_aborts_and_releases_locks(self, staged):
        """If the home BFT group cannot admit the transaction at all, the
        prepared locks must still resolve (regression: the admission
        failure fired no callback and parked the locks forever)."""
        cluster, _, create_tx, transfer_tx, origin, target = staged
        for node_id in list(cluster.shards[target].servers):
            cluster.shards[target].failures.crash_now(node_id)
        cluster.submit_payload(transfer_tx.to_dict())
        cluster.run()
        record = cluster.record_for(transfer_tx.tx_id)
        assert record.committed_at is None and record.rejected is not None
        assert cluster.agents[origin].active_locks() == []
        assert _origin_utxo_present(cluster, create_tx, origin)


class TestLateApplyingReplica:
    def test_node_down_during_cross_commit_scrubs_utxo_on_catchup(self, staged):
        """Found by the chaos harness (ISSUE 3): ``consume_outputs``
        deletes the spent UTXO on every replica at decision time, but a
        node that had not yet applied the *creating* block re-inserted
        the UTXO when it caught up — a ghost spendable output on one
        replica.  The catch-up path must scrub foreign-spent outputs."""
        cluster, _, create_tx, transfer_tx, origin, target = staged
        lagging = cluster.shards[origin].engine.validator_order[-1]
        # Crash one origin replica first, then mint and migrate a fresh
        # asset: the crashed node sees neither the CREATE nor the spend.
        owner = keypair_from_string("late-owner")
        recipient = keypair_from_string("late-recipient")
        cluster.shards[origin].failures.crash_now(lagging)
        fresh = cluster.driver.prepare_create(
            owner,
            {"capabilities": ["late"]},
            metadata={SHARD_KEY_METADATA: _migration_key(cluster, origin)},
        )
        cluster.submit_and_settle(fresh.to_dict())
        migrate = cluster.driver.prepare_transfer(
            owner,
            [(fresh.tx_id, 0, 1)],
            fresh.tx_id,
            [(recipient.public_key, 1)],
            metadata={SHARD_KEY_METADATA: _migration_key(cluster, target)},
        )
        record = cluster.submit_and_settle(migrate.to_dict())
        assert record.committed_at is not None
        # Recovery applies the missed blocks — including the CREATE whose
        # output the 2PC commit already spent.
        cluster.shards[origin].failures.recover_now(lagging)
        cluster.run()
        utxos = cluster.shards[origin].servers[lagging].database.collection("utxos")
        assert (
            utxos.find_one({"transaction_id": fresh.tx_id, "output_index": 0}) is None
        ), "catch-up resurrected a UTXO a cross-shard commit had spent"


class TestValidatorNodeCrash:
    def test_bft_node_crash_mid_protocol_is_tolerated(self, staged):
        """Killing a *validator* (not the agent) mid-2PC must not break
        atomicity — the shard's BFT quorum keeps going."""
        cluster, _, create_tx, transfer_tx, origin, target = staged
        start = cluster.loop.clock.now
        cluster.submit_payload(transfer_tx.to_dict())
        cluster.loop.run(until=start + 0.01)
        cluster.shards[target].failures.crash_now("scdb-0")
        cluster.run()
        record = cluster.records[transfer_tx.tx_id]
        assert record.committed_at is not None
        assert not _origin_utxo_present(cluster, create_tx, origin)
        assert all(not agent.active_locks() for agent in cluster.agents.values())
