"""Batched 2PC messaging: per-tick coalescing preserves the protocol.

The coordinator queues every message bound for the same peer shard within
one event-loop tick and ships them as a single wire delivery; decisions
arriving together are group-applied with one UTXO-retirement pass.  These
tests pin both the batching mechanics (messages genuinely coalesce) and
the invariant that coalescing is pure mechanics — outcomes, locks and
wallet views match the unbatched protocol exactly.
"""

from repro.crypto.keys import keypair_from_string
from repro.sharding import ShardedCluster, ShardedClusterConfig
from repro.sharding.router import SHARD_KEY_METADATA


def _sharded(n_shards: int = 2, **kwargs) -> ShardedCluster:
    return ShardedCluster(ShardedClusterConfig(n_shards=n_shards, seed=7, **kwargs))


def _migration_key(cluster: ShardedCluster, target_shard: str) -> str:
    return next(
        key
        for key in (f"mig-{index}" for index in range(512))
        if cluster.ring.shard_for(key) == target_shard
    )


def _instrument_batches(cluster: ShardedCluster) -> list[int]:
    """Record the size of every wire delivery between shard agents."""
    sizes: list[int] = []
    for agent in cluster.agents.values():
        original = agent._deliver_batch

        def recording(batch, _original=original):
            sizes.append(len(batch))
            _original(batch)

        agent._deliver_batch = recording
    return sizes


def _stage_cross_transfers(cluster: ShardedCluster, count: int):
    """Commit ``count`` assets, then sign transfers that each migrate one
    asset to a different shard — submitted together, their PREPAREs (and
    later decisions) land on the peers within shared ticks."""
    owner = keypair_from_string("batch-owner")
    recipient = keypair_from_string("batch-recipient")
    creates = []
    for number in range(count):
        create_tx = cluster.driver.prepare_create(
            owner, {"capabilities": ["cnc"], "n": number}
        )
        cluster.submit_payload(create_tx.to_dict())
        creates.append(create_tx)
    cluster.run()
    transfers = []
    for create_tx in creates:
        origin = cluster.router.home_of_tx(create_tx.tx_id)
        target = next(shard for shard in cluster.shard_ids if shard != origin)
        transfers.append(
            cluster.driver.prepare_transfer(
                owner,
                [(create_tx.tx_id, 0, 1)],
                create_tx.tx_id,
                [(recipient.public_key, 1)],
                metadata={SHARD_KEY_METADATA: _migration_key(cluster, target)},
            )
        )
    return creates, transfers


class TestCoalescing:
    def test_same_tick_messages_share_one_delivery(self):
        cluster = _sharded()
        sizes = _instrument_batches(cluster)
        _, transfers = _stage_cross_transfers(cluster, 6)
        for transfer in transfers:
            cluster.submit_payload(transfer.to_dict())
        cluster.run()
        assert all(
            cluster.records[t.tx_id].committed_at is not None for t in transfers
        )
        assert sizes, "no inter-shard traffic recorded"
        # Six concurrent cross-shard transactions must not cost six times
        # the wire deliveries of one: at least one delivery carried
        # several protocol messages.
        assert max(sizes) > 1, sizes
        # And batching saves real message events: fewer deliveries than
        # total messages sent.
        assert len(sizes) < sum(sizes), sizes

    def test_grouped_decisions_match_unbatched_outcome(self):
        """Every UTXO/lock/tombstone effect is identical to the serial
        protocol — group-applying decisions is invisible to state."""
        cluster = _sharded()
        creates, transfers = _stage_cross_transfers(cluster, 4)
        for transfer in transfers:
            cluster.submit_payload(transfer.to_dict())
        cluster.run()
        for create_tx, transfer in zip(creates, transfers):
            origin = cluster.router.home_of_tx(create_tx.tx_id)
            origin_utxos = (
                cluster.shards[origin].any_server().database.collection("utxos")
            )
            assert (
                origin_utxos.find_one(
                    {"transaction_id": create_tx.tx_id, "output_index": 0}
                )
                is None
            ), "origin UTXO must be consumed"
            tombstones = (
                cluster.agents[origin]
                .durable.collection("shard_locks")
                .find({"holder": transfer.tx_id})
            )
            assert [lock["status"] for lock in tombstones] == ["committed"]
        # Protocol fully drained everywhere.
        for agent in cluster.agents.values():
            assert agent.unfinished() == []
            assert agent.active_locks() == []

    def test_rival_spends_still_single_winner_under_batching(self):
        """Two conflicting cross-shard spends of one UTXO: batched
        PREPAREs must still grant the lock to exactly one."""
        cluster = _sharded()
        owner = keypair_from_string("rival-owner")
        alice = keypair_from_string("rival-alice")
        bob = keypair_from_string("rival-bob")
        create_tx = cluster.driver.prepare_create(owner, {"capabilities": ["mill"]})
        cluster.submit_payload(create_tx.to_dict())
        cluster.run()
        origin = cluster.router.home_of_tx(create_tx.tx_id)
        target = next(shard for shard in cluster.shard_ids if shard != origin)
        rivals = [
            cluster.driver.prepare_transfer(
                owner,
                [(create_tx.tx_id, 0, 1)],
                create_tx.tx_id,
                [(recipient.public_key, 1)],
                metadata={SHARD_KEY_METADATA: _migration_key(cluster, target)},
            )
            for recipient in (alice, bob)
        ]
        for rival in rivals:
            cluster.submit_payload(rival.to_dict())
        cluster.run()
        committed = [
            rival
            for rival in rivals
            if cluster.records[rival.tx_id].committed_at is not None
        ]
        assert len(committed) == 1, [cluster.records[r.tx_id] for r in rivals]
