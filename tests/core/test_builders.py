"""Driver templates (the Prepare step)."""

import pytest

from repro.common.errors import ValidationError
from repro.core.builders import (
    build_accept_bid,
    build_bid,
    build_create,
    build_request,
    build_return,
    build_transfer,
)
from repro.core.transaction import ACCEPT_BID, BID, CREATE, REQUEST, RETURN, TRANSFER
from repro.crypto.keys import ReservedAccounts, keypair_from_string

ALICE = keypair_from_string("alice")
BOB = keypair_from_string("bob")
SALLY = keypair_from_string("sally")
RESERVED = ReservedAccounts()


class TestCreateTemplate:
    def test_operation_and_asset(self):
        transaction = build_create(ALICE, {"name": "w"}, amount=3)
        assert transaction.operation == CREATE
        assert transaction.asset == {"data": {"name": "w"}}
        assert transaction.outputs[0].amount == 3

    def test_genesis_input(self):
        transaction = build_create(ALICE, {"name": "w"})
        assert transaction.inputs[0].fulfills is None
        assert transaction.inputs[0].owners_before == [ALICE.public_key]

    def test_recipient_split(self):
        transaction = build_create(
            ALICE, {"name": "w"}, recipients=[(BOB.public_key, 2), (SALLY.public_key, 1)]
        )
        assert [output.amount for output in transaction.outputs] == [2, 1]


class TestTransferTemplate:
    def test_structure(self):
        transaction = build_transfer(
            ALICE, [("a" * 64, 0, 5)], "a" * 64, [(BOB.public_key, 5)]
        )
        assert transaction.operation == TRANSFER
        assert transaction.asset == {"id": "a" * 64}
        assert transaction.inputs[0].fulfills.transaction_id == "a" * 64
        assert transaction.outputs[0].owners_before == [ALICE.public_key]


class TestRequestTemplate:
    def test_capabilities_in_asset_data(self):
        transaction = build_request(SALLY, ["3d-print", "iso"])
        assert transaction.operation == REQUEST
        assert transaction.asset["data"]["capabilities"] == ["3d-print", "iso"]

    def test_extra_asset_data_merged(self):
        transaction = build_request(SALLY, ["cap"], extra_asset_data={"part": "bracket"})
        assert transaction.asset["data"]["part"] == "bracket"


class TestBidTemplate:
    def test_escrow_output_and_reference(self):
        transaction = build_bid(
            ALICE, "r" * 64, "a" * 64, [("a" * 64, 0, 2)], RESERVED.escrow.public_key
        )
        assert transaction.operation == BID
        assert transaction.references == ["r" * 64]
        assert transaction.outputs[0].public_keys == [RESERVED.escrow.public_key]
        assert transaction.outputs[0].amount == 2
        # Original bidder recorded for the eventual RETURN.
        assert transaction.outputs[0].owners_before == [ALICE.public_key]

    def test_empty_spend_rejected(self):
        with pytest.raises(ValidationError):
            build_bid(ALICE, "r" * 64, "a" * 64, [], RESERVED.escrow.public_key)


class TestAcceptBidTemplate:
    def winning_bid(self):
        return build_bid(
            ALICE, "r" * 64, "a" * 64, [("a" * 64, 0, 1)], RESERVED.escrow.public_key
        ).sign([ALICE])

    def test_metadata_and_asset(self):
        bid = self.winning_bid()
        transaction = build_accept_bid(SALLY, "r" * 64, bid)
        assert transaction.operation == ACCEPT_BID
        assert transaction.metadata["rfq_id"] == "r" * 64
        assert transaction.metadata["win_bid_id"] == bid.tx_id
        assert transaction.asset == {"id": bid.tx_id}

    def test_output_goes_to_requester(self):
        transaction = build_accept_bid(SALLY, "r" * 64, self.winning_bid())
        assert transaction.outputs[0].public_keys == [SALLY.public_key]

    def test_unsigned_bid_rejected(self):
        unsigned = build_bid(
            ALICE, "r" * 64, "a" * 64, [("a" * 64, 0, 1)], RESERVED.escrow.public_key
        )
        with pytest.raises(ValidationError):
            build_accept_bid(SALLY, "r" * 64, unsigned)


class TestReturnTemplate:
    def test_structure(self):
        bid = build_bid(
            ALICE, "r" * 64, "a" * 64, [("a" * 64, 0, 1)], RESERVED.escrow.public_key
        ).sign([ALICE])
        transaction = build_return(RESERVED.escrow, bid.to_dict(), "c" * 64)
        assert transaction.operation == RETURN
        assert transaction.references == [bid.tx_id, "c" * 64]
        assert transaction.outputs[0].public_keys == [ALICE.public_key]
        assert transaction.inputs[0].fulfills.transaction_id == bid.tx_id

    def test_missing_original_owner_rejected(self):
        bid = build_bid(
            ALICE, "r" * 64, "a" * 64, [("a" * 64, 0, 1)], RESERVED.escrow.public_key
        ).sign([ALICE])
        payload = bid.to_dict()
        payload["outputs"][0].pop("owners_before")
        with pytest.raises(ValidationError):
            build_return(RESERVED.escrow, payload, "c" * 64)
