"""ACCEPT_BID validation: C_ACCEPT_BID conditions (Definition 4 / Algorithm 3)."""

import pytest

from repro.common.errors import (
    DuplicateTransactionError,
    InputDoesNotExistError,
    ValidationError,
)
from repro.core.builders import build_accept_bid, build_bid, build_create, build_request
from repro.core.context import ValidationContext
from repro.core.validation import TransactionValidator
from repro.crypto.keys import ReservedAccounts, keypair_from_string
from repro.storage.database import make_smartchaindb_database

ALICE = keypair_from_string("alice")   # bidder 1
BOB = keypair_from_string("bob")       # bidder 2
SALLY = keypair_from_string("sally")   # requester


@pytest.fixture()
def auction():
    """Two committed bids on one committed request."""
    database = make_smartchaindb_database()
    reserved = ReservedAccounts()
    ctx = ValidationContext(database, reserved)
    validator = TransactionValidator()

    def commit(transaction):
        database.collection("transactions").insert_one(transaction.to_dict())
        return transaction

    caps = ["3d-print", "iso-9001"]
    create_a = commit(build_create(ALICE, {"capabilities": caps}).sign([ALICE]))
    create_b = commit(build_create(BOB, {"capabilities": caps}).sign([BOB]))
    request = commit(build_request(SALLY, ["3d-print"]).sign([SALLY]))
    bid_a = commit(
        build_bid(ALICE, request.tx_id, create_a.tx_id, [(create_a.tx_id, 0, 1)],
                  reserved.escrow.public_key).sign([ALICE])
    )
    bid_b = commit(
        build_bid(BOB, request.tx_id, create_b.tx_id, [(create_b.tx_id, 0, 1)],
                  reserved.escrow.public_key).sign([BOB])
    )
    return ctx, validator, commit, request, bid_a, bid_b


class TestHappyPath:
    def test_requester_accepts_a_bid(self, auction):
        ctx, validator, commit, request, bid_a, bid_b = auction
        accept = build_accept_bid(SALLY, request.tx_id, bid_a).sign([SALLY])
        validator.validate(ctx, accept.to_dict())

    def test_metadata_carries_rfq_and_win_ids(self, auction):
        ctx, validator, commit, request, bid_a, bid_b = auction
        accept = build_accept_bid(SALLY, request.tx_id, bid_a).sign([SALLY])
        assert accept.metadata["rfq_id"] == request.tx_id
        assert accept.metadata["win_bid_id"] == bid_a.tx_id


class TestConditions:
    def test_uncommitted_request_rejected(self, auction):
        ctx, validator, commit, request, bid_a, bid_b = auction
        accept = build_accept_bid(SALLY, "9" * 64, bid_a)
        accept.references = ["9" * 64]
        accept.metadata["rfq_id"] = "9" * 64
        accept.sign([SALLY])
        with pytest.raises(InputDoesNotExistError):
            validator.validate_semantics(ctx, accept.to_dict())

    def test_uncommitted_winning_bid_rejected(self, auction):
        ctx, validator, commit, request, bid_a, bid_b = auction
        accept = build_accept_bid(SALLY, request.tx_id, bid_a)
        accept.metadata["win_bid_id"] = "8" * 64
        accept.asset = {"id": "8" * 64}
        accept.inputs[0].fulfillment.signatures.clear()
        accept.sign([SALLY])
        with pytest.raises(InputDoesNotExistError):
            validator.validate_semantics(ctx, accept.to_dict())

    def test_signer_must_match_request_signer(self, auction):
        """Algorithm 3 line 6: only Sally may accept bids on her RFQ."""
        ctx, validator, commit, request, bid_a, bid_b = auction
        hijack = build_accept_bid(ALICE, request.tx_id, bid_b).sign([ALICE])
        with pytest.raises(ValidationError) as info:
            validator.validate_semantics(ctx, hijack.to_dict())
        assert "signer" in str(info.value)

    def test_duplicate_accept_rejected(self, auction):
        """Algorithm 3 lines 8-10: the reinitiation attack from Section 4.2."""
        ctx, validator, commit, request, bid_a, bid_b = auction
        first = commit(build_accept_bid(SALLY, request.tx_id, bid_a).sign([SALLY]))
        second = build_accept_bid(SALLY, request.tx_id, bid_b).sign([SALLY])
        with pytest.raises(DuplicateTransactionError):
            validator.validate_semantics(ctx, second.to_dict())

    def test_duplicate_accept_rejected_within_block(self, auction):
        ctx, validator, commit, request, bid_a, bid_b = auction
        first = build_accept_bid(SALLY, request.tx_id, bid_a).sign([SALLY])
        validator.validate_semantics(ctx, first.to_dict())
        ctx.stage(first.to_dict())
        second = build_accept_bid(SALLY, request.tx_id, bid_b).sign([SALLY])
        with pytest.raises(DuplicateTransactionError):
            validator.validate_semantics(ctx, second.to_dict())

    def test_winning_bid_must_reference_this_rfq(self, auction):
        ctx, validator, commit, request, bid_a, bid_b = auction
        other_request = commit(
            build_request(SALLY, ["3d-print"], metadata={"batch": 2}).sign([SALLY])
        )
        crossed = build_accept_bid(SALLY, other_request.tx_id, bid_a).sign([SALLY])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, crossed.to_dict())

    def test_winning_transaction_must_be_a_bid(self, auction):
        ctx, validator, commit, request, bid_a, bid_b = auction
        accept = build_accept_bid(SALLY, request.tx_id, bid_a)
        accept.metadata["win_bid_id"] = request.tx_id
        accept.asset = {"id": request.tx_id}
        accept.inputs[0].fulfillment.signatures.clear()
        accept.sign([SALLY])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, accept.to_dict())

    def test_c2_exactly_one_reference(self, auction):
        ctx, validator, commit, request, bid_a, bid_b = auction
        accept = build_accept_bid(SALLY, request.tx_id, bid_a)
        accept.references = [request.tx_id, bid_b.tx_id]
        accept.inputs[0].fulfillment.signatures.clear()
        accept.sign([SALLY])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, accept.to_dict())

    def test_c9_output_must_reach_requester(self, auction):
        ctx, validator, commit, request, bid_a, bid_b = auction
        accept = build_accept_bid(SALLY, request.tx_id, bid_a)
        from repro.core.transaction import Output

        accept.outputs = [Output.for_owner(ALICE.public_key, 1)]
        accept.inputs[0].fulfillment.signatures.clear()
        accept.sign([SALLY])
        with pytest.raises(ValidationError) as info:
            validator.validate_semantics(ctx, accept.to_dict())
        assert "CACCEPT_BID.9" in str(info.value)

    def test_accepting_spent_bid_rejected(self, auction):
        """Once a bid's escrow output is spent (e.g. RETURNed), it is no
        longer locked and cannot win."""
        ctx, validator, commit, request, bid_a, bid_b = auction
        first = commit(build_accept_bid(SALLY, request.tx_id, bid_a).sign([SALLY]))
        # bid_a's escrow output is now spent by the accept itself;
        # a conflicting accept of bid_a must fail the double-spend check.
        replay = build_accept_bid(SALLY, request.tx_id, bid_a)
        replay.metadata["note"] = "replay"
        replay.inputs[0].fulfillment.signatures.clear()
        replay.sign([SALLY])
        with pytest.raises((DuplicateTransactionError, ValidationError)):
            validator.validate_semantics(ctx, replay.to_dict())
