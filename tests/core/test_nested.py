"""Nested transactions: ReturnQueue, recovery log, deterRtrnTxs, RETURN type."""

import pytest

from repro.common.errors import ValidationError
from repro.core.builders import build_accept_bid, build_bid, build_create, build_request
from repro.core.context import ValidationContext
from repro.core.nested import (
    NestedTransactionProcessor,
    RecoveryLog,
    ReturnJob,
    ReturnQueue,
    determine_return_txs,
)
from repro.core.validation import TransactionValidator
from repro.crypto.keys import ReservedAccounts, keypair_from_string
from repro.storage.database import make_smartchaindb_database

ALICE = keypair_from_string("alice")
BOB = keypair_from_string("bob")
CAROL = keypair_from_string("carol")
SALLY = keypair_from_string("sally")


class TestReturnQueue:
    def job(self, name="j1"):
        return ReturnJob(accept_id="a" * 64, bid_id="b" * 64, payload={"id": name})

    def test_fifo(self):
        queue = ReturnQueue()
        queue.put(self.job("1"))
        queue.put(self.job("2"))
        assert queue.get().payload["id"] == "1"
        assert queue.get().payload["id"] == "2"
        assert queue.get() is None

    def test_requeue_counts_attempts(self):
        queue = ReturnQueue()
        job = self.job()
        queue.put(job)
        taken = queue.get()
        queue.requeue(taken)
        assert taken.attempts == 1
        assert queue.stats["retried"] == 1


class TestRecoveryLog:
    @pytest.fixture()
    def log(self):
        return RecoveryLog(make_smartchaindb_database())

    def test_pending_until_all_children_commit(self, log):
        log.log_accept("acc", "rfq", ["bid1", "bid2"])
        assert not log.is_fully_committed("acc")
        log.mark_child_committed("acc", "bid1", "ret1")
        assert not log.is_fully_committed("acc")
        log.mark_child_committed("acc", "bid2", "ret2")
        assert log.is_fully_committed("acc")

    def test_no_children_means_immediately_committed(self, log):
        """Definition 2 vacuously holds with an empty children set."""
        log.log_accept("acc", "rfq", [])
        assert log.is_fully_committed("acc")

    def test_log_is_idempotent(self, log):
        log.log_accept("acc", "rfq", ["bid1"])
        log.log_accept("acc", "rfq", ["bid1"])
        assert len(log.pending_jobs()) == 1

    def test_pending_jobs_lists_open_parents(self, log):
        log.log_accept("acc1", "rfq1", ["b1"])
        log.log_accept("acc2", "rfq2", [])
        pending = log.pending_jobs()
        assert [record["accept_id"] for record in pending] == ["acc1"]

    def test_mark_unknown_child_is_noop(self, log):
        log.log_accept("acc", "rfq", ["bid1"])
        log.mark_child_committed("acc", "ghost", "ret")
        assert not log.is_fully_committed("acc")


@pytest.fixture()
def settled_auction():
    """Committed assets, request, three bids and an accept payload."""
    database = make_smartchaindb_database()
    reserved = ReservedAccounts()
    ctx = ValidationContext(database, reserved)
    validator = TransactionValidator()

    def commit(transaction):
        database.collection("transactions").insert_one(transaction.to_dict())
        return transaction

    caps = ["3d-print"]
    bidders = [ALICE, BOB, CAROL]
    creates = [commit(build_create(kp, {"capabilities": caps}).sign([kp])) for kp in bidders]
    request = commit(build_request(SALLY, caps).sign([SALLY]))
    bids = [
        commit(
            build_bid(kp, request.tx_id, created.tx_id, [(created.tx_id, 0, 1)],
                      reserved.escrow.public_key).sign([kp])
        )
        for kp, created in zip(bidders, creates)
    ]
    accept = commit(build_accept_bid(SALLY, request.tx_id, bids[0]).sign([SALLY]))
    return database, reserved, ctx, validator, request, bids, accept


class TestDetermineReturnTxs:
    def test_returns_exclude_winner(self, settled_auction):
        database, reserved, ctx, validator, request, bids, accept = settled_auction
        locked = ctx.locked_bids(request.tx_id)
        returns = determine_return_txs(reserved.escrow, accept.to_dict(), locked)
        assert len(returns) == 2  # bids[1] and bids[2]
        returned_bids = {transaction.references[0] for transaction in returns}
        assert returned_bids == {bids[1].tx_id, bids[2].tx_id}

    def test_returns_are_valid_transactions(self, settled_auction):
        database, reserved, ctx, validator, request, bids, accept = settled_auction
        locked = ctx.locked_bids(request.tx_id)
        for transaction in determine_return_txs(reserved.escrow, accept.to_dict(), locked):
            validator.validate(ctx, transaction.to_dict())

    def test_returns_go_to_original_bidders(self, settled_auction):
        database, reserved, ctx, validator, request, bids, accept = settled_auction
        locked = ctx.locked_bids(request.tx_id)
        returns = determine_return_txs(reserved.escrow, accept.to_dict(), locked)
        recipients = {transaction.outputs[0].public_keys[0] for transaction in returns}
        assert recipients == {BOB.public_key, CAROL.public_key}

    def test_deterministic_across_nodes(self, settled_auction):
        """Every node must derive identical RETURNs (dedup relies on it)."""
        database, reserved, ctx, validator, request, bids, accept = settled_auction
        locked = ctx.locked_bids(request.tx_id)
        first = determine_return_txs(reserved.escrow, accept.to_dict(), locked)
        second = determine_return_txs(reserved.escrow, accept.to_dict(), locked)
        assert [t.tx_id for t in first] == [t.tx_id for t in second]


class TestReturnTypeValidation:
    def test_return_to_wrong_recipient_rejected(self, settled_auction):
        database, reserved, ctx, validator, request, bids, accept = settled_auction
        locked = ctx.locked_bids(request.tx_id)
        transaction = determine_return_txs(reserved.escrow, accept.to_dict(), locked)[0]
        transaction.outputs[0].public_keys = [SALLY.public_key]
        transaction.outputs[0].condition = type(transaction.outputs[0].condition).for_owner(
            SALLY.public_key
        )
        transaction.inputs[0].fulfillment.signatures.clear()
        transaction.sign([reserved.escrow])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, transaction.to_dict())

    def test_return_requires_committed_accept(self, settled_auction):
        database, reserved, ctx, validator, request, bids, accept = settled_auction
        from repro.core.builders import build_return

        transaction = build_return(reserved.escrow, bids[1].to_dict(), "7" * 64)
        transaction.sign([reserved.escrow])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, transaction.to_dict())


class TestNestedProcessor:
    def test_on_accept_enqueues_losers(self, settled_auction):
        database, reserved, ctx, validator, request, bids, accept = settled_auction
        processor = NestedTransactionProcessor(reserved.escrow, database)
        jobs = processor.on_accept_committed(accept.to_dict(), ctx.locked_bids(request.tx_id))
        assert len(jobs) == 2
        assert len(processor.queue) == 2
        assert not processor.recovery.is_fully_committed(accept.tx_id)

    def test_drain_submits_jobs(self, settled_auction):
        database, reserved, ctx, validator, request, bids, accept = settled_auction
        submitted = []
        processor = NestedTransactionProcessor(reserved.escrow, database, submit=submitted.append)
        processor.on_accept_committed(accept.to_dict(), ctx.locked_bids(request.tx_id))
        assert processor.drain() == 2
        assert len(submitted) == 2
        assert len(processor.queue) == 0

    def test_return_commit_closes_recovery(self, settled_auction):
        database, reserved, ctx, validator, request, bids, accept = settled_auction
        processor = NestedTransactionProcessor(reserved.escrow, database, submit=lambda p: None)
        jobs = processor.on_accept_committed(accept.to_dict(), ctx.locked_bids(request.tx_id))
        for job in jobs:
            processor.on_return_committed(job.payload)
        assert processor.recovery.is_fully_committed(accept.tx_id)

    def test_recover_reenqueues_pending(self, settled_auction):
        """Crash case 2: rebuild the queue from the durable log."""
        database, reserved, ctx, validator, request, bids, accept = settled_auction
        processor = NestedTransactionProcessor(reserved.escrow, database)
        jobs = processor.on_accept_committed(accept.to_dict(), ctx.locked_bids(request.tx_id))
        # Simulate crash: one child committed, queue lost.
        processor.on_return_committed(jobs[0].payload)
        processor.queue = ReturnQueue()
        reenqueued = processor.recover(ctx.locked_bids)
        assert reenqueued == 1
        remaining = processor.queue.get()
        assert remaining.bid_id == jobs[1].bid_id
