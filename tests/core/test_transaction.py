"""The transaction object: ids, signing, serialisation, integrity."""

import pytest

from repro.common.errors import SchemaValidationError, ValidationError
from repro.core.builders import build_create, build_transfer
from repro.core.transaction import Input, Output, OutputRef, Transaction
from repro.crypto.keys import keypair_from_string

ALICE = keypair_from_string("alice")
BOB = keypair_from_string("bob")


class TestSigningAndIds:
    def test_sign_sets_id(self):
        transaction = build_create(ALICE, {"name": "widget"})
        assert transaction.tx_id is None
        transaction.sign([ALICE])
        assert transaction.tx_id is not None
        assert transaction.verify_id()

    def test_id_is_content_hash(self):
        left = build_create(ALICE, {"name": "widget"}).sign([ALICE])
        right = build_create(ALICE, {"name": "widget"}).sign([ALICE])
        assert left.tx_id == right.tx_id  # deterministic signing => same id

    def test_different_content_different_id(self):
        left = build_create(ALICE, {"name": "widget"}).sign([ALICE])
        right = build_create(ALICE, {"name": "gadget"}).sign([ALICE])
        assert left.tx_id != right.tx_id

    def test_signatures_verify(self):
        transaction = build_create(ALICE, {"name": "w"}).sign([ALICE])
        assert transaction.verify_signatures()

    def test_wrong_signer_raises(self):
        transaction = build_create(ALICE, {"name": "w"})
        with pytest.raises(ValidationError):
            transaction.sign([BOB])

    def test_tampered_asset_breaks_id(self):
        transaction = build_create(ALICE, {"name": "w"}).sign([ALICE])
        payload = transaction.to_dict()
        payload["asset"]["data"]["name"] = "tampered"
        assert not Transaction.from_dict(payload).verify_id()

    def test_tampered_output_breaks_signature(self):
        transaction = build_create(ALICE, {"name": "w"}).sign([ALICE])
        payload = transaction.to_dict()
        payload["outputs"][0]["public_keys"] = [BOB.public_key]
        payload["outputs"][0]["condition"]["public_keys"] = [BOB.public_key]
        parsed = Transaction.from_dict(payload)
        assert not parsed.verify_signatures()

    def test_unsigned_serialisation_rejected(self):
        with pytest.raises(ValidationError):
            build_create(ALICE, {"name": "w"}).to_dict()


class TestSerialisation:
    def test_roundtrip(self):
        transaction = build_create(ALICE, {"name": "w"}, amount=5).sign([ALICE])
        payload = transaction.to_dict()
        rebuilt = Transaction.from_dict(payload)
        assert rebuilt.to_dict() == payload

    def test_roundtrip_transfer(self):
        create = build_create(ALICE, {"name": "w"}).sign([ALICE])
        transfer = build_transfer(
            ALICE, [(create.tx_id, 0, 1)], create.tx_id, [(BOB.public_key, 1)]
        ).sign([ALICE])
        rebuilt = Transaction.from_dict(transfer.to_dict())
        assert rebuilt.verify_id()
        assert rebuilt.verify_signatures()
        assert rebuilt.spent_refs() == [OutputRef(create.tx_id, 0)]

    def test_from_dict_malformed(self):
        with pytest.raises(SchemaValidationError):
            Transaction.from_dict({"operation": "CREATE"})

    def test_size_bytes_grows_with_content(self):
        small = build_create(ALICE, {"name": "w"}).sign([ALICE])
        big = build_create(ALICE, {"name": "w", "fill": "x" * 2000}).sign([ALICE])
        assert big.size_bytes() > small.size_bytes() + 1500


class TestAccessors:
    def test_asset_id_for_genesis_is_own_id(self):
        create = build_create(ALICE, {"name": "w"}).sign([ALICE])
        assert create.asset_id() == create.tx_id

    def test_asset_id_for_transfer_is_link(self):
        create = build_create(ALICE, {"name": "w"}).sign([ALICE])
        transfer = build_transfer(
            ALICE, [(create.tx_id, 0, 1)], create.tx_id, [(BOB.public_key, 1)]
        ).sign([ALICE])
        assert transfer.asset_id() == create.tx_id

    def test_repr_contains_operation(self):
        transaction = build_create(ALICE, {"name": "w"}).sign([ALICE])
        assert "CREATE" in repr(transaction)

    def test_output_for_owner_roundtrip(self):
        output = Output.for_owner(ALICE.public_key, 3, owners_before=[BOB.public_key])
        rebuilt = Output.from_dict(output.to_dict())
        assert rebuilt.amount == 3
        assert rebuilt.owners_before == [BOB.public_key]

    def test_input_roundtrip_with_null_fulfills(self):
        item = Input(owners_before=[ALICE.public_key], fulfills=None)
        rebuilt = Input.from_dict(item.to_dict())
        assert rebuilt.fulfills is None
