"""Transaction workflows (Definition 5)."""

import pytest

from repro.common.errors import WorkflowError
from repro.core.builders import build_accept_bid, build_bid, build_create, build_request, build_transfer
from repro.core.workflow import (
    MARKETPLACE_WORKFLOWS,
    WorkflowEngine,
    WorkflowSpec,
    WorkflowTrace,
)
from repro.crypto.keys import ReservedAccounts, keypair_from_string

ALICE = keypair_from_string("alice")
BOB = keypair_from_string("bob")
SALLY = keypair_from_string("sally")
RESERVED = ReservedAccounts()


class TestWorkflowSpec:
    def test_exact_match(self):
        spec = WorkflowSpec("ct", ("CREATE", "TRANSFER"))
        assert spec.matches(["CREATE", "TRANSFER"])
        assert not spec.matches(["CREATE"])
        assert not spec.matches(["CREATE", "TRANSFER", "TRANSFER"])

    def test_repeatable_position(self):
        spec = WorkflowSpec("auction", ("CREATE", "BID", "ACCEPT_BID"), repeatable=frozenset({1}))
        assert spec.matches(["CREATE", "BID", "ACCEPT_BID"])
        assert spec.matches(["CREATE", "BID", "BID", "BID", "ACCEPT_BID"])
        assert not spec.matches(["CREATE", "ACCEPT_BID"])

    def test_marketplace_workflows_registered(self):
        names = {spec.name for spec in MARKETPLACE_WORKFLOWS}
        assert "reverse-auction" in names
        assert "create-transfer" in names


class TestWorkflowEngine:
    def payloads_for_auction(self):
        create = build_create(ALICE, {"capabilities": ["3d-print"]}).sign([ALICE])
        request = build_request(SALLY, ["3d-print"]).sign([SALLY])
        bid = build_bid(
            ALICE, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)],
            RESERVED.escrow.public_key,
        ).sign([ALICE])
        accept = build_accept_bid(SALLY, request.tx_id, bid).sign([SALLY])
        transfer = build_transfer(
            SALLY, [(accept.tx_id, 0, 1)], bid.tx_id, [(SALLY.public_key, 1)]
        ).sign([SALLY])
        return [create, request, bid, accept, transfer]

    def test_reverse_auction_classified(self):
        engine = WorkflowEngine()
        payloads = [t.to_dict() for t in self.payloads_for_auction()]
        # REQUEST starts its own chain; the canonical paper sequence
        # begins at CREATE with the REQUEST woven in.
        spec = engine.classify(payloads)
        assert spec.name == "reverse-auction"

    def test_create_transfer_classified(self):
        engine = WorkflowEngine()
        create = build_create(ALICE, {"n": 1}).sign([ALICE])
        transfer = build_transfer(
            ALICE, [(create.tx_id, 0, 1)], create.tx_id, [(BOB.public_key, 1)]
        ).sign([ALICE])
        spec = engine.classify([create.to_dict(), transfer.to_dict()])
        assert spec.name == "create-transfer"

    def test_single_create_classified(self):
        engine = WorkflowEngine()
        create = build_create(ALICE, {"n": 1}).sign([ALICE])
        assert engine.classify([create.to_dict()]).name == "create"

    def test_unknown_shape_rejected(self):
        engine = WorkflowEngine()
        request = build_request(SALLY, ["x"]).sign([SALLY])
        with pytest.raises(WorkflowError):
            engine.classify([request.to_dict(), request.to_dict()])

    def test_empty_sequence_rejected(self):
        with pytest.raises(WorkflowError):
            WorkflowEngine().classify([])

    def test_head_must_have_null_input(self):
        engine = WorkflowEngine()
        create = build_create(ALICE, {"n": 1}).sign([ALICE])
        transfer = build_transfer(
            ALICE, [(create.tx_id, 0, 1)], create.tx_id, [(BOB.public_key, 1)]
        ).sign([ALICE])
        # Register a spec that would structurally allow TRANSFER first.
        engine.register(WorkflowSpec("bad", ("TRANSFER",)))
        with pytest.raises(WorkflowError):
            engine.classify([transfer.to_dict()])

    def test_inputs_must_come_from_the_workflow(self):
        engine = WorkflowEngine()
        create_a = build_create(ALICE, {"n": 1}).sign([ALICE])
        create_b = build_create(ALICE, {"n": 2}).sign([ALICE])
        transfer_of_b = build_transfer(
            ALICE, [(create_b.tx_id, 0, 1)], create_b.tx_id, [(BOB.public_key, 1)]
        ).sign([ALICE])
        with pytest.raises(WorkflowError):
            engine.classify([create_a.to_dict(), transfer_of_b.to_dict()])

    def test_custom_spec_registration(self):
        engine = WorkflowEngine()
        engine.register(WorkflowSpec("mint-only", ("CREATE", "CREATE"), repeatable=frozenset({1})))
        create_1 = build_create(ALICE, {"n": 1}).sign([ALICE])
        create_2 = build_create(ALICE, {"n": 2}).sign([ALICE])
        # CREATE-CREATE isn't a marketplace workflow, but is now registered.
        spec = engine.classify([create_1.to_dict(), create_2.to_dict()])
        assert spec.name == "mint-only"


class TestWorkflowTrace:
    def test_groups_by_asset(self):
        trace = WorkflowTrace()
        create = build_create(ALICE, {"n": 1}).sign([ALICE])
        transfer = build_transfer(
            ALICE, [(create.tx_id, 0, 1)], create.tx_id, [(BOB.public_key, 1)]
        ).sign([ALICE])
        trace.observe(create.to_dict())
        trace.observe(transfer.to_dict())
        assert trace.operations_for(create.tx_id) == ["CREATE", "TRANSFER"]
