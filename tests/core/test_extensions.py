"""INTEREST / PRE_REQUEST extension types, end to end."""

import pytest

from repro.common.errors import SchemaValidationError, ValidationError
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.core.context import ValidationContext
from repro.core.extensions import (
    build_interest,
    build_pre_request,
    interest_type,
    pre_request_type,
    register_marketplace_extensions,
)
from repro.core.validation import TransactionValidator
from repro.crypto.keys import ReservedAccounts, keypair_from_string
from repro.schema import default_registry
from repro.storage.database import make_smartchaindb_database

ALICE = keypair_from_string("alice")
SALLY = keypair_from_string("sally")


@pytest.fixture()
def ledger():
    database = make_smartchaindb_database()
    ctx = ValidationContext(database, ReservedAccounts())
    validator = TransactionValidator()
    register_marketplace_extensions(validator)

    def commit(transaction):
        database.collection("transactions").insert_one(transaction.to_dict())
        return transaction

    return ctx, validator, commit


class TestSchemas:
    def test_interest_schema_loaded(self):
        assert default_registry().validator_for("INTEREST") is not None

    def test_pre_request_schema_loaded(self):
        assert default_registry().validator_for("PRE_REQUEST") is not None

    def test_interest_requires_reference(self):
        transaction = build_interest(ALICE, "r" * 64).sign([ALICE])
        payload = transaction.to_dict()
        payload.pop("references")
        with pytest.raises(SchemaValidationError):
            default_registry().validate_transaction(payload)


class TestInterestSemantics:
    def test_valid_interest(self, ledger):
        ctx, validator, commit = ledger
        from repro.core.builders import build_request

        request = commit(build_request(SALLY, ["cap"]).sign([SALLY]))
        interest = build_interest(ALICE, request.tx_id).sign([ALICE])
        validator.validate(ctx, interest.to_dict())

    def test_interest_requires_committed_request(self, ledger):
        ctx, validator, commit = ledger
        interest = build_interest(ALICE, "9" * 64).sign([ALICE])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, interest.to_dict())

    def test_duplicate_interest_rejected(self, ledger):
        ctx, validator, commit = ledger
        from repro.core.builders import build_request

        request = commit(build_request(SALLY, ["cap"]).sign([SALLY]))
        commit(build_interest(ALICE, request.tx_id).sign([ALICE]))
        duplicate = build_interest(ALICE, request.tx_id, metadata={"again": True}).sign([ALICE])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, duplicate.to_dict())

    def test_other_supplier_may_register(self, ledger):
        ctx, validator, commit = ledger
        from repro.core.builders import build_request

        request = commit(build_request(SALLY, ["cap"]).sign([SALLY]))
        commit(build_interest(ALICE, request.tx_id).sign([ALICE]))
        bob = keypair_from_string("bob")
        second = build_interest(bob, request.tx_id).sign([bob])
        validator.validate_semantics(ctx, second.to_dict())


class TestPreRequestSemantics:
    def test_valid_pre_request(self, ledger):
        ctx, validator, commit = ledger
        draft = build_pre_request(SALLY, ["3d-print"]).sign([SALLY])
        validator.validate(ctx, draft.to_dict())

    def test_requires_capabilities(self, ledger):
        ctx, validator, commit = ledger
        draft = build_pre_request(SALLY, ["x"])
        draft.asset["data"]["capabilities"] = []
        draft.sign([SALLY])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, draft.to_dict())


class TestClusterIntegration:
    def test_extension_types_commit_on_cluster(self):
        cluster = SmartchainCluster(ClusterConfig(n_validators=4, enable_extensions=True))
        driver = cluster.driver
        request = driver.prepare_request(SALLY, ["cap"])
        cluster.submit_and_settle(request)
        interest = build_interest(ALICE, request.tx_id).sign([ALICE])
        record = cluster.submit_and_settle(interest)
        assert record.committed_at is not None
        draft = build_pre_request(SALLY, ["next-gen-cap"]).sign([SALLY])
        record = cluster.submit_and_settle(draft)
        assert record.committed_at is not None

    def test_extensions_off_by_default(self):
        cluster = SmartchainCluster(ClusterConfig(n_validators=4))
        driver = cluster.driver
        request = driver.prepare_request(SALLY, ["cap"])
        cluster.submit_and_settle(request)
        interest = build_interest(ALICE, request.tx_id).sign([ALICE])
        outcomes = []
        cluster.submit_payload(interest.to_dict(), callback=lambda s, d: outcomes.append(s))
        cluster.run()
        assert outcomes == ["rejected"]

    def test_declarative_type_objects(self):
        assert interest_type().operation == "INTEREST"
        assert pre_request_type().operation == "PRE_REQUEST"
