"""Group-controlled assets: threshold (multi-signature) conditions.

The formal model's multi-signature strings ``ms_{i,j,k}`` — "an asset is
controlled by a group of entities who must sign transactions on the
asset" (Section 3.1).  These tests drive a 2-of-3 asset through the full
validation stack.
"""

import pytest

from repro.common.errors import ValidationError
from repro.core.context import ValidationContext
from repro.core.transaction import Input, Output, OutputRef, Transaction
from repro.core.validation import TransactionValidator
from repro.crypto.conditions import Condition
from repro.crypto.keys import ReservedAccounts, keypair_from_string
from repro.storage.database import make_smartchaindb_database

BOARD = [keypair_from_string(f"board-member-{index}") for index in range(3)]
BUYER = keypair_from_string("buyer")


@pytest.fixture()
def ledger():
    database = make_smartchaindb_database()
    ctx = ValidationContext(database, ReservedAccounts())
    validator = TransactionValidator()

    def commit(transaction):
        database.collection("transactions").insert_one(transaction.to_dict())
        return transaction

    return ctx, validator, commit


def group_create() -> Transaction:
    """CREATE whose single output needs 2-of-3 board signatures to spend."""
    condition = Condition.for_group([member.public_key for member in BOARD], threshold=2)
    transaction = Transaction(
        operation="CREATE",
        asset={"data": {"name": "corporate-treasury-asset"}},
        inputs=[Input(owners_before=[BOARD[0].public_key], fulfills=None)],
        outputs=[
            Output(
                condition=condition,
                amount=1,
                public_keys=[member.public_key for member in BOARD],
            )
        ],
        metadata=None,
    )
    return transaction.sign([BOARD[0]])


def group_spend(create: Transaction, signers: list) -> Transaction:
    """TRANSFER of the group asset to the buyer, signed by ``signers``."""
    transaction = Transaction(
        operation="TRANSFER",
        asset={"id": create.tx_id},
        inputs=[
            Input(
                owners_before=[keypair.public_key for keypair in signers],
                fulfills=OutputRef(create.tx_id, 0),
            )
        ],
        outputs=[Output.for_owner(BUYER.public_key, 1)],
        metadata=None,
    )
    return transaction.sign(list(signers))


class TestGroupAssets:
    def test_group_create_validates(self, ledger):
        ctx, validator, commit = ledger
        create = group_create()
        validator.validate(ctx, create.to_dict())
        assert create.outputs[0].condition.type_name == "threshold-sha-256"

    def test_two_of_three_spend_accepted(self, ledger):
        ctx, validator, commit = ledger
        create = commit(group_create())
        spend = group_spend(create, [BOARD[0], BOARD[2]])
        validator.validate(ctx, spend.to_dict())

    def test_all_three_spend_accepted(self, ledger):
        ctx, validator, commit = ledger
        create = commit(group_create())
        spend = group_spend(create, list(BOARD))
        validator.validate(ctx, spend.to_dict())

    def test_single_signer_rejected(self, ledger):
        ctx, validator, commit = ledger
        create = commit(group_create())
        spend = group_spend(create, [BOARD[1]])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, spend.to_dict())

    def test_outsider_signatures_do_not_count(self, ledger):
        ctx, validator, commit = ledger
        create = commit(group_create())
        outsiders = [keypair_from_string("mallory-1"), keypair_from_string("mallory-2")]
        transaction = Transaction(
            operation="TRANSFER",
            asset={"id": create.tx_id},
            inputs=[
                Input(
                    owners_before=[keypair.public_key for keypair in outsiders],
                    fulfills=OutputRef(create.tx_id, 0),
                )
            ],
            outputs=[Output.for_owner(BUYER.public_key, 1)],
            metadata=None,
        )
        transaction.sign(outsiders)
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, transaction.to_dict())

    def test_group_asset_end_to_end_on_cluster(self):
        from repro.core.cluster import ClusterConfig, SmartchainCluster

        cluster = SmartchainCluster(ClusterConfig(n_validators=4, seed=61))
        create = group_create()
        record = cluster.submit_and_settle(create)
        assert record.committed_at is not None
        spend = group_spend(create, [BOARD[0], BOARD[1]])
        record = cluster.submit_and_settle(spend)
        assert record.committed_at is not None
        server = cluster.any_server()
        assert len(server.outputs_for(BUYER.public_key)) == 1
