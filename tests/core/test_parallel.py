"""Speculative parallel validation: access sets, conflict groups, lanes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parallel import (
    AccessSet,
    ConflictScheduler,
    access_set_of,
    parallel_validation_cost,
)


def payload(tx_id: str, spends=(), references=(), asset_id=None, operation="TRANSFER"):
    return {
        "id": tx_id,
        "operation": operation,
        "asset": {"id": asset_id} if asset_id else {"data": {}},
        "inputs": [
            {"fulfills": {"transaction_id": spent, "output_index": 0}}
            for spent in spends
        ]
        or [{"fulfills": None}],
        "references": list(references),
    }


class TestAccessSets:
    def test_spent_outputs_are_writes(self):
        access = access_set_of(payload("t1", spends=["a" * 64]))
        assert f"utxo:{'a' * 64}:0" in access.writes

    def test_references_are_reads(self):
        access = access_set_of(payload("t1", references=["r" * 64]))
        assert f"tx:{'r' * 64}" in access.reads

    def test_accept_bid_writes_its_rfq(self):
        access = access_set_of(
            payload("t1", references=["r" * 64], operation="ACCEPT_BID")
        )
        assert f"rfq:{'r' * 64}" in access.writes

    def test_conflict_rules(self):
        writer = AccessSet("w", frozenset({"x"}), frozenset())
        reader = AccessSet("r", frozenset(), frozenset({"x"}))
        other = AccessSet("o", frozenset({"y"}), frozenset({"z"}))
        assert writer.conflicts_with(reader)
        assert reader.conflicts_with(writer)
        assert not reader.conflicts_with(other)
        assert not writer.conflicts_with(other)

    def test_read_read_is_not_a_conflict(self):
        left = AccessSet("l", frozenset(), frozenset({"x"}))
        right = AccessSet("r", frozenset(), frozenset({"x"}))
        assert not left.conflicts_with(right)


class TestConflictGroups:
    def test_independent_transactions_separate(self):
        scheduler = ConflictScheduler()
        groups = scheduler.conflict_groups(
            [payload("t1", spends=["a" * 64]), payload("t2", spends=["b" * 64])]
        )
        assert len(groups) == 2

    def test_double_spend_grouped(self):
        scheduler = ConflictScheduler()
        groups = scheduler.conflict_groups(
            [payload("t1", spends=["a" * 64]), payload("t2", spends=["a" * 64])]
        )
        assert len(groups) == 1

    def test_reader_after_writer_grouped(self):
        scheduler = ConflictScheduler()
        # t2 (ACCEPT_BID) writes rfq:R; t3 (BID) reads tx:R — different
        # namespaces; use a BID spending what t1 created instead.
        groups = scheduler.conflict_groups(
            [
                payload("t1", asset_id="c" * 64),
                payload("t2", spends=["d" * 64], asset_id="c" * 64),
            ]
        )
        assert len(groups) == 1  # shared asset lineage

    def test_transitive_chaining(self):
        scheduler = ConflictScheduler()
        groups = scheduler.conflict_groups(
            [
                payload("t1", spends=["a" * 64]),
                payload("t2", spends=["a" * 64, "b" * 64]),
                payload("t3", spends=["b" * 64]),
                payload("t4", spends=["z" * 64]),
            ]
        )
        sizes = sorted(len(group) for group in groups)
        assert sizes == [1, 3]

    def test_competing_accepts_on_same_rfq_grouped(self):
        scheduler = ConflictScheduler()
        groups = scheduler.conflict_groups(
            [
                payload("t1", references=["r" * 64], operation="ACCEPT_BID",
                        spends=["a" * 64]),
                payload("t2", references=["r" * 64], operation="ACCEPT_BID",
                        spends=["b" * 64]),
            ]
        )
        assert len(groups) == 1

    def test_bids_on_same_rfq_stay_parallel(self):
        """Many BIDs referencing one REQUEST only *read* it — they can
        validate in parallel (the higher-abstraction win over raw
        read/write sets)."""
        scheduler = ConflictScheduler()
        groups = scheduler.conflict_groups(
            [
                payload(f"t{index}", spends=[f"{index:064d}"[-64:]],
                        references=["r" * 64], operation="BID")
                for index in range(5)
            ]
        )
        assert len(groups) == 5


class TestScheduling:
    def test_parallel_cost_is_max_lane(self):
        scheduler = ConflictScheduler(lanes=2)
        payloads = [payload(f"t{index}", spends=[f"{index:064d}"[-64:]]) for index in range(4)]
        schedule = scheduler.schedule(payloads, cost_of=lambda p: 1.0)
        assert schedule.serial_cost == 4.0
        assert schedule.parallel_cost == 2.0
        assert schedule.speedup == 2.0

    def test_conflicting_block_gets_no_speedup(self):
        scheduler = ConflictScheduler(lanes=4)
        payloads = [payload(f"t{index}", spends=["a" * 64]) for index in range(4)]
        schedule = scheduler.schedule(payloads, cost_of=lambda p: 1.0)
        assert schedule.parallel_cost == schedule.serial_cost

    def test_single_lane_is_serial(self):
        payloads = [payload(f"t{index}", spends=[f"{index:064d}"[-64:]]) for index in range(3)]
        assert parallel_validation_cost(payloads, lambda p: 1.0, lanes=1) == 3.0

    def test_lanes_must_be_positive(self):
        with pytest.raises(ValueError):
            ConflictScheduler(lanes=0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=12),
        st.integers(min_value=1, max_value=6),
    )
    def test_parallel_never_exceeds_serial_property(self, spend_keys, lanes):
        """max-lane cost <= serial cost, and >= serial/lanes (work bound)."""
        payloads = [
            payload(f"{index:064d}"[-64:], spends=[f"{key:064d}"[-64:]])
            for index, key in enumerate(spend_keys)
        ]
        serial = parallel_validation_cost(payloads, lambda p: 1.0, lanes=1)
        parallel = parallel_validation_cost(payloads, lambda p: 1.0, lanes=lanes)
        assert parallel <= serial + 1e-9
        assert parallel >= serial / lanes - 1e-9
