"""SmartchainServer: ABCI surface, storage effects, queries."""

import pytest

from repro.consensus.abci import envelope_for
from repro.consensus.types import Block
from repro.core.builders import build_create, build_request, build_transfer
from repro.core.server import ServerCostModel, SmartchainServer
from repro.crypto.keys import ReservedAccounts, keypair_from_string

ALICE = keypair_from_string("alice")
BOB = keypair_from_string("bob")
SALLY = keypair_from_string("sally")


@pytest.fixture()
def server():
    return SmartchainServer("node-0", ReservedAccounts())


def envelope_of(transaction, now=0.0):
    payload = transaction.to_dict()
    return envelope_for(payload, payload["id"], transaction.size_bytes(), now=now)


def commit_block(server, envelopes, height=1):
    delivered = [envelope for envelope in envelopes if server.deliver_tx(envelope)]
    block = Block.build(height, 0, "node-0", list(envelopes), "0" * 64)
    server.commit_block(block, delivered)
    return delivered


class TestAbciSurface:
    def test_check_tx_accepts_valid(self, server):
        create = build_create(ALICE, {"name": "w"}).sign([ALICE])
        assert server.check_tx(envelope_of(create))

    def test_check_tx_rejects_tampered(self, server):
        create = build_create(ALICE, {"name": "w"}).sign([ALICE])
        payload = create.to_dict()
        payload["metadata"] = {"injected": True}
        assert not server.check_tx(envelope_for(payload, payload["id"], 100))

    def test_deliver_then_commit_persists(self, server):
        create = build_create(ALICE, {"name": "w"}).sign([ALICE])
        commit_block(server, [envelope_of(create)])
        assert server.get_transaction(create.tx_id) is not None
        assert server.database.collection("blocks").count() == 1

    def test_deliver_rejects_invalid(self, server):
        transfer = build_transfer(
            ALICE, [("a" * 64, 0, 1)], "a" * 64, [(BOB.public_key, 1)]
        ).sign([ALICE])
        assert not server.deliver_tx(envelope_of(transfer))
        assert server.stats["rejected"] == 1

    def test_utxo_maintenance(self, server):
        create = build_create(ALICE, {"name": "w"}).sign([ALICE])
        commit_block(server, [envelope_of(create)], height=1)
        assert len(server.outputs_for(ALICE.public_key)) == 1
        transfer = build_transfer(
            ALICE, [(create.tx_id, 0, 1)], create.tx_id, [(BOB.public_key, 1)]
        ).sign([ALICE])
        commit_block(server, [envelope_of(transfer)], height=2)
        assert server.outputs_for(ALICE.public_key) == []
        assert len(server.outputs_for(BOB.public_key)) == 1

    def test_assets_collection_populated(self, server):
        create = build_create(ALICE, {"name": "w"}).sign([ALICE])
        commit_block(server, [envelope_of(create)])
        asset = server.database.collection("assets").find_one({"id": create.tx_id})
        assert asset["data"]["name"] == "w"

    def test_intra_block_double_spend_filtered(self, server):
        create = build_create(ALICE, {"name": "w"}).sign([ALICE])
        commit_block(server, [envelope_of(create)], height=1)
        spend_1 = build_transfer(
            ALICE, [(create.tx_id, 0, 1)], create.tx_id, [(BOB.public_key, 1)]
        ).sign([ALICE])
        spend_2 = build_transfer(
            ALICE, [(create.tx_id, 0, 1)], create.tx_id, [(SALLY.public_key, 1)]
        ).sign([ALICE])
        delivered = commit_block(server, [envelope_of(spend_1), envelope_of(spend_2)], height=2)
        assert len(delivered) == 1  # the second is a double spend


class TestQueries:
    def test_open_requests_by_capability(self, server):
        """The Section 2.1 query smart contracts cannot answer."""
        request = build_request(SALLY, ["3d-print", "iso-9001"]).sign([SALLY])
        other = build_request(SALLY, ["cnc"]).sign([SALLY])
        commit_block(server, [envelope_of(request), envelope_of(other)])
        found = server.open_requests(capability="3d-print")
        assert [item["id"] for item in found] == [request.tx_id]
        assert len(server.open_requests()) == 2

    def test_receiver_validate_raises_on_bad(self, server):
        from repro.common.errors import ValidationError

        transfer = build_transfer(
            ALICE, [("b" * 64, 0, 1)], "b" * 64, [(BOB.public_key, 1)]
        ).sign([ALICE])
        with pytest.raises(ValidationError):
            server.receiver_validate(transfer.to_dict())


class TestCostModel:
    def test_validation_cost_nearly_flat_in_size(self):
        """The structural property behind SCDB's flat latency curves."""
        costs = ServerCostModel()
        small = costs.validation_cost("BID", 500)
        large = costs.validation_cost("BID", 2_000)
        assert large < small * 1.2

    def test_per_operation_ordering(self):
        costs = ServerCostModel()
        assert costs.validation_cost("ACCEPT_BID", 500) > costs.validation_cost("CREATE", 500)

    def test_commit_cost_scales_with_bytes(self):
        costs = ServerCostModel()
        assert costs.block_commit_cost(1_000_000) > costs.block_commit_cost(1_000)
