"""End-to-end cluster integration: the full reverse auction, crashes, recovery."""

import pytest

from repro.consensus.tendermint import tendermint_config
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import keypair_from_string

ALICE = keypair_from_string("alice")
BOB = keypair_from_string("bob")
SALLY = keypair_from_string("sally")


class TestBasicFlow:
    def test_create_commits(self, cluster):
        create = cluster.driver.prepare_create(ALICE, {"name": "w"})
        record = cluster.submit_and_settle(create)
        assert record.committed_at is not None
        assert record.latency > 0

    def test_rejected_transaction_reported(self, cluster):
        transfer = cluster.driver.prepare_transfer(
            ALICE, [("c" * 64, 0, 1)], "c" * 64, [(BOB.public_key, 1)]
        )
        outcomes = []
        cluster.submit_payload(transfer.to_dict(), callback=lambda s, d: outcomes.append(s))
        cluster.run()
        assert outcomes == ["rejected"]
        assert cluster.records[transfer.tx_id].rejected is not None

    def test_commit_callback_fires(self, cluster):
        create = cluster.driver.prepare_create(ALICE, {"name": "w"})
        outcomes = []
        cluster.submit_payload(create.to_dict(), callback=lambda s, d: outcomes.append(s))
        cluster.run()
        assert outcomes == ["committed"]

    def test_state_replicated_across_nodes(self, cluster):
        create = cluster.driver.prepare_create(ALICE, {"name": "w"})
        cluster.submit_and_settle(create)
        for server in cluster.servers.values():
            assert server.get_transaction(create.tx_id) is not None


class TestReverseAuctionEndToEnd:
    def test_full_workflow(self, auction_fixture):
        cluster, request, assets, requester = auction_fixture
        driver = cluster.driver
        bids = []
        for owner, create in assets:
            bid = driver.prepare_bid(owner, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)])
            cluster.submit_payload(bid.to_dict())
            bids.append(bid)
        cluster.run()

        accept = driver.prepare_accept_bid(requester, request.tx_id, bids[0])
        cluster.submit_payload(accept.to_dict())
        cluster.run()

        server = cluster.any_server()
        # Winning asset reached the requester; loser got a RETURN.
        assert len(server.outputs_for(requester.public_key)) >= 2  # request output + won bid
        loser = assets[1][0]
        loser_outputs = server.outputs_for(loser.public_key)
        assert len(loser_outputs) == 1
        # Definition 2: the parent is fully committed once children are.
        assert server.nested.recovery.is_fully_committed(accept.tx_id)

    def test_returns_created_for_every_loser(self, auction_fixture):
        cluster, request, assets, requester = auction_fixture
        driver = cluster.driver
        bids = []
        for owner, create in assets:
            bid = driver.prepare_bid(owner, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)])
            cluster.submit_payload(bid.to_dict())
            bids.append(bid)
        cluster.run()
        accept = driver.prepare_accept_bid(requester, request.tx_id, bids[1])
        cluster.submit_payload(accept.to_dict())
        cluster.run()
        server = cluster.any_server()
        returns = server.database.collection("transactions").find({"operation": "RETURN"})
        assert len(returns) == len(bids) - 1

    def test_second_accept_rejected(self, auction_fixture):
        """The Section 4.2 security scenario: re-accepting must fail."""
        cluster, request, assets, requester = auction_fixture
        driver = cluster.driver
        bids = []
        for owner, create in assets:
            bid = driver.prepare_bid(owner, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)])
            cluster.submit_payload(bid.to_dict())
            bids.append(bid)
        cluster.run()
        first = driver.prepare_accept_bid(requester, request.tx_id, bids[0])
        cluster.submit_and_settle(first)
        second = driver.prepare_accept_bid(
            requester, request.tx_id, bids[1], metadata={"attempt": 2}
        )
        outcomes = []
        cluster.submit_payload(second.to_dict(), callback=lambda s, d: outcomes.append((s, d)))
        cluster.run()
        assert outcomes[0][0] == "rejected"


class TestCrashRecovery:
    def test_receiver_crash_during_returns_recovers(self):
        """Crash case 2.b: receiver dies after the parent commits; RETURNs
        are re-enqueued from the recovery log when it comes back."""
        cluster = SmartchainCluster(
            ClusterConfig(
                n_validators=4,
                seed=11,
                consensus=tendermint_config(max_block_txs=8, propose_timeout=0.5),
                worker_poll_interval=0.5,  # slow workers: crash wins the race
            )
        )
        driver = cluster.driver
        creates = []
        for index, keypair in enumerate([ALICE, BOB]):
            create = driver.prepare_create(keypair, {"capabilities": ["cap"], "n": index})
            cluster.submit_payload(create.to_dict())
            creates.append((keypair, create))
        cluster.run()
        request = driver.prepare_request(SALLY, ["cap"])
        cluster.submit_and_settle(request)
        bids = []
        for keypair, create in creates:
            bid = driver.prepare_bid(keypair, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)])
            cluster.submit_payload(bid.to_dict())
            bids.append(bid)
        cluster.run()

        accept = driver.prepare_accept_bid(SALLY, request.tx_id, bids[0])
        cluster.submit_payload(accept.to_dict())
        # Let the parent commit but crash the accept's receiver before its
        # slow workers drain the RETURN queue.
        cluster.loop.run(until=cluster.loop.clock.now + 0.45)
        receiver = cluster._accept_receivers.get(accept.tx_id)
        committed = cluster.records[accept.tx_id].committed_at is not None
        if not (receiver and committed):
            pytest.skip("accept did not settle inside the crash window under this seed")
        cluster.failures.crash_now(receiver)
        cluster.run(duration=5.0)
        cluster.failures.recover_now(receiver)
        cluster.run(duration=30.0)
        cluster.run()

        server = cluster.any_server()
        returns = server.database.collection("transactions").find({"operation": "RETURN"})
        assert len(returns) == 1
        loser = BOB if bids[0].inputs[0].owners_before == [ALICE.public_key] else ALICE
        assert len(server.outputs_for(loser.public_key)) == 1

    def test_cluster_survives_minority_crash(self, cluster):
        cluster.failures.crash_now(cluster.engine.validator_order[-1])
        create = cluster.driver.prepare_create(ALICE, {"name": "resilient"})
        record = cluster.submit_and_settle(create)
        assert record.committed_at is not None

    def test_submission_to_crashed_receiver_rerouted(self, cluster):
        dead = cluster.engine.validator_order[0]
        cluster.failures.crash_now(dead)
        create = cluster.driver.prepare_create(ALICE, {"name": "reroute"})
        record = cluster.submit_payload(create.to_dict(), receiver=dead)
        cluster.run()
        assert cluster.records[create.tx_id].committed_at is not None
