"""Property-based end-to-end invariants of the reverse auction.

For any number of bidders and any winner choice, a settled auction must
conserve assets: the winner's asset reaches the requester, every loser
gets exactly their asset back, escrow ends empty, and the recovery log
closes (Definition 2).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus.tendermint import tendermint_config
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import keypair_from_string

SALLY = keypair_from_string("sally")


def run_auction(n_bidders: int, winner_index: int, seed: int):
    cluster = SmartchainCluster(
        ClusterConfig(
            n_validators=4,
            seed=seed,
            consensus=tendermint_config(max_block_txs=8, propose_timeout=0.5),
        )
    )
    driver = cluster.driver
    bidders = [keypair_from_string(f"prop-bidder-{index}") for index in range(n_bidders)]
    creates = []
    for index, keypair in enumerate(bidders):
        create = driver.prepare_create(keypair, {"capabilities": ["cap"], "n": index})
        cluster.submit_payload(create.to_dict())
        creates.append(create)
    cluster.run()
    request = driver.prepare_request(SALLY, ["cap"])
    cluster.submit_and_settle(request)
    bids = []
    for keypair, create in zip(bidders, creates):
        bid = driver.prepare_bid(keypair, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)])
        cluster.submit_payload(bid.to_dict())
        bids.append(bid)
    cluster.run()
    accept = driver.prepare_accept_bid(SALLY, request.tx_id, bids[winner_index])
    cluster.submit_payload(accept.to_dict())
    cluster.run()
    return cluster, bidders, accept


@settings(max_examples=8, deadline=None)
@given(
    n_bidders=st.integers(min_value=1, max_value=5),
    winner_seed=st.integers(min_value=0, max_value=10_000),
)
def test_settled_auction_conserves_assets_property(n_bidders, winner_seed):
    winner_index = winner_seed % n_bidders
    cluster, bidders, accept = run_auction(n_bidders, winner_index, seed=winner_seed)
    server = cluster.any_server()

    # Every submitted transaction settled one way or the other.
    assert all(
        record.committed_at is not None or record.rejected is not None
        for record in cluster.records.values()
    )
    # Exactly n-1 RETURNs committed.
    returns = server.database.collection("transactions").count({"operation": "RETURN"})
    assert returns == n_bidders - 1
    # Losers hold exactly their returned asset; the winner holds nothing.
    for index, keypair in enumerate(bidders):
        holdings = server.outputs_for(keypair.public_key)
        if index == winner_index:
            assert holdings == []
        else:
            assert len(holdings) == 1
    # Requester holds the request output + the won asset.
    assert len(server.outputs_for(SALLY.public_key)) == 2
    # Escrow holds nothing once everything settles.
    assert server.outputs_for(cluster.reserved.escrow.public_key) == []
    # Definition 2 closes.
    assert server.nested.recovery.is_fully_committed(accept.tx_id)
    # All nodes agree on the chain.
    chains = {
        node_id: [block.block_id for block in validator.chain]
        for node_id, validator in cluster.engine.validators.items()
    }
    reference = max(chains.values(), key=len)
    for chain in chains.values():
        assert chain == reference[: len(chain)]
