"""Driver modes, callbacks, and template integration."""

import pytest

from repro.common.errors import ReproError
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import keypair_from_string

ALICE = keypair_from_string("alice")
BOB = keypair_from_string("bob")


@pytest.fixture()
def cluster():
    return SmartchainCluster(ClusterConfig(n_validators=4, seed=81))


class TestModes:
    def test_async_mode_fires_callback(self, cluster):
        create = cluster.driver.prepare_create(ALICE, {"n": 1})
        outcomes = []
        cluster.driver.submit(create, callback=lambda s, d: outcomes.append(s), mode="async")
        cluster.run()
        assert outcomes == ["committed"]

    def test_sync_mode_skips_callback(self, cluster):
        create = cluster.driver.prepare_create(ALICE, {"n": 2})
        outcomes = []
        cluster.driver.submit(create, callback=lambda s, d: outcomes.append(s), mode="sync")
        cluster.run()
        assert outcomes == []
        assert cluster.records[create.tx_id].committed_at is not None

    def test_unknown_mode_rejected(self, cluster):
        create = cluster.driver.prepare_create(ALICE, {"n": 3})
        with pytest.raises(ReproError):
            cluster.driver.submit(create, mode="turbo")

    def test_submit_accepts_raw_payload(self, cluster):
        create = cluster.driver.prepare_create(ALICE, {"n": 4})
        result = cluster.driver.submit(create.to_dict())
        assert result.accepted
        assert result.tx_id == create.tx_id

    def test_rejection_callback_carries_error(self, cluster):
        transfer = cluster.driver.prepare_transfer(
            ALICE, [("a" * 64, 0, 1)], "a" * 64, [(BOB.public_key, 1)]
        )
        details = []
        cluster.driver.submit(transfer, callback=lambda s, d: details.append((s, d)))
        cluster.run()
        status, detail = details[0]
        assert status == "rejected"
        assert "not committed" in detail


class TestTemplates:
    def test_prepare_bid_uses_cluster_escrow(self, cluster):
        create = cluster.driver.prepare_create(ALICE, {"capabilities": ["c"]})
        cluster.submit_and_settle(create)
        request = cluster.driver.prepare_request(BOB, ["c"])
        cluster.submit_and_settle(request)
        bid = cluster.driver.prepare_bid(
            ALICE, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)]
        )
        escrow_key = cluster.reserved.escrow.public_key
        assert bid.outputs[0].public_keys == [escrow_key]

    def test_prepare_accept_bid_accepts_payload_dict(self, cluster):
        create = cluster.driver.prepare_create(ALICE, {"capabilities": ["c"]})
        cluster.submit_and_settle(create)
        request = cluster.driver.prepare_request(BOB, ["c"])
        cluster.submit_and_settle(request)
        bid = cluster.driver.prepare_bid(
            ALICE, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)]
        )
        cluster.submit_and_settle(bid)
        accept = cluster.driver.prepare_accept_bid(BOB, request.tx_id, bid.to_dict())
        record = cluster.submit_and_settle(accept)
        assert record.committed_at is not None
