"""Driver-side redirect retry: placement rejections are not failures.

A payload refused because its home shard is mid-migration (or the
caller routed under a pre-cutover epoch) is still valid — the driver
absorbs those rejections and resubmits against fresh routing state with
bounded deterministic backoff.  Validity rejections must still reach
the caller untouched, and first time.
"""

from types import SimpleNamespace

import pytest

from repro.core.driver import Driver, is_redirect_rejection
from repro.crypto.keys import keypair_from_string
from repro.durability.node import DurabilityConfig
from repro.sharding.cluster import ShardedCluster, ShardedClusterConfig
from repro.sim.events import EventLoop


class TestRedirectClassifier:
    def test_markers_match(self):
        assert is_redirect_rejection("redirect:migrating:m-0001->shard-2")
        assert is_redirect_rejection("redirect:moved:shard-1")
        assert is_redirect_rejection(
            "routing epoch advanced to 4 (caller stamped 2); re-route and retry"
        )
        assert is_redirect_rejection("stale epoch 3")
        assert is_redirect_rejection("wrong shard for tx")

    def test_validity_errors_do_not_match(self):
        assert not is_redirect_rejection("input already spent")
        assert not is_redirect_rejection("invalid signature")
        assert not is_redirect_rejection("")
        assert not is_redirect_rejection(None)

    def test_exceptions_classify_via_str(self):
        assert is_redirect_rejection(ValueError("redirect:moved:shard-0"))
        assert not is_redirect_rejection(ValueError("schema violation"))


class ScriptedCluster:
    """Stub cluster: replies to each submit from a scripted outcome list."""

    def __init__(self, outcomes):
        self.loop = EventLoop()
        self.reserved = SimpleNamespace(
            escrow=SimpleNamespace(public_key="escrow-pk")
        )
        self.outcomes = list(outcomes)
        self.submits = []  # (sim_time, shard_hint)

    def submit_payload(self, payload, callback=None, shard_hint=None):
        self.submits.append((self.loop.clock.now, shard_hint))
        status, detail = self.outcomes.pop(0)
        if callback is not None:
            callback(status, detail)
        return SimpleNamespace(
            tx_id=payload.get("id", ""), accepted=True, error=None
        )


def scripted_driver(outcomes):
    cluster = ScriptedCluster(outcomes)
    return Driver(cluster), cluster


PAYLOAD = {"id": "tx-under-test", "operation": "TRANSFER"}


class TestRetryLoop:
    def test_redirect_then_commit(self):
        driver, cluster = scripted_driver(
            [("rejected", "redirect:moved:shard-1"), ("committed", PAYLOAD)]
        )
        seen = []
        driver.submit(PAYLOAD, callback=lambda s, d: seen.append(s))
        cluster.loop.run_until_idle()
        assert seen == ["committed"]
        assert len(cluster.submits) == 2
        assert driver.retry_log[PAYLOAD["id"]] == 1

    def test_backoff_doubles_and_hint_is_dropped(self):
        driver, cluster = scripted_driver(
            [
                ("rejected", "redirect:moved:a"),
                ("rejected", "stale epoch"),
                ("committed", PAYLOAD),
            ]
        )
        driver.submit(PAYLOAD, callback=lambda s, d: None, shard_hint="shard-9")
        cluster.loop.run_until_idle()
        times = [t for t, _hint in cluster.submits]
        hints = [hint for _t, hint in cluster.submits]
        base = driver.redirect_backoff
        assert times[1] - times[0] == pytest.approx(base)
        assert times[2] - times[1] == pytest.approx(base * 2)
        assert hints == ["shard-9", None, None]

    def test_retries_are_bounded(self):
        endless = [("rejected", "redirect:moved:x")] * 10
        driver, cluster = scripted_driver(endless)
        seen = []
        driver.submit(PAYLOAD, callback=lambda s, d: seen.append((s, d)))
        cluster.loop.run_until_idle()
        assert len(cluster.submits) == 1 + driver.redirect_retries
        assert seen == [("rejected", "redirect:moved:x")]
        assert driver.retry_log[PAYLOAD["id"]] == driver.redirect_retries

    def test_validity_rejection_is_not_retried(self):
        driver, cluster = scripted_driver([("rejected", "input already spent")])
        seen = []
        driver.submit(PAYLOAD, callback=lambda s, d: seen.append((s, d)))
        cluster.loop.run_until_idle()
        assert len(cluster.submits) == 1
        assert seen == [("rejected", "input already spent")]
        assert PAYLOAD["id"] not in driver.retry_log

    def test_zero_retries_disables_the_wrapper(self):
        driver, cluster = scripted_driver([("rejected", "redirect:moved:x")])
        driver.redirect_retries = 0
        seen = []
        driver.submit(PAYLOAD, callback=lambda s, d: seen.append(s))
        cluster.loop.run_until_idle()
        assert len(cluster.submits) == 1
        assert seen == ["rejected"]

    def test_sync_mode_never_retries(self):
        driver, cluster = scripted_driver([("rejected", "redirect:moved:x")])
        driver.submit(PAYLOAD, mode="sync")
        cluster.loop.run_until_idle()
        assert len(cluster.submits) == 1


class TestAgainstARealMigration:
    def test_spend_fenced_mid_drain_lands_after_cutover(self):
        """End to end: a spend refused by the migration fence retries
        itself past the cutover and commits on the new home shard."""
        cluster = ShardedCluster(
            ShardedClusterConfig(
                n_shards=2,
                seed=23,
                durability=DurabilityConfig(snapshot_interval=60),
            )
        )
        alice = keypair_from_string("alice")
        bob = keypair_from_string("bob")
        creates = []
        for index in range(8):
            tx = cluster.driver.prepare_create(alice, {"capabilities": [f"c{index}"]})
            cluster.submit_payload(tx.to_dict())
            creates.append(tx)
        cluster.run()
        outcomes = []

        def fenced_spend(mid, phase):
            if phase != "drain" or outcomes:
                return
            doc = cluster.migrator.journal_record(mid)
            live = sorted(tx_id for tx_id, _i in doc.get("planned_refs") or [])
            if not live:
                return
            create = next(c for c in creates if c.tx_id == live[0])
            transfer = cluster.driver.prepare_transfer(
                alice, [(create.tx_id, 0, 1)], create.tx_id, [(bob.public_key, 1)]
            )
            cluster.driver.submit(
                transfer, callback=lambda s, d: outcomes.append((s, d))
            )

        cluster.migrator.phase_listeners.append(fenced_spend)
        cluster.reshard("shard-0")
        cluster.run()
        assert outcomes, "no planned ref was spendable during drain"
        status, detail = outcomes[-1]
        assert status == "committed", detail
