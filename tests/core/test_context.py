"""ValidationContext: the ledger view behind Algorithms 2-3."""

import pytest

from repro.common.errors import DoubleSpendError, InputDoesNotExistError
from repro.core.builders import build_bid, build_create, build_request, build_transfer
from repro.core.context import ValidationContext
from repro.core.transaction import OutputRef
from repro.crypto.keys import ReservedAccounts, keypair_from_string
from repro.storage.database import make_smartchaindb_database

ALICE = keypair_from_string("alice")
BOB = keypair_from_string("bob")
SALLY = keypair_from_string("sally")


@pytest.fixture()
def ledger():
    database = make_smartchaindb_database()
    reserved = ReservedAccounts()
    ctx = ValidationContext(database, reserved)

    def commit(transaction):
        database.collection("transactions").insert_one(transaction.to_dict())
        return transaction

    return ctx, commit, reserved


class TestLookups:
    def test_get_tx_and_require(self, ledger):
        ctx, commit, _ = ledger
        create = commit(build_create(ALICE, {"n": 1}).sign([ALICE]))
        assert ctx.get_tx(create.tx_id)["id"] == create.tx_id
        assert ctx.require_committed(create.tx_id, "test")["id"] == create.tx_id

    def test_require_missing_raises(self, ledger):
        ctx, _, _ = ledger
        with pytest.raises(InputDoesNotExistError):
            ctx.require_committed("0" * 64, "missing")

    def test_staged_tx_visible(self, ledger):
        ctx, _, _ = ledger
        create = build_create(ALICE, {"n": 1}).sign([ALICE])
        ctx.stage(create.to_dict())
        assert ctx.is_committed(create.tx_id)
        ctx.clear_staged()
        assert not ctx.is_committed(create.tx_id)

    def test_signer_of(self, ledger):
        ctx, commit, _ = ledger
        create = commit(build_create(ALICE, {"n": 1}).sign([ALICE]))
        assert ctx.signer_of(create.to_dict()) == ALICE.public_key

    def test_asset_lineage(self, ledger):
        ctx, commit, _ = ledger
        create = commit(build_create(ALICE, {"n": 1}).sign([ALICE]))
        transfer = commit(
            build_transfer(ALICE, [(create.tx_id, 0, 1)], create.tx_id,
                           [(BOB.public_key, 1)]).sign([ALICE])
        )
        assert ctx.asset_lineage_id(create.to_dict()) == create.tx_id
        assert ctx.asset_lineage_id(transfer.to_dict()) == create.tx_id


class TestSpendTracking:
    def test_output_spender_none_for_fresh(self, ledger):
        ctx, commit, _ = ledger
        create = commit(build_create(ALICE, {"n": 1}).sign([ALICE]))
        assert ctx.output_spender(OutputRef(create.tx_id, 0)) is None

    def test_committed_spend_detected(self, ledger):
        ctx, commit, _ = ledger
        create = commit(build_create(ALICE, {"n": 1}).sign([ALICE]))
        transfer = commit(
            build_transfer(ALICE, [(create.tx_id, 0, 1)], create.tx_id,
                           [(BOB.public_key, 1)]).sign([ALICE])
        )
        assert ctx.output_spender(OutputRef(create.tx_id, 0)) == transfer.tx_id
        with pytest.raises(DoubleSpendError):
            ctx.require_unspent(OutputRef(create.tx_id, 0))

    def test_index_discriminates(self, ledger):
        ctx, commit, _ = ledger
        create = commit(build_create(ALICE, {"n": 1}, recipients=[
            (ALICE.public_key, 1), (ALICE.public_key, 1)]).sign([ALICE]))
        commit(
            build_transfer(ALICE, [(create.tx_id, 0, 1)], create.tx_id,
                           [(BOB.public_key, 1)]).sign([ALICE])
        )
        assert ctx.output_spender(OutputRef(create.tx_id, 0)) is not None
        assert ctx.output_spender(OutputRef(create.tx_id, 1)) is None

    def test_staged_spend_detected(self, ledger):
        ctx, commit, _ = ledger
        create = commit(build_create(ALICE, {"n": 1}).sign([ALICE]))
        transfer = build_transfer(
            ALICE, [(create.tx_id, 0, 1)], create.tx_id, [(BOB.public_key, 1)]
        ).sign([ALICE])
        ctx.stage(transfer.to_dict())
        assert ctx.output_spender(OutputRef(create.tx_id, 0)) == "<staged>"


class TestMarketQueries:
    def test_bids_and_locked_bids(self, ledger):
        ctx, commit, reserved = ledger
        create = commit(build_create(ALICE, {"capabilities": ["c"]}).sign([ALICE]))
        request = commit(build_request(SALLY, ["c"]).sign([SALLY]))
        bid = commit(
            build_bid(ALICE, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)],
                      reserved.escrow.public_key).sign([ALICE])
        )
        assert len(ctx.bids_for_request(request.tx_id)) == 1
        assert len(ctx.locked_bids(request.tx_id)) == 1
        # Spend the escrow output -> no longer locked.
        spend = commit(
            build_transfer(reserved.escrow, [(bid.tx_id, 0, 1)], create.tx_id,
                           [(ALICE.public_key, 1)]).sign([reserved.escrow])
        )
        assert ctx.locked_bids(request.tx_id) == []

    def test_accept_for_request(self, ledger):
        ctx, commit, reserved = ledger
        assert ctx.accept_for_request("9" * 64) is None
