"""The declarative condition DSL (future-work extension)."""

import pytest

from repro.common.errors import ValidationError
from repro.core.builders import build_create, build_request
from repro.core.context import ValidationContext
from repro.core.predicates import (
    Predicate,
    all_of,
    any_of,
    declarative_type,
    genesis_inputs,
    id_integral,
    metadata_field_present,
    min_inputs,
    min_references,
    negate,
    references_committed_operation,
    signatures_valid,
)
from repro.core.transaction import Transaction
from repro.crypto.keys import ReservedAccounts, keypair_from_string
from repro.storage.database import make_smartchaindb_database

ALICE = keypair_from_string("alice")
SALLY = keypair_from_string("sally")


@pytest.fixture()
def ctx():
    return ValidationContext(make_smartchaindb_database(), ReservedAccounts())


@pytest.fixture()
def signed_create() -> Transaction:
    return build_create(ALICE, {"name": "w"}).sign([ALICE])


def always_fails(label="boom"):
    def check(ctx, transaction):
        raise ValidationError("nope")

    return Predicate(label, check)


def always_passes(label="ok"):
    return Predicate(label, lambda ctx, transaction: None)


class TestCombinators:
    def test_all_of_passes_when_all_pass(self, ctx, signed_create):
        all_of(always_passes(), always_passes())(ctx, signed_create)

    def test_all_of_fails_on_first_failure(self, ctx, signed_create):
        with pytest.raises(ValidationError):
            all_of(always_passes(), always_fails())(ctx, signed_create)

    def test_any_of_passes_when_one_passes(self, ctx, signed_create):
        any_of(always_fails(), always_passes())(ctx, signed_create)

    def test_any_of_fails_when_all_fail(self, ctx, signed_create):
        with pytest.raises(ValidationError) as info:
            any_of(always_fails("a"), always_fails("b"))(ctx, signed_create)
        assert "no branch satisfied" in str(info.value)

    def test_negate(self, ctx, signed_create):
        negate(always_fails())(ctx, signed_create)
        with pytest.raises(ValidationError):
            negate(always_passes())(ctx, signed_create)

    def test_failure_carries_label(self, ctx, signed_create):
        with pytest.raises(ValidationError) as info:
            always_fails("my-label")(ctx, signed_create)
        assert "my-label" in str(info.value)

    def test_holds_boolean_view(self, ctx, signed_create):
        assert always_passes().holds(ctx, signed_create)
        assert not always_fails().holds(ctx, signed_create)


class TestPrimitives:
    def test_min_inputs(self, ctx, signed_create):
        min_inputs(1)(ctx, signed_create)
        with pytest.raises(ValidationError):
            min_inputs(2)(ctx, signed_create)

    def test_min_references(self, ctx, signed_create):
        with pytest.raises(ValidationError):
            min_references(1)(ctx, signed_create)

    def test_id_integral(self, ctx, signed_create):
        id_integral()(ctx, signed_create)
        signed_create.metadata = {"tampered": True}
        with pytest.raises(ValidationError):
            id_integral()(ctx, signed_create)

    def test_signatures_valid(self, ctx, signed_create):
        signatures_valid()(ctx, signed_create)
        signed_create.inputs[0].fulfillment.signatures.clear()
        with pytest.raises(ValidationError):
            signatures_valid()(ctx, signed_create)

    def test_genesis_inputs(self, ctx, signed_create):
        genesis_inputs()(ctx, signed_create)

    def test_references_committed_operation(self, ctx):
        request = build_request(SALLY, ["cap"]).sign([SALLY])
        ctx._database.collection("transactions").insert_one(request.to_dict())
        probe = build_create(ALICE, {"n": 1})
        probe.references = [request.tx_id]
        probe.sign([ALICE])
        references_committed_operation("REQUEST")(ctx, probe)
        with pytest.raises(ValidationError):
            references_committed_operation("BID")(ctx, probe)

    def test_metadata_field_present(self, ctx):
        probe = build_create(ALICE, {"n": 1}, metadata={"price": 10}).sign([ALICE])
        metadata_field_present("price")(ctx, probe)
        with pytest.raises(ValidationError):
            metadata_field_present("deadline")(ctx, probe)


class TestDeclarativeType:
    def test_composed_type_validates(self, ctx, signed_create):
        custom = declarative_type(
            "CREATE", [id_integral(), genesis_inputs(), signatures_valid()]
        )
        custom.validate(ctx, signed_create)
        assert custom.operation == "CREATE"

    def test_composed_type_rejects(self, ctx, signed_create):
        custom = declarative_type("CREATE", [min_references(2)])
        with pytest.raises(ValidationError):
            custom.validate(ctx, signed_create)

    def test_plugs_into_validator_registry(self, ctx, signed_create):
        from repro.core.validation import TransactionValidator

        validator = TransactionValidator()
        # Replace the CREATE validator with a DSL-composed equivalent.
        validator.register(
            declarative_type("CREATE", [id_integral(), genesis_inputs(), signatures_valid()])
        )
        validator.validate_semantics(ctx, signed_create.to_dict())
