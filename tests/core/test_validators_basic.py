"""CREATE / TRANSFER / REQUEST semantic validation, incl. double spends."""

import pytest

from repro.common.errors import (
    AmountError,
    DoubleSpendError,
    InputDoesNotExistError,
    ValidationError,
)
from repro.core.builders import build_create, build_request, build_transfer
from repro.core.context import ValidationContext
from repro.core.validation import TransactionValidator
from repro.crypto.keys import ReservedAccounts, keypair_from_string
from repro.storage.database import make_smartchaindb_database

ALICE = keypair_from_string("alice")
BOB = keypair_from_string("bob")
CAROL = keypair_from_string("carol")


@pytest.fixture()
def ledger():
    database = make_smartchaindb_database()
    ctx = ValidationContext(database, ReservedAccounts())
    validator = TransactionValidator()

    def commit(transaction):
        database.collection("transactions").insert_one(transaction.to_dict())
        return transaction

    return ctx, validator, commit


class TestCreate:
    def test_valid_create(self, ledger):
        ctx, validator, _ = ledger
        transaction = build_create(ALICE, {"name": "w"}).sign([ALICE])
        validator.validate(ctx, transaction.to_dict())

    def test_create_with_recipients_split(self, ledger):
        ctx, validator, _ = ledger
        transaction = build_create(
            ALICE, {"name": "w"}, recipients=[(BOB.public_key, 2), (CAROL.public_key, 3)]
        ).sign([ALICE])
        parsed = validator.validate(ctx, transaction.to_dict())
        assert sum(output.amount for output in parsed.outputs) == 5

    def test_create_spending_an_output_rejected(self, ledger):
        ctx, validator, commit = ledger
        base = commit(build_create(ALICE, {"name": "w"}).sign([ALICE]))
        bad = build_create(ALICE, {"name": "w2"})
        from repro.core.transaction import OutputRef

        bad.inputs[0].fulfills = OutputRef(base.tx_id, 0)
        bad.sign([ALICE])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, bad.to_dict())

    def test_create_requires_data_document(self, ledger):
        ctx, validator, _ = ledger
        transaction = build_create(ALICE, {"ok": True}).sign([ALICE])
        transaction.asset = {"data": None}
        transaction.tx_id = transaction.compute_id()
        # Re-sign over the mutated body.
        transaction.inputs[0].fulfillment.signatures.clear()
        transaction.sign([ALICE])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, transaction.to_dict())


class TestTransfer:
    def setup_asset(self, commit, amount=1):
        return commit(build_create(ALICE, {"name": "w"}, amount=amount).sign([ALICE]))

    def test_valid_transfer(self, ledger):
        ctx, validator, commit = ledger
        create = self.setup_asset(commit)
        transfer = build_transfer(
            ALICE, [(create.tx_id, 0, 1)], create.tx_id, [(BOB.public_key, 1)]
        ).sign([ALICE])
        validator.validate(ctx, transfer.to_dict())

    def test_spending_unknown_tx_rejected(self, ledger):
        ctx, validator, _ = ledger
        transfer = build_transfer(
            ALICE, [("f" * 64, 0, 1)], "f" * 64, [(BOB.public_key, 1)]
        ).sign([ALICE])
        with pytest.raises(InputDoesNotExistError):
            validator.validate_semantics(ctx, transfer.to_dict())

    def test_bad_output_index_rejected(self, ledger):
        ctx, validator, commit = ledger
        create = self.setup_asset(commit)
        transfer = build_transfer(
            ALICE, [(create.tx_id, 5, 1)], create.tx_id, [(BOB.public_key, 1)]
        ).sign([ALICE])
        with pytest.raises(InputDoesNotExistError):
            validator.validate_semantics(ctx, transfer.to_dict())

    def test_double_spend_rejected(self, ledger):
        """Native double-spend protection — the paper's headline for
        native TRANSFER vs hand-rolled contract checks."""
        ctx, validator, commit = ledger
        create = self.setup_asset(commit)
        first = build_transfer(
            ALICE, [(create.tx_id, 0, 1)], create.tx_id, [(BOB.public_key, 1)]
        ).sign([ALICE])
        commit(first)
        second = build_transfer(
            ALICE, [(create.tx_id, 0, 1)], create.tx_id, [(CAROL.public_key, 1)]
        ).sign([ALICE])
        with pytest.raises(DoubleSpendError):
            validator.validate_semantics(ctx, second.to_dict())

    def test_intra_block_double_spend_rejected(self, ledger):
        ctx, validator, commit = ledger
        create = self.setup_asset(commit)
        first = build_transfer(
            ALICE, [(create.tx_id, 0, 1)], create.tx_id, [(BOB.public_key, 1)]
        ).sign([ALICE])
        validator.validate_semantics(ctx, first.to_dict())
        ctx.stage(first.to_dict())
        second = build_transfer(
            ALICE, [(create.tx_id, 0, 1)], create.tx_id, [(CAROL.public_key, 1)]
        ).sign([ALICE])
        with pytest.raises(DoubleSpendError):
            validator.validate_semantics(ctx, second.to_dict())

    def test_non_owner_cannot_spend(self, ledger):
        ctx, validator, commit = ledger
        create = self.setup_asset(commit)
        theft = build_transfer(
            BOB, [(create.tx_id, 0, 1)], create.tx_id, [(BOB.public_key, 1)]
        ).sign([BOB])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, theft.to_dict())

    def test_amount_conservation(self, ledger):
        ctx, validator, commit = ledger
        create = self.setup_asset(commit, amount=5)
        inflating = build_transfer(
            ALICE, [(create.tx_id, 0, 5)], create.tx_id, [(BOB.public_key, 7)]
        ).sign([ALICE])
        with pytest.raises(AmountError):
            validator.validate_semantics(ctx, inflating.to_dict())

    def test_split_transfer_balances(self, ledger):
        ctx, validator, commit = ledger
        create = self.setup_asset(commit, amount=5)
        split = build_transfer(
            ALICE,
            [(create.tx_id, 0, 5)],
            create.tx_id,
            [(BOB.public_key, 2), (CAROL.public_key, 3)],
        ).sign([ALICE])
        validator.validate(ctx, split.to_dict())

    def test_wrong_asset_lineage_rejected(self, ledger):
        ctx, validator, commit = ledger
        create_a = commit(build_create(ALICE, {"name": "a"}).sign([ALICE]))
        create_b = commit(build_create(ALICE, {"name": "b"}).sign([ALICE]))
        crossed = build_transfer(
            ALICE, [(create_a.tx_id, 0, 1)], create_b.tx_id, [(BOB.public_key, 1)]
        ).sign([ALICE])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, crossed.to_dict())

    def test_repeated_input_rejected(self, ledger):
        ctx, validator, commit = ledger
        create = self.setup_asset(commit, amount=2)
        doubled = build_transfer(
            ALICE,
            [(create.tx_id, 0, 1), (create.tx_id, 0, 1)],
            create.tx_id,
            [(BOB.public_key, 4)],
        ).sign([ALICE])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, doubled.to_dict())

    def test_chained_transfers(self, ledger):
        ctx, validator, commit = ledger
        create = self.setup_asset(commit)
        hop1 = commit(
            build_transfer(
                ALICE, [(create.tx_id, 0, 1)], create.tx_id, [(BOB.public_key, 1)]
            ).sign([ALICE])
        )
        hop2 = build_transfer(
            BOB, [(hop1.tx_id, 0, 1)], create.tx_id, [(CAROL.public_key, 1)]
        ).sign([BOB])
        validator.validate(ctx, hop2.to_dict())


class TestRequest:
    def test_valid_request(self, ledger):
        ctx, validator, _ = ledger
        request = build_request(ALICE, ["3d-print"]).sign([ALICE])
        validator.validate(ctx, request.to_dict())

    def test_empty_capabilities_rejected(self, ledger):
        ctx, validator, _ = ledger
        request = build_request(ALICE, ["x"]).sign([ALICE])
        request.asset["data"]["capabilities"] = []
        request.inputs[0].fulfillment.signatures.clear()
        request.sign([ALICE])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, request.to_dict())

    def test_future_deadline_accepted(self, ledger):
        ctx, validator, _ = ledger
        ctx.now = 10.0
        request = build_request(ALICE, ["x"], metadata={"deadline": 100.0}).sign([ALICE])
        validator.validate_semantics(ctx, request.to_dict())

    def test_past_deadline_rejected(self, ledger):
        ctx, validator, _ = ledger
        ctx.now = 200.0
        request = build_request(ALICE, ["x"], metadata={"deadline": 100.0}).sign([ALICE])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, request.to_dict())

    def test_non_numeric_deadline_rejected(self, ledger):
        ctx, validator, _ = ledger
        request = build_request(ALICE, ["x"], metadata={"deadline": "tomorrow"}).sign([ALICE])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, request.to_dict())
