"""BID validation: every C_BID condition from Definition 3 / Algorithm 2."""

import pytest

from repro.common.errors import (
    InputDoesNotExistError,
    InsufficientCapabilitiesError,
    ValidationError,
)
from repro.core.builders import build_bid, build_create, build_request
from repro.core.context import ValidationContext
from repro.core.transaction import Output
from repro.core.validation import TransactionValidator
from repro.crypto.keys import ReservedAccounts, keypair_from_string
from repro.storage.database import make_smartchaindb_database

ALICE = keypair_from_string("alice")
SALLY = keypair_from_string("sally")


@pytest.fixture()
def market():
    """Committed asset (alice) + committed REQUEST (sally)."""
    database = make_smartchaindb_database()
    reserved = ReservedAccounts()
    ctx = ValidationContext(database, reserved)
    validator = TransactionValidator()

    def commit(transaction):
        database.collection("transactions").insert_one(transaction.to_dict())
        return transaction

    create = commit(
        build_create(ALICE, {"capabilities": ["3d-print", "iso-9001"], "name": "printer"}).sign(
            [ALICE]
        )
    )
    request = commit(build_request(SALLY, ["3d-print"]).sign([SALLY]))
    return ctx, validator, commit, create, request, reserved


def make_bid(create, request, reserved, bidder=ALICE):
    return build_bid(
        bidder, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)], reserved.escrow.public_key
    ).sign([bidder])


class TestValidBid:
    def test_happy_path(self, market):
        ctx, validator, commit, create, request, reserved = market
        bid = make_bid(create, request, reserved)
        validator.validate(ctx, bid.to_dict())

    def test_example_from_paper(self, market):
        """Fig. 6: the BID's input spends Alice's CREATE output, the output
        is owned by ESCROW, and the reference names Sally's REQUEST."""
        ctx, validator, commit, create, request, reserved = market
        bid = make_bid(create, request, reserved)
        payload = bid.to_dict()
        assert payload["references"] == [request.tx_id]
        assert payload["outputs"][0]["public_keys"] == [reserved.escrow.public_key]
        assert payload["inputs"][0]["fulfills"]["transaction_id"] == create.tx_id


class TestConditions:
    def test_cbid2_missing_reference(self, market):
        ctx, validator, commit, create, request, reserved = market
        bid = make_bid(create, request, reserved)
        bid.references = []
        bid.inputs[0].fulfillment.signatures.clear()
        bid.sign([ALICE])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, bid.to_dict())

    def test_cbid3_reference_must_be_committed_request(self, market):
        ctx, validator, commit, create, request, reserved = market
        bid = make_bid(create, request, reserved)
        bid.references = ["e" * 64]
        bid.inputs[0].fulfillment.signatures.clear()
        bid.sign([ALICE])
        with pytest.raises(InputDoesNotExistError):
            validator.validate_semantics(ctx, bid.to_dict())

    def test_cbid3_reference_to_non_request_rejected(self, market):
        ctx, validator, commit, create, request, reserved = market
        bid = make_bid(create, request, reserved)
        bid.references = [create.tx_id]  # a CREATE, not a REQUEST
        bid.inputs[0].fulfillment.signatures.clear()
        bid.sign([ALICE])
        with pytest.raises(InputDoesNotExistError):
            validator.validate_semantics(ctx, bid.to_dict())

    def test_cbid3_two_requests_rejected(self, market):
        ctx, validator, commit, create, request, reserved = market
        second_request = commit(build_request(SALLY, ["iso-9001"]).sign([SALLY]))
        bid = make_bid(create, request, reserved)
        bid.references = [request.tx_id, second_request.tx_id]
        bid.inputs[0].fulfillment.signatures.clear()
        bid.sign([ALICE])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, bid.to_dict())

    def test_cbid5_signature_required(self, market):
        ctx, validator, commit, create, request, reserved = market
        bid = make_bid(create, request, reserved)
        payload = bid.to_dict()
        payload["inputs"][0]["fulfillment"]["signatures"] = {}
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, payload)

    def test_cbid6_output_must_go_to_escrow(self, market):
        ctx, validator, commit, create, request, reserved = market
        bid = make_bid(create, request, reserved)
        bid.outputs = [Output.for_owner(ALICE.public_key, 1)]  # back to self
        bid.inputs[0].fulfillment.signatures.clear()
        bid.sign([ALICE])
        with pytest.raises(ValidationError) as info:
            validator.validate_semantics(ctx, bid.to_dict())
        assert "CBID.6" in str(info.value)

    def test_cbid7_insufficient_capabilities(self, market):
        ctx, validator, commit, create, request, reserved = market
        demanding = commit(build_request(SALLY, ["3d-print", "titanium"]).sign([SALLY]))
        bid = make_bid(create, demanding, reserved)
        with pytest.raises(InsufficientCapabilitiesError) as info:
            validator.validate_semantics(ctx, bid.to_dict())
        assert "titanium" in str(info.value)

    def test_cbid7_superset_ok(self, market):
        ctx, validator, commit, create, request, reserved = market
        modest = commit(build_request(SALLY, ["iso-9001"]).sign([SALLY]))
        bid = make_bid(create, modest, reserved)
        validator.validate_semantics(ctx, bid.to_dict())

    def test_cbid8_must_spend_committed_output(self, market):
        ctx, validator, commit, create, request, reserved = market
        bid = build_bid(
            ALICE, request.tx_id, create.tx_id, [("d" * 64, 0, 1)], reserved.escrow.public_key
        )
        bid.asset = {"id": create.tx_id}
        bid.sign([ALICE])
        with pytest.raises(InputDoesNotExistError):
            validator.validate_semantics(ctx, bid.to_dict())

    def test_bid_asset_double_escrow_rejected(self, market):
        """The same asset cannot back two live bids (escrow spend conflict)."""
        ctx, validator, commit, create, request, reserved = market
        first = commit(make_bid(create, request, reserved))
        second_request = commit(build_request(SALLY, ["iso-9001"]).sign([SALLY]))
        second = build_bid(
            ALICE,
            second_request.tx_id,
            create.tx_id,
            [(create.tx_id, 0, 1)],
            reserved.escrow.public_key,
        ).sign([ALICE])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, second.to_dict())

    def test_bid_on_expired_request_rejected(self, market):
        ctx, validator, commit, create, request, reserved = market
        expiring = commit(
            build_request(SALLY, ["3d-print"], metadata={"deadline": 50.0}).sign([SALLY])
        )
        ctx.now = 100.0
        bid = make_bid(create, expiring, reserved)
        with pytest.raises(ValidationError) as info:
            validator.validate_semantics(ctx, bid.to_dict())
        assert "deadline" in str(info.value)

    def test_bid_before_deadline_ok(self, market):
        ctx, validator, commit, create, request, reserved = market
        expiring = commit(
            build_request(SALLY, ["3d-print"], metadata={"deadline": 50.0}).sign([SALLY])
        )
        ctx.now = 10.0
        bid = make_bid(create, expiring, reserved)
        validator.validate_semantics(ctx, bid.to_dict())

    def test_stranger_cannot_bid_with_others_asset(self, market):
        ctx, validator, commit, create, request, reserved = market
        bid = build_bid(
            SALLY, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)],
            reserved.escrow.public_key,
        ).sign([SALLY])
        with pytest.raises(ValidationError):
            validator.validate_semantics(ctx, bid.to_dict())
