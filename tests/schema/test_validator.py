"""The JSON-Schema-subset validator."""

import pytest

from repro.common.errors import SchemaValidationError
from repro.schema.validator import SchemaValidator, validate_language_key


class TestTypes:
    @pytest.mark.parametrize(
        "schema,value",
        [
            ({"type": "string"}, "text"),
            ({"type": "integer"}, 5),
            ({"type": "number"}, 2.5),
            ({"type": "number"}, 3),
            ({"type": "boolean"}, True),
            ({"type": "null"}, None),
            ({"type": "array"}, [1]),
            ({"type": "object"}, {"a": 1}),
            ({"type": ["string", "null"]}, None),
        ],
    )
    def test_accepts(self, schema, value):
        SchemaValidator(schema).validate(value)

    @pytest.mark.parametrize(
        "schema,value",
        [
            ({"type": "string"}, 5),
            ({"type": "integer"}, 2.5),
            ({"type": "integer"}, True),  # bool is not an integer here
            ({"type": "number"}, True),
            ({"type": "array"}, {"a": 1}),
            ({"type": "object"}, [1]),
        ],
    )
    def test_rejects(self, schema, value):
        assert not SchemaValidator(schema).is_valid(value)

    def test_unknown_type_errors(self):
        with pytest.raises(SchemaValidationError):
            SchemaValidator({"type": "widget"}).validate("x")


class TestConstraints:
    def test_enum(self):
        validator = SchemaValidator({"enum": ["CREATE", "TRANSFER"]})
        validator.validate("CREATE")
        assert not validator.is_valid("MINT")

    def test_const(self):
        validator = SchemaValidator({"const": "BID"})
        validator.validate("BID")
        assert not validator.is_valid("bid")

    def test_pattern(self):
        validator = SchemaValidator({"type": "string", "pattern": "^[0-9a-f]{4}$"})
        validator.validate("0abc")
        assert not validator.is_valid("0ABC")

    def test_lengths(self):
        validator = SchemaValidator({"type": "string", "minLength": 2, "maxLength": 3})
        validator.validate("ab")
        assert not validator.is_valid("a")
        assert not validator.is_valid("abcd")

    def test_numeric_bounds(self):
        validator = SchemaValidator({"type": "integer", "minimum": 1, "maximum": 10})
        validator.validate(1)
        validator.validate(10)
        assert not validator.is_valid(0)
        assert not validator.is_valid(11)

    def test_nullable(self):
        validator = SchemaValidator({"type": "object", "nullable": True})
        validator.validate(None)
        validator.validate({})


class TestObjectsAndArrays:
    def test_required(self):
        validator = SchemaValidator({"type": "object", "required": ["id"]})
        assert not validator.is_valid({})
        validator.validate({"id": 1})

    def test_additional_properties_false(self):
        validator = SchemaValidator(
            {"type": "object", "properties": {"a": {}}, "additionalProperties": False}
        )
        validator.validate({"a": 1})
        assert not validator.is_valid({"a": 1, "b": 2})

    def test_additional_properties_schema(self):
        validator = SchemaValidator(
            {"type": "object", "additionalProperties": {"type": "integer"}}
        )
        validator.validate({"any": 3})
        assert not validator.is_valid({"any": "text"})

    def test_items_and_bounds(self):
        validator = SchemaValidator(
            {"type": "array", "items": {"type": "integer"}, "minItems": 1, "maxItems": 2}
        )
        validator.validate([1])
        assert not validator.is_valid([])
        assert not validator.is_valid([1, 2, 3])
        assert not validator.is_valid(["x"])

    def test_error_paths_are_specific(self):
        validator = SchemaValidator(
            {
                "type": "object",
                "properties": {
                    "outputs": {"type": "array", "items": {"type": "object",
                                "properties": {"amount": {"type": "integer", "minimum": 1}}}}
                },
            }
        )
        with pytest.raises(SchemaValidationError) as info:
            validator.validate({"outputs": [{"amount": 0}]})
        assert "outputs[0].amount" in str(info.value)


class TestRefsAndCombinators:
    DEFS = {"digest": {"type": "string", "pattern": "^[0-9a-f]{4}$"}}

    def test_ref_resolution(self):
        validator = SchemaValidator({"$ref": "#/definitions/digest"}, definitions=self.DEFS)
        validator.validate("0a1b")
        assert not validator.is_valid("nope")

    def test_unresolvable_ref(self):
        validator = SchemaValidator({"$ref": "#/definitions/missing"}, definitions={})
        with pytest.raises(SchemaValidationError):
            validator.validate("x")

    def test_circular_ref_detected(self):
        definitions = {"a": {"$ref": "#/definitions/b"}, "b": {"$ref": "#/definitions/a"}}
        validator = SchemaValidator({"$ref": "#/definitions/a"}, definitions=definitions)
        with pytest.raises(SchemaValidationError):
            validator.validate("x")

    def test_any_of(self):
        validator = SchemaValidator({"anyOf": [{"type": "integer"}, {"type": "string"}]})
        validator.validate(1)
        validator.validate("x")
        assert not validator.is_valid([1])

    def test_all_of(self):
        validator = SchemaValidator(
            {"allOf": [{"type": "integer", "minimum": 1}, {"maximum": 5}]}
        )
        validator.validate(3)
        assert not validator.is_valid(6)


class TestLanguageKey:
    def test_operator_key_rejected(self):
        with pytest.raises(SchemaValidationError):
            validate_language_key({"metadata": {"$where": 1}}, "metadata")

    def test_dotted_key_rejected(self):
        with pytest.raises(SchemaValidationError):
            validate_language_key({"metadata": {"a.b": 1}}, "metadata")

    def test_language_key_must_be_string(self):
        with pytest.raises(SchemaValidationError):
            validate_language_key({"metadata": {"language": 5}}, "metadata")
        validate_language_key({"metadata": {"language": "en"}}, "metadata")

    def test_nested_structures_walked(self):
        with pytest.raises(SchemaValidationError):
            validate_language_key({"metadata": {"ok": [{"$bad": 1}]}}, "metadata")

    def test_absent_section_ok(self):
        validate_language_key({}, "metadata")
