"""Transaction schema registry (Algorithm 1 end to end)."""

import pytest

from repro.common.errors import SchemaValidationError, UnknownOperationError
from repro.core.builders import build_create, build_request
from repro.crypto.keys import keypair_from_string
from repro.schema import OPERATION_SCHEMAS, SchemaRegistry, default_registry

ALICE = keypair_from_string("alice")


def valid_create_payload() -> dict:
    return build_create(ALICE, {"name": "widget"}).sign([ALICE]).to_dict()


class TestRegistry:
    def test_all_operations_have_schemas(self):
        registry = SchemaRegistry()
        for operation in OPERATION_SCHEMAS:
            assert registry.validator_for(operation) is not None

    def test_default_registry_is_shared(self):
        assert default_registry() is default_registry()

    def test_unknown_operation(self):
        with pytest.raises(UnknownOperationError):
            default_registry().validator_for("MINT")

    def test_valid_create_passes(self):
        default_registry().validate_transaction(valid_create_payload())

    def test_valid_request_passes(self):
        payload = build_request(ALICE, ["3d-print"]).sign([ALICE]).to_dict()
        default_registry().validate_transaction(payload)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.pop("id"),
            lambda p: p.pop("outputs"),
            lambda p: p.__setitem__("id", "not-a-digest"),
            lambda p: p.__setitem__("version", "9.9"),
            lambda p: p.__setitem__("outputs", []),
            lambda p: p.__setitem__("extra_field", 1),
            lambda p: p["outputs"][0].__setitem__("amount", 0),
            lambda p: p["outputs"][0].__setitem__("amount", "one"),
            lambda p: p["inputs"][0].pop("fulfillment"),
        ],
    )
    def test_structural_mutations_rejected(self, mutate):
        payload = valid_create_payload()
        mutate(payload)
        with pytest.raises(SchemaValidationError):
            default_registry().validate_transaction(payload)

    def test_operation_outside_reserved_set_rejected(self):
        payload = valid_create_payload()
        payload["operation"] = "EXOTIC_OP"
        with pytest.raises(SchemaValidationError):
            default_registry().validate_transaction(payload)

    def test_metadata_language_key_checked(self):
        payload = valid_create_payload()
        payload["metadata"] = {"$injection": 1}
        with pytest.raises(SchemaValidationError):
            default_registry().validate_transaction(payload)

    def test_asset_data_language_key_checked(self):
        alice = ALICE
        transaction = build_create(alice, {"nested": {"a.b": 1}}).sign([alice])
        with pytest.raises(SchemaValidationError):
            default_registry().validate_transaction(transaction.to_dict())

    def test_non_dict_payload_rejected(self):
        with pytest.raises(SchemaValidationError):
            default_registry().validate_transaction("not a dict")

    def test_create_must_not_have_children(self):
        payload = valid_create_payload()
        payload["children"] = ["a" * 64]
        with pytest.raises(SchemaValidationError):
            default_registry().validate_transaction(payload)
