"""Marketplace analytics queries."""

import pytest

from repro.analytics import MarketplaceAnalytics
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import keypair_from_string

ALICE = keypair_from_string("alice")
BOB = keypair_from_string("bob")
SALLY = keypair_from_string("sally")


@pytest.fixture()
def settled_market():
    """A settled auction plus one open request."""
    cluster = SmartchainCluster(ClusterConfig(n_validators=4, seed=31))
    driver = cluster.driver
    creates = []
    for keypair in (ALICE, BOB):
        create = driver.prepare_create(keypair, {"capabilities": ["3d-print", "iso"]})
        cluster.submit_payload(create.to_dict())
        creates.append((keypair, create))
    cluster.run()
    request = driver.prepare_request(SALLY, ["3d-print"])
    cluster.submit_and_settle(request)
    bids = []
    for keypair, create in creates:
        bid = driver.prepare_bid(keypair, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)])
        cluster.submit_payload(bid.to_dict())
        bids.append(bid)
    cluster.run()
    accept = driver.prepare_accept_bid(SALLY, request.tx_id, bids[0])
    cluster.submit_and_settle(accept)
    open_request = driver.prepare_request(SALLY, ["cnc"], metadata={"batch": 2})
    cluster.submit_and_settle(open_request)
    analytics = MarketplaceAnalytics(cluster.any_server())
    return analytics, request, bids, accept, open_request, creates


class TestDiscovery:
    def test_open_requests_excludes_settled(self, settled_market):
        analytics, request, bids, accept, open_request, creates = settled_market
        open_ids = {item["id"] for item in analytics.open_requests()}
        assert open_request.tx_id in open_ids
        assert request.tx_id not in open_ids

    def test_request_summary(self, settled_market):
        analytics, request, bids, accept, open_request, creates = settled_market
        summary = analytics.request_summary(request.tx_id)
        assert summary.bid_count == 2
        assert summary.settled
        assert summary.winning_bid == bids[0].tx_id
        assert summary.requester == SALLY.public_key
        assert "3d-print" in summary.capabilities

    def test_capability_demand(self, settled_market):
        analytics, *_ = settled_market
        demand = analytics.capability_demand()
        assert demand["3d-print"] == 1
        assert demand["cnc"] == 1


class TestProvenance:
    def test_winning_asset_chain(self, settled_market):
        analytics, request, bids, accept, open_request, creates = settled_market
        winner_create = creates[0][1]
        steps = analytics.provenance(winner_create.tx_id)
        operations = [step.operation for step in steps]
        assert operations[0] == "CREATE"
        assert "BID" in operations
        assert "ACCEPT_BID" in operations
        # Final holder is the requester.
        assert SALLY.public_key in steps[-1].holders

    def test_losing_asset_returns_home(self, settled_market):
        analytics, request, bids, accept, open_request, creates = settled_market
        loser_create = creates[1][1]
        steps = analytics.provenance(loser_create.tx_id)
        assert steps[-1].operation == "RETURN"
        assert BOB.public_key in steps[-1].holders

    def test_holdings(self, settled_market):
        analytics, *_ = settled_market
        assert len(analytics.holdings(SALLY.public_key)) >= 2


class TestMarketStructure:
    def test_bid_competition(self, settled_market):
        analytics, request, *_ = settled_market
        assert analytics.bid_competition()[request.tx_id] == 2

    def test_settlement_rate(self, settled_market):
        analytics, *_ = settled_market
        assert analytics.settlement_rate() == pytest.approx(0.5)

    def test_operation_volume(self, settled_market):
        analytics, *_ = settled_market
        volume = analytics.operation_volume()
        assert volume["CREATE"] == 2
        assert volume["BID"] == 2
        assert volume["REQUEST"] == 2
        assert volume["ACCEPT_BID"] == 1
        assert volume["RETURN"] == 1
