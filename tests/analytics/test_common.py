"""Shared analytics helpers: malformed-input safety and exact spend walks."""

import pytest

from repro.analytics import ScanSource, custody_walk, tx_recipient, tx_requester
from repro.analytics.common import follow_spend
from repro.storage.collection import Collection


WELL_FORMED = {
    "id": "t1",
    "operation": "TRANSFER",
    "inputs": [{"owners_before": ["alice"], "fulfills": None}],
    "outputs": [
        {"public_keys": ["bob"], "amount": 2},
        {"public_keys": ["alice"], "amount": 1},
    ],
}

#: Every malformed shape a hostile client can submit: helpers must
#: return None for all of them, never raise (the fraud screen used to
#: crash on the first empty-inputs transaction it touched).
MALFORMED = [
    None,
    "not-a-dict",
    {},
    {"inputs": None},
    {"inputs": []},
    {"inputs": "nope"},
    {"inputs": [None]},
    {"inputs": ["nope"]},
    {"inputs": [{}]},
    {"inputs": [{"owners_before": None}]},
    {"inputs": [{"owners_before": []}]},
    {"inputs": [{"owners_before": "alice"}]},
    {"outputs": None},
    {"outputs": []},
    {"outputs": "nope"},
    {"outputs": [None]},
    {"outputs": [{}]},
    {"outputs": [{"public_keys": None}]},
    {"outputs": [{"public_keys": []}]},
    {"outputs": [{"public_keys": "bob"}]},
]


class TestPartyExtraction:
    def test_requester_and_recipient_of_a_well_formed_tx(self):
        assert tx_requester(WELL_FORMED) == "alice"
        assert tx_recipient(WELL_FORMED) == "bob"
        assert tx_recipient(WELL_FORMED, output_index=1) == "alice"

    @pytest.mark.parametrize("payload", MALFORMED)
    def test_malformed_payloads_yield_none_not_a_crash(self, payload):
        assert tx_requester(payload) is None
        assert tx_recipient(payload) is None

    def test_out_of_range_output_index_is_none(self):
        assert tx_recipient(WELL_FORMED, output_index=7) is None
        assert tx_recipient(WELL_FORMED, output_index=-3) is None


def collection_of(*payloads):
    collection = Collection("transactions")
    for payload in payloads:
        collection.insert_one(dict(payload))
    return collection


def mint(tx_id, owner):
    return {
        "id": tx_id,
        "operation": "CREATE",
        "inputs": [{"owners_before": [owner], "fulfills": None}],
        "outputs": [{"public_keys": [owner], "amount": 3}],
    }


def spend(tx_id, source, index, recipients, operation="TRANSFER"):
    return {
        "id": tx_id,
        "operation": operation,
        "inputs": [
            {
                "owners_before": ["someone"],
                "fulfills": {"transaction_id": source, "output_index": index},
            }
        ],
        "outputs": [{"public_keys": [owner], "amount": 1} for owner in recipients],
    }


class TestExactPairWalk:
    def test_spender_of_matches_the_output_index(self):
        """The regression at the heart of this PR: a spend of output 1
        must never be returned as the spender of output 0."""
        source = ScanSource(
            collection_of(
                mint("c1", "alice"),
                spend("t-change", "c1", 1, ["alice"]),
                spend("t-main", "c1", 0, ["bob"]),
            )
        )
        assert source.spender_of("c1", 0)["id"] == "t-main"
        assert source.spender_of("c1", 1)["id"] == "t-change"
        assert source.spender_of("c1", 2) is None

    def test_follow_spend_prefers_the_lowest_spent_index(self):
        source = ScanSource(
            collection_of(
                mint("c1", "alice"),
                spend("t-1", "c1", 1, ["carol"]),
                spend("t-0", "c1", 0, ["bob"]),
            )
        )
        spender, index = follow_spend(source, source.by_id("c1"))
        assert (spender["id"], index) == ("t-0", 0)

    def test_follow_spend_operation_filter(self):
        source = ScanSource(
            collection_of(
                mint("c1", "alice"),
                spend("b-1", "c1", 0, ["escrow"], operation="BID"),
            )
        )
        spender, index = follow_spend(source, source.by_id("c1"), operation="TRANSFER")
        assert (spender, index) == (None, None)
        spender, index = follow_spend(source, source.by_id("c1"), operation="BID")
        assert (spender["id"], index) == ("b-1", 0)

    def test_custody_walk_tracks_the_followed_branch(self):
        source = ScanSource(
            collection_of(
                mint("c1", "alice"),
                spend("t1", "c1", 0, ["bob", "alice"]),   # pay bob, change to alice
                spend("t2", "t1", 0, ["carol"]),           # bob's coin moves on
                spend("t-change", "t1", 1, ["dave"]),      # change spent separately
            )
        )
        walk = custody_walk(source, source.by_id("c1"))
        assert [(payload["id"], index) for payload, index in walk] == [
            ("c1", 0),
            ("t1", 0),   # follows bob's output, not the change branch
            ("t2", None),
        ]

    def test_custody_walk_is_cycle_safe_and_bounded(self):
        source = ScanSource(
            collection_of(
                mint("c1", "alice"),
                spend("t1", "c1", 0, ["bob"]),
                spend("t2", "t1", 0, ["alice"]),
                # Adversarial back-edge: t2's output "spent" by t1 again.
                {
                    "id": "loop",
                    "operation": "TRANSFER",
                    "inputs": [
                        {
                            "owners_before": ["alice"],
                            "fulfills": {"transaction_id": "t2", "output_index": 0},
                        }
                    ],
                    "outputs": [{"public_keys": ["bob"], "amount": 1}],
                },
                spend("loop2", "loop", 0, ["bob"]),
            )
        )
        walk = custody_walk(source, source.by_id("c1"))
        ids = [payload["id"] for payload, _ in walk]
        assert len(ids) == len(set(ids))  # terminated, no repeats
        capped = custody_walk(source, source.by_id("c1"), max_hops=1)
        assert len(capped) <= 2
