"""Fraud heuristics over the transaction graph."""

import pytest

from repro.analytics import FraudAnalyzer
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import keypair_from_string

ALICE = keypair_from_string("alice")
BOB = keypair_from_string("bob")
SALLY = keypair_from_string("sally")


def fresh_cluster(seed=41):
    return SmartchainCluster(ClusterConfig(n_validators=4, seed=seed))


class TestSelfDealing:
    def test_detects_requester_winning_own_asset(self):
        cluster = fresh_cluster()
        driver = cluster.driver
        # Sally mints the asset, hands it to Bob, Bob bids it on Sally's
        # RFQ, Sally accepts — the asset loops back to its minter.
        create = driver.prepare_create(SALLY, {"capabilities": ["cap"]})
        cluster.submit_and_settle(create)
        handoff = driver.prepare_transfer(
            SALLY, [(create.tx_id, 0, 1)], create.tx_id, [(BOB.public_key, 1)]
        )
        cluster.submit_and_settle(handoff)
        request = driver.prepare_request(SALLY, ["cap"])
        cluster.submit_and_settle(request)
        bid = driver.prepare_bid(BOB, request.tx_id, create.tx_id, [(handoff.tx_id, 0, 1)])
        cluster.submit_and_settle(bid)
        accept = driver.prepare_accept_bid(SALLY, request.tx_id, bid)
        cluster.submit_and_settle(accept)

        findings = FraudAnalyzer(cluster.any_server()).self_dealing()
        assert len(findings) == 1
        assert findings[0].subject == SALLY.public_key

    def test_clean_auction_is_clean(self):
        cluster = fresh_cluster(seed=42)
        driver = cluster.driver
        create = driver.prepare_create(ALICE, {"capabilities": ["cap"]})
        cluster.submit_and_settle(create)
        request = driver.prepare_request(SALLY, ["cap"])
        cluster.submit_and_settle(request)
        bid = driver.prepare_bid(ALICE, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)])
        cluster.submit_and_settle(bid)
        accept = driver.prepare_accept_bid(SALLY, request.tx_id, bid)
        cluster.submit_and_settle(accept)
        assert FraudAnalyzer(cluster.any_server()).self_dealing() == []


class TestBidChurn:
    def test_detects_persistent_loser(self):
        cluster = fresh_cluster(seed=43)
        driver = cluster.driver
        loser = keypair_from_string("persistent-loser")
        winner = keypair_from_string("winner")
        for round_number in range(3):
            creates = {}
            for keypair in (loser, winner):
                create = driver.prepare_create(
                    keypair, {"capabilities": ["cap"], "round": round_number}
                )
                cluster.submit_payload(create.to_dict())
                creates[keypair.public_key] = create
            cluster.run()
            request = driver.prepare_request(SALLY, ["cap"], metadata={"round": round_number})
            cluster.submit_and_settle(request)
            bids = {}
            for keypair in (loser, winner):
                create = creates[keypair.public_key]
                bid = driver.prepare_bid(
                    keypair, request.tx_id, create.tx_id, [(create.tx_id, 0, 1)]
                )
                cluster.submit_payload(bid.to_dict())
                bids[keypair.public_key] = bid
            cluster.run()
            accept = driver.prepare_accept_bid(
                SALLY, request.tx_id, bids[winner.public_key]
            )
            cluster.submit_and_settle(accept)

        findings = FraudAnalyzer(cluster.any_server()).bid_withdraw_churn(threshold=3)
        subjects = {finding.subject for finding in findings}
        assert loser.public_key in subjects
        assert winner.public_key not in subjects


class TestRapidFlips:
    def test_detects_ownership_loop(self):
        cluster = fresh_cluster(seed=44)
        driver = cluster.driver
        create = driver.prepare_create(ALICE, {"capabilities": ["cap"]})
        cluster.submit_and_settle(create)
        hop_1 = driver.prepare_transfer(
            ALICE, [(create.tx_id, 0, 1)], create.tx_id, [(BOB.public_key, 1)]
        )
        cluster.submit_and_settle(hop_1)
        hop_2 = driver.prepare_transfer(
            BOB, [(hop_1.tx_id, 0, 1)], create.tx_id, [(ALICE.public_key, 1)]
        )
        cluster.submit_and_settle(hop_2)

        findings = FraudAnalyzer(cluster.any_server()).rapid_flips()
        assert any(finding.subject == ALICE.public_key for finding in findings)

    def test_linear_chain_is_clean(self):
        cluster = fresh_cluster(seed=45)
        driver = cluster.driver
        carol = keypair_from_string("carol")
        create = driver.prepare_create(ALICE, {"capabilities": ["cap"]})
        cluster.submit_and_settle(create)
        hop_1 = driver.prepare_transfer(
            ALICE, [(create.tx_id, 0, 1)], create.tx_id, [(BOB.public_key, 1)]
        )
        cluster.submit_and_settle(hop_1)
        hop_2 = driver.prepare_transfer(
            BOB, [(hop_1.tx_id, 0, 1)], create.tx_id, [(carol.public_key, 1)]
        )
        cluster.submit_and_settle(hop_2)
        assert FraudAnalyzer(cluster.any_server()).rapid_flips() == []


class TestCapabilityOverclaim:
    def test_detects_outlier(self):
        cluster = fresh_cluster(seed=46)
        driver = cluster.driver
        for index in range(4):
            create = driver.prepare_create(ALICE, {"capabilities": ["a"], "n": index})
            cluster.submit_payload(create.to_dict())
        padded = driver.prepare_create(
            BOB, {"capabilities": [f"cap-{i}" for i in range(12)]}
        )
        cluster.submit_payload(padded.to_dict())
        cluster.run()

        findings = FraudAnalyzer(cluster.any_server()).capability_overclaim()
        assert len(findings) == 1
        assert findings[0].subject == padded.tx_id

    def test_small_market_skipped(self):
        cluster = fresh_cluster(seed=47)
        driver = cluster.driver
        create = driver.prepare_create(ALICE, {"capabilities": ["a"] * 3})
        cluster.submit_and_settle(create)
        assert FraudAnalyzer(cluster.any_server()).capability_overclaim() == []


class TestScreen:
    def test_screen_aggregates(self):
        cluster = fresh_cluster(seed=48)
        driver = cluster.driver
        create = driver.prepare_create(ALICE, {"capabilities": ["cap"]})
        cluster.submit_and_settle(create)
        findings = FraudAnalyzer(cluster.any_server()).screen()
        assert findings == []
