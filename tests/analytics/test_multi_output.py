"""Regression: multi-output transactions and the exact-pair spend walk.

The provenance and wash-trade walks used to find "the" spender of a
transaction by matching ``inputs.fulfills.transaction_id`` alone —
whichever committed spend of *any* output the scan met first.  With a
payment-plus-change transfer that walk follows commit order, not
custody: spend the change output first and the asset's history veers
down the change branch.
"""

from repro.analytics import FraudAnalyzer, MarketplaceAnalytics
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import keypair_from_string
from repro.durability.node import DurabilityConfig

ALICE = keypair_from_string("alice")
BOB = keypair_from_string("bob")
CAROL = keypair_from_string("carol")
DAVE = keypair_from_string("dave")


def multi_output_history(cluster):
    """Mint 3 shares; pay 1 to Bob with 2 change back to Alice; then
    commit the **change** spend (Alice -> Dave) before the payment spend
    (Bob -> Carol) so the buggy order-based walk picks the wrong branch.
    """
    driver = cluster.driver
    create = driver.prepare_create(ALICE, {"capabilities": ["cap"]}, amount=3)
    cluster.submit_and_settle(create)
    split = driver.prepare_transfer(
        ALICE,
        [(create.tx_id, 0, 3)],
        create.tx_id,
        [(BOB.public_key, 1), (ALICE.public_key, 2)],
    )
    cluster.submit_and_settle(split)
    change_spend = driver.prepare_transfer(
        ALICE, [(split.tx_id, 1, 2)], create.tx_id, [(DAVE.public_key, 2)]
    )
    cluster.submit_and_settle(change_spend)
    payment_spend = driver.prepare_transfer(
        BOB, [(split.tx_id, 0, 1)], create.tx_id, [(CAROL.public_key, 1)]
    )
    cluster.submit_and_settle(payment_spend)
    return create, split, change_spend, payment_spend


class TestMultiOutputProvenance:
    def test_provenance_follows_the_payment_branch_not_commit_order(self):
        cluster = SmartchainCluster(ClusterConfig(n_validators=4, seed=17))
        create, split, change_spend, payment_spend = multi_output_history(cluster)
        steps = MarketplaceAnalytics(cluster.any_server()).provenance(create.tx_id)
        assert [step.transaction_id for step in steps] == [
            create.tx_id,
            split.tx_id,
            payment_spend.tx_id,
        ], "the walk must follow output 0 to Carol, not the change to Dave"
        assert steps[1].holders == [BOB.public_key]
        assert steps[2].holders == [CAROL.public_key]
        assert change_spend.tx_id not in [step.transaction_id for step in steps]

    def test_view_served_provenance_matches(self):
        cluster = SmartchainCluster(
            ClusterConfig(
                n_validators=4, seed=17, durability=DurabilityConfig(snapshot_interval=60)
            )
        )
        create, *_ = multi_output_history(cluster)
        server = cluster.any_server()
        scan = MarketplaceAnalytics(server, source="scan").provenance(create.tx_id)
        views = MarketplaceAnalytics(server, source="views").provenance(create.tx_id)
        assert scan == views


class TestMultiOutputRapidFlips:
    def test_change_returning_to_the_seller_is_not_a_flip(self):
        """Alice's change coming back to Alice is one transaction's
        split, not an ownership loop; the old outputs[0]-only walk never
        saw it, but a transaction-id-matched walk that picked the change
        spend first reported phantom custody for Dave."""
        cluster = SmartchainCluster(ClusterConfig(n_validators=4, seed=18))
        multi_output_history(cluster)
        findings = FraudAnalyzer(cluster.any_server()).rapid_flips()
        assert findings == []

    def test_true_loop_on_the_followed_branch_is_still_caught(self):
        cluster = SmartchainCluster(ClusterConfig(n_validators=4, seed=19))
        driver = cluster.driver
        create = driver.prepare_create(ALICE, {"capabilities": ["cap"]}, amount=2)
        cluster.submit_and_settle(create)
        split = driver.prepare_transfer(
            ALICE,
            [(create.tx_id, 0, 2)],
            create.tx_id,
            [(BOB.public_key, 1), (ALICE.public_key, 1)],
        )
        cluster.submit_and_settle(split)
        back = driver.prepare_transfer(
            BOB, [(split.tx_id, 0, 1)], create.tx_id, [(ALICE.public_key, 1)]
        )
        cluster.submit_and_settle(back)
        findings = FraudAnalyzer(cluster.any_server()).rapid_flips()
        assert [finding.subject for finding in findings] == [ALICE.public_key]
