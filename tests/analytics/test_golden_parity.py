"""Golden parity: view-served analytics == from-scratch rescans.

Every public answer of :class:`MarketplaceAnalytics` and
:class:`FraudAnalyzer` is computed twice — ``source="views"`` and
``source="scan"`` — over a history that exercises the whole marketplace
vocabulary (multi-output transfers, a settled auction with a losing bid
and its RETURN, wash-trade loops) plus a crash-restart in the middle.
Any divergence means the incremental view maintenance and the
collection-scan semantics have drifted apart.
"""

import pytest

from repro.analytics import FraudAnalyzer, MarketplaceAnalytics
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import keypair_from_string
from repro.durability.node import DurabilityConfig

ALICE = keypair_from_string("alice")
BOB = keypair_from_string("bob")
CAROL = keypair_from_string("carol")
SALLY = keypair_from_string("sally")


def rich_history(cluster, restart_midway=False):
    driver = cluster.driver
    create_a = driver.prepare_create(
        ALICE, {"capabilities": ["3d-print", "iso-9001"]}, amount=3
    )
    create_b = driver.prepare_create(BOB, {"capabilities": ["3d-print", "cnc"]})
    cluster.submit_and_settle(create_a)
    cluster.submit_and_settle(create_b)

    # Multi-output split: payment to Carol, change back to Alice, then
    # spend the change first (the provenance-regression shape).
    split = driver.prepare_transfer(
        ALICE,
        [(create_a.tx_id, 0, 3)],
        create_a.tx_id,
        [(CAROL.public_key, 1), (ALICE.public_key, 2)],
    )
    cluster.submit_and_settle(split)
    change_spend = driver.prepare_transfer(
        ALICE, [(split.tx_id, 1, 2)], create_a.tx_id, [(BOB.public_key, 2)]
    )
    cluster.submit_and_settle(change_spend)

    if restart_midway:
        cluster.restart_node_from_disk(cluster.engine.validator_order[0])

    # A settled auction with a losing bid (whose escrow RETURNs).
    request = driver.prepare_request(SALLY, ["3d-print"])
    cluster.submit_and_settle(request)
    bid_carol = driver.prepare_bid(
        CAROL, request.tx_id, create_a.tx_id, [(split.tx_id, 0, 1)]
    )
    bid_bob = driver.prepare_bid(
        BOB, request.tx_id, create_b.tx_id, [(create_b.tx_id, 0, 1)]
    )
    cluster.submit_and_settle(bid_carol)
    cluster.submit_and_settle(bid_bob)
    accept = driver.prepare_accept_bid(SALLY, request.tx_id, bid_bob)
    cluster.submit_and_settle(accept)
    cluster.run()  # drain nested RETURN workers for the losing bid

    # A second, still-open request.
    open_request = driver.prepare_request(SALLY, ["cnc"])
    cluster.submit_and_settle(open_request)
    return create_a, request


def assert_parity(cluster, create_a, request):
    server = cluster.any_server()
    assert server.views_current()
    scan = MarketplaceAnalytics(server, source="scan")
    views = MarketplaceAnalytics(server, source="views")

    assert views.operation_volume() == scan.operation_volume()
    assert views.capability_demand() == scan.capability_demand()
    assert views.bid_competition() == scan.bid_competition()
    assert views.settlement_rate() == pytest.approx(scan.settlement_rate())
    assert views.request_summary(request.tx_id) == scan.request_summary(request.tx_id)
    assert views.provenance(create_a.tx_id) == scan.provenance(create_a.tx_id)
    key = lambda r: r["id"]
    assert sorted(views.open_requests(), key=key) == sorted(scan.open_requests(), key=key)
    for party in (ALICE, BOB, CAROL, SALLY):
        ref = lambda d: (d["transaction_id"], d["output_index"])
        assert sorted(map(ref, views.holdings(party.public_key))) == sorted(
            map(ref, scan.holdings(party.public_key))
        )

    fraud_scan = FraudAnalyzer(server, source="scan")
    fraud_views = FraudAnalyzer(server, source="views")
    assert fraud_views.self_dealing() == fraud_scan.self_dealing()
    assert fraud_views.bid_withdraw_churn(threshold=1) == fraud_scan.bid_withdraw_churn(threshold=1)
    assert fraud_views.rapid_flips() == fraud_scan.rapid_flips()
    assert fraud_views.capability_overclaim() == fraud_scan.capability_overclaim()
    assert fraud_views.screen() == fraud_scan.screen()


def durable_cluster(seed):
    return SmartchainCluster(
        ClusterConfig(
            n_validators=4,
            seed=seed,
            enable_extensions=True,
            durability=DurabilityConfig(snapshot_interval=60),
        )
    )


class TestGoldenParity:
    def test_every_answer_matches_on_a_rich_history(self):
        cluster = durable_cluster(seed=29)
        create_a, request = rich_history(cluster)
        assert_parity(cluster, create_a, request)

    def test_parity_survives_a_crash_restart_mid_history(self):
        cluster = durable_cluster(seed=31)
        create_a, request = rich_history(cluster, restart_midway=True)
        assert_parity(cluster, create_a, request)

    def test_auto_source_prefers_views_and_matches_scan(self):
        cluster = durable_cluster(seed=37)
        create_a, request = rich_history(cluster)
        server = cluster.any_server()
        before = server.read_stats["view_served"]
        auto = MarketplaceAnalytics(server)
        scan = MarketplaceAnalytics(server, source="scan")
        assert auto.open_requests() == scan.open_requests()
        assert server.read_stats["view_served"] > before
        assert auto.operation_volume() == scan.operation_volume()

    def test_unknown_source_is_rejected(self):
        cluster = durable_cluster(seed=41)
        server = cluster.any_server()
        with pytest.raises(ValueError):
            MarketplaceAnalytics(server, source="oracle")
        with pytest.raises(ValueError):
            FraudAnalyzer(server, source="oracle")
