"""Read path integration: server views, freshness fallback, replicas."""

import pytest

from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import keypair_from_string
from repro.durability.node import DurabilityConfig
from repro.sharding.cluster import ShardedCluster, ShardedClusterConfig
from repro.views import ReadToken, ViewManager
from repro.views.replica import StaleReadError

ALICE = keypair_from_string("alice")
BOB = keypair_from_string("bob")
SALLY = keypair_from_string("sally")


def durable_cluster(**kwargs):
    return SmartchainCluster(
        ClusterConfig(
            n_validators=4,
            seed=23,
            durability=DurabilityConfig(snapshot_interval=60),
            **kwargs,
        )
    )


def marketplace_history(cluster):
    driver = cluster.driver
    creates = []
    for rank in range(4):
        create = driver.prepare_create(
            ALICE, {"capabilities": ["3d-print"], "rank": rank}
        )
        cluster.submit_payload(create.to_dict())
        creates.append(create)
    cluster.run()
    request = driver.prepare_request(SALLY, ["3d-print"])
    cluster.submit_payload(request.to_dict())
    cluster.run()
    transfer = driver.prepare_transfer(
        ALICE, [(creates[0].tx_id, 0, 1)], creates[0].tx_id, [(BOB.public_key, 1)]
    )
    cluster.submit_payload(transfer.to_dict())
    cluster.run()
    return creates, request, transfer


class TestViewWiring:
    def test_views_auto_enable_with_durability_only(self):
        assert durable_cluster().views is not None
        assert SmartchainCluster(ClusterConfig(n_validators=4)).views is None
        assert durable_cluster(views=False).views is None

    def test_view_served_reads_equal_scans(self):
        cluster = durable_cluster()
        _, request, transfer = marketplace_history(cluster)
        server = cluster.any_server()
        assert server.views_current()
        assert [r["id"] for r in server.open_requests(source="views")] == [
            r["id"] for r in server.open_requests(source="scan")
        ] == [request.tx_id]
        key = lambda doc: (doc["transaction_id"], doc["output_index"])
        assert sorted(map(key, server.outputs_for(BOB.public_key, source="views"))) == \
            sorted(map(key, server.outputs_for(BOB.public_key, source="scan")))

    def test_view_reads_are_copies_not_aliases(self):
        cluster = durable_cluster()
        _, request, _ = marketplace_history(cluster)
        server = cluster.any_server()
        served = server.open_requests(source="views")
        served[0]["operation"] = "MUTATED"
        assert server.open_requests(source="views")[0]["operation"] == "REQUEST"

    def test_stale_views_fall_back_to_scans(self):
        cluster = durable_cluster()
        marketplace_history(cluster)
        server = cluster.any_server()
        # Simulate the commit-to-flush window: views behind the chain.
        server.views._heights[server.views_shard] -= 1
        assert not server.views_current()
        before = server.read_stats.get("scan_fallback", 0)
        assert server.open_requests() == server.open_requests(source="scan")
        assert server.read_stats["scan_fallback"] > before

    def test_read_counters_track_the_serving_side(self):
        cluster = durable_cluster()
        marketplace_history(cluster)
        server = cluster.any_server()
        server.open_requests()
        assert server.read_stats.get("view_served", 0) >= 1
        server.open_requests(source="scan")
        assert server.read_stats.get("scan_fallback", 0) >= 1

    def test_views_survive_restart_from_disk(self):
        cluster = durable_cluster()
        creates, request, _ = marketplace_history(cluster)
        node = cluster.engine.validator_order[0]
        cluster.restart_node_from_disk(node)
        transfer = cluster.driver.prepare_transfer(
            ALICE, [(creates[1].tx_id, 0, 1)], creates[1].tx_id,
            [(BOB.public_key, 1)],
        )
        cluster.submit_and_settle(transfer)
        server = cluster.servers[node]
        key = lambda doc: (doc["transaction_id"], doc["output_index"])
        assert sorted(map(key, server.outputs_for(BOB.public_key, source="views"))) == \
            sorted(map(key, server.outputs_for(BOB.public_key, source="scan")))


class TestReadReplica:
    def test_token_grants_read_your_writes(self):
        cluster = durable_cluster()
        _, request, _ = marketplace_history(cluster)
        replica = cluster.read_replica()
        token = replica.token()
        assert replica.caught_up_to(token)
        assert [r["id"] for r in replica.open_requests(token=token)] == [request.tx_id]
        assert replica.stats["reads"] == 1

    def test_stale_replica_refuses_the_token(self):
        cluster = durable_cluster()
        marketplace_history(cluster)
        replica = cluster.read_replica()
        future = ReadToken.for_heights(
            {shard: height + 1 for shard, height in cluster.views.heights().items()}
        )
        with pytest.raises(StaleReadError):
            replica.open_requests(token=future)
        assert replica.stats["stale_rejected"] == 1

    def test_replica_queries_match_analytics(self):
        cluster = durable_cluster()
        marketplace_history(cluster)
        replica = cluster.read_replica()
        assert replica.operation_volume() == {"CREATE": 4, "REQUEST": 1, "TRANSFER": 1}
        assert replica.capability_demand() == {"3d-print": 1}
        assert replica.settlement_rate() == 0.0

    def test_volatile_cluster_has_no_replicas(self):
        cluster = SmartchainCluster(ClusterConfig(n_validators=4))
        with pytest.raises(RuntimeError):
            cluster.read_replica()


class TestShardedFacade:
    def test_facade_reads_merge_all_shards(self):
        deployment = ShardedCluster(
            ShardedClusterConfig(
                n_shards=2,
                n_validators=4,
                durability=DurabilityConfig(snapshot_interval=60),
            )
        )
        driver = deployment.driver
        creates = []
        for rank in range(6):
            create = driver.prepare_create(ALICE, {"capabilities": ["weld"], "rank": rank})
            deployment.submit_payload(create.to_dict())
            creates.append(create)
        deployment.run()
        request = driver.prepare_request(SALLY, ["weld"])
        deployment.submit_payload(request.to_dict())
        deployment.run()

        assert [r["id"] for r in deployment.open_requests("weld")] == [request.tx_id]
        scan_refs = sorted(
            (doc["transaction_id"], doc["output_index"])
            for shard in deployment.shards.values()
            for doc in shard.any_server().outputs_for(ALICE.public_key, source="scan")
        )
        facade_refs = sorted(
            (doc["transaction_id"], doc["output_index"])
            for doc in deployment.outputs_for(ALICE.public_key)
        )
        assert facade_refs == scan_refs
        # One deployment-global manager, fed per shard.
        assert set(deployment.views.heights()) == set(deployment.shard_ids)
        replica = deployment.read_replica()
        token = replica.token()
        assert len(replica.open_requests(token=token)) == 1
