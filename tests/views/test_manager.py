"""ViewManager: dedupe, ordering, and order-robust table semantics."""

import pytest

from repro.views import ViewManager


def block(height, *txs):
    """A minimal journal block record: the fields ``_apply`` reads."""
    return {
        "h": height,
        "r": 0,
        "p": "scdb-0",
        "prev": "x" * 64,
        "id": f"block-{height}",
        "txs": [[payload["id"], payload, 100, 1, 0.0] for payload in txs],
    }


def create(tx_id, owner, capabilities=("cap",), amount=1):
    return {
        "id": tx_id,
        "operation": "CREATE",
        "asset": {"data": {"capabilities": list(capabilities)}},
        "inputs": [{"owners_before": [owner]}],
        "outputs": [{"public_keys": [owner], "amount": amount}],
    }


def transfer(tx_id, spends, recipients):
    """spends: [(tx, index)]; recipients: [(owner, amount)]."""
    return {
        "id": tx_id,
        "operation": "TRANSFER",
        "inputs": [
            {"owners_before": ["spender"], "fulfills": {"transaction_id": t, "output_index": i}}
            for t, i in spends
        ],
        "outputs": [{"public_keys": [owner], "amount": amount} for owner, amount in recipients],
    }


def request(tx_id, requester, capabilities=("cap",)):
    return {
        "id": tx_id,
        "operation": "REQUEST",
        "asset": {"data": {"capabilities": list(capabilities)}},
        "inputs": [{"owners_before": [requester]}],
        "outputs": [{"public_keys": [requester], "amount": 1}],
    }


def accept(tx_id, request_id, win_bid_id="bid-x"):
    return {
        "id": tx_id,
        "operation": "ACCEPT_BID",
        "references": [request_id],
        "metadata": {"win_bid_id": win_bid_id},
        "inputs": [{"owners_before": ["requester"]}],
        "outputs": [],
    }


class TestHeightCursor:
    def test_duplicate_heights_apply_once(self):
        """Every node of a shard journals the same block; n feeds must
        collapse into one application."""
        views = ViewManager()
        record = block(1, create("c1", "alice"))
        assert views.apply_block_record("main", record)
        for _ in range(3):
            assert not views.apply_block_record("main", record)
        assert views.stats["blocks_applied"] == 1
        assert views.stats["blocks_duplicate"] == 3
        assert views.operation_count("CREATE") == 1

    def test_out_of_order_blocks_buffer_until_the_gap_closes(self):
        views = ViewManager()
        b1 = block(1, create("c1", "alice"))
        b2 = block(2, transfer("t1", [("c1", 0)], [("bob", 1)]))
        b3 = block(3, create("c2", "carol"))
        assert not views.apply_block_record("main", b3)
        assert not views.apply_block_record("main", b2)
        assert views.height("main") == 0
        assert views.stats["blocks_buffered"] == 2
        assert views.apply_block_record("main", b1)  # drains 2 and 3
        assert views.height("main") == 3
        assert views.operation_count("CREATE") == 2
        assert views.spender_of("c1", 0)["id"] == "t1"

    def test_per_shard_cursors_are_independent(self):
        views = ViewManager()
        views.apply_block_record("shard-0", block(1, create("a", "alice")))
        views.apply_block_record("shard-1", block(1, create("b", "bob")))
        assert views.heights() == {"shard-0": 1, "shard-1": 1}
        assert views.total_height() == 2


class TestOrderRobustTables:
    def test_spent_output_never_resurrects(self):
        """Cross-shard interleaving: the spender's block can apply before
        the creating block — the utxo must not reappear."""
        views = ViewManager()
        views.apply_block_record(
            "shard-1", block(1, transfer("t1", [("c1", 0)], [("bob", 1)]))
        )
        views.apply_block_record("shard-0", block(1, create("c1", "alice")))
        assert views.outputs_for("alice") == []
        refs = [(d["transaction_id"], d["output_index"]) for d in views.outputs_for("bob")]
        assert refs == [("t1", 0)]

    def test_request_accepted_on_another_shard_is_born_settled(self):
        views = ViewManager()
        views.apply_block_record("shard-1", block(1, accept("a1", "r1")))
        views.apply_block_record("shard-0", block(1, request("r1", "sally")))
        assert views.open_requests() == []
        assert views.open_requests(capability="cap") == []
        # Demand still counts the request; settlement is complete.
        assert views.capability_demand() == {"cap": 1}
        assert views.settlement_rate() == 1.0

    def test_snapshots_agree_across_apply_orders(self):
        blocks = {
            "shard-0": [
                block(1, create("c1", "alice"), request("r1", "sally")),
                block(2, transfer("t1", [("c1", 0)], [("bob", 1)])),
            ],
            "shard-1": [
                block(1, accept("a1", "r1")),
                block(2, create("c2", "carol", capabilities=("weld",))),
            ],
        }
        forward = ViewManager()
        for shard in ("shard-0", "shard-1"):
            for record in blocks[shard]:
                forward.apply_block_record(shard, record)
        interleaved = ViewManager()
        interleaved.apply_block_record("shard-1", blocks["shard-1"][0])
        interleaved.apply_block_record("shard-0", blocks["shard-0"][0])
        interleaved.apply_block_record("shard-1", blocks["shard-1"][1])
        interleaved.apply_block_record("shard-0", blocks["shard-0"][1])
        assert forward.consistency_snapshot() == interleaved.consistency_snapshot()


class TestMarketplaceViews:
    def test_multi_output_transfer_indexes_every_output(self):
        views = ViewManager()
        views.apply_block_record("main", block(1, create("c1", "alice", amount=3)))
        views.apply_block_record(
            "main",
            block(2, transfer("t1", [("c1", 0)], [("bob", 2), ("alice", 1)])),
        )
        assert [(d["transaction_id"], d["output_index"], d["amount"])
                for d in views.outputs_for("bob")] == [("t1", 0, 2)]
        assert [(d["transaction_id"], d["output_index"], d["amount"])
                for d in views.outputs_for("alice")] == [("t1", 1, 1)]
        assert views.spender_of("c1", 0)["id"] == "t1"
        assert views.spender_of("c1", 1) is None

    def test_referencing_and_competition(self):
        bid = {
            "id": "b1",
            "operation": "BID",
            "references": ["r1"],
            "inputs": [{"owners_before": ["bob"]}],
            "outputs": [{"public_keys": ["bob"], "amount": 1}],
        }
        views = ViewManager()
        views.apply_block_record("main", block(1, request("r1", "sally"), bid))
        assert [t["id"] for t in views.referencing("BID", "r1")] == ["b1"]
        assert views.referencing("ACCEPT_BID", "r1") == []
        assert views.bid_competition() == {"r1": 1}
        views.apply_block_record("main", block(2, accept("a1", "r1", "b1")))
        assert [t["id"] for t in views.referencing("ACCEPT_BID", "r1")] == ["a1"]
        assert views.open_requests() == []
