"""ChangeFeed: views see exactly the durable journal, nothing more."""

from repro.durability.node import DurabilityConfig, NodeDurability
from repro.durability.recovery import scan_block_records
from repro.sim.events import EventLoop
from repro.views import ChangeFeed, ViewManager

from tests.views.test_manager import block, create, transfer


def make_stack(flush_interval=0.0):
    loop = EventLoop()
    durability = NodeDurability(
        "node-0", loop, DurabilityConfig(flush_interval=flush_interval)
    )
    views = ViewManager()
    feed = ChangeFeed(views, "main", durability.log)
    return loop, durability, views, feed


class TestPostSyncDelivery:
    def test_feed_applies_journaled_blocks_after_flush(self):
        loop, durability, views, feed = make_stack()
        durability.journal({"k": "block", "b": block(1, create("c1", "alice"))})
        assert views.height("main") == 0  # nothing until the group flush
        loop.run_until_idle()
        assert views.height("main") == 1
        assert feed.stats == {"flushes": 1, "records": 1, "blocks": 1}
        assert feed.last_lsn == 1

    def test_non_block_records_pass_through_without_applying(self):
        loop, durability, views, feed = make_stack()
        durability.journal({"k": "db", "col": "metadata", "op": "set"})
        durability.journal({"k": "lock", "r": 2, "b": None})
        loop.run_until_idle()
        assert views.heights() == {}
        assert feed.stats["records"] == 2
        assert feed.stats["blocks"] == 0

    def test_power_fail_before_flush_never_reaches_the_views(self):
        """The listener fires post-sync: records lost to a crash were
        never observed, so the views can never run ahead of recovery."""
        loop, durability, views, feed = make_stack(flush_interval=5.0)
        durability.journal({"k": "block", "b": block(1, create("c1", "alice"))})
        durability.power_fail()
        loop.run_until_idle()
        assert views.height("main") == 0
        assert feed.stats["flushes"] == 0
        assert list(durability.wal.scan()) == []


class TestBootstrap:
    def test_bootstrap_replays_existing_journal(self):
        loop, durability, views, feed = make_stack()
        durability.journal({"k": "block", "b": block(1, create("c1", "alice"))})
        durability.journal(
            {"k": "block", "b": block(2, transfer("t1", [("c1", 0)], [("bob", 1)]))}
        )
        loop.run_until_idle()
        late = ViewManager()
        late_feed = ChangeFeed(late, "main")
        assert late_feed.bootstrap(durability) == 2
        assert late.consistency_snapshot() == views.consistency_snapshot()

    def test_bootstrap_and_live_tail_dedupe_through_the_cursor(self):
        loop, durability, views, feed = make_stack()
        durability.journal({"k": "block", "b": block(1, create("c1", "alice"))})
        loop.run_until_idle()
        # Attach a second consumer, then bootstrap it: height 1 arrives
        # only via bootstrap; height 2 arrives via the live listener.
        late = ViewManager()
        late_feed = ChangeFeed(late, "main", durability.log)
        assert late_feed.bootstrap(durability) == 1
        durability.journal({"k": "block", "b": block(2, create("c2", "bob"))})
        loop.run_until_idle()
        assert late.height("main") == 2
        assert late.stats["blocks_applied"] == 2
        assert late.consistency_snapshot() == views.consistency_snapshot()

    def test_scan_block_records_covers_snapshot_and_wal_suffix(self):
        loop, durability, views, feed = make_stack()
        durability.state_provider = lambda: {"blocks": [block(1, create("c1", "alice"))]}
        durability.journal({"k": "block", "b": block(1, create("c1", "alice"))})
        loop.run_until_idle()
        durability.checkpoint()  # block 1 now lives in the snapshot only
        durability.journal({"k": "block", "b": block(2, create("c2", "bob"))})
        loop.run_until_idle()
        heights = [record["h"] for record in scan_block_records(durability)]
        assert heights == [1, 2]
        assert [r["h"] for r in scan_block_records(durability, from_height=1)] == [2]
