"""CLI surface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in (
            "info", "demo", "compare", "workload", "shard", "simtest", "reshard"
        ):
            args = parser.parse_args([command])
            assert callable(args.func)


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "ACCEPT_BID" in out
        assert "EDBT 2025" in out

    def test_workload(self, capsys):
        assert main(["workload", "--total", "220"]) == 0
        out = capsys.readouterr().out
        assert "REQUEST" in out
        assert "110k" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "RETURN" in out
        assert "eventual commit holds: True" in out

    def test_simtest(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["simtest", "--seed", "3", "--steps", "25", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "all invariants held" in out
        assert (tmp_path / "SIMTEST_schedule.json").exists()
        assert (tmp_path / "SIMTEST_invariants.log").exists()
        assert not (tmp_path / "SIMTEST_repro.json").exists()

    def test_reshard(self, capsys):
        assert main(["reshard"]) == 0
        out = capsys.readouterr().out
        assert "policy tripped" in out
        assert "rolls FORWARD" in out
        assert "all 18 invariants held" in out
