"""Database layout and provisioning."""

import pytest

from repro.common.errors import CollectionNotFoundError
from repro.storage.database import SMARTCHAINDB_LAYOUT, Database, make_smartchaindb_database


class TestDatabase:
    def test_create_and_fetch(self):
        database = Database("test")
        database.create_collection("things")
        assert database.collection("things").name == "things"

    def test_create_is_idempotent(self):
        database = Database("test")
        first = database.create_collection("things")
        second = database.create_collection("things")
        assert first is second

    def test_missing_collection_raises(self):
        with pytest.raises(CollectionNotFoundError):
            Database("test").collection("nope")

    def test_contains(self):
        database = Database("test")
        database.create_collection("a")
        assert "a" in database
        assert "b" not in database


class TestSmartchaindbLayout:
    def test_all_collections_provisioned(self):
        database = make_smartchaindb_database()
        for name in SMARTCHAINDB_LAYOUT:
            assert name in database

    def test_accept_tx_recovery_exists(self):
        """The collection the paper adds for nested-transaction recovery."""
        database = make_smartchaindb_database()
        assert "accept_tx_recovery" in database

    def test_transaction_indexes_present(self):
        database = make_smartchaindb_database()
        paths = database.collection("transactions").index_paths()
        assert "id" in paths
        assert "asset.id" in paths
        assert "references" in paths

    def test_unindexed_variant_scans(self):
        database = make_smartchaindb_database(indexed=False)
        transactions = database.collection("transactions")
        transactions.insert_one({"id": "x" * 64, "operation": "CREATE"})
        assert transactions.explain({"id": "x" * 64}).kind == "scan"

    def test_indexed_variant_probes(self):
        database = make_smartchaindb_database(indexed=True)
        transactions = database.collection("transactions")
        transactions.insert_one({"id": "x" * 64, "operation": "CREATE"})
        assert transactions.explain({"id": "x" * 64}).kind == "index"

    def test_stats_shape(self):
        database = make_smartchaindb_database()
        stats = database.stats()
        assert stats["transactions"]["size"] == 0
        assert "inserts" in stats["transactions"]
