"""Collections: CRUD, indexes, planner integration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DuplicateKeyError, QueryError
from repro.storage.collection import Collection


@pytest.fixture()
def txs() -> Collection:
    collection = Collection("transactions")
    collection.create_index("id", unique=True)
    collection.create_index("operation")
    collection.create_index("outputs.public_keys")
    return collection


def doc(tx_id: str, operation: str = "CREATE", keys=("K1",)) -> dict:
    return {
        "id": tx_id,
        "operation": operation,
        "outputs": [{"public_keys": list(keys), "amount": 1}],
    }


class TestCrud:
    def test_insert_and_find(self, txs):
        txs.insert_one(doc("t1"))
        assert txs.find_one({"id": "t1"})["operation"] == "CREATE"

    def test_returned_documents_are_copies(self, txs):
        txs.insert_one(doc("t1"))
        found = txs.find_one({"id": "t1"})
        found["operation"] = "HACKED"
        assert txs.find_one({"id": "t1"})["operation"] == "CREATE"

    def test_inserted_document_not_aliased(self, txs):
        original = doc("t1")
        txs.insert_one(original)
        original["operation"] = "MUTATED"
        assert txs.find_one({"id": "t1"})["operation"] == "CREATE"

    def test_unique_index_violation(self, txs):
        txs.insert_one(doc("t1"))
        with pytest.raises(DuplicateKeyError):
            txs.insert_one(doc("t1"))
        assert len(txs) == 1

    def test_failed_insert_rolls_back_indexes(self, txs):
        txs.insert_one(doc("t1", keys=("K1",)))
        with pytest.raises(DuplicateKeyError):
            txs.insert_one(doc("t1", keys=("K2",)))
        # K2 must not have leaked into the pubkey index.
        assert txs.find({"outputs.public_keys": "K2"}) == []

    def test_delete_many(self, txs):
        txs.insert_many([doc("t1"), doc("t2", "BID"), doc("t3", "BID")])
        assert txs.delete_many({"operation": "BID"}) == 2
        assert len(txs) == 1

    def test_update_set(self, txs):
        txs.insert_one(doc("t1"))
        assert txs.update_many({"id": "t1"}, {"$set": {"status": "committed"}}) == 1
        assert txs.find_one({"id": "t1"})["status"] == "committed"

    def test_update_reindexes(self, txs):
        txs.insert_one(doc("t1", operation="CREATE"))
        txs.update_many({"id": "t1"}, {"$set": {"operation": "TRANSFER"}})
        assert txs.find({"operation": "CREATE"}) == []
        assert txs.find_one({"operation": "TRANSFER"})["id"] == "t1"

    def test_update_inc_and_push(self, txs):
        txs.insert_one({"id": "c1", "counter": 1, "log": []})
        txs.update_many({"id": "c1"}, {"$inc": {"counter": 2}})
        txs.update_many({"id": "c1"}, {"$push": {"log": "event"}})
        updated = txs.find_one({"id": "c1"})
        assert updated["counter"] == 3
        assert updated["log"] == ["event"]

    def test_update_callable(self, txs):
        txs.insert_one(doc("t1"))
        txs.update_many({"id": "t1"}, lambda d: {**d, "extra": True})
        assert txs.find_one({"id": "t1"})["extra"] is True

    def test_update_unknown_operator(self, txs):
        txs.insert_one(doc("t1"))
        with pytest.raises(QueryError):
            txs.update_many({"id": "t1"}, {"$rename": {"a": "b"}})

    def test_count_and_distinct(self, txs):
        txs.insert_many([doc("t1"), doc("t2", "BID"), doc("t3", "BID")])
        assert txs.count() == 3
        assert txs.count({"operation": "BID"}) == 2
        assert set(txs.distinct("operation")) == {"CREATE", "BID"}

    def test_find_limit(self, txs):
        txs.insert_many([doc(f"t{i}") for i in range(5)])
        assert len(txs.find({}, limit=2)) == 2


class TestPlanner:
    def test_indexed_query_uses_index(self, txs):
        for index in range(20):
            txs.insert_one(doc(f"t{index}"))
        plan = txs.explain({"id": "t7"})
        assert plan.kind == "index"
        assert plan.index_path == "id"
        assert plan.candidates == 1

    def test_unindexed_query_scans(self, txs):
        txs.insert_one(doc("t1"))
        plan = txs.explain({"metadata.deadline": {"$lt": 100}})
        assert plan.kind == "scan"

    def test_most_selective_index_chosen(self, txs):
        for index in range(10):
            txs.insert_one(doc(f"t{index}", operation="BID"))
        plan = txs.explain({"operation": "BID", "id": "t3"})
        assert plan.index_path == "id"

    def test_missing_key_short_circuits(self, txs):
        txs.insert_one(doc("t1"))
        plan = txs.explain({"id": "missing"})
        assert plan.kind == "index"
        assert plan.candidates == 0

    def test_examined_docs_tracked(self, txs):
        for index in range(50):
            txs.insert_one(doc(f"t{index}"))
        before = txs.stats["documents_examined"]
        txs.find({"id": "t9"})
        assert txs.stats["documents_examined"] == before + 1  # index probe

    def test_multikey_index(self, txs):
        txs.insert_one(doc("t1", keys=("A", "B")))
        assert txs.find({"outputs.public_keys": "A"})[0]["id"] == "t1"
        assert txs.find({"outputs.public_keys": "B"})[0]["id"] == "t1"


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["CREATE", "BID", "REQUEST"]), st.integers(0, 30)),
        max_size=30,
    ),
    st.sampled_from(["CREATE", "BID", "REQUEST"]),
)
def test_indexed_and_scan_results_agree_property(entries, wanted):
    """An indexed collection returns exactly what a naive filter returns."""
    indexed = Collection("indexed")
    indexed.create_index("operation")
    plain = []
    for number, (operation, value) in enumerate(entries):
        document = {"id": f"d{number}", "operation": operation, "value": value}
        indexed.insert_one(document)
        plain.append(document)
    via_index = sorted(d["id"] for d in indexed.find({"operation": wanted}))
    naive = sorted(d["id"] for d in plain if d["operation"] == wanted)
    assert via_index == naive
