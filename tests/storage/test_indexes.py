"""Hash and sorted indexes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DuplicateKeyError
from repro.storage.indexes import HashIndex, SortedIndex


class TestHashIndex:
    def test_add_lookup_remove(self):
        index = HashIndex("id")
        index.add(1, {"id": "a"})
        index.add(2, {"id": "b"})
        assert index.lookup("a") == {1}
        index.remove(1, {"id": "a"})
        assert index.lookup("a") == set()

    def test_multiple_docs_same_key(self):
        index = HashIndex("operation")
        index.add(1, {"operation": "BID"})
        index.add(2, {"operation": "BID"})
        assert index.lookup("BID") == {1, 2}

    def test_array_values_indexed_individually(self):
        index = HashIndex("outputs.public_keys")
        index.add(1, {"outputs": [{"public_keys": ["A", "B"]}]})
        assert index.lookup("A") == {1}
        assert index.lookup("B") == {1}

    def test_unique_violation(self):
        index = HashIndex("id", unique=True)
        index.add(1, {"id": "a"})
        with pytest.raises(DuplicateKeyError):
            index.add(2, {"id": "a"})

    def test_unique_re_add_same_doc_ok(self):
        index = HashIndex("id", unique=True)
        index.add(1, {"id": "a"})
        index.add(1, {"id": "a"})
        assert index.lookup("a") == {1}

    def test_missing_path_indexes_nothing(self):
        index = HashIndex("id")
        index.add(1, {"other": 1})
        assert len(index) == 0

    def test_contains_key(self):
        index = HashIndex("id")
        index.add(1, {"id": "a"})
        assert index.contains_key("a")
        assert not index.contains_key("z")


class TestSortedIndex:
    def build(self, heights):
        index = SortedIndex("height")
        for doc_id, height in enumerate(heights):
            index.add(doc_id, {"height": height})
        return index

    def test_range_inclusive(self):
        index = self.build([5, 1, 3, 9, 7])
        assert list(index.range(3, 7)) == [2, 0, 4]  # heights 3,5,7 in order

    def test_range_exclusive_bounds(self):
        index = self.build([1, 2, 3, 4])
        assert list(index.range(1, 4, include_low=False, include_high=False)) == [1, 2]

    def test_open_ranges(self):
        index = self.build([2, 4, 6])
        assert list(index.range(low=4)) == [1, 2]
        assert list(index.range(high=4)) == [0, 1]
        assert list(index.range()) == [0, 1, 2]

    def test_remove(self):
        index = self.build([1, 2, 2, 3])
        index.remove(1, {"height": 2})
        assert list(index.range(2, 2)) == [2]

    def test_non_comparable_values_skipped(self):
        index = SortedIndex("height")
        index.add(1, {"height": True})   # bools excluded
        index.add(2, {"height": None})
        assert len(index) == 0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=25),
           st.integers(0, 50), st.integers(0, 50))
    def test_range_matches_naive_filter_property(self, heights, low, high):
        low, high = min(low, high), max(low, high)
        index = self.build(heights)
        via_index = sorted(index.range(low, high))
        naive = sorted(i for i, h in enumerate(heights) if low <= h <= high)
        assert via_index == naive
