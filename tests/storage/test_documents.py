"""Query-language evaluation against documents."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import QueryError
from repro.storage.documents import extract_equality_paths, matches, resolve_path


class TestResolvePath:
    def test_simple(self):
        assert resolve_path({"a": {"b": 3}}, "a.b") == [3]

    def test_missing_is_empty(self):
        assert resolve_path({"a": 1}, "a.b") == []
        assert resolve_path({}, "x") == []

    def test_array_fanout(self):
        document = {"outputs": [{"k": 1}, {"k": 2}]}
        assert resolve_path(document, "outputs.k") == [1, 2]

    def test_numeric_index(self):
        document = {"outputs": [{"k": 1}, {"k": 2}]}
        assert resolve_path(document, "outputs.1.k") == [2]

    def test_index_out_of_range(self):
        assert resolve_path({"a": [1]}, "a.5") == []


class TestEquality:
    def test_scalar(self):
        assert matches({"op": "BID"}, {"op": "BID"})
        assert not matches({"op": "BID"}, {"op": "CREATE"})

    def test_array_membership(self):
        assert matches({"refs": ["a", "b"]}, {"refs": "a"})
        assert not matches({"refs": ["a", "b"]}, {"refs": "c"})

    def test_bool_int_not_conflated(self):
        assert not matches({"x": 1}, {"x": True})
        assert not matches({"x": True}, {"x": 1})

    def test_nested_path(self):
        assert matches({"asset": {"id": "xyz"}}, {"asset.id": "xyz"})


class TestOperators:
    DOC = {"n": 5, "tags": ["red", "blue"], "name": "widget-42", "items": [{"q": 2}, {"q": 9}]}

    def test_comparisons(self):
        assert matches(self.DOC, {"n": {"$gt": 4}})
        assert matches(self.DOC, {"n": {"$gte": 5}})
        assert matches(self.DOC, {"n": {"$lt": 6}})
        assert matches(self.DOC, {"n": {"$lte": 5}})
        assert not matches(self.DOC, {"n": {"$gt": 5}})

    def test_gt_incomparable_types(self):
        assert not matches(self.DOC, {"name": {"$gt": 3}})

    def test_ne(self):
        assert matches(self.DOC, {"n": {"$ne": 6}})
        assert not matches(self.DOC, {"n": {"$ne": 5}})

    def test_in_nin(self):
        assert matches(self.DOC, {"n": {"$in": [1, 5]}})
        assert not matches(self.DOC, {"n": {"$in": [1, 2]}})
        assert matches(self.DOC, {"n": {"$nin": [1, 2]}})
        assert matches(self.DOC, {"tags": {"$in": ["blue"]}})

    def test_exists(self):
        assert matches(self.DOC, {"n": {"$exists": True}})
        assert matches(self.DOC, {"zzz": {"$exists": False}})
        assert not matches(self.DOC, {"zzz": {"$exists": True}})

    def test_all_size(self):
        assert matches(self.DOC, {"tags": {"$all": ["red", "blue"]}})
        assert not matches(self.DOC, {"tags": {"$all": ["red", "green"]}})
        assert matches(self.DOC, {"tags": {"$size": 2}})
        assert not matches(self.DOC, {"tags": {"$size": 3}})

    def test_elem_match(self):
        assert matches(self.DOC, {"items": {"$elemMatch": {"q": {"$gt": 5}}}})
        assert not matches(self.DOC, {"items": {"$elemMatch": {"q": {"$gt": 10}}}})

    def test_regex(self):
        assert matches(self.DOC, {"name": {"$regex": r"^widget-\d+$"}})
        assert not matches(self.DOC, {"name": {"$regex": r"^gadget"}})

    def test_type(self):
        assert matches(self.DOC, {"n": {"$type": "int"}})
        assert matches(self.DOC, {"tags": {"$type": "array"}})
        assert not matches(self.DOC, {"n": {"$type": "string"}})

    def test_not(self):
        assert matches(self.DOC, {"n": {"$not": {"$gt": 10}}})
        assert not matches(self.DOC, {"n": {"$not": {"$gt": 1}}})

    def test_combined_range(self):
        assert matches(self.DOC, {"n": {"$gt": 1, "$lt": 10}})
        assert not matches(self.DOC, {"n": {"$gt": 1, "$lt": 5}})


class TestLogical:
    DOC = {"op": "BID", "amount": 3}

    def test_and(self):
        assert matches(self.DOC, {"$and": [{"op": "BID"}, {"amount": {"$gt": 1}}]})
        assert not matches(self.DOC, {"$and": [{"op": "BID"}, {"amount": {"$gt": 5}}]})

    def test_or(self):
        assert matches(self.DOC, {"$or": [{"op": "CREATE"}, {"amount": 3}]})
        assert not matches(self.DOC, {"$or": [{"op": "CREATE"}, {"amount": 9}]})

    def test_nor(self):
        assert matches(self.DOC, {"$nor": [{"op": "CREATE"}, {"amount": 9}]})
        assert not matches(self.DOC, {"$nor": [{"op": "BID"}]})

    def test_implicit_top_level_and(self):
        assert matches(self.DOC, {"op": "BID", "amount": 3})
        assert not matches(self.DOC, {"op": "BID", "amount": 4})


class TestErrors:
    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            matches({"a": 1}, {"a": {"$frobnicate": 1}})

    def test_unknown_top_level_operator(self):
        with pytest.raises(QueryError):
            matches({"a": 1}, {"$xor": []})

    def test_in_requires_array(self):
        with pytest.raises(QueryError):
            matches({"a": 1}, {"a": {"$in": 5}})

    def test_bad_type_name(self):
        with pytest.raises(QueryError):
            matches({"a": 1}, {"a": {"$type": "float32"}})


class TestExtractEqualityPaths:
    def test_plain_and_eq_extracted(self):
        query = {"id": "x", "n": {"$eq": 3}, "m": {"$gt": 1}, "$or": []}
        assert extract_equality_paths(query) == {"id": "x", "n": 3}

    def test_operator_docs_not_equality(self):
        assert extract_equality_paths({"n": {"$gt": 1}}) == {}


@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.integers(min_value=0, max_value=5),
        max_size=3,
    ),
    st.sampled_from(["a", "b", "c"]),
    st.integers(min_value=0, max_value=5),
)
def test_equality_matches_iff_value_equal_property(document, key, value):
    """matches({key: value}) iff document[key] == value (scalars)."""
    expected = key in document and document[key] == value
    assert matches(document, {key: value}) == expected
