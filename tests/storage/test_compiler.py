"""Compiled-predicate parity: ``compile_query(q)(doc) == matches(doc, q)``.

The interpreter in :mod:`repro.storage.documents` is the semantics
oracle; the compiler must agree with it on every (query, document) pair.
The corpus below combines a hand-written operator matrix with a
hypothesis-generated sweep over documents and queries.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import QueryError
from repro.storage.collection import Collection
from repro.storage.compiler import cache_info, clear_cache, compile_query
from repro.storage.documents import matches
from repro.storage.indexes import SortedIndex

# -- hand-written operator matrix ---------------------------------------------

DOCUMENTS = [
    {},
    {"a": 1},
    {"a": 0},
    {"a": True},
    {"a": False},
    {"a": None},
    {"a": "x"},
    {"a": 2.5},
    {"a": [1, 2, 3]},
    {"a": ["x", "y"]},
    {"a": [True, 1]},
    {"a": []},
    {"a": {"b": 1}},
    {"a": {"b": [1, 2]}},
    {"a": [{"b": 1}, {"b": 2}]},
    {"a": [{"b": "x"}, {"c": 3}]},
    {"a": [[1, 2], [3]]},
    {"b": 5},
    {"a": 1, "b": 5},
    {"a": "abcdef"},
    {"operation": "BID", "references": ["r1", "r2"]},
    {"outputs": [{"public_keys": ["K1", "K2"], "amount": 3}]},
    {"inputs": [{"fulfills": {"transaction_id": "t1", "output_index": 0}}]},
]

QUERIES = [
    {},
    {"a": 1},
    {"a": True},
    {"a": None},
    {"a": "x"},
    {"a": [1, 2, 3]},
    {"a": {"$eq": 1}},
    {"a": {"$eq": [1, 2, 3]}},
    {"a": {"$ne": 1}},
    {"a": {"$ne": True}},
    {"a": {"$gt": 1}},
    {"a": {"$gt": 0.5}},
    {"a": {"$gte": 1}},
    {"a": {"$lt": 2}},
    {"a": {"$lte": 2}},
    {"a": {"$gt": "a"}},
    {"a": {"$gt": True}},
    {"a": {"$gt": 1, "$lt": 3}},
    {"a": {"$in": [1, "x"]}},
    {"a": {"$in": []}},
    {"a": {"$in": [True]}},
    {"a": {"$nin": [1, "x"]}},
    {"a": {"$exists": True}},
    {"a": {"$exists": False}},
    {"a": {"$size": 2}},
    {"a": {"$size": 0}},
    {"a": {"$all": [1, 2]}},
    {"a": {"$all": []}},
    {"a": {"$type": "string"}},
    {"a": {"$type": "int"}},
    {"a": {"$type": "bool"}},
    {"a": {"$type": "array"}},
    {"a": {"$type": "null"}},
    {"a": {"$regex": "^ab"}},
    {"a": {"$regex": "x"}},
    {"a": {"$not": {"$eq": 1}}},
    {"a": {"$not": {"$gt": 0}}},
    {"a": {"$elemMatch": {"b": 1}}},
    {"a": {"$elemMatch": {"$gt": 2}}},
    {"a": {"$elemMatch": {}}},
    {"a.b": 1},
    {"a.b": {"$in": [1, 2]}},
    {"a.0": 1},
    {"a.0.b": 1},
    {"a.b.c": {"$exists": False}},
    {"$and": [{"a": 1}, {"b": 5}]},
    {"$and": [{}]},
    {"$or": [{"a": 1}, {"a": "x"}]},
    {"$or": [{"a": {"$gt": 10}}, {"b": {"$exists": True}}]},
    {"$nor": [{"a": 1}, {"b": 5}]},
    {"$and": [{"$or": [{"a": 1}, {"a": 2}]}, {"b": {"$exists": False}}]},
    {"operation": "BID", "references": "r1"},
    {"outputs.public_keys": "K2"},
    {"outputs.amount": {"$gte": 3}},
    {"inputs.fulfills.transaction_id": "t1"},
]


def _outcome(thunk):
    """Result or raised QueryError message — both must agree."""
    try:
        return ("ok", thunk())
    except QueryError as exc:
        return ("error", str(exc))


@pytest.mark.parametrize("query", QUERIES)
def test_operator_matrix_parity(query):
    predicate = compile_query(query)
    for document in DOCUMENTS:
        compiled = _outcome(lambda: predicate(document))
        interpreted = _outcome(lambda: matches(document, query))
        assert compiled == interpreted, (query, document)


@pytest.mark.parametrize(
    "query",
    [
        {"a": {"$in": 3}},
        {"a": {"$nin": "x"}},
        {"a": {"$all": 1}},
        {"a": {"$elemMatch": 5}},
        {"a": {"$not": [1]}},
        {"a": {"$type": "widget"}},
        {"a": {"$bogus": 1}},
        {"$bogus": [1]},
        {"$and": "not-a-list"},
        {"$or": "not-a-list"},
        {"$nor": "not-a-list"},
    ],
)
def test_malformed_queries_raise_query_error(query):
    """The compiler surfaces the interpreter's QueryErrors (eagerly)."""
    with pytest.raises(QueryError):
        compile_query(query)
    with pytest.raises(QueryError):
        matches({"a": 1}, query)


def test_non_mapping_query_rejected():
    with pytest.raises(QueryError):
        compile_query(["not", "a", "mapping"])


# -- generated corpus ---------------------------------------------------------

scalars = st.one_of(
    st.integers(-5, 5),
    st.sampled_from(["x", "y", "abc", ""]),
    st.booleans(),
    st.none(),
    st.floats(allow_nan=False, allow_infinity=False, width=16),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.sampled_from(["a", "b", "c"]), children, max_size=3),
    ),
    max_leaves=8,
)

documents = st.dictionaries(st.sampled_from(["a", "b", "c", "d"]), values, max_size=4)

paths = st.sampled_from(["a", "b", "a.b", "a.c", "a.0", "a.b.c", "b.1", "d"])

operator_docs = st.one_of(
    st.fixed_dictionaries({"$eq": scalars}),
    st.fixed_dictionaries({"$ne": scalars}),
    st.fixed_dictionaries({"$gt": st.one_of(st.integers(-5, 5), st.sampled_from(["m", "x"]))}),
    st.fixed_dictionaries({"$gte": st.integers(-5, 5)}),
    st.fixed_dictionaries({"$lt": st.integers(-5, 5)}),
    st.fixed_dictionaries({"$lte": st.integers(-5, 5)}),
    st.fixed_dictionaries({"$in": st.lists(scalars, max_size=3)}),
    st.fixed_dictionaries({"$nin": st.lists(scalars, max_size=3)}),
    st.fixed_dictionaries({"$exists": st.booleans()}),
    st.fixed_dictionaries({"$size": st.integers(0, 3)}),
    st.fixed_dictionaries({"$all": st.lists(scalars, max_size=2)}),
    st.fixed_dictionaries(
        {"$type": st.sampled_from(["string", "int", "bool", "object", "array", "null"])}
    ),
    st.fixed_dictionaries({"$not": st.fixed_dictionaries({"$eq": scalars})}),
    st.fixed_dictionaries(
        {"$elemMatch": st.dictionaries(st.sampled_from(["a", "b"]), scalars, max_size=2)}
    ),
    st.fixed_dictionaries({"$gt": st.integers(-5, 5), "$lt": st.integers(-5, 5)}),
)

conditions = st.one_of(scalars, st.lists(scalars, max_size=3), operator_docs)

flat_queries = st.dictionaries(paths, conditions, max_size=3)

queries = st.one_of(
    flat_queries,
    st.fixed_dictionaries({"$and": st.lists(flat_queries, min_size=1, max_size=3)}),
    st.fixed_dictionaries({"$or": st.lists(flat_queries, min_size=1, max_size=3)}),
    st.fixed_dictionaries({"$nor": st.lists(flat_queries, min_size=1, max_size=3)}),
)


@settings(max_examples=300, deadline=None)
@given(documents, queries)
def test_compiled_matches_interpreter_property(document, query):
    # Outcome comparison: generated $elemMatch operands can hit the
    # oracle's lazy per-element QueryErrors, which the compiler must
    # reproduce, not avoid.
    predicate = compile_query(query)
    compiled = _outcome(lambda: predicate(document))
    interpreted = _outcome(lambda: matches(document, query))
    assert compiled == interpreted


# -- cache behaviour ----------------------------------------------------------

def test_cache_reuses_compiled_predicates():
    clear_cache()
    first = compile_query({"operation": "BID"})
    second = compile_query({"operation": "BID"})
    assert first is second
    info = cache_info()
    assert info["hits"] >= 1 and info["misses"] >= 1


def test_cache_keyed_on_canonical_form():
    clear_cache()
    first = compile_query({"a": 1, "b": 2})
    second = compile_query({"b": 2, "a": 1})
    assert first is second


def test_cached_predicate_immune_to_caller_mutation():
    """Mutating a query dict after use must not poison the cache entry."""
    clear_cache()
    collection = Collection("t")
    collection.insert_many([{"id": "1", "a": {"x": 1}}, {"id": "2", "a": {"x": 2}}])
    query = {"a": {"x": 1}}
    assert [d["id"] for d in collection.find(query)] == ["1"]
    query["a"]["x"] = 2  # caller reuses their dict for something else
    assert [d["id"] for d in collection.find({"a": {"x": 1}})] == ["1"]
    assert [d["id"] for d in collection.find({"a": {"x": 2}})] == ["2"]


def test_predicate_exposes_equalities():
    predicate = compile_query({"operation": "BID", "amount": {"$gt": 3}})
    assert predicate.equalities == {"operation": "BID"}


def test_collection_stats_semantics_unchanged():
    """index_probes / full_scans / documents_examined keep their meaning."""
    collection = Collection("txs")
    collection.create_index("id")
    for index in range(50):
        collection.insert_one({"id": f"t{index}", "value": index})
    before = dict(collection.stats)
    collection.find({"id": "t7"})
    assert collection.stats["index_probes"] == before["index_probes"] + 1
    assert collection.stats["documents_examined"] == before["documents_examined"] + 1
    collection.find({"value": {"$gt": 40}})
    assert collection.stats["full_scans"] == before["full_scans"] + 1
    assert collection.stats["documents_examined"] == before["documents_examined"] + 51


# -- blocked SortedIndex ------------------------------------------------------

class TestBlockedSortedIndex:
    def build(self, heights, load=2):
        index = SortedIndex("height")
        index.LOAD = load  # tiny blocks force splits in-test
        for doc_id, height in enumerate(heights):
            index.add(doc_id, {"height": height})
        return index

    def test_splits_preserve_range_order(self):
        heights = [9, 1, 7, 3, 5, 2, 8, 4, 6, 0, 10, 11, 12, 2, 5]
        index = self.build(heights)
        assert len(index._key_blocks) > 1  # splits actually happened
        full = list(index.range())
        assert [heights[i] for i in full] == sorted(heights)

    def test_duplicate_keys_keep_insertion_order(self):
        heights = [5, 5, 5, 5, 5, 5, 5, 5, 5]
        index = self.build(heights)
        assert list(index.range(5, 5)) == list(range(9))

    def test_duplicate_key_removal_removes_one_entry(self):
        index = self.build([1, 2, 2, 2, 3, 2])
        index.remove(2, {"height": 2})
        assert list(index.range(2, 2)) == [1, 3, 5]
        index.remove(5, {"height": 2})
        assert list(index.range(2, 2)) == [1, 3]

    def test_removal_across_blocks(self):
        heights = [2] * 12
        index = self.build(heights)
        assert len(index._key_blocks) > 1
        for doc_id in range(12):
            index.remove(doc_id, {"height": 2})
        assert len(index) == 0
        assert list(index.range()) == []

    def test_remove_absent_key_is_noop(self):
        index = self.build([1, 2, 3])
        index.remove(99, {"height": 7})
        index.remove(0, {"height": 2})  # present key, wrong doc id
        assert len(index) == 3

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(0, 30), max_size=60),
        st.integers(0, 30),
        st.integers(0, 30),
        st.booleans(),
        st.booleans(),
    )
    def test_range_matches_naive_filter_property(self, heights, low, high, inc_low, inc_high):
        low, high = min(low, high), max(low, high)
        index = self.build(heights, load=3)
        via_index = sorted(index.range(low, high, include_low=inc_low, include_high=inc_high))
        naive = sorted(
            i
            for i, h in enumerate(heights)
            if (h >= low if inc_low else h > low) and (h <= high if inc_high else h < high)
        )
        assert via_index == naive

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 10), st.booleans()), max_size=40))
    def test_interleaved_add_remove_property(self, operations):
        index = SortedIndex("height")
        index.LOAD = 2
        shadow: list[tuple[int, int]] = []  # (height, doc_id), insertion order
        for doc_id, (height, is_remove) in enumerate(operations):
            if is_remove and shadow:
                victim_height, victim_id = shadow.pop(0)
                index.remove(victim_id, {"height": victim_height})
            else:
                index.add(doc_id, {"height": height})
                shadow.append((height, doc_id))
        assert len(index) == len(shadow)
        expected = [doc_id for _, doc_id in sorted(shadow, key=lambda pair: pair[0])]
        full = list(index.range())
        assert sorted(full) == sorted(doc_id for _, doc_id in shadow)
        assert [h for h, _ in sorted(shadow, key=lambda p: p[0])] == [
            dict((d, h) for h, d in shadow)[doc_id] for doc_id in full
        ]
