"""Telemetry wired through real deployments: lifecycle traces, latency
histograms, metric snapshots, and byte-identical same-seed replays."""

from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import keypair_from_string
from repro.sharding import ShardedCluster, ShardedClusterConfig
from repro.sharding.router import SHARD_KEY_METADATA


def _single(**kwargs) -> SmartchainCluster:
    kwargs.setdefault("trace_sample_rate", 1.0)
    return SmartchainCluster(ClusterConfig(seed=11, **kwargs))


def _commit_one(cluster):
    owner = keypair_from_string("owner")
    create = cluster.driver.prepare_create(owner, {"capabilities": ["x"]})
    record = cluster.submit_and_settle(create)
    return create, record


class TestSingleClusterTraces:
    def test_lifecycle_span_timeline(self):
        cluster = _single()
        create, record = _commit_one(cluster)
        assert record.committed_at is not None
        names = [event["name"] for event in cluster.telemetry.tracer.timeline(create.tx_id)]
        # The tentpole lifecycle: submit -> verify -> admit -> propose ->
        # deliver -> apply, in causal (event-loop) order.
        for stage in (
            "submit",
            "signature_verified",
            "receiver_validated",
            "mempool_admit",
            "consensus_propose",
            "delivered",
            "applied",
        ):
            assert stage in names, f"missing {stage} in {names}"
        assert names.index("submit") < names.index("mempool_admit") < names.index("applied")

    def test_commit_latency_histogram_matches_records(self):
        cluster = _single()
        create, record = _commit_one(cluster)
        summary = cluster.latency_percentiles()
        assert summary["count"] == 1
        expected_ms = (record.committed_at - record.submitted_at) * 1000.0
        assert abs(summary["p50_ms"] - expected_ms) < 1e-9

    def test_wal_group_commit_event_when_durable(self):
        from repro.durability.node import DurabilityConfig

        cluster = _single(durability=DurabilityConfig())
        create, record = _commit_one(cluster)
        assert record.committed_at is not None
        names = [event["name"] for event in cluster.telemetry.tracer.timeline(create.tx_id)]
        assert "wal_group_commit" in names

    def test_snapshot_metrics_families(self):
        cluster = _single()
        _commit_one(cluster)
        snapshot = cluster.snapshot_metrics()
        for family in (
            "tx_submitted",
            "tx_commit_latency_ms",
            "mempool_depth",
            "consensus_block_txs",
            "consensus_height_ms",
            "server_delivered",
            "db_inserts",
            "sigcache_hits",
        ):
            assert family in snapshot, f"missing {family}"

    def test_disabled_telemetry_records_nothing(self):
        cluster = SmartchainCluster(
            ClusterConfig(seed=11, telemetry_enabled=False, trace_sample_rate=1.0)
        )
        create, record = _commit_one(cluster)
        assert record.committed_at is not None  # pipeline unaffected
        assert cluster.telemetry.registry.to_dict() == {}
        assert cluster.telemetry.tracer.trace_ids() == []
        assert len(cluster.telemetry.flight) == 0

    def test_sampling_rate_zero_skips_traces_but_not_metrics(self):
        cluster = _single(trace_sample_rate=0.0)
        create, record = _commit_one(cluster)
        assert record.committed_at is not None
        assert cluster.telemetry.tracer.trace_ids() == []
        assert cluster.latency_percentiles()["count"] == 1


def _sharded(seed: int = 7) -> ShardedCluster:
    return ShardedCluster(
        ShardedClusterConfig(n_shards=2, seed=seed, trace_sample_rate=1.0)
    )


def _cross_transfer(cluster):
    """Mint an asset, then migrate it to the other shard (forces 2PC)."""
    owner = keypair_from_string("owner")
    recipient = keypair_from_string("recipient")
    create = cluster.driver.prepare_create(owner, {"capabilities": ["x"]})
    cluster.submit_payload(create.to_dict())
    cluster.run()
    origin = cluster.router.home_of_tx(create.tx_id)
    target = next(shard for shard in cluster.shard_ids if shard != origin)
    transfer = cluster.driver.prepare_transfer(
        owner,
        [(create.tx_id, 0, 1)],
        create.tx_id,
        [(recipient.public_key, 1)],
        metadata={SHARD_KEY_METADATA: cluster.ring.key_landing_on(target, prefix="mig")},
    )
    record = cluster.submit_and_settle(transfer)
    return create, transfer, record, origin, target


class TestShardedClusterTraces:
    def test_cross_shard_trace_stitches_both_shards(self):
        cluster = _sharded()
        _, transfer, record, origin, target = _cross_transfer(cluster)
        assert record.committed_at is not None
        timeline = cluster.telemetry.tracer.timeline(transfer.tx_id)
        names = [event["name"] for event in timeline]
        nodes = {event.get("node", "") for event in timeline}
        assert names[0] == "submit"
        for stage in ("2pc_begin", "2pc_prepared", "2pc_commit_pending",
                      "2pc_decided:committed", "2pc_done", "applied"):
            assert stage in names, f"missing {stage} in {names}"
        # Events from the facade, the home shard's agent AND the remote
        # participant appear on one timeline.
        assert "facade" in nodes
        assert origin in nodes and target in nodes
        assert any(node.startswith(f"{target}/") for node in nodes)

    def test_no_latency_double_count(self):
        """The facade records a cross-shard commit once (end-to-end); the
        home shard's block commit of the same tx is filtered out."""
        cluster = _sharded()
        _, transfer, record, _, _ = _cross_transfer(cluster)
        assert record.committed_at is not None
        committed = len(cluster.committed_records())
        assert cluster.latency_percentiles()["count"] == committed
        facade = cluster.latency_percentiles(shard="facade")
        assert facade["count"] == 1
        expected_ms = (record.committed_at - record.submitted_at) * 1000.0
        assert abs(facade["p50_ms"] - expected_ms) < 1e-9

    def test_per_shard_and_aggregate_percentiles(self):
        cluster = _sharded()
        _cross_transfer(cluster)
        per_shard = cluster.per_shard_metrics()
        for metrics in per_shard.values():
            assert isinstance(metrics.percentiles_ms, dict)
        aggregate = cluster.aggregate_metrics()
        assert aggregate.percentiles_ms["count"] == len(cluster.committed_records())

    def test_snapshot_includes_2pc_and_router_families(self):
        cluster = _sharded()
        _cross_transfer(cluster)
        snapshot = cluster.snapshot_metrics()
        for family in ("2pc_coordinated", "2pc_prepare_ms", "2pc_total_ms",
                       "2pc_fanout", "router_routed", "tx_cross_shard"):
            assert family in snapshot, f"missing {family}"

    def test_flight_recorder_sees_2pc_phases(self):
        cluster = _sharded()
        _, transfer, _, _, _ = _cross_transfer(cluster)
        kinds = [event["kind"] for event in cluster.telemetry.flight.events_for(transfer.tx_id)]
        for phase in ("begin", "commit_pending", "decided:committed", "done"):
            assert phase in kinds, f"missing {phase} in {kinds}"


class TestReplayDeterminism:
    def test_same_seed_runs_are_byte_identical(self):
        """The acceptance bar: two same-seed runs export identical
        registry JSON, identical trace timelines, identical flight dumps.
        The process-global signature cache is swapped fresh per run — it
        is deliberately shared across clusters in one process, which is
        cross-run state, not nondeterminism."""
        from repro.crypto.sigcache import SignatureCache, set_shared_cache

        outputs = []
        for _ in range(2):
            previous = set_shared_cache(SignatureCache())
            try:
                cluster = _sharded(seed=23)
                _, transfer, _, _, _ = _cross_transfer(cluster)
                cluster.snapshot_metrics()
                outputs.append(
                    (
                        cluster.telemetry.registry.to_json(),
                        cluster.telemetry.tracer.timeline(transfer.tx_id),
                        cluster.telemetry.flight.dump(),
                    )
                )
            finally:
                set_shared_cache(previous)
        assert outputs[0][0] == outputs[1][0]
        assert outputs[0][1] == outputs[1][1]
        assert outputs[0][2] == outputs[1][2]

    def test_default_sampling_is_seed_stable(self):
        """At the default 1/64 rate the sampled set is a pure function of
        the seed — two constructions agree on every verdict."""
        first = ShardedCluster(ShardedClusterConfig(n_shards=2, seed=5))
        second = ShardedCluster(ShardedClusterConfig(n_shards=2, seed=5))
        assert first.telemetry.tracer.salt == second.telemetry.tracer.salt
        third = ShardedCluster(ShardedClusterConfig(n_shards=2, seed=6))
        assert first.telemetry.tracer.salt != third.telemetry.tracer.salt
