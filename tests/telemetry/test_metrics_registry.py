"""Registry semantics: exact percentiles, merge, canonical exports."""

import json

import pytest

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exact_percentile,
)


class TestExactPercentile:
    def test_nearest_rank_ceil_convention(self):
        """p95 of 5 samples is the 5th value (rank ceil(0.95*5)=5), not
        the 4th (the int() truncation bias the seed collector had)."""
        ordered = [1.0, 2.0, 3.0, 4.0, 100.0]
        assert exact_percentile(ordered, 0.95) == 100.0
        assert exact_percentile(ordered, 0.50) == 3.0
        assert exact_percentile(ordered, 0.0) == 1.0
        assert exact_percentile(ordered, 1.0) == 100.0

    def test_known_distribution(self):
        """Against 1..100, p-th percentile is exactly the p-th value."""
        ordered = [float(value) for value in range(1, 101)]
        assert exact_percentile(ordered, 0.50) == 50.0
        assert exact_percentile(ordered, 0.95) == 95.0
        assert exact_percentile(ordered, 0.99) == 99.0
        assert exact_percentile(ordered, 0.999) == 100.0

    def test_single_sample(self):
        assert exact_percentile([7.0], 0.999) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            exact_percentile([], 0.5)


class TestCounterGauge:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0


class TestHistogram:
    def test_exact_percentiles_unsorted_observations(self):
        histogram = Histogram()
        for value in [5.0, 1.0, 3.0, 2.0, 4.0]:
            histogram.observe(value)
        assert histogram.exact
        assert histogram.percentile(0.50) == 3.0
        assert histogram.percentile(1.0) == 5.0
        summary = histogram.percentiles()
        assert summary["count"] == 5
        assert summary["mean"] == 3.0
        assert summary["min"] == 1.0 and summary["max"] == 5.0

    def test_degrades_past_sample_limit(self):
        """Beyond the retention bound, percentiles become conservative
        bucket upper bounds (over-, never under-estimates)."""
        histogram = Histogram(sample_limit=10)
        for value in range(1, 101):
            histogram.observe(float(value))
        assert not histogram.exact
        assert histogram.count == 100
        true_p99 = 99.0
        assert histogram.percentile(0.99) >= true_p99

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(0.95) == 0.0
        assert Histogram().percentiles() == {"count": 0}

    def test_merge_preserves_exactness(self):
        """Merging shard histograms keeps exact percentiles when the
        combined samples fit — percentiles of the merge equal percentiles
        of the pooled observations."""
        left, right = Histogram(), Histogram()
        left_values = [1.0, 5.0, 9.0]
        right_values = [2.0, 4.0, 100.0]
        for value in left_values:
            left.observe(value)
        for value in right_values:
            right.observe(value)
        merged = left.merge(right)
        pooled = sorted(left_values + right_values)
        assert merged.exact
        assert merged.count == 6
        assert merged.sum == sum(pooled)
        for quantile in (0.5, 0.95, 0.99, 0.999):
            assert merged.percentile(quantile) == exact_percentile(pooled, quantile)

    def test_merge_accumulates_buckets(self):
        left, right = Histogram(), Histogram()
        left.observe(3.0)  # bucket 2**2
        right.observe(3.5)  # same bucket
        right.observe(100.0)  # bucket 2**7
        merged = left.merge(right)
        assert merged.buckets[2] == 2
        assert merged.buckets[7] == 1

    def test_nonpositive_values_clamp_to_first_bucket(self):
        histogram = Histogram()
        histogram.observe(0.0)
        histogram.observe(-1.0)
        assert histogram.count == 2
        assert histogram.percentile(0.5) == -1.0  # exact path still works


class TestMetricsRegistry:
    def test_label_series_are_independent(self):
        registry = MetricsRegistry()
        registry.counter("tx", shard="a").inc()
        registry.counter("tx", shard="b").inc(2)
        assert registry.counter("tx", shard="a").value == 1
        assert registry.counter("tx", shard="b").value == 2

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_merged_histogram_filters_on_labels(self):
        registry = MetricsRegistry()
        registry.histogram("lat", shard="a", operation="CREATE").observe(1.0)
        registry.histogram("lat", shard="a", operation="TRANSFER").observe(2.0)
        registry.histogram("lat", shard="b", operation="CREATE").observe(3.0)
        assert registry.merged_histogram("lat").count == 3
        assert registry.merged_histogram("lat", shard="a").count == 2
        assert registry.merged_histogram("lat", operation="CREATE").count == 2
        assert registry.merged_histogram("lat", shard="b", operation="CREATE").count == 1

    def test_to_json_is_canonical(self):
        """Same observations in different insertion order export the
        same bytes — the property repro bundles rely on."""
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("a", node="n1").inc()
        first.histogram("h", node="n1").observe(2.0)
        second.histogram("h", node="n1").observe(2.0)
        second.counter("a", node="n1").inc()
        assert first.to_json() == second.to_json()
        payload = json.loads(first.to_json())
        assert payload["a"]["node=n1"]["kind"] == "counter"
        assert payload["h"]["node=n1"]["count"] == 1

    def test_render_prometheus_shapes(self):
        registry = MetricsRegistry()
        registry.counter("tx_total", shard="a").inc(3)
        registry.gauge("depth").set(7)
        histogram = registry.histogram("lat_ms", shard="a")
        histogram.observe(1.5)
        histogram.observe(3.0)
        text = registry.render_prometheus()
        assert "# TYPE tx_total counter" in text
        assert 'tx_total{shard="a"} 3.0' in text
        assert "depth 7.0" in text
        assert "# TYPE lat_ms histogram" in text
        # Cumulative buckets end at +Inf == count.
        assert 'lat_ms_bucket{shard="a",le="+Inf"} 2' in text
        assert 'lat_ms_sum{shard="a"} 4.5' in text
        assert 'lat_ms_count{shard="a"} 2' in text

    def test_instruments_iterate_in_canonical_order(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a", z="1")
        registry.counter("a", b="0")
        names = [(name, labels) for name, labels, _ in registry.instruments()]
        assert names == [("a", {"b": "0"}), ("a", {"z": "1"}), ("b", {})]
