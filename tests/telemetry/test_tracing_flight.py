"""Tracer and flight-recorder semantics (pure units, fake clock)."""

from repro.telemetry import FlightRecorder, Telemetry
from repro.telemetry.tracing import Tracer, sample_decision


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0


class TestSampleDecision:
    def test_pure_and_deterministic(self):
        verdicts = [sample_decision(42, f"tx-{i}", 0.25) for i in range(200)]
        assert verdicts == [sample_decision(42, f"tx-{i}", 0.25) for i in range(200)]

    def test_rate_extremes(self):
        assert sample_decision(1, "anything", 1.0)
        assert not sample_decision(1, "anything", 0.0)

    def test_rate_roughly_honored(self):
        hits = sum(sample_decision(7, f"tx-{i}", 0.25) for i in range(2000))
        assert 0.18 < hits / 2000 < 0.32

    def test_salt_changes_the_sampled_set(self):
        set_a = {i for i in range(500) if sample_decision(1, f"tx-{i}", 0.25)}
        set_b = {i for i in range(500) if sample_decision(2, f"tx-{i}", 0.25)}
        assert set_a != set_b


class TestTracer:
    def _tracer(self, **kwargs) -> tuple[Tracer, FakeClock]:
        clock = FakeClock()
        return Tracer(clock, sample_rate=1.0, **kwargs), clock

    def test_begin_is_idempotent_and_returns_verdict(self):
        tracer, _ = self._tracer()
        assert tracer.begin("tx-1")
        assert tracer.begin("tx-1")  # second begin: still sampled, no dup
        assert len(tracer.timeline("tx-1")) == 1
        assert tracer.started == 1

    def test_unsampled_ids_record_nothing(self):
        clock = FakeClock()
        tracer = Tracer(clock, sample_rate=0.0)
        assert not tracer.begin("tx-1")
        tracer.event("tx-1", "phase")
        assert tracer.timeline("tx-1") == []
        assert tracer.skipped == 1

    def test_events_carry_sim_time_and_attrs(self):
        tracer, clock = self._tracer()
        tracer.begin("tx-1", node="facade")
        clock.now = 0.5
        tracer.event("tx-1", "commit", node="n0", height=3)
        timeline = tracer.timeline("tx-1")
        assert timeline[1] == {"t": 0.5, "name": "commit", "node": "n0", "height": 3}

    def test_trace_eviction_bound(self):
        tracer, _ = self._tracer(max_traces=3)
        for index in range(5):
            tracer.begin(f"tx-{index}")
        assert tracer.trace_ids() == ["tx-2", "tx-3", "tx-4"]
        assert not tracer.sampled("tx-0")

    def test_per_trace_event_bound(self):
        tracer, _ = self._tracer(max_events=4)
        tracer.begin("tx-1")
        for index in range(10):
            tracer.event("tx-1", f"e{index}")
        assert len(tracer.timeline("tx-1")) == 4

    def test_spans_are_consecutive_intervals(self):
        tracer, clock = self._tracer()
        tracer.begin("tx-1")
        clock.now = 0.2
        tracer.event("tx-1", "admitted")
        clock.now = 0.7
        tracer.event("tx-1", "applied")
        spans = tracer.spans("tx-1")
        assert [span["stage"] for span in spans] == [
            "submit -> admitted",
            "admitted -> applied",
        ]
        assert abs(spans[1]["duration"] - 0.5) < 1e-12

    def test_render_tree(self):
        tracer, clock = self._tracer()
        tracer.begin("abcdef0123456789", node="facade")
        clock.now = 0.001
        tracer.event("abcdef0123456789", "applied", node="n0", height=1)
        text = tracer.render_tree("abcdef0123456789")
        assert "events=2" in text
        assert "submit" in text and "applied" in text
        assert "[n0]" in text and "height=1" in text
        assert tracer.render_tree("missing").startswith("trace missing")


class TestFlightRecorder:
    def test_ring_bounds_and_dropped(self):
        flight = FlightRecorder(capacity=3)
        for index in range(5):
            flight.record(float(index), "n0", "phase", tx_id=f"tx-{index}")
        assert len(flight) == 3
        assert flight.recorded == 5
        assert flight.dropped == 2
        assert [event["t"] for event in flight.dump()] == [2.0, 3.0, 4.0]

    def test_events_for_filters_by_tx(self):
        flight = FlightRecorder()
        flight.record(0.0, "n0", "commit", tx_id="tx-a")
        flight.record(1.0, "n1", "lock_adopt")
        flight.record(2.0, "n0", "decide", tx_id="tx-a", outcome="committed")
        events = flight.events_for("tx-a")
        assert [event["kind"] for event in events] == ["commit", "decide"]
        assert events[1]["outcome"] == "committed"

    def test_clear(self):
        flight = FlightRecorder()
        flight.record(0.0, "n0", "x")
        flight.clear()
        assert len(flight) == 0 and flight.recorded == 0


class TestTelemetryFacade:
    def test_observe_ms_converts_seconds(self):
        telemetry = Telemetry(FakeClock(), sample_rate=1.0)
        telemetry.observe_ms("lat", 0.0025, shard="a")
        histogram = telemetry.registry.histogram("lat", shard="a")
        assert histogram.count == 1
        assert abs(histogram.sum - 2.5) < 1e-12

    def test_latency_percentiles_summary(self):
        telemetry = Telemetry(FakeClock(), sample_rate=1.0)
        assert telemetry.latency_percentiles() == {"count": 0}
        for value in (10.0, 20.0, 30.0):
            telemetry.registry.histogram(
                "tx_commit_latency_ms", shard="a"
            ).observe(value)
        summary = telemetry.latency_percentiles()
        assert summary["count"] == 3
        assert summary["p50_ms"] == 20.0
        assert summary["p999_ms"] == 30.0
        assert summary["max_ms"] == 30.0

    def test_flight_event_stamps_clock(self):
        clock = FakeClock()
        telemetry = Telemetry(clock, sample_rate=1.0)
        clock.now = 1.25
        telemetry.flight_event("n0", "block_commit", tx_id="tx-1", height=2)
        event = telemetry.flight.dump()[0]
        assert event["t"] == 1.25 and event["height"] == 2
