"""Rendering helpers in :mod:`repro.metrics.report` (pure units)."""

from repro.metrics.report import _render, format_series, format_table, ratio


class TestRender:
    def test_integer_passthrough(self):
        assert _render(42) == "42"
        assert _render("CREATE") == "CREATE"

    def test_float_precision_tiers(self):
        """Three significance tiers: >=100 one decimal, >=1 three, <1 four."""
        assert _render(1234.5678) == "1234.6"
        assert _render(12.34567) == "12.346"
        assert _render(0.123456) == "0.1235"
        assert _render(0.0) == "0"

    def test_negative_floats_follow_magnitude(self):
        assert _render(-250.0) == "-250.0"
        assert _render(-2.5) == "-2.500"


class TestFormatTable:
    def test_columns_right_aligned_to_widest_cell(self):
        text = format_table(
            ["op", "latency"], [["CREATE", 0.5], ["ACCEPT_BID", 12.25]]
        )
        lines = text.splitlines()
        header, rule, first, second = lines
        # Every line is the same width and cells align on the right edge.
        assert len({len(line) for line in lines}) == 1
        assert header.endswith("latency")
        assert first.endswith("0.5000")
        assert second.endswith("12.250")
        assert set(rule) <= {"-", " "}

    def test_title_is_first_line_when_given(self):
        with_title = format_table(["a"], [[1]], title="T")
        assert with_title.splitlines()[0] == "T"
        without = format_table(["a"], [[1]])
        assert without.splitlines()[0].strip() == "a"

    def test_empty_rows_render_header_and_rule_only(self):
        text = format_table(["x", "y"], [])
        assert len(text.splitlines()) == 2


class TestFormatSeries:
    def test_pairs_zip_in_order(self):
        text = format_series("fig", [1, 2, 3], [0.1, 0.2, 0.3], "size", "lat")
        lines = text.splitlines()
        assert lines[0] == "fig"
        assert len(lines) == 3 + 3  # title + header + rule + 3 rows
        assert lines[4].split() == ["2", "0.2000"]

    def test_unequal_lengths_truncate_to_shorter(self):
        text = format_series("fig", [1, 2, 3], [0.1], "x", "y")
        assert len(text.splitlines()) == 4  # title + header + rule + 1 row


class TestRatio:
    def test_plain_division(self):
        assert ratio(10, 2) == 5.0

    def test_zero_and_negative_denominators_are_inf(self):
        assert ratio(1, 0) == float("inf")
        assert ratio(1, -5) == float("inf")

    def test_zero_numerator(self):
        assert ratio(0, 4) == 0.0
