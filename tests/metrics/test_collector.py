"""Metric calculation per the paper's definitions (5.1.4)."""

from dataclasses import dataclass

from repro.metrics.collector import OperationStats, collect_metrics
from repro.metrics.report import format_series, format_table, ratio


@dataclass
class FakeRecord:
    operation: str
    submitted_at: float
    committed_at: float | None


class TestCollectMetrics:
    def test_latency_per_operation(self):
        records = [
            FakeRecord("CREATE", 0.0, 1.0),
            FakeRecord("CREATE", 0.0, 3.0),
            FakeRecord("BID", 1.0, 2.0),
        ]
        metrics = collect_metrics("SCDB", records)
        assert metrics.latency("CREATE") == 2.0
        assert metrics.latency("BID") == 1.0

    def test_throughput_definition(self):
        """committed / (last commit - first reception)."""
        records = [
            FakeRecord("CREATE", 0.0, 2.0),
            FakeRecord("CREATE", 1.0, 4.0),
            FakeRecord("CREATE", 2.0, 10.0),
        ]
        metrics = collect_metrics("SCDB", records)
        assert metrics.throughput_tps == 3 / 10.0

    def test_uncommitted_excluded_from_latency(self):
        records = [FakeRecord("BID", 0.0, 1.0), FakeRecord("BID", 0.0, None)]
        metrics = collect_metrics("SCDB", records)
        assert metrics.per_operation["BID"].count == 1
        assert metrics.committed == 1
        assert metrics.submitted == 2

    def test_missing_operation_is_inf(self):
        metrics = collect_metrics("SCDB", [])
        assert metrics.latency("BID") == float("inf")

    def test_operation_stats_percentiles(self):
        stats = OperationStats.from_latencies("X", [1.0, 2.0, 3.0, 4.0, 100.0])
        assert stats.median_latency == 3.0
        assert stats.max_latency == 100.0
        assert stats.p95_latency == 100.0
        assert stats.count == 5

    def test_percentiles_use_nearest_rank_ceil(self):
        """Pin the convention: p95 of 20 samples is the value at rank
        ceil(0.95*20)=19 (1-based) — the 19th value, not the 20th; and
        p95 of 19 samples is rank ceil(18.05)=19, the maximum.  The old
        ``int(0.95*n)`` index under-reported the second case."""
        twenty = [float(value) for value in range(1, 21)]
        stats = OperationStats.from_latencies("X", twenty)
        assert stats.p95_latency == 19.0
        assert stats.p50_latency == 10.0
        assert stats.p99_latency == 20.0
        assert stats.p999_latency == 20.0
        nineteen = [float(value) for value in range(1, 20)]
        assert OperationStats.from_latencies("X", nineteen).p95_latency == 19.0

    def test_degenerate_span_clamps_not_zero(self):
        """Every commit at one simulated instant used to yield a 0-second
        span and 0 tps; the span now clamps to one sim tick."""
        records = [
            FakeRecord("CREATE", 1.0, 1.0),
            FakeRecord("CREATE", 1.0, 1.0),
        ]
        metrics = collect_metrics("SCDB", records)
        assert metrics.span_seconds == 1e-6
        assert metrics.throughput_tps == 2 / 1e-6

    def test_percentiles_ms_defaults_empty(self):
        metrics = collect_metrics("SCDB", [FakeRecord("CREATE", 0.0, 1.0)])
        assert metrics.percentiles_ms == {}


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["op", "latency"], [["CREATE", 0.5], ["BID", 12.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "CREATE" in text and "BID" in text

    def test_format_series(self):
        text = format_series("fig7a", [1, 2], [0.1, 0.2], "size", "latency")
        assert "fig7a" in text
        assert "size" in text

    def test_ratio(self):
        assert ratio(10, 2) == 5
        assert ratio(1, 0) == float("inf")
