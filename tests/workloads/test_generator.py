"""Workload generator: the paper's 110k mix, scaled."""

from repro.workloads.generator import PAPER_MIX, WorkloadGenerator, WorkloadSpec


class TestMix:
    def test_paper_mix_totals(self):
        assert sum(PAPER_MIX.values()) == 110_000
        assert PAPER_MIX["CREATE"] == 50_000
        assert PAPER_MIX["BID"] == 50_000
        assert PAPER_MIX["REQUEST"] == 5_000
        assert PAPER_MIX["ACCEPT_BID"] == 5_000

    def test_scaled_mix_preserves_proportions(self):
        spec = WorkloadSpec(total=1_100)
        mix = spec.mix()
        assert mix["CREATE"] == 500
        assert mix["BID"] == 500
        assert mix["REQUEST"] == 50
        assert mix["ACCEPT_BID"] == 50

    def test_generated_counts_match_mix(self):
        generator = WorkloadGenerator(WorkloadSpec(total=220))
        counts = generator.counts()
        mix = generator.spec.mix()
        assert counts["REQUEST"] == mix["REQUEST"]
        assert counts["ACCEPT_BID"] == mix["ACCEPT_BID"]
        assert abs(counts["CREATE"] - mix["CREATE"]) <= mix["REQUEST"]
        assert abs(counts["BID"] - mix["BID"]) <= mix["REQUEST"]


class TestStructure:
    def test_accepts_follow_their_requests(self):
        generator = WorkloadGenerator(WorkloadSpec(total=220))
        seen_requests = set()
        for item in generator.items():
            if item.operation == "ACCEPT_BID":
                assert item.request_index in seen_requests
            elif item.operation == "REQUEST":
                seen_requests.add(item.request_index)

    def test_bids_follow_their_requests(self):
        generator = WorkloadGenerator(WorkloadSpec(total=220))
        seen_requests = set()
        for item in generator.items():
            if item.operation == "BID":
                assert item.request_index in seen_requests
            elif item.operation == "REQUEST":
                seen_requests.add(item.request_index)

    def test_deterministic(self):
        left = list(WorkloadGenerator(WorkloadSpec(total=110, seed=3)).items())
        right = list(WorkloadGenerator(WorkloadSpec(total=110, seed=3)).items())
        assert left == right

    def test_metadata_fill_targets_payload_size(self):
        small = WorkloadGenerator(WorkloadSpec(total=110, target_payload_bytes=1_000))
        large = WorkloadGenerator(WorkloadSpec(total=110, target_payload_bytes=2_000))
        small_item = next(i for i in small.items() if i.operation == "CREATE")
        large_item = next(i for i in large.items() if i.operation == "CREATE")
        assert len(large_item.metadata_fill) > len(small_item.metadata_fill)

    def test_actor_population_respected(self):
        generator = WorkloadGenerator(WorkloadSpec(total=220, n_actors=8))
        actors = {item.actor for item in generator.items()}
        assert actors <= set(range(8))
