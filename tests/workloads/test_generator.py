"""Workload generator: the paper's 110k mix, scaled."""

import random
from collections import Counter

import pytest

from repro.workloads.generator import (
    CAPABILITY_VOCABULARY,
    PAPER_MIX,
    WorkloadGenerator,
    WorkloadSpec,
    ZipfSampler,
)


class TestMix:
    def test_paper_mix_totals(self):
        assert sum(PAPER_MIX.values()) == 110_000
        assert PAPER_MIX["CREATE"] == 50_000
        assert PAPER_MIX["BID"] == 50_000
        assert PAPER_MIX["REQUEST"] == 5_000
        assert PAPER_MIX["ACCEPT_BID"] == 5_000

    def test_scaled_mix_preserves_proportions(self):
        spec = WorkloadSpec(total=1_100)
        mix = spec.mix()
        assert mix["CREATE"] == 500
        assert mix["BID"] == 500
        assert mix["REQUEST"] == 50
        assert mix["ACCEPT_BID"] == 50

    def test_generated_counts_match_mix(self):
        generator = WorkloadGenerator(WorkloadSpec(total=220))
        counts = generator.counts()
        mix = generator.spec.mix()
        assert counts["REQUEST"] == mix["REQUEST"]
        assert counts["ACCEPT_BID"] == mix["ACCEPT_BID"]
        assert abs(counts["CREATE"] - mix["CREATE"]) <= mix["REQUEST"]
        assert abs(counts["BID"] - mix["BID"]) <= mix["REQUEST"]


class TestStructure:
    def test_accepts_follow_their_requests(self):
        generator = WorkloadGenerator(WorkloadSpec(total=220))
        seen_requests = set()
        for item in generator.items():
            if item.operation == "ACCEPT_BID":
                assert item.request_index in seen_requests
            elif item.operation == "REQUEST":
                seen_requests.add(item.request_index)

    def test_bids_follow_their_requests(self):
        generator = WorkloadGenerator(WorkloadSpec(total=220))
        seen_requests = set()
        for item in generator.items():
            if item.operation == "BID":
                assert item.request_index in seen_requests
            elif item.operation == "REQUEST":
                seen_requests.add(item.request_index)

    def test_deterministic(self):
        left = list(WorkloadGenerator(WorkloadSpec(total=110, seed=3)).items())
        right = list(WorkloadGenerator(WorkloadSpec(total=110, seed=3)).items())
        assert left == right

    def test_metadata_fill_targets_payload_size(self):
        small = WorkloadGenerator(WorkloadSpec(total=110, target_payload_bytes=1_000))
        large = WorkloadGenerator(WorkloadSpec(total=110, target_payload_bytes=2_000))
        small_item = next(i for i in small.items() if i.operation == "CREATE")
        large_item = next(i for i in large.items() if i.operation == "CREATE")
        assert len(large_item.metadata_fill) > len(small_item.metadata_fill)

    def test_actor_population_respected(self):
        generator = WorkloadGenerator(WorkloadSpec(total=220, n_actors=8))
        actors = {item.actor for item in generator.items()}
        assert actors <= set(range(8))


class TestZipfHotKeys:
    def test_sampler_validates_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0, random.Random(1))
        with pytest.raises(ValueError):
            ZipfSampler(10, -0.5, random.Random(1))

    def test_zero_skew_is_roughly_uniform(self):
        sampler = ZipfSampler(10, 0.0, random.Random(42))
        counts = Counter(sampler.sample() for _ in range(10_000))
        assert min(counts.values()) > 700  # ~1000 expected per rank

    def test_high_skew_concentrates_on_leading_ranks(self):
        sampler = ZipfSampler(100, 1.2, random.Random(42))
        counts = Counter(sampler.sample() for _ in range(10_000))
        top_share = sum(counts[rank] for rank in range(5)) / 10_000
        assert top_share > 0.4
        assert counts.most_common(1)[0][0] == 0  # rank 0 is the hottest

    def test_skewed_workload_concentrates_actors(self):
        uniform = WorkloadGenerator(WorkloadSpec(total=440, n_actors=32, seed=5))
        skewed = WorkloadGenerator(
            WorkloadSpec(total=440, n_actors=32, zipf_skew=1.2, seed=5)
        )

        def hot_share(generator: WorkloadGenerator) -> float:
            counts = Counter(item.actor for item in generator.items())
            return counts.most_common(1)[0][1] / sum(counts.values())

        assert hot_share(skewed) > hot_share(uniform)

    def test_skewed_capability_popularity(self):
        skewed = WorkloadGenerator(
            WorkloadSpec(total=440, zipf_skew=1.5, seed=5)
        )
        counts: Counter = Counter()
        for item in skewed.items():
            counts.update(item.capabilities)
        hottest = counts.most_common(1)[0][0]
        # The vocabulary's leading entries are the popularity ranking.
        assert hottest in CAPABILITY_VOCABULARY[:3]

    def test_skewed_generation_is_deterministic(self):
        left = list(WorkloadGenerator(WorkloadSpec(total=110, zipf_skew=1.0, seed=3)).items())
        right = list(WorkloadGenerator(WorkloadSpec(total=110, zipf_skew=1.0, seed=3)).items())
        assert left == right
