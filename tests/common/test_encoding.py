"""Canonical serialisation and base58 encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.encoding import (
    base58_decode,
    base58_encode,
    canonical_bytes,
    canonical_serialize,
    deep_copy_json,
    hex_decode,
    hex_encode,
)
from repro.common.errors import EncodingError


class TestCanonicalSerialize:
    def test_sorts_keys(self):
        assert canonical_serialize({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_no_whitespace(self):
        text = canonical_serialize({"a": [1, 2], "b": {"c": 3}})
        assert " " not in text

    def test_key_order_does_not_change_output(self):
        left = canonical_serialize({"x": 1, "y": {"b": 2, "a": 3}})
        right = canonical_serialize({"y": {"a": 3, "b": 2}, "x": 1})
        assert left == right

    def test_unicode_preserved(self):
        assert canonical_serialize({"k": "naïve"}) == '{"k":"naïve"}'

    def test_non_serialisable_raises(self):
        with pytest.raises(EncodingError):
            canonical_serialize({"k": object()})

    def test_canonical_bytes_utf8(self):
        assert canonical_bytes({"k": "é"}) == '{"k":"é"}'.encode("utf-8")


class TestBase58:
    def test_roundtrip_simple(self):
        assert base58_decode(base58_encode(b"hello")) == b"hello"

    def test_leading_zeros_preserved(self):
        data = b"\x00\x00\x01\x02"
        encoded = base58_encode(data)
        assert encoded.startswith("11")
        assert base58_decode(encoded) == data

    def test_empty(self):
        assert base58_encode(b"") == ""
        assert base58_decode("") == b""

    def test_known_vector(self):
        # "hello world" per the Bitcoin alphabet.
        assert base58_encode(b"hello world") == "StV1DL6CwTryKyV"

    def test_invalid_character_raises(self):
        with pytest.raises(EncodingError):
            base58_decode("0OIl")  # excluded alphabet characters

    @given(st.binary(max_size=128))
    def test_roundtrip_property(self, data):
        assert base58_decode(base58_encode(data)) == data


class TestHex:
    def test_roundtrip(self):
        assert hex_decode(hex_encode(b"\xde\xad")) == b"\xde\xad"

    def test_0x_prefix_accepted(self):
        assert hex_decode("0xdead") == b"\xde\xad"

    def test_bad_hex_raises(self):
        with pytest.raises(EncodingError):
            hex_decode("zz")

    @given(st.binary(max_size=64))
    def test_roundtrip_property(self, data):
        assert hex_decode(hex_encode(data)) == data


class TestDeepCopyJson:
    def test_nested_structures_are_independent(self):
        original = {"a": [1, {"b": 2}]}
        copy = deep_copy_json(original)
        copy["a"][1]["b"] = 99
        assert original["a"][1]["b"] == 2

    def test_scalars_pass_through(self):
        assert deep_copy_json(5) == 5
        assert deep_copy_json(None) is None
