"""Torn-write property tests: recovery at every byte offset.

The durability contract under power loss: whatever the device holds,
recovery yields the **longest valid prefix of whole frames — never a
partial frame, never a record past a tear**.  These tests brute-force
the whole space: the final frame (and, cheaply, the entire log) is
truncated at *every* byte offset and corrupted at every byte of its
body, and the recovered record sequence is checked against the exact
prefix arithmetic of the frame layout.
"""

from repro.durability.node import DurabilityConfig, NodeDurability
from repro.durability.recovery import recover
from repro.durability.wal import SegmentedWal, SimDisk, encode_frame
from repro.sim.events import EventLoop
from repro.storage.database import Database

N_RECORDS = 10


def build_log() -> tuple[SimDisk, list[bytes], str]:
    """A synced single-segment WAL of N_RECORDS, plus its frame bytes."""
    disk = SimDisk()
    wal = SegmentedWal(disk, segment_max_bytes=1 << 20)
    frames = []
    for i in range(N_RECORDS):
        record = {"n": i, "pad": "payload-%02d" % i}
        frames.append(encode_frame({"lsn": i + 1, "rec": record}))
        wal.append(record)
    wal.sync()
    (name,) = wal.segments()
    assert disk.read(name) == b"".join(frames)  # layout assumption holds
    return disk, frames, name


def expected_records(frames: list[bytes], byte_budget: int) -> list[int]:
    """Which records survive when only ``byte_budget`` bytes are durable."""
    survived, used = [], 0
    for index, frame in enumerate(frames):
        if used + len(frame) <= byte_budget:
            survived.append(index)
            used += len(frame)
        else:
            break
    return survived


class TestTruncateEveryOffset:
    def test_every_truncation_yields_longest_valid_prefix(self):
        disk, frames, name = build_log()
        total = sum(len(frame) for frame in frames)
        for offset in range(total + 1):
            torn = disk.clone()
            torn.truncate(name, offset)
            wal = SegmentedWal(torn, segment_max_bytes=1 << 20)
            records = [rec["n"] for _, rec in wal.scan()]
            assert records == expected_records(frames, offset), (
                f"truncation at byte {offset} returned {records}"
            )

    def test_every_truncation_repairs_to_a_frame_boundary(self):
        disk, frames, name = build_log()
        boundaries = {0}
        cursor = 0
        for frame in frames:
            cursor += len(frame)
            boundaries.add(cursor)
        total = cursor
        for offset in range(total + 1):
            torn = disk.clone()
            torn.truncate(name, offset)
            wal = SegmentedWal(torn, segment_max_bytes=1 << 20)
            survivors = expected_records(frames, offset)
            last = wal.repair()
            assert last == len(survivors)
            assert torn.durable_size(name) in boundaries
            # Post-repair appends extend the prefix seamlessly.
            wal.append({"n": "tail"})
            wal.sync()
            records = [rec["n"] for _, rec in wal.scan()]
            assert records == survivors + ["tail"]


class TestCorruptEveryFinalFrameByte:
    def test_bitrot_anywhere_in_final_frame_drops_exactly_it(self):
        disk, frames, name = build_log()
        final_start = sum(len(frame) for frame in frames[:-1])
        final_len = len(frames[-1])
        for delta in range(final_len):
            corrupt = disk.clone()
            corrupt.corrupt(name, final_start + delta)
            wal = SegmentedWal(corrupt, segment_max_bytes=1 << 20)
            records = [rec["n"] for _, rec in wal.scan()]
            if delta < 4:
                # A flipped length byte may implausibly lengthen the
                # frame (torn) or shorten it (checksum fails): either
                # way nothing at or past the tear is returned.
                assert records[: N_RECORDS - 1] == list(range(N_RECORDS - 1))
                assert len(records) <= N_RECORDS - 1 or records == list(
                    range(N_RECORDS)
                )
            else:
                # CRC or body damage: the final record must vanish.
                assert records == list(range(N_RECORDS - 1)), (
                    f"corruption at frame byte {delta} returned {records}"
                )

    def test_power_fail_tearing_final_record_at_every_offset(self):
        """End-to-end through the node stack: the final journal record
        is appended but unsynced when power fails, tearing the device at
        every possible byte offset of that frame.  Recovery must yield
        all five earlier documents every time, and the sixth exactly
        when its whole frame survived."""
        # Probe the final frame's length once (deterministic stack).
        loop = EventLoop()
        durability = NodeDurability("probe", loop, DurabilityConfig())
        database = Database("probe", wal=durability.log)
        items = database.create_collection("items")
        for i in range(5):
            items.insert_one({"n": i})
        loop.run_until_idle()
        name = durability.wal.segments()[-1]
        before = durability.disk.durable_size(name)
        items.insert_one({"n": 5})
        loop.run_until_idle()
        final_frame_len = durability.disk.durable_size(name) - before

        for torn_bytes in range(final_frame_len + 1):
            loop = EventLoop()
            durability = NodeDurability("node", loop, DurabilityConfig())
            database = Database("node", wal=durability.log)
            items = database.create_collection("items")
            for i in range(5):
                items.insert_one({"n": i})
            loop.run_until_idle()  # first five records durable
            items.insert_one({"n": 5})
            # Flush the queue into the device WITHOUT the hardware sync:
            # append the frame volatile, then power-fail mid-write.
            record = {"k": "db", "op": "insert", "c": "items", "d": {"n": 5}}
            durability.log.drop_queue()
            durability.wal.append(record)
            durability.power_fail(torn_bytes)
            recovered = recover(durability, lambda: Database("rebuilt"))
            survived = [
                d["n"]
                for d in recovered.database.collection("items").find({}, copy=False)
            ]
            if torn_bytes >= final_frame_len:
                assert survived == [0, 1, 2, 3, 4, 5]
            else:
                assert survived == [0, 1, 2, 3, 4], (
                    f"torn at {torn_bytes}/{final_frame_len}: {survived}"
                )

    def test_recovered_database_never_contains_partial_documents(self):
        """Replaying any tear yields documents that are each complete."""
        disk, frames, name = build_log()
        total = sum(len(frame) for frame in frames)
        for offset in range(0, total + 1, 7):
            torn = disk.clone()
            torn.truncate(name, offset)
            wal = SegmentedWal(torn, segment_max_bytes=1 << 20)
            for _, rec in wal.scan():
                assert set(rec) == {"n", "pad"}
                assert rec["pad"] == "payload-%02d" % rec["n"]
