"""Group commit: batching, sync amortisation, max-latency bound."""

from repro.durability.commitlog import GroupCommitLog
from repro.durability.wal import SegmentedWal, SimDisk
from repro.sim.events import EventLoop


def make_log(flush_interval: float = 0.0, max_latency: float = 0.002):
    loop = EventLoop()
    disk = SimDisk()
    wal = SegmentedWal(disk)
    return loop, disk, wal, GroupCommitLog(
        wal, loop, flush_interval=flush_interval, max_latency=max_latency
    )


class TestGroupCommit:
    def test_one_ticks_appends_share_one_sync(self):
        loop, disk, wal, log = make_log()
        for i in range(20):
            log.append({"n": i})
        loop.run_until_idle()
        assert disk.stats["syncs"] == 1
        assert [rec["n"] for _, rec in wal.scan()] == list(range(20))

    def test_batches_across_ticks_sync_separately(self):
        loop, disk, wal, log = make_log()
        log.append({"n": 0})
        loop.run_until_idle()
        log.append({"n": 1})
        loop.run_until_idle()
        assert disk.stats["syncs"] == 2
        assert log.stats["flushes"] == 2

    def test_records_are_durable_after_flush(self):
        loop, disk, wal, log = make_log()
        durable_lsns = []
        log.append({"n": 0}, on_durable=durable_lsns.append)
        assert durable_lsns == []  # acknowledged only after the sync
        loop.run_until_idle()
        assert durable_lsns == [1]

    def test_flush_interval_is_bounded_by_max_latency(self):
        loop, _, _, log = make_log(flush_interval=5.0, max_latency=0.01)
        log.append({"n": 0})
        loop.run_until_idle()
        assert loop.clock.now <= 0.01

    def test_drop_queue_loses_unflushed_records(self):
        loop, _, wal, log = make_log()
        log.append({"n": 0})
        log.drop_queue()
        loop.run_until_idle()
        assert list(wal.scan()) == []
        assert log.pending == 0

    def test_flush_now_is_synchronous(self):
        loop, disk, wal, log = make_log()
        log.append({"n": 0})
        log.flush_now()
        assert [rec["n"] for _, rec in wal.scan()] == [0]
        # The cancelled scheduled flush must not double-sync.
        syncs = disk.stats["syncs"]
        loop.run_until_idle()
        assert disk.stats["syncs"] == syncs

    def test_after_flush_hook_fires_once_per_flush(self):
        loop, _, _, log = make_log()
        fired = []
        log.after_flush = lambda: fired.append(log.stats["flushes"])
        for i in range(5):
            log.append({"n": i})
        loop.run_until_idle()
        assert fired == [1]
