"""Restart-from-disk: nodes and 2PC agents rebuilt purely from SimDisk."""

import pytest

from repro.common.errors import ValidationError
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto import keypair_from_string
from repro.durability.node import DurabilityConfig
from repro.durability.recovery import diff_databases, recover
from repro.sharding.cluster import ShardedCluster, ShardedClusterConfig
from repro.sharding.router import SHARD_KEY_METADATA
from repro.storage.database import make_smartchaindb_database


def durable_cluster(**kwargs):
    return SmartchainCluster(
        ClusterConfig(
            n_validators=4,
            durability=DurabilityConfig(snapshot_interval=60),
            **kwargs,
        )
    )


def run_traffic(cluster, n_creates=10, n_transfers=5):
    driver = cluster.driver
    alice = keypair_from_string("alice")
    bob = keypair_from_string("bob")
    creates = []
    for i in range(n_creates):
        create = driver.prepare_create(alice, {"capabilities": ["x"], "rank": i})
        cluster.submit_payload(create.to_dict())
        creates.append(create)
    cluster.run()
    for create in creates[:n_transfers]:
        transfer = driver.prepare_transfer(
            alice, [(create.tx_id, 0, 1)], create.tx_id, [(bob.public_key, 1)]
        )
        cluster.submit_payload(transfer.to_dict())
    cluster.run()
    return creates


class TestNodeRestart:
    def test_restart_rebuilds_database_and_chain_from_disk(self):
        cluster = durable_cluster()
        run_traffic(cluster)
        node = cluster.engine.validator_order[0]
        server = cluster.servers[node]
        counts_before = {
            name: server.database.collection(name).count({})
            for name in server.database.collection_names()
        }
        chain_before = [
            (b.height, b.block_id) for b in cluster.engine.validator(node).chain
        ]
        old_database = server.database
        cluster.restart_node_from_disk(node, torn_bytes=17)
        cluster.run()
        server = cluster.servers[node]
        assert server.database is not old_database  # memory was discarded
        counts_after = {
            name: server.database.collection(name).count({})
            for name in server.database.collection_names()
        }
        assert counts_after == counts_before
        assert [
            (b.height, b.block_id) for b in cluster.engine.validator(node).chain
        ] == chain_before

    def test_restarted_node_keeps_committing_with_the_cluster(self):
        cluster = durable_cluster()
        creates = run_traffic(cluster)
        node = cluster.engine.validator_order[1]
        cluster.restart_node_from_disk(node)
        # Traffic after the restart must land on the restarted node too.
        driver = cluster.driver
        alice = keypair_from_string("alice")
        bob = keypair_from_string("bob")
        transfer = driver.prepare_transfer(
            alice, [(creates[-1].tx_id, 0, 1)], creates[-1].tx_id,
            [(bob.public_key, 1)],
        )
        record = cluster.submit_and_settle(transfer)
        assert record.committed_at is not None
        restarted_blocks = cluster.servers[node].database.collection("blocks")
        reference_blocks = cluster.servers[
            cluster.engine.validator_order[0]
        ].database.collection("blocks")
        assert restarted_blocks.count({}) == reference_blocks.count({})

    def test_post_restart_journal_extends_the_log(self):
        cluster = durable_cluster()
        run_traffic(cluster)
        node = cluster.engine.validator_order[0]
        cluster.restart_node_from_disk(node)
        run_traffic(cluster, n_creates=4, n_transfers=2)
        durability = cluster.node_durability[node]
        recovered = recover(
            durability,
            lambda: make_smartchaindb_database(name="verify"),
            repair=False,
        )
        assert diff_databases(cluster.servers[node].database, recovered.database) == []

    def test_restart_without_durability_raises(self):
        cluster = SmartchainCluster(ClusterConfig(n_validators=4))
        with pytest.raises(ValidationError):
            cluster.restart_node_from_disk(cluster.engine.validator_order[0])


class TestLockForcedDurability:
    def test_lock_adoption_is_durable_before_any_vote_leaves(self):
        """Regression: with a lazy flush interval, the precommit a lock
        licenses must never outrun the lock's durability — the journal
        record is force-flushed at adoption, so a crash-restart in the
        flush window cannot forget the lock while the vote survives."""
        from repro.consensus.types import PREVOTE, Block, TxEnvelope, Vote

        cluster = SmartchainCluster(
            ClusterConfig(
                n_validators=4,
                durability=DurabilityConfig(flush_interval=0.002, max_latency=0.002),
            )
        )
        node = cluster.engine.validator_order[0]
        validator = cluster.engine.validator(node)
        envelope = TxEnvelope("tx-lock", {"id": "tx-lock"}, 64, 1, 0.0)
        block = Block.build(1, 0, node, [envelope], validator.last_block_id)
        validator._proposals[(1, 0)] = {block.block_id: block}
        for voter in cluster.engine.validator_order[:3]:
            validator._handle_vote(Vote(PREVOTE, 1, 0, block.block_id, voter), voter)
        assert validator._locked_block is not None
        # WITHOUT running the loop (the lazy flush never fired), the lock
        # must already be durable on the device.
        durability = cluster.node_durability[node]
        records = [rec for _, rec in durability.wal.scan() if rec.get("k") == "lock"]
        assert records and records[-1]["b"]["id"] == block.block_id


class TestShardedRestart:
    def test_participant_agent_restart_between_prepare_and_decision(self):
        cluster = ShardedCluster(
            ShardedClusterConfig(
                n_shards=2, seed=11, durability=DurabilityConfig(snapshot_interval=60)
            )
        )
        driver = cluster.driver
        alice = keypair_from_string("alice")
        bob = keypair_from_string("bob")
        create = driver.prepare_create(alice, {"capabilities": ["x"]})
        cluster.submit_and_settle(create)
        home = cluster.router.home_of_tx(create.tx_id)
        target = next(s for s in cluster.shard_ids if s != home)

        restarted = []

        def on_phase(shard_id, phase, tx_id):
            if phase == "prepared" and not restarted:
                restarted.append(shard_id)
                cluster.loop.schedule_in(
                    0.0,
                    lambda: cluster.restart_coordinator_from_disk(shard_id, 9),
                )

        for agent in cluster.agents.values():
            agent.phase_listeners.append(on_phase)

        transfer = driver.prepare_transfer(
            alice, [(create.tx_id, 0, 1)], create.tx_id, [(bob.public_key, 1)],
            metadata={
                SHARD_KEY_METADATA: cluster.ring.key_landing_on(target, prefix="mig")
            },
        )
        record = cluster.submit_and_settle(transfer)
        assert restarted, "the 2PC prepare phase never fired"
        # Atomicity holds across the restart: a single outcome, no lock
        # left prepared, and the prepared lock itself survived the disk
        # round-trip (the forced write before the YES vote).
        assert record.committed_at is not None or record.rejected is not None
        for agent in cluster.agents.values():
            assert agent.active_locks() == []
            assert agent.unfinished() == []
        agent = cluster.agents[restarted[0]]
        recovered = recover(
            agent.durability,
            lambda: agent._make_durable_database(journaled=False),
            repair=False,
        )
        assert diff_databases(agent.durable, recovered.database) == []

    def test_node_restart_in_sharded_deployment(self):
        cluster = ShardedCluster(
            ShardedClusterConfig(
                n_shards=2, seed=5, durability=DurabilityConfig(snapshot_interval=60)
            )
        )
        driver = cluster.driver
        alice = keypair_from_string("alice")
        create = driver.prepare_create(alice, {"capabilities": ["x"]})
        cluster.submit_and_settle(create)
        home = cluster.router.home_of_tx(create.tx_id)
        shard = cluster.shards[home]
        node = shard.engine.validator_order[0]
        cluster.restart_node_from_disk(home, node, torn_bytes=5)
        cluster.run()
        reference = shard.servers[shard.engine.validator_order[1]]
        restarted = shard.servers[node]
        assert restarted.database.collection("blocks").count(
            {}
        ) == reference.database.collection("blocks").count({})
