"""Snapshot + WAL replay rebuilds databases, chains and lock state."""

from repro.consensus.types import Block, TxEnvelope
from repro.durability.node import DurabilityConfig, NodeDurability
from repro.durability.recovery import (
    apply_db_op,
    block_record,
    collections_state,
    diff_databases,
    load_collections,
    rebuild_block,
    recover,
)
from repro.sim.events import EventLoop
from repro.storage.database import Database


def make_durable_db(loop, name="test-db", **config):
    durability = NodeDurability(name, loop, DurabilityConfig(**config))
    database = Database(name, wal=durability.log)
    return durability, database


def factory():
    return Database("rebuilt")


class TestDbOpReplay:
    def test_insert_delete_update_roundtrip(self):
        loop = EventLoop()
        durability, database = make_durable_db(loop)
        people = database.create_collection("people")
        people.insert_one({"id": "a", "rank": 1})
        people.insert_one({"id": "b", "rank": 2})
        people.update_many({"id": "a"}, {"$set": {"rank": 10}})
        people.update_many({"id": "b"}, {"$inc": {"rank": 5}})
        people.delete_many({"id": "b"})
        loop.run_until_idle()
        recovered = recover(durability, factory, repair=False)
        assert diff_databases(database, recovered.database) == []
        assert recovered.database.collection("people").find_one({"id": "a"})["rank"] == 10

    def test_callable_update_replays_via_replacements(self):
        loop = EventLoop()
        durability, database = make_durable_db(loop)
        rows = database.create_collection("rows")
        rows.insert_one({"id": "x", "children": [{"s": "p"}]})
        record = {"id": "x", "children": [{"s": "done"}]}
        rows.update_many({"id": "x"}, lambda _: record)
        loop.run_until_idle()
        recovered = recover(durability, factory, repair=False)
        assert diff_databases(database, recovered.database) == []
        assert (
            recovered.database.collection("rows").find_one({"id": "x"})["children"]
            == [{"s": "done"}]
        )

    def test_unknown_op_raises(self):
        import pytest

        with pytest.raises(ValueError):
            apply_db_op(Database("d"), {"op": "upsert", "c": "x"})


class TestSnapshots:
    def test_snapshot_bounds_replay(self):
        loop = EventLoop()
        durability, database = make_durable_db(loop, snapshot_interval=10)
        durability.state_provider = lambda: {
            "collections": collections_state(database)
        }
        items = database.create_collection("items")
        for i in range(35):
            items.insert_one({"n": i})
            loop.run_until_idle()  # one record per flush: cadence is exact
        assert durability.snapshots.latest() is not None
        recovered = recover(durability, factory, repair=False)
        assert recovered.replayed < 35
        assert diff_databases(database, recovered.database) == []

    def test_snapshot_retires_covered_segments(self):
        loop = EventLoop()
        durability, database = make_durable_db(
            loop, snapshot_interval=20, segment_max_bytes=512
        )
        durability.state_provider = lambda: {
            "collections": collections_state(database)
        }
        items = database.create_collection("items")
        for i in range(120):
            items.insert_one({"n": i, "pad": "x" * 40})
            loop.run_until_idle()
        assert durability.wal.stats["retired_segments"] > 0
        recovered = recover(durability, factory, repair=False)
        assert diff_databases(database, recovered.database) == []

    def test_checkpoint_at_unchanged_cutoff_is_idempotent(self):
        """Regression: re-taking a snapshot at the same LSN must not
        append a second frame to the file (which ``latest`` would reject,
        destroying the only checkpoint after its segments retired)."""
        loop = EventLoop()
        durability, database = make_durable_db(
            loop, snapshot_interval=50, segment_max_bytes=256
        )
        durability.state_provider = lambda: {
            "collections": collections_state(database)
        }
        items = database.create_collection("items")
        for i in range(100):
            items.insert_one({"n": i, "pad": "x" * 16})
            loop.run_until_idle()
        durability.checkpoint()
        durability.checkpoint()  # no records in between: same cutoff
        assert durability.snapshots.latest() is not None
        durability.power_fail()
        recovered = recover(durability, factory, repair=False)
        assert recovered.database.collection("items").count({}) == 100
        assert diff_databases(database, recovered.database) == []

    def test_torn_same_lsn_snapshot_is_rewritten(self):
        loop = EventLoop()
        durability, database = make_durable_db(loop)
        durability.state_provider = lambda: {
            "collections": collections_state(database)
        }
        items = database.create_collection("items")
        for i in range(8):
            items.insert_one({"n": i})
        loop.run_until_idle()
        cutoff = durability.checkpoint()
        snap_name = next(n for n in durability.disk.list() if n.endswith(".snap"))
        durability.disk.corrupt(snap_name, 12)
        assert durability.snapshots.latest() is None
        durability.checkpoint()  # same cutoff, but the torn file must be rewritten
        latest = durability.snapshots.latest()
        assert latest is not None and latest[0] == cutoff

    def test_torn_snapshot_falls_back_to_wal(self):
        loop = EventLoop()
        durability, database = make_durable_db(loop)
        items = database.create_collection("items")
        for i in range(6):
            items.insert_one({"n": i})
        loop.run_until_idle()
        durability.checkpoint()
        # Corrupt the snapshot: recovery must ignore it and replay the
        # retained WAL (retire keeps the active segment).
        snap_name = next(n for n in durability.disk.list() if n.endswith(".snap"))
        durability.disk.corrupt(snap_name, 10)
        recovered = recover(durability, factory, repair=False)
        assert diff_databases(database, recovered.database) == []

    def test_load_collections_preserves_insertion_order(self):
        source = Database("s")
        col = source.create_collection("c")
        for i in range(5):
            col.insert_one({"n": i})
        target = Database("t")
        load_collections(target, collections_state(source))
        assert [d["n"] for d in target.collection("c").find({})] == [0, 1, 2, 3, 4]


class TestBlockRecords:
    def test_block_roundtrip_preserves_id_and_envelopes(self):
        envelope = TxEnvelope("tx-1", {"id": "tx-1", "operation": "CREATE"}, 99, 2, 0.5)
        block = Block.build(3, 1, "scdb-0", [envelope], "f" * 64)
        rebuilt = rebuild_block(block_record(block))
        assert rebuilt.block_id == block.block_id
        assert rebuilt.transactions[0].payload == envelope.payload
        assert rebuilt.transactions[0].size_bytes == 99

    def test_lock_cleared_once_height_commits(self):
        loop = EventLoop()
        durability, _ = make_durable_db(loop)
        envelope = TxEnvelope("tx-1", {"id": "tx-1"}, 10, 1, 0.0)
        b1 = Block.build(1, 0, "n0", [envelope], "0" * 64)
        durability.journal({"k": "lock", "r": 0, "b": block_record(b1)})
        durability.journal({"k": "block", "b": block_record(b1)})
        loop.run_until_idle()
        recovered = recover(durability, factory, repair=False)
        assert recovered.locked() == (-1, None)

    def test_live_lock_survives_recovery(self):
        loop = EventLoop()
        durability, _ = make_durable_db(loop)
        envelope = TxEnvelope("tx-2", {"id": "tx-2"}, 10, 1, 0.0)
        b2 = Block.build(2, 1, "n0", [envelope], "a" * 64)
        durability.journal({"k": "lock", "r": 1, "b": block_record(b2)})
        loop.run_until_idle()
        recovered = recover(durability, factory, repair=False)
        locked_round, locked_block = recovered.locked()
        assert locked_round == 1
        assert locked_block.block_id == b2.block_id
