"""Frame format, segmentation, rotation and retirement of the WAL."""

import pytest

from repro.durability.wal import (
    FRAME_HEADER,
    SegmentedWal,
    SimDisk,
    encode_frame,
    iter_frames,
    valid_prefix_length,
)


class TestFrames:
    def test_roundtrip_single_record(self):
        frame = encode_frame({"a": 1, "b": "text"})
        assert list(iter_frames(frame)) == [{"a": 1, "b": "text"}]

    def test_length_prefix_matches_payload(self):
        frame = encode_frame({"x": True})
        declared = int.from_bytes(frame[:4], "big")
        assert declared == len(frame) - FRAME_HEADER

    def test_scan_stops_at_short_tail(self):
        frames = encode_frame({"n": 1}) + encode_frame({"n": 2})
        torn = frames[:-3]  # last frame loses its final bytes
        assert list(iter_frames(torn)) == [{"n": 1}]

    def test_scan_stops_at_checksum_mismatch(self):
        data = bytearray(encode_frame({"n": 1}) + encode_frame({"n": 2}))
        data[-2] ^= 0xFF  # corrupt the second frame's body
        assert list(iter_frames(bytes(data))) == [{"n": 1}]

    def test_valid_prefix_length_is_a_frame_boundary(self):
        first = encode_frame({"n": 1})
        data = first + encode_frame({"n": 2})[:-1]
        assert valid_prefix_length(data) == len(first)

    def test_unicode_survives_canonical_encoding(self):
        frame = encode_frame({"name": "zoë", "glyph": "✓"})
        assert list(iter_frames(frame)) == [{"name": "zoë", "glyph": "✓"}]


class TestSimDisk:
    def test_append_is_volatile_until_sync(self):
        disk = SimDisk()
        disk.append("f", b"abc")
        assert disk.read("f") == b""
        disk.sync("f")
        assert disk.read("f") == b"abc"

    def test_power_fail_drops_unsynced_tail(self):
        disk = SimDisk()
        disk.append("f", b"abc")
        disk.sync("f")
        disk.append("f", b"xyz")
        disk.power_fail()
        assert disk.read("f") == b"abc"

    def test_power_fail_can_tear_mid_write(self):
        disk = SimDisk()
        disk.append("f", b"abcdef")
        disk.power_fail(torn_bytes=2)
        assert disk.read("f") == b"ab"

    def test_truncate_and_corrupt(self):
        disk = SimDisk()
        disk.append("f", b"abcdef")
        disk.sync("f")
        disk.truncate("f", 4)
        assert disk.read("f") == b"abcd"
        disk.corrupt("f", 0)
        assert disk.read("f")[0] == ord("a") ^ 0xFF

    def test_clone_is_independent(self):
        disk = SimDisk()
        disk.append("f", b"abc")
        disk.sync("f")
        twin = disk.clone()
        twin.append("f", b"x")
        twin.sync("f")
        assert disk.read("f") == b"abc"
        assert twin.read("f") == b"abcx"


@pytest.fixture()
def wal():
    return SegmentedWal(SimDisk(), segment_max_bytes=256)


class TestSegmentedWal:
    def test_lsns_are_contiguous_from_one(self, wal):
        lsns = [wal.append({"n": i}) for i in range(5)]
        assert lsns == [1, 2, 3, 4, 5]

    def test_scan_returns_synced_records_in_order(self, wal):
        for i in range(4):
            wal.append({"n": i})
        wal.sync()
        assert [rec["n"] for _, rec in wal.scan()] == [0, 1, 2, 3]

    def test_unsynced_records_are_not_durable(self, wal):
        wal.append({"n": 0})
        wal.sync()
        wal.append({"n": 1})  # never synced
        assert [rec["n"] for _, rec in wal.scan()] == [0]

    def test_rotation_produces_multiple_segments(self, wal):
        for i in range(40):
            wal.append({"n": i, "pad": "x" * 32})
        wal.sync()
        assert len(wal.segments()) > 1
        assert [rec["n"] for _, rec in wal.scan()] == list(range(40))

    def test_reopen_discovers_existing_segments(self, wal):
        for i in range(40):
            wal.append({"n": i, "pad": "x" * 32})
        wal.sync()
        reopened = SegmentedWal(wal.disk, segment_max_bytes=256)
        assert reopened.segments() == wal.segments()
        assert [rec["n"] for _, rec in reopened.scan()] == list(range(40))

    def test_retire_deletes_fully_covered_segments(self, wal):
        for i in range(40):
            wal.append({"n": i, "pad": "x" * 32})
        wal.sync()
        segments_before = len(wal.segments())
        retired = wal.retire(wal.last_lsn)
        # Everything but the active segment is covered by the cutoff.
        assert retired == segments_before - 1
        assert len(wal.segments()) == 1
        surviving = [rec["n"] for _, rec in wal.scan()]
        assert all(n >= 40 - len(surviving) for n in surviving)

    def test_repair_truncates_torn_tail_and_continues_lsns(self, wal):
        for i in range(3):
            wal.append({"n": i})
        wal.sync()
        name = wal.segments()[-1]
        wal.disk.truncate(name, wal.disk.durable_size(name) - 2)
        reopened = SegmentedWal(wal.disk, segment_max_bytes=256)
        last = reopened.repair()
        assert last == 2
        assert reopened.next_lsn == 3
        # Appends now extend the valid prefix seamlessly.
        reopened.append({"n": "fresh"})
        reopened.sync()
        assert [rec["n"] for _, rec in reopened.scan()] == [0, 1, "fresh"]

    def test_repair_drops_segments_after_a_broken_one(self, wal):
        for i in range(40):
            wal.append({"n": i, "pad": "x" * 32})
        wal.sync()
        first = wal.segments()[0]
        wal.disk.truncate(first, wal.disk.durable_size(first) - 1)
        reopened = SegmentedWal(wal.disk, segment_max_bytes=256)
        reopened.repair()
        assert reopened.segments() == [first]
        records = [rec["n"] for _, rec in reopened.scan()]
        assert records == list(range(len(records)))  # a strict prefix
