"""The reverse-auction marketplace contract (Fig. 1 equivalent)."""

import pytest

from repro.ethereum.auction import ReverseAuctionMarketplace, estimate_gas
from repro.ethereum.contract import EvmRuntime
from repro.ethereum.solidity_source import (
    REVERSE_AUCTION_SOLIDITY,
    SMARTCHAINDB_USER_LOC,
    count_code_lines,
)

BUYER = "0xbuyer"
SUP1 = "0xsupplier1"
SUP2 = "0xsupplier2"


@pytest.fixture()
def market():
    runtime = EvmRuntime()
    for account in (BUYER, SUP1, SUP2):
        runtime.state.credit(account, 1_000_000)
    address, result = runtime.deploy(ReverseAuctionMarketplace, BUYER)
    assert result.success

    def call(method, args, sender, value=0):
        return runtime.execute_call(address, method, args, sender=sender, value=value)

    return runtime, address, call


class TestAssetAndRfq:
    def test_create_asset(self, market):
        runtime, address, call = market
        result = call("create_asset", [["3d-print"], "meta"], SUP1)
        assert result.success
        assert result.return_value == 1

    def test_asset_requires_capability(self, market):
        runtime, address, call = market
        assert not call("create_asset", [[], ""], SUP1).success

    def test_create_rfq(self, market):
        runtime, address, call = market
        result = call("create_rfq", [["3d-print"], "need parts"], BUYER)
        assert result.success
        assert result.return_value == 1

    def test_storage_grows_with_assets(self, market):
        runtime, address, call = market
        call("create_asset", [["3d-print"], "m"], SUP1)
        slots_before = len(runtime.state.account(address).storage)
        call("create_asset", [["cnc", "laser"], "m2"], SUP2)
        assert len(runtime.state.account(address).storage) > slots_before


class TestBidding:
    def prepare(self, call):
        call("create_asset", [["3d-print", "iso"], ""], SUP1)   # asset 1
        call("create_asset", [["3d-print"], ""], SUP2)          # asset 2
        call("create_rfq", [["3d-print", "iso"], ""], BUYER)    # rfq 1

    def test_valid_bid_escrows_deposit(self, market):
        runtime, address, call = market
        self.prepare(call)
        result = call("create_bid", [1, 1], SUP1, value=500)
        assert result.success
        assert runtime.state.balance(address) == 500

    def test_bid_without_deposit_reverts(self, market):
        runtime, address, call = market
        self.prepare(call)
        assert not call("create_bid", [1, 1], SUP1, value=0).success

    def test_bid_with_insufficient_capabilities_reverts(self, market):
        runtime, address, call = market
        self.prepare(call)
        result = call("create_bid", [1, 2], SUP2, value=500)  # asset 2 lacks iso
        assert not result.success
        assert "insufficient capabilities" in result.error

    def test_bid_with_unowned_asset_reverts(self, market):
        runtime, address, call = market
        self.prepare(call)
        assert not call("create_bid", [1, 1], SUP2, value=500).success

    def test_duplicate_bid_reverts(self, market):
        runtime, address, call = market
        self.prepare(call)
        call("create_bid", [1, 1], SUP1, value=500)
        assert not call("create_bid", [1, 1], SUP1, value=500).success

    def test_bid_on_unknown_rfq_reverts(self, market):
        runtime, address, call = market
        self.prepare(call)
        assert not call("create_bid", [99, 1], SUP1, value=500).success

    def test_failed_bid_refunds_value(self, market):
        """A reverted payable call must not swallow the deposit."""
        runtime, address, call = market
        self.prepare(call)
        before = runtime.state.balance(SUP2)
        call("create_bid", [1, 2], SUP2, value=500)
        assert runtime.state.balance(SUP2) == before


class TestAcceptBid:
    def prepare(self, call):
        call("create_asset", [["3d-print"], ""], SUP1)
        call("create_asset", [["3d-print"], ""], SUP2)
        call("create_rfq", [["3d-print"], ""], BUYER)
        call("create_bid", [1, 1], SUP1, value=500)
        call("create_bid", [1, 2], SUP2, value=400)

    def test_accept_transfers_asset_and_refunds_losers(self, market):
        runtime, address, call = market
        self.prepare(call)
        sup2_before = runtime.state.balance(SUP2)
        buyer_before = runtime.state.balance(BUYER)
        result = call("accept_bid", [1, 1], BUYER)
        assert result.success
        assert result.return_value == 1  # one refund
        contract = runtime.contracts[address]
        assert contract._mirror["assets"][0]["owner"] == BUYER
        assert runtime.state.balance(SUP2) == sup2_before + 400
        assert runtime.state.balance(BUYER) == buyer_before + 500
        assert runtime.state.balance(address) == 0

    def test_only_buyer_can_accept(self, market):
        runtime, address, call = market
        self.prepare(call)
        assert not call("accept_bid", [1, 1], SUP1).success

    def test_double_accept_reverts(self, market):
        runtime, address, call = market
        self.prepare(call)
        call("accept_bid", [1, 1], BUYER)
        assert not call("accept_bid", [1, 2], BUYER).success

    def test_accept_unknown_bid_reverts(self, market):
        runtime, address, call = market
        self.prepare(call)
        assert not call("accept_bid", [1, 99], BUYER).success

    def test_withdraw_before_accept(self, market):
        runtime, address, call = market
        self.prepare(call)
        before = runtime.state.balance(SUP2)
        result = call("withdraw_bid", [2], SUP2)
        assert result.success
        assert runtime.state.balance(SUP2) == before + 400

    def test_withdraw_by_stranger_reverts(self, market):
        runtime, address, call = market
        self.prepare(call)
        assert not call("withdraw_bid", [2], SUP1).success


class TestCostStructure:
    def test_bid_gas_grows_quadratically_with_capabilities(self, market):
        """The O(n^2) compareStrings cost (Section 5.2.1)."""
        runtime, address, call = market
        gas_by_caps = {}
        rfq = 0
        asset = 0
        for caps_count in (2, 4, 8):
            caps = [f"cap-{caps_count}-{i}" for i in range(caps_count)]
            call("create_asset", [caps, ""], SUP1)
            asset += 1
            call("create_rfq", [caps, ""], BUYER)
            rfq += 1
            result = call("create_bid", [rfq, asset], SUP1, value=100)
            assert result.success
            gas_by_caps[caps_count] = result.gas_used
        growth_small = gas_by_caps[4] - gas_by_caps[2]
        growth_large = gas_by_caps[8] - gas_by_caps[4]
        assert growth_large > growth_small * 1.5  # superlinear

    def test_registry_scan_cost_grows_with_population(self, market):
        """O(n) map item retrieval (Section 5.2.1)."""
        runtime, address, call = market
        call("create_rfq", [["x"], ""], BUYER)
        for index in range(30):
            call("create_asset", [["x"], ""], SUP1)
        late_asset = 30
        early = call("create_bid", [1, 1], SUP1, value=100)
        late = call("create_bid", [1, late_asset], SUP1, value=100)
        # Finding asset 30 scans 30 entries vs 1 — must cost more gas.
        assert not early.success or early.gas_used  # early may conflict; gas recorded anyway
        assert late.gas_used > 0

    def test_estimator_tracks_real_cost_direction(self, market):
        runtime, address, call = market
        small = estimate_gas("create_asset", [["a"], ""], {})
        large = estimate_gas("create_asset", [["a" * 500], ""], {})
        assert large > small
        few_bids = estimate_gas("create_bid", [1, 1], {"bids": 5, "requests": 1, "assets": 1})
        many_bids = estimate_gas("create_bid", [1, 1], {"bids": 500, "requests": 1, "assets": 1})
        assert many_bids > few_bids


class TestUsabilityBaseline:
    def test_solidity_loc_near_paper_figure(self):
        """Paper: 175 lines; our faithful reconstruction is within 5%."""
        loc = count_code_lines(REVERSE_AUCTION_SOLIDITY)
        assert abs(loc - 175) <= 9

    def test_smartchaindb_needs_zero_user_loc(self):
        assert SMARTCHAINDB_USER_LOC == 0
