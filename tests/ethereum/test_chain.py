"""QuorumChain + Web3Client end to end."""

import pytest

from repro.consensus.ibft import ibft_config
from repro.ethereum.chain import QuorumChain, QuorumChainConfig
from repro.ethereum.client import Web3Client
from repro.ethereum.gas import G_TRANSACTION

ACCOUNTS = [f"0xuser{i}" for i in range(4)]


@pytest.fixture()
def deployed():
    chain = QuorumChain(QuorumChainConfig(n_validators=4, seed=5), accounts=ACCOUNTS)
    client = Web3Client(chain)
    record = client.deploy("ReverseAuctionMarketplace", "market", ACCOUNTS[0])
    assert record.success
    return chain, client


class TestNativeVsContractTransfer:
    def test_fig2_structure(self, deployed):
        """Fig. 2: contract TRANSFER costs ~40% more gas and is slower."""
        chain, client = deployed
        client.transact("market", "create_asset", [["cap"], ""], ACCOUNTS[1])
        native = client.native_transfer(ACCOUNTS[0], ACCOUNTS[2], 10)
        contract = client.transact("market", "transfer_asset", [1, ACCOUNTS[2]], ACCOUNTS[1])
        assert native.gas_used == G_TRANSACTION
        ratio = contract.gas_used / native.gas_used
        assert 1.2 <= ratio <= 2.0
        assert contract.latency > native.latency


class TestReplication:
    def test_state_identical_across_validators(self, deployed):
        chain, client = deployed
        client.transact("market", "create_asset", [["cap-a", "cap-b"], "m"], ACCOUNTS[1])
        client.transact("market", "create_rfq", [["cap-a"], "m"], ACCOUNTS[0])
        mirrors = []
        for application in chain.applications.values():
            address = application.deployed["market"]
            mirrors.append(application.runtime.contracts[address]._mirror)
        for mirror in mirrors[1:]:
            assert mirror == mirrors[0]

    def test_failed_call_reported(self, deployed):
        chain, client = deployed
        record = client.transact("market", "create_asset", [[], ""], ACCOUNTS[1])
        assert record.success is False
        assert record.committed_at is not None  # failed txs still land in blocks


class TestGasLimitEffects:
    def test_block_gas_limit_throttles_heavy_txs(self):
        """Heavy contract txs pack few-per-block: the fig7 mechanism."""
        chain = QuorumChain(
            QuorumChainConfig(
                n_validators=4,
                seed=6,
                consensus=ibft_config(block_gas_limit=1_300_000, block_period=0.2),
            ),
            accounts=ACCOUNTS,
        )
        client = Web3Client(chain)
        client.deploy("ReverseAuctionMarketplace", "market", ACCOUNTS[0])
        big_caps = [f"capability-{i}-" + "x" * 60 for i in range(6)]
        for index in range(4):
            client.transact("market", "create_asset", [big_caps, "m"], ACCOUNTS[1], settle=False)
        chain.run()
        committed = [r for r in chain.committed_records() if r.method == "create_asset"]
        assert len(committed) == 4
        heights = {}
        for record in chain.engine.commits:
            for envelope in record.block.transactions:
                heights.setdefault(record.block.height, []).append(envelope.tx_id)
        # With ~300k-gas transactions and a 600k limit, blocks hold <= 2.
        for txs in heights.values():
            assert len(txs) <= 2

    def test_estimates_close_to_actuals(self, deployed):
        chain, client = deployed
        record = client.transact("market", "create_asset", [["one", "two"], "meta"], ACCOUNTS[1])
        assert record.gas_used is not None
        assert record.gas_estimate == pytest.approx(record.gas_used, rel=0.8)


class TestViews:
    def test_call_view_reads_state(self, deployed):
        chain, client = deployed
        client.transact("market", "create_asset", [["cap"], ""], ACCOUNTS[1])
        assert client.call_view("market", "asset_owner", [1]) == ACCOUNTS[1]

    def test_view_on_missing_contract(self, deployed):
        chain, client = deployed
        from repro.common.errors import EvmError

        with pytest.raises(EvmError):
            client.call_view("ghost", "asset_owner", [1])

    def test_balance_view(self, deployed):
        chain, client = deployed
        assert client.balance(ACCOUNTS[0]) > 0
