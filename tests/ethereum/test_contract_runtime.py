"""Contract runtime: deployment, dispatch, revert rollback, native transfer."""

import pytest

from repro.ethereum.contract import CallContext, Contract, EvmRuntime
from repro.ethereum.gas import G_TRANSACTION


class Counter(Contract):
    """Tiny contract for runtime mechanics tests."""

    def __init__(self, address, state):
        super().__init__(address, state)
        self._mirror = {"count": 0}

    def constructor(self, ctx):
        ctx.storage.sstore(0, 0)

    def increment(self, ctx, by: int = 1):
        ctx.require(by > 0, "must increment positively")
        self._mirror["count"] += by
        ctx.storage.sstore(0, self._mirror["count"])
        return self._mirror["count"]

    def boom(self, ctx):
        self._mirror["count"] = 999
        ctx.storage.sstore(0, 999)
        ctx.require(False, "always reverts")

    def pay_out(self, ctx, to: str, amount: int):
        ctx.send_value(self.state, self.address, to, amount)

    def log_something(self, ctx):
        ctx.emit("Something", value=42)


@pytest.fixture()
def runtime():
    runtime = EvmRuntime()
    address, result = runtime.deploy(Counter, "0xdeployer")
    assert result.success
    return runtime, address


class TestDeployment:
    def test_deploy_charges_gas(self, runtime):
        rt, address = runtime
        assert rt.receipts[0].gas_used > G_TRANSACTION

    def test_distinct_addresses(self):
        rt = EvmRuntime()
        first, _ = rt.deploy(Counter, "0xd")
        second, _ = rt.deploy(Counter, "0xd")
        assert first != second


class TestExecution:
    def test_successful_call_mutates(self, runtime):
        rt, address = runtime
        result = rt.execute_call(address, "increment", [5], sender="0xuser")
        assert result.success
        assert result.return_value == 5
        assert rt.contracts[address]._mirror["count"] == 5

    def test_revert_rolls_back_state(self, runtime):
        rt, address = runtime
        rt.execute_call(address, "increment", [1], sender="0xuser")
        result = rt.execute_call(address, "boom", [], sender="0xuser")
        assert not result.success
        assert "always reverts" in result.error
        # Both the mirror and raw storage must be rolled back.
        assert rt.contracts[address]._mirror["count"] == 1
        assert rt.state.account(address).storage[0] == 1

    def test_revert_still_charges_gas(self, runtime):
        rt, address = runtime
        result = rt.execute_call(address, "boom", [], sender="0xuser")
        assert result.gas_used > G_TRANSACTION

    def test_out_of_gas_fails_and_rolls_back(self, runtime):
        rt, address = runtime
        result = rt.execute_call(address, "increment", [1], sender="0xuser", gas_limit=21_500)
        assert not result.success
        assert rt.contracts[address]._mirror["count"] == 0

    def test_unknown_method_reverts(self, runtime):
        rt, address = runtime
        result = rt.execute_call(address, "nonexistent", [], sender="0xuser")
        assert not result.success

    def test_unknown_contract(self, runtime):
        rt, _ = runtime
        result = rt.execute_call("0xghost", "increment", [1], sender="0xuser")
        assert not result.success

    def test_value_transfer_into_contract(self, runtime):
        rt, address = runtime
        rt.state.credit("0xuser", 1_000)
        result = rt.execute_call(address, "increment", [1], sender="0xuser", value=400)
        assert result.success
        assert rt.state.balance(address) == 400
        assert rt.state.balance("0xuser") == 600

    def test_contract_pays_out(self, runtime):
        rt, address = runtime
        rt.state.credit(address, 500)
        result = rt.execute_call(address, "pay_out", ["0xrecipient", 200], sender="0xuser")
        assert result.success
        assert rt.state.balance("0xrecipient") == 200

    def test_event_logs_captured(self, runtime):
        rt, address = runtime
        result = rt.execute_call(address, "log_something", [], sender="0xuser")
        assert result.logs == [{"event": "Something", "value": 42}]


class TestNativeTransfer:
    def test_costs_exactly_21000(self):
        rt = EvmRuntime()
        rt.state.credit("0xa", 100)
        result = rt.native_transfer("0xa", "0xb", 40)
        assert result.success
        assert result.gas_used == G_TRANSACTION
        assert rt.state.balance("0xb") == 40

    def test_insufficient_funds_fails(self):
        rt = EvmRuntime()
        result = rt.native_transfer("0xa", "0xb", 40)
        assert not result.success
