"""Gas schedule and metering."""

import pytest

from repro.common.errors import OutOfGasError
from repro.ethereum.gas import (
    G_TRANSACTION,
    GasMeter,
    calldata_gas,
    execution_seconds,
    keccak_gas,
    words,
)


class TestHelpers:
    def test_words(self):
        assert words(0) == 0
        assert words(1) == 1
        assert words(32) == 1
        assert words(33) == 2

    def test_keccak_gas_grows_with_length(self):
        assert keccak_gas(256) > keccak_gas(32)
        assert keccak_gas(32) == 30 + 6

    def test_calldata_gas_zero_vs_nonzero(self):
        assert calldata_gas(b"\x00" * 10) == 40
        assert calldata_gas(b"\x01" * 10) == 160

    def test_execution_seconds_positive_and_monotonic(self):
        assert execution_seconds(21_000) > 0
        assert execution_seconds(1_000_000) > execution_seconds(21_000)


class TestGasMeter:
    def test_charge_accumulates(self):
        meter = GasMeter(limit=100_000)
        meter.charge(G_TRANSACTION)
        meter.charge(1_000)
        assert meter.used == 22_000

    def test_out_of_gas(self):
        meter = GasMeter(limit=1_000)
        with pytest.raises(OutOfGasError):
            meter.charge(2_000)

    def test_refund_capped_at_fifth(self):
        meter = GasMeter(limit=1_000_000)
        meter.charge(100_000)
        meter.add_refund(50_000)
        assert meter.effective == 100_000 - 20_000

    def test_small_refund_taken_fully(self):
        meter = GasMeter(limit=1_000_000)
        meter.charge(100_000)
        meter.add_refund(5_000)
        assert meter.effective == 95_000
