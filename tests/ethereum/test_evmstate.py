"""World state and metered storage slots."""

import pytest

from repro.common.errors import RevertError
from repro.ethereum.evmstate import StorageView, WorldState
from repro.ethereum.gas import G_SLOAD_COLD, G_SLOAD_WARM, G_SSTORE_SET, GasMeter


@pytest.fixture()
def view():
    state = WorldState()
    meter = GasMeter(limit=100_000_000)
    return state, meter, StorageView(state, "0xcontract", meter)


class TestWorldState:
    def test_balances(self):
        state = WorldState()
        state.credit("0xa", 100)
        state.debit("0xa", 30)
        assert state.balance("0xa") == 70

    def test_insufficient_balance_reverts(self):
        state = WorldState()
        with pytest.raises(RevertError):
            state.debit("0xa", 1)

    def test_fresh_account_is_zeroed(self):
        state = WorldState()
        account = state.account("0xnew")
        assert account.balance == 0
        assert account.storage == {}


class TestStorageView:
    def test_sstore_then_sload(self, view):
        state, meter, storage = view
        storage.sstore(5, 42)
        assert storage.sload(5) == 42

    def test_unset_slot_reads_zero(self, view):
        state, meter, storage = view
        assert storage.sload(99) == 0

    def test_cold_vs_warm_pricing(self, view):
        state, meter, storage = view
        storage.sload(7)
        cold_total = meter.used
        storage.sload(7)
        assert meter.used - cold_total == G_SLOAD_WARM
        assert cold_total == G_SLOAD_COLD

    def test_set_pricing(self, view):
        state, meter, storage = view
        before = meter.used
        storage.sstore(1, 1)
        assert meter.used - before == G_SSTORE_SET

    def test_clear_refunds(self, view):
        state, meter, storage = view
        storage.sstore(1, 1)
        storage.sstore(1, 0)
        assert meter.refund > 0
        assert state.account("0xcontract").storage.get(1) is None

    def test_mapping_slots_scatter(self, view):
        state, meter, storage = view
        slots = {storage.mapping_slot(3, f"key{i}") for i in range(32)}
        assert len(slots) == 32

    def test_mapping_slot_deterministic(self, view):
        state, meter, storage = view
        assert storage.mapping_slot(3, "k") == storage.mapping_slot(3, "k")

    def test_array_slots_contiguous(self, view):
        state, meter, storage = view
        base = storage.array_data_slot(4, 0)
        assert storage.array_data_slot(4, 1) == (base + 1) % (1 << 256)

    def test_store_string_uses_length_plus_words(self, view):
        state, meter, storage = view
        storage.store_string(10, "x" * 70)  # 3 words + length
        contract_storage = state.account("0xcontract").storage
        assert contract_storage[10] == 70
        assert len(contract_storage) == 4

    def test_longer_strings_cost_more(self, view):
        state, meter, storage = view
        before = meter.used
        storage.store_string(20, "a" * 32)
        short_cost = meter.used - before
        before = meter.used
        storage.store_string(21, "a" * 320)
        long_cost = meter.used - before
        assert long_cost > short_cost * 3
