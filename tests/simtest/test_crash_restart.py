"""Chaos-harness crash-restart family: seeded sweeps over real durability.

The ISSUE-5 acceptance scenario: nodes and 2PC agents killed at seeded
points — including between 2PC prepare and decision, and with mid-frame
torn writes — and restored purely from their SimDisks must pass every
invariant (the original ten plus ``wal_prefix_durability``), leave a
replayable :class:`ReproBundle` on failure, and log byte-identically
per seed.
"""

from repro.simtest import SimHarness, SimtestConfig
from repro.simtest.harness import ReproBundle
from repro.simtest.schedule import Schedule


def _run(seed: int = 7, steps: int = 60, **kwargs) -> tuple:
    harness = SimHarness(SimtestConfig(seed=seed, steps=steps, **kwargs))
    return harness, harness.run()


class TestScheduleGuarantees:
    def test_every_durable_schedule_includes_a_crash_restart(self):
        for seed in (1, 2, 3, 4, 5, 6, 7, 8):
            harness = SimHarness(SimtestConfig(seed=seed, steps=60))
            kinds = [action.kind for action in harness.schedule.actions]
            assert "crash_restart" in kinds, f"seed {seed} has no crash_restart"
            assert "restart_trap" in kinds, f"seed {seed} has no restart_trap"

    def test_restart_traps_cover_the_prepare_decision_window(self):
        # Across a small seed sweep, at least one plan arms the restart
        # trap on "prepared" — the participant dying between 2PC prepare
        # and decision, restored purely from disk.
        phases = set()
        for seed in range(1, 9):
            harness = SimHarness(SimtestConfig(seed=seed, steps=60))
            phases.update(
                str(action.arg)
                for action in harness.schedule.actions
                if action.kind == "restart_trap"
            )
        assert "prepared" in phases

    def test_volatile_runs_never_schedule_restarts(self):
        harness = SimHarness(SimtestConfig(seed=3, steps=60, durable=False))
        kinds = {action.kind for action in harness.schedule.actions}
        assert "crash_restart" not in kinds
        assert "restart_trap" not in kinds

    def test_schedule_roundtrips_through_json(self):
        harness = SimHarness(SimtestConfig(seed=5, steps=60))
        dumped = harness.schedule.to_json()
        assert Schedule.from_json(dumped).to_json() == dumped


class TestSweep:
    def test_seeded_sweep_passes_all_invariants(self):
        for seed in (11, 12, 13):
            harness, report = _run(seed=seed, steps=70, fault_rate=0.25)
            assert report.ok, report.violations
            ran = [a for a in report.schedule.actions if a.kind == "crash_restart"]
            assert ran, "sweep seed lost its crash_restart guarantee"
            assert harness.checker.checks_run.get("wal_prefix_durability", 0) > 0

    def test_crash_restart_runs_are_byte_identical_per_seed(self):
        _, first = _run(seed=17, steps=60, fault_rate=0.3)
        _, second = _run(seed=17, steps=60, fault_rate=0.3)
        assert first.schedule.to_json() == second.schedule.to_json()
        assert first.step_log == second.step_log
        assert first.invariant_log == second.invariant_log
        assert first.stats == second.stats

    def test_single_cluster_crash_restart(self):
        harness, report = _run(seed=21, steps=60, single=True)
        assert report.ok
        assert any(
            action.kind == "crash_restart" for action in report.schedule.actions
        )


class TestSprungRestartTrap:
    def test_a_sprung_prepared_trap_leaves_invariants_green(self):
        # Hunt a small seed space for a run whose "prepared" restart trap
        # actually springs (needs cross-shard traffic inside the armed
        # window), then hold the full registry over it.
        sprung_seed = None
        for seed in range(1, 30):
            harness = SimHarness(
                SimtestConfig(seed=seed, steps=70, fault_rate=0.2, cross_rate=0.6)
            )
            report = harness.run()
            assert report.ok, (seed, report.violations)
            if any("restart trap sprung" in line for line in report.invariant_log):
                sprung_seed = seed
                break
        assert sprung_seed is not None, (
            "no seed in range sprang a restart trap — widen the hunt"
        )

    def test_repro_bundle_replays_durable_flag(self):
        harness, report = _run(seed=7, steps=40)
        assert report.ok
        bundle = ReproBundle(
            seed=7,
            failed_step=3,
            sim_time=0.5,
            invariant="wal_prefix_durability",
            detail="synthetic",
            config=harness.config.to_dict(),
            schedule_json=harness.schedule.to_json(),
        )
        # Durable is the default: the replay command must not need a flag.
        assert "--volatile" not in bundle.replay_command()
        volatile = dict(harness.config.to_dict(), durable=False)
        bundle_volatile = ReproBundle(
            seed=7, failed_step=3, sim_time=0.5, invariant="x", detail="d",
            config=volatile, schedule_json=harness.schedule.to_json(),
        )
        assert "--volatile" in bundle_volatile.replay_command()
