"""Mutation testing: a seeded bug must become a replayable red run.

The harness's value is falsifiability — if a deliberately broken
protocol survives the checker, the invariants are decorative.  Each test
monkeypatches one safety mechanism out of the coordinator and asserts
the registry catches the resulting corruption deterministically, with a
bundle that replays to the identical failure.
"""

import pytest

from repro.core.cluster import SmartchainCluster
from repro.sharding.coordinator import TwoPhaseCoordinator
from repro.simtest import SimHarness, SimtestConfig

#: A conflict-heavy configuration so rival spends happen early.
_ADVERSARIAL = dict(steps=80, conflict_rate=0.3, cross_rate=0.6, fault_rate=0.05)


class TestDoubleSpendMutation:
    @pytest.fixture()
    def blind_guard(self, monkeypatch):
        """Disable the remote-lock spend oracle: local validation stops
        seeing 2PC locks, so rival spends of a locked UTXO get through."""
        monkeypatch.setattr(TwoPhaseCoordinator, "_spend_guard", lambda self, ref: None)

    def test_checker_catches_the_double_spend(self, blind_guard):
        report = SimHarness(SimtestConfig(seed=7, **_ADVERSARIAL)).run()
        assert not report.ok
        first = report.violations[0]
        assert first.invariant == "no_double_spend"
        assert "spent by 2 committed txs" in first.detail

    def test_failure_ships_a_replayable_bundle(self, blind_guard):
        first = SimHarness(SimtestConfig(seed=7, **_ADVERSARIAL)).run()
        again = SimHarness(SimtestConfig(seed=7, **_ADVERSARIAL)).run()
        assert first.bundle is not None
        assert first.bundle.seed == 7
        assert (first.bundle.invariant, first.bundle.failed_step, first.bundle.detail) == (
            again.bundle.invariant,
            again.bundle.failed_step,
            again.bundle.detail,
        )
        assert "--seed 7" in first.bundle.to_json()

    def test_other_seeds_catch_it_too(self, blind_guard):
        report = SimHarness(SimtestConfig(seed=5, **_ADVERSARIAL)).run()
        assert not report.ok
        assert report.violations[0].invariant == "no_double_spend"


class TestReplicaDriftMutation:
    def test_unretired_utxo_is_caught(self, monkeypatch):
        """Commit decisions that stop retiring the spent UTXO leave every
        origin replica with a ghost spendable output — the replica
        consistency check (or the double-spend check, once something
        spends the ghost) must go red."""
        monkeypatch.setattr(
            SmartchainCluster, "consume_outputs", lambda self, refs: None
        )
        report = SimHarness(SimtestConfig(seed=7, **_ADVERSARIAL)).run()
        assert not report.ok
        assert report.violations[0].invariant in (
            "replica_utxo_consistency",
            "no_double_spend",
        )


class TestHealthyBaseline:
    def test_unmutated_run_is_green(self):
        """The adversarial mix itself is clean — red needs a real bug."""
        report = SimHarness(SimtestConfig(seed=7, **_ADVERSARIAL)).run()
        assert report.ok
