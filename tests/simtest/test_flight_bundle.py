"""Flight-recorder dumps in repro bundles.

The acceptance contract: a forced invariant failure produces a repro
bundle whose flight dump carries the failing transaction's complete span
timeline, byte-identical across two same-seed harnesses.
"""

import json

from repro.crypto.sigcache import SignatureCache, set_shared_cache
from repro.simtest import SimHarness, SimtestConfig
from repro.simtest.invariants import Invariant


def _forced_harness(seed: int = 7, steps: int = 12, **kwargs) -> SimHarness:
    """A harness with one always-failing probe that names the earliest
    committed transaction (by its 8-char prefix, like real invariants)."""
    harness = SimHarness(SimtestConfig(seed=seed, steps=steps, **kwargs))

    def forced(plane):
        committed = sorted(
            tx_id
            for tx_id, record in plane.cluster.records.items()
            if record.committed_at is not None
        )
        if committed:
            return [f"forced probe tripped: tx={committed[0][:8]} implicated"]
        return []

    harness.checker.register(Invariant("forced_probe", forced, scope="step"))
    return harness


def _run_forced(seed: int = 7, **kwargs):
    previous = set_shared_cache(SignatureCache())
    try:
        harness = _forced_harness(seed=seed, **kwargs)
        return harness, harness.run()
    finally:
        set_shared_cache(previous)


class TestFlightBundle:
    def test_bundle_carries_implicated_trace(self):
        harness, report = _run_forced()
        assert not report.ok
        bundle = report.bundle
        assert bundle.invariant == "forced_probe"
        flight = bundle.flight
        assert flight["events"], "flight ring empty at failure"
        # The violation names a tx by 8-char prefix; its full timeline
        # must be resolved into the bundle.
        assert len(flight["traces"]) == 1
        (tx_id, timeline), = flight["traces"].items()
        assert tx_id[:8] in bundle.detail
        names = [event["name"] for event in timeline]
        assert names[0] == "submit"
        assert "mempool_admit" in names
        assert "applied" in names

    def test_flight_ring_has_block_commits(self):
        _, report = _run_forced()
        kinds = {event["kind"] for event in report.bundle.flight["events"]}
        assert "block_commit" in kinds

    def test_bundle_json_embeds_flight_and_is_replayable(self):
        _, report = _run_forced()
        payload = json.loads(report.bundle.to_json())
        assert payload["flight"]["traces"]
        assert payload["invariant"] == "forced_probe"
        assert "--seed 7" in payload["replay"]

    def test_same_seed_bundles_are_byte_identical(self):
        _, first = _run_forced(seed=21)
        _, second = _run_forced(seed=21)
        assert first.bundle is not None and second.bundle is not None
        assert first.bundle.to_json() == second.bundle.to_json()

    def test_single_cluster_bundle_also_carries_flight(self):
        _, report = _run_forced(seed=5, single=True)
        assert not report.ok
        assert report.bundle.flight["events"]
        assert report.bundle.flight["traces"]
