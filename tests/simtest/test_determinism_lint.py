"""Source-level determinism audit.

The ISSUE-3 audit of bare ``random`` / ``time.time()`` usage found every
stochastic choice already routed through ``sim.rng`` / ``sim.Clock``
(the PR 1/2 refactors left nothing loose).  This lint pins that state:
any future module that reaches for wall-clock time or process-global
randomness — either of which would silently break seeded replay — fails
tier-1 instead of surfacing as an unreproducible chaos run.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Modules allowed to *touch* the stdlib ``random`` module: the seeded
#: fan-out wrapper itself, and the one module that type-annotates
#: ``random.Random`` parameters fed from it.
RANDOM_IMPORT_ALLOWLIST = {"sim/rng.py", "workloads/generator.py"}

#: Modules allowed to *call* ``random.*`` functions (constructing the
#: seeded streams counts; drawing from the global RNG never does).
RANDOM_CALL_ALLOWLIST = {"sim/rng.py"}

#: Wall-clock sources that would desynchronise replay.
FORBIDDEN_MODULES = {"time", "datetime"}


def _modules() -> list[tuple[str, ast.AST]]:
    out = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        out.append((rel, ast.parse(path.read_text(), filename=rel)))
    return out


class TestNoWallClock:
    def test_no_time_or_datetime_imports_anywhere(self):
        offenders = []
        for rel, tree in _modules():
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    names = {alias.name.split(".")[0] for alias in node.names}
                elif isinstance(node, ast.ImportFrom):
                    names = {(node.module or "").split(".")[0]}
                else:
                    continue
                if names & FORBIDDEN_MODULES:
                    offenders.append(f"{rel}:{node.lineno}")
        assert offenders == [], (
            "wall-clock imports break seeded replay; route timing through "
            f"sim.Clock instead: {offenders}"
        )


class TestNoGlobalRandomness:
    def test_random_imports_are_allowlisted(self):
        offenders = []
        for rel, tree in _modules():
            if rel in RANDOM_IMPORT_ALLOWLIST:
                continue
            for node in ast.walk(tree):
                if isinstance(node, ast.Import) and any(
                    alias.name == "random" for alias in node.names
                ):
                    offenders.append(f"{rel}:{node.lineno}")
                if isinstance(node, ast.ImportFrom) and node.module == "random":
                    offenders.append(f"{rel}:{node.lineno}")
        assert offenders == [], (
            "draw through a named SeededRng stream instead of importing "
            f"random: {offenders}"
        )

    def test_no_calls_into_the_global_random_module(self):
        offenders = []
        for rel, tree in _modules():
            if rel in RANDOM_CALL_ALLOWLIST:
                continue
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "random"
                ):
                    offenders.append(f"{rel}:{node.lineno} random.{node.func.attr}()")
        assert offenders == [], f"global-RNG calls are nondeterministic: {offenders}"

    def test_audited_modules_stay_clean(self):
        """The two modules the issue singled out draw nothing globally."""
        for rel in ("sharding/coordinator.py", "consensus/mempool.py"):
            source = (SRC / rel).read_text()
            assert "import random" not in source, rel
            assert "time.time(" not in source, rel
