"""Source-level determinism audit.

The ISSUE-3 audit of bare ``random`` / ``time.time()`` usage found every
stochastic choice already routed through ``sim.rng`` / ``sim.Clock``
(the PR 1/2 refactors left nothing loose).  This lint pins that state:
any future module that reaches for wall-clock time or process-global
randomness — either of which would silently break seeded replay — fails
tier-1 instead of surfacing as an unreproducible chaos run.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Modules allowed to *touch* the stdlib ``random`` module: the seeded
#: fan-out wrapper itself, and the one module that type-annotates
#: ``random.Random`` parameters fed from it.
RANDOM_IMPORT_ALLOWLIST = {"sim/rng.py", "workloads/generator.py"}

#: Modules allowed to *call* ``random.*`` functions (constructing the
#: seeded streams counts; drawing from the global RNG never does).
RANDOM_CALL_ALLOWLIST = {"sim/rng.py"}

#: Wall-clock sources that would desynchronise replay.
FORBIDDEN_MODULES = {"time", "datetime"}


def _modules() -> list[tuple[str, ast.AST]]:
    out = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        out.append((rel, ast.parse(path.read_text(), filename=rel)))
    return out


class TestNoWallClock:
    def test_no_time_or_datetime_imports_anywhere(self):
        offenders = []
        for rel, tree in _modules():
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    names = {alias.name.split(".")[0] for alias in node.names}
                elif isinstance(node, ast.ImportFrom):
                    names = {(node.module or "").split(".")[0]}
                else:
                    continue
                if names & FORBIDDEN_MODULES:
                    offenders.append(f"{rel}:{node.lineno}")
        assert offenders == [], (
            "wall-clock imports break seeded replay; route timing through "
            f"sim.Clock instead: {offenders}"
        )


class TestNoGlobalRandomness:
    def test_random_imports_are_allowlisted(self):
        offenders = []
        for rel, tree in _modules():
            if rel in RANDOM_IMPORT_ALLOWLIST:
                continue
            for node in ast.walk(tree):
                if isinstance(node, ast.Import) and any(
                    alias.name == "random" for alias in node.names
                ):
                    offenders.append(f"{rel}:{node.lineno}")
                if isinstance(node, ast.ImportFrom) and node.module == "random":
                    offenders.append(f"{rel}:{node.lineno}")
        assert offenders == [], (
            "draw through a named SeededRng stream instead of importing "
            f"random: {offenders}"
        )

    def test_no_calls_into_the_global_random_module(self):
        offenders = []
        for rel, tree in _modules():
            if rel in RANDOM_CALL_ALLOWLIST:
                continue
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "random"
                ):
                    offenders.append(f"{rel}:{node.lineno} random.{node.func.attr}()")
        assert offenders == [], f"global-RNG calls are nondeterministic: {offenders}"

    def test_audited_modules_stay_clean(self):
        """Modules past issues singled out draw nothing globally — now
        including the crypto/batching fast path (ISSUE 4): batch-verify
        coefficients must come from a passed-in seeded stream (or
        deterministic hashing), never process-global randomness — and
        the durability layer (ISSUE 5): replaying a SimDisk must be
        byte-identical, so WAL frames, flush timing and snapshot cadence
        may draw on nothing but the injected event loop — and the
        byzantine fault family (ISSUE 6): liars, adversarial clients and
        corruption schedules must themselves replay byte-for-byte, or a
        repro bundle of a safety violation is worthless — and the
        telemetry layer (ISSUE 7): every histogram sample, span event and
        flight-recorder entry is stamped from the injected sim clock, so
        the observability plane replays as deterministically as the data
        plane it watches."""
        for rel in (
            "sharding/coordinator.py",
            "consensus/mempool.py",
            "consensus/bft.py",
            "crypto/ed25519.py",
            "crypto/sigcache.py",
            "crypto/keys.py",
            "core/validation.py",
            "durability/wal.py",
            "durability/commitlog.py",
            "durability/snapshot.py",
            "durability/recovery.py",
            "durability/node.py",
            "consensus/byzantine.py",
            "simtest/workload.py",
            "simtest/schedule.py",
            "simtest/plane.py",
            "telemetry/__init__.py",
            "telemetry/registry.py",
            "telemetry/tracing.py",
            "telemetry/flight.py",
        ):
            source = (SRC / rel).read_text()
            assert "import random" not in source, rel
            assert "time.time(" not in source, rel

    def test_batch_verify_randomness_is_injected_not_global(self):
        """``verify_batch``'s coefficient draw only touches the rng it was
        handed; with none, it derives coefficients by hashing the batch."""
        tree = ast.parse((SRC / "crypto" / "ed25519.py").read_text())
        coefficient_fn = next(
            node
            for node in ast.walk(tree)
            if isinstance(node, ast.FunctionDef) and node.name == "_batch_coefficient"
        )
        calls = [
            node.func.value.id
            for node in ast.walk(coefficient_fn)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.attr == "getrandbits"
        ]
        # Every getrandbits draw goes through the injected parameter.
        assert calls == ["rng"], calls


class TestDurabilityTimingIsLoopInjected:
    """ISSUE 5: group-commit flush timing comes only from the injected
    event loop — the durability layer schedules nothing it wasn't given."""

    def test_commitlog_schedules_only_through_the_injected_loop(self):
        tree = ast.parse((SRC / "durability" / "commitlog.py").read_text())
        schedulers = []
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("schedule_in", "schedule_at")
            ):
                # Must be self._loop.schedule_*(...): an attribute access
                # on the injected loop, never a module-level scheduler.
                target = node.func.value
                assert isinstance(target, ast.Attribute), ast.dump(node)
                assert target.attr == "_loop", ast.dump(node)
                schedulers.append(node.func.attr)
        assert schedulers, "the flush must be scheduled through the loop"

    def test_durability_package_has_no_scheduling_outside_commitlog(self):
        """wal/snapshot/recovery are pure byte and state transforms: any
        timing decision belongs to the commit log (or the owner)."""
        for rel in ("wal.py", "snapshot.py", "recovery.py"):
            tree = ast.parse((SRC / "durability" / rel).read_text())
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("schedule_in", "schedule_at")
                ):
                    raise AssertionError(
                        f"durability/{rel} schedules events; timing belongs "
                        "to commitlog.py"
                    )
