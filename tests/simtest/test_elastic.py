"""The elastic-resharding chaos family: plans, traps, and falsifiability.

Three contracts: (1) ``elastic_rate=0`` replays pre-elastic plans
byte-for-byte; (2) every elastic schedule carries at least one
migration *and* one migrate trap, so no nightly run silently skips the
crash matrix; (3) a seeded lost-key bug is caught by the registry with
a bundle that replays to the identical failure.
"""

import pytest

from repro.durability.node import DurabilityConfig
from repro.sharding.cluster import ShardedCluster, ShardedClusterConfig
from repro.sharding.migration import (
    MIGRATE_TRAP_PHASES,
    MIGRATE_TRAP_ROLES,
    ReshardController,
)
from repro.sim.rng import SeededRng
from repro.simtest import SimHarness, SimtestConfig
from repro.simtest.plane import FaultPlane
from repro.simtest.schedule import Schedule, ScheduleGenerator

_ELASTIC = dict(steps=80, fault_rate=0.05, elastic_rate=0.12, cross_rate=0.3)


def _durable_plane(n_shards: int = 2) -> FaultPlane:
    return FaultPlane(
        ShardedCluster(
            ShardedClusterConfig(
                n_shards=n_shards,
                seed=9,
                durability=DurabilityConfig(snapshot_interval=60),
            )
        )
    )


def _generate(
    seed: int = 9, steps: int = 200, elastic_rate: float = 0.1, **kwargs
) -> Schedule:
    plane = _durable_plane()
    return ScheduleGenerator(
        SeededRng(seed), plane, fault_rate=0.1, elastic_rate=elastic_rate, **kwargs
    ).generate(steps)


class TestElasticPlans:
    def test_rate_zero_plans_no_elastic_actions(self):
        schedule = _generate(elastic_rate=0.0)
        assert not any(
            a.kind in ("migrate", "migrate_trap") for a in schedule.actions
        )

    def test_rate_zero_is_byte_identical_to_pre_elastic(self):
        plane = _durable_plane()
        with_knob = ScheduleGenerator(
            SeededRng(9), plane, fault_rate=0.1, elastic_rate=0.0
        ).generate(200)
        without = ScheduleGenerator(SeededRng(9), plane, fault_rate=0.1).generate(200)
        assert with_knob.to_json() == without.to_json()

    def test_same_seed_same_elastic_plan(self):
        assert _generate(seed=11).to_json() == _generate(seed=11).to_json()

    def test_every_elastic_plan_carries_a_migrate_trap(self):
        for seed in range(20):
            schedule = _generate(seed=seed, steps=60, elastic_rate=0.02)
            traps = [a for a in schedule.actions if a.kind == "migrate_trap"]
            assert traps, f"seed {seed} planned no migrate_trap"
            migrations = [a for a in schedule.actions if a.kind == "migrate"]
            assert migrations, f"seed {seed} planned no migration"

    def test_trap_args_are_valid_phase_role_pairs(self):
        for seed in range(10):
            for action in _generate(seed=seed).actions:
                if action.kind != "migrate_trap":
                    continue
                phase, _, role = str(action.arg).partition(":")
                assert phase in MIGRATE_TRAP_PHASES, action.arg
                assert role in MIGRATE_TRAP_ROLES, action.arg

    def test_migrations_name_two_distinct_live_shards(self):
        plane = _durable_plane()
        for action in _generate(seed=13).actions:
            if action.kind == "migrate":
                assert action.shard in plane.shard_ids
                assert action.arg in plane.shard_ids
                assert action.shard != action.arg

    def test_one_trap_at_a_time(self):
        """migrate traps share the single-trap budget with phase and
        restart traps: armed windows never overlap."""
        schedule = _generate(seed=17, steps=400, elastic_rate=0.05)
        armed = False
        for action in sorted(schedule.actions, key=lambda a: a.step):
            if action.kind in ("phase_trap", "restart_trap", "migrate_trap"):
                assert not armed, f"trap stacked at step {action.step}"
                armed = True
            elif action.kind == "trap_clear":
                armed = False

    def test_single_cluster_plans_skip_elastic(self):
        from repro.core.cluster import ClusterConfig, SmartchainCluster

        plane = FaultPlane(SmartchainCluster(ClusterConfig(seed=9)))
        schedule = ScheduleGenerator(
            SeededRng(9), plane, fault_rate=0.1, elastic_rate=0.5
        ).generate(100)
        assert not any(
            a.kind in ("migrate", "migrate_trap") for a in schedule.actions
        )


class TestElasticHarness:
    def test_elastic_run_is_green_and_resharded(self):
        report = SimHarness(SimtestConfig(seed=7, **_ELASTIC)).run()
        assert report.ok, report.violations
        assert report.stats["reshard"]["started"] >= 1

    def test_elastic_run_is_deterministic(self):
        first = SimHarness(SimtestConfig(seed=7, **_ELASTIC)).run()
        again = SimHarness(SimtestConfig(seed=7, **_ELASTIC)).run()
        assert first.stats["reshard"] == again.stats["reshard"]
        assert first.ok == again.ok


class TestLostKeyMutation:
    @pytest.fixture()
    def dropped_imports(self, monkeypatch):
        """Break the cutover's target materialization: every moved ref is
        (falsely) classified as already spent on the target, so the
        source deletion runs but the target insert never does — a lost
        key.  The registry "in" trace is dropped with it, so the
        per-step replica check stays blind and only the journal-driven
        ``no_key_lost`` sweep can see the hole."""
        monkeypatch.setattr(
            ReshardController,
            "_spent_on_target",
            lambda self, cluster, moved: {(t, i) for t, i, _d in moved},
        )
        real_row = ReshardController._ensure_registry_row
        monkeypatch.setattr(
            ReshardController,
            "_ensure_registry_row",
            staticmethod(
                lambda agent, mid, tx_id, index, direction, peer, doc: (
                    None
                    if direction == "in"
                    else real_row(agent, mid, tx_id, index, direction, peer, doc)
                )
            ),
        )

    def test_checker_catches_the_lost_key(self, dropped_imports):
        report = SimHarness(SimtestConfig(seed=7, **_ELASTIC)).run()
        assert not report.ok
        assert any(v.invariant == "no_key_lost" for v in report.violations), [
            (v.invariant, v.detail) for v in report.violations
        ]

    def test_failure_ships_a_replayable_bundle(self, dropped_imports):
        first = SimHarness(SimtestConfig(seed=7, **_ELASTIC)).run()
        again = SimHarness(SimtestConfig(seed=7, **_ELASTIC)).run()
        assert first.bundle is not None
        assert (first.bundle.invariant, first.bundle.failed_step, first.bundle.detail) == (
            again.bundle.invariant,
            again.bundle.failed_step,
            again.bundle.detail,
        )
        assert "--elastic-rate" in first.bundle.to_json()
