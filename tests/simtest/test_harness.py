"""The chaos harness end to end: determinism, coverage, both topologies.

Kept at small step counts — the long sweeps live in CI's chaos job; the
tier-1 contract here is that a seed fully determines a run and that the
harness exercises the fault vocabulary it advertises.
"""

from repro.simtest import SimHarness, SimtestConfig


def _run(seed: int = 7, steps: int = 50, **kwargs) -> tuple:
    harness = SimHarness(SimtestConfig(seed=seed, steps=steps, **kwargs))
    return harness, harness.run()


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        _, first = _run(seed=7, steps=45)
        _, second = _run(seed=7, steps=45)
        assert first.schedule.to_json() == second.schedule.to_json()
        assert first.step_log == second.step_log
        assert first.invariant_log == second.invariant_log
        assert first.stats == second.stats

    def test_different_seeds_diverge(self):
        _, first = _run(seed=7, steps=45)
        _, second = _run(seed=8, steps=45)
        assert first.schedule.to_json() != second.schedule.to_json()
        assert first.step_log != second.step_log

    def test_healthy_run_holds_every_invariant(self):
        _, report = _run(seed=7, steps=50)
        assert report.ok
        assert report.bundle is None
        assert report.stats["workload"]["committed"] > 10

    def test_at_least_six_invariants_registered(self):
        harness, report = _run(seed=1, steps=10)
        assert report.stats["invariants_registered"] >= 6
        # Every per-step invariant actually ran.
        for invariant in harness.checker.applicable("step"):
            assert harness.checker.checks_run.get(invariant.name, 0) > 0


class TestTopologies:
    def test_single_cluster_mode(self):
        _, report = _run(seed=4, steps=40, single=True)
        assert report.ok
        assert report.stats["workload"]["cross"] == 0

    def test_two_shard_mode(self):
        _, report = _run(seed=4, steps=40, n_shards=2)
        assert report.ok


class TestFaultCoverage:
    def test_schedule_injects_and_run_survives(self):
        # A fault-dense run: the plan must contain several families and
        # the workload must still make progress through all of them.
        harness, report = _run(seed=13, steps=120, fault_rate=0.3)
        assert report.ok
        kinds = {action.kind for action in report.schedule.actions}
        assert len(kinds & {"crash_node", "partition", "crash_coordinator",
                            "phase_trap", "net_delay", "time_jump", "burst"}) >= 4
        assert report.stats["workload"]["committed"] > 20

    def test_quiesce_leaves_no_locks_or_unfinished_2pc(self):
        harness, report = _run(seed=13, steps=120, fault_rate=0.3)
        assert report.ok
        for agent in harness.plane.agents.values():
            assert agent.active_locks() == []
            assert agent.unfinished() == []
