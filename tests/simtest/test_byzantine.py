"""The byzantine fault family end-to-end (ISSUE 6).

Three layers of coverage:

* **planning** — byzantine marks respect the ⌊(n−1)/3⌋ cap, pair with
  heals, share the one-disruption-per-shard budget, and vanish entirely
  at ``byzantine_rate=0`` (pre-byzantine plans replay byte-for-byte);
* **detection** — each new invariant (``honest_no_divergence``,
  ``no_forged_admission``, ``equivocation_contained``) demonstrably
  fires on the corruption it exists for;
* **mutation proofs** — with a protection patched out (the lock rule,
  the per-validator vote dedupe, signature verification) the same
  byzantine pressure that a healthy cluster shrugs off turns the run
  red, deterministically.  The consensus-level proofs drive crafted
  vote floods that only the *mutated* protocol's honest nodes could
  emit, and the identical script stays green with the protection
  intact — falsifiability in both directions.
"""

import pytest

import repro.core.validation as validation_module
import repro.crypto.conditions as conditions_module
from repro.common.encoding import canonical_bytes
from repro.consensus.abci import envelope_for
from repro.consensus.bft import GENESIS_ID, Validator
from repro.consensus.byzantine import sibling_block
from repro.consensus.types import PRECOMMIT, PREVOTE, Block, Vote
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import keypair_from_string
from repro.crypto.sigcache import SignatureCache, set_shared_cache
from repro.sharding.cluster import ShardedCluster, ShardedClusterConfig
from repro.sim.rng import SeededRng
from repro.simtest import SimHarness, SimtestConfig
from repro.simtest.invariants import (
    applied_transactions,
    equivocation_contained,
    honest_no_divergence,
    no_forged_admission,
)
from repro.simtest.plane import SINGLE_SHARD, FaultPlane
from repro.simtest.schedule import BYZANTINE_KINDS, ScheduleGenerator

#: The byzantine-heavy harness mix the mutation proofs and green runs use.
_BYZANTINE = dict(steps=80, byzantine_rate=0.25, adversarial_rate=0.25, fault_rate=0.05)


def _sharded_plane() -> FaultPlane:
    return FaultPlane(ShardedCluster(ShardedClusterConfig(n_shards=2, seed=9)))


class TestSchedulePlanning:
    def test_byzantine_kinds_appear_and_pair_with_heals(self):
        plane = _sharded_plane()
        schedule = ScheduleGenerator(
            SeededRng(9), plane, 0.05, byzantine_rate=0.5
        ).generate(400)
        marks = [a for a in schedule.actions if a.kind in BYZANTINE_KINDS]
        heals = [a for a in schedule.actions if a.kind == "byz_heal"]
        assert marks, "a byzantine-heavy plan must mark someone"
        assert len(marks) == len(heals)
        for mark in marks:
            assert any(
                heal.step > mark.step
                and heal.shard == mark.shard
                and heal.node == mark.node
                for heal in heals
            ), f"{mark.kind} at step {mark.step} never healed"

    def test_concurrent_marks_never_exceed_the_cap(self):
        plane = _sharded_plane()
        cap = plane.byzantine_cap("shard-0")
        assert cap == (4 - 1) // 3 == 1
        schedule = ScheduleGenerator(
            SeededRng(11), plane, 0.05, byzantine_rate=0.6
        ).generate(400)
        open_marks: dict[str, set[str]] = {}
        for action in sorted(schedule.actions, key=lambda a: a.step):
            if action.kind in BYZANTINE_KINDS:
                shard = open_marks.setdefault(action.shard, set())
                shard.add(action.node)
                assert len(shard) <= cap, f"step {action.step} over-corrupts"
            elif action.kind == "byz_heal":
                open_marks.get(action.shard, set()).discard(action.node)

    def test_byzantine_windows_share_the_disruption_budget(self):
        """A shard under a byzantine mark takes no concurrent crash or
        partition — the f<n/3 argument needs the other n−1 validators."""
        plane = _sharded_plane()
        schedule = ScheduleGenerator(
            SeededRng(13), plane, 0.4, byzantine_rate=0.4
        ).generate(400)
        disrupting = set(BYZANTINE_KINDS) | {"crash_node", "partition"}
        repairing = {"byz_heal", "recover_node", "heal"}
        open_disruption: dict[str, str] = {}
        for action in sorted(schedule.actions, key=lambda a: a.step):
            if action.kind in disrupting:
                assert action.shard not in open_disruption, (
                    f"{action.kind} stacks on {open_disruption[action.shard]}"
                )
                open_disruption[action.shard] = action.kind
            elif action.kind in repairing:
                open_disruption.pop(action.shard, None)

    def test_rate_zero_reproduces_pre_byzantine_plans(self):
        baseline = ScheduleGenerator(SeededRng(9), _sharded_plane(), 0.25).generate(300)
        explicit = ScheduleGenerator(
            SeededRng(9), _sharded_plane(), 0.25, byzantine_rate=0.0
        ).generate(300)
        assert baseline.to_json() == explicit.to_json()
        assert not any(
            a.kind in BYZANTINE_KINDS or a.kind == "byz_heal" for a in baseline.actions
        )


class TestPlaneControls:
    def test_cap_is_enforced_at_the_plane(self):
        plane = _sharded_plane()
        nodes = plane.nodes("shard-0")
        plane.mark_byzantine("shard-0", nodes[0], "withhold")
        with pytest.raises(ValueError):
            plane.mark_byzantine("shard-0", nodes[1], "equivocate")
        plane.heal_byzantine("shard-0", nodes[0])
        plane.mark_byzantine("shard-0", nodes[1], "equivocate")
        assert plane.byzantine_nodes("shard-0") == [nodes[1]]
        assert plane.byzantine_kind("shard-0", nodes[1]) == "equivocate"

    def test_heal_clears_the_behavior_and_quiesce_heals_everyone(self):
        plane = _sharded_plane()
        node = plane.nodes("shard-1")[2]
        plane.mark_byzantine("shard-1", node, "stale")
        assert plane.shard_cluster("shard-1").engine.validator(node).byzantine is not None
        plane.quiesce()
        assert plane.byzantine_nodes("shard-1") == []
        assert plane.shard_cluster("shard-1").engine.validator(node).byzantine is None


class TestInvariantDetectors:
    def test_no_forged_admission_fires_on_an_applied_forgery(self):
        plane = FaultPlane(SmartchainCluster(ClusterConfig(seed=5)))
        cluster = plane.cluster
        payload = cluster.driver.prepare_create(
            keypair_from_string("forger"), {"capabilities": ["x"]}
        ).to_dict()
        cluster.submit_payload(payload)
        cluster.run()
        assert payload["id"] in applied_transactions(plane)
        assert no_forged_admission(plane) == []
        # Pretend that applied transaction had been a forgery: the
        # invariant must name it the moment the two sets intersect.
        plane.forged_tx_ids.add(payload["id"])
        plane._applied_cache = None
        violations = no_forged_admission(plane)
        assert violations and payload["id"][:8] in violations[0]

    def test_equivocation_contained_fires_on_a_rollback(self):
        plane = FaultPlane(SmartchainCluster(ClusterConfig(seed=5)))
        cluster = plane.cluster
        payload = cluster.driver.prepare_create(
            keypair_from_string("roller"), {"capabilities": ["x"]}
        ).to_dict()
        cluster.submit_payload(payload)
        cluster.run()
        assert equivocation_contained(plane) == []  # baselines the watch
        victim = plane.nodes(SINGLE_SHARD)[0]
        chain = cluster.engine.validator(victim).chain
        assert chain, "nothing committed to roll back"
        chain.pop()
        violations = equivocation_contained(plane)
        assert violations and victim in violations[0]

    def test_honest_no_divergence_flags_an_over_corrupted_shard(self):
        plane = FaultPlane(SmartchainCluster(ClusterConfig(seed=5)))
        nodes = plane.nodes(SINGLE_SHARD)
        # Bypass the plane's cap to model a broken schedule: the invariant
        # must refuse to bless a vacuous safety claim.
        plane._byzantine[SINGLE_SHARD] = {nodes[0]: "withhold", nodes[1]: "stale"}
        violations = honest_no_divergence(plane)
        assert violations and "exceed" in violations[0]


def _crafted_cluster():
    """A 4-validator cluster with every node network-isolated, so the
    test injects every inter-node message by hand — crafted vote floods
    with no accidental gossip."""
    plane = FaultPlane(SmartchainCluster(ClusterConfig(n_validators=4, seed=21)))
    cluster = plane.cluster
    order = cluster.engine.validator_order
    cluster.network.partition([{node} for node in order])
    owner = keypair_from_string("crafted-owner")
    envelopes = []
    for index in range(2):
        payload = cluster.driver.prepare_create(
            owner, {"capabilities": [f"crafted-{index}"]}
        ).to_dict()
        envelopes.append(
            envelope_for(payload, payload["id"], len(canonical_bytes(payload)))
        )
    return plane, cluster, order, envelopes


def _run(cluster, dt=0.2):
    cluster.loop.run(until=cluster.loop.clock.now + dt)


class TestPerValidatorDedupeMutation:
    """Patch the per-validator tally down to per-*message* counting and a
    single double-voting proposer assembles quorums alone — the honest
    halves commit different siblings and ``honest_no_divergence`` goes
    red.  The identical flood is counted once per validator by the real
    tally and the run stays green."""

    def _drive(self, mutated: bool):
        plane, cluster, order, envelopes = _crafted_cluster()
        liar, h1, h2 = order[1], order[0], order[2]
        plane.mark_byzantine(SINGLE_SHARD, liar, "equivocate")
        block = Block.build(1, 0, liar, envelopes, GENESIS_ID)
        sibling = sibling_block(block)
        validators = {node: cluster.engine.validator(node) for node in order}
        # Disjoint disclosure: h1 sees one sibling, h2 the other.
        validators[h1]._handle_proposal(block, liar)
        validators[h2]._handle_proposal(sibling, liar)
        _run(cluster)  # local prevotes tally
        copies = 3 if mutated else 1
        for node, value in ((h1, block), (h2, sibling)):
            for _ in range(max(copies, 3)):
                validators[node]._handle_vote(
                    Vote(PREVOTE, 1, 0, value.block_id, liar), liar
                )
            _run(cluster)
            for _ in range(max(copies, 3)):
                validators[node]._handle_vote(
                    Vote(PRECOMMIT, 1, 0, value.block_id, liar), liar
                )
            _run(cluster)
        return plane, validators, h1, h2, block, sibling

    def test_per_message_tally_forks_and_the_invariant_fires(self, monkeypatch):
        def per_message(self, vote):
            key = (vote.phase, vote.height, vote.round, vote.block_id)
            bucket = self._votes.setdefault(key, set())
            bucket.add((vote.voter, len(bucket)))
            return len(bucket)

        monkeypatch.setattr(Validator, "_tally_vote", per_message)
        plane, validators, h1, h2, block, sibling = self._drive(mutated=True)
        assert [b.block_id for b in validators[h1].chain] == [block.block_id]
        assert [b.block_id for b in validators[h2].chain] == [sibling.block_id]
        violations = honest_no_divergence(plane)
        assert violations, "the fork must be detected"
        assert "diverge at height 1" in violations[0]

    def test_real_tally_shrugs_off_the_same_flood(self):
        plane, validators, h1, h2, _, _ = self._drive(mutated=False)
        assert validators[h1].chain == []
        assert validators[h2].chain == []
        assert honest_no_divergence(plane) == []


class TestLockRuleMutation:
    """Remove the lock rule (precommit any polka, adopt no lock) and the
    seed-606 height-fork race reopens: a node that already helped commit
    one value at a height freely prevotes and precommits a different
    value in a later round.  With the rule intact, the identical message
    sequence earns a NIL prevote and the rival quorum never closes."""

    def _drive(self):
        plane, cluster, order, envelopes = _crafted_cluster()
        h1, liar, h2, h3 = order  # liar is due for (1, 0); h3 due for (1, 2)
        plane.mark_byzantine(SINGLE_SHARD, liar, "equivocate")
        validators = {node: cluster.engine.validator(node) for node in order}
        block = Block.build(1, 0, liar, envelopes, GENESIS_ID)
        sibling = sibling_block(block)

        # Round 0: h1 and h2 see sibling A, prevote it, and receive
        # enough honest+byzantine votes for a polka.
        for node in (h1, h2):
            validators[node]._handle_proposal(block, liar)
        _run(cluster)
        for node, peer in ((h1, h2), (h2, h1)):
            for voter in (peer, liar):
                validators[node]._handle_vote(
                    Vote(PREVOTE, 1, 0, block.block_id, voter), voter
                )
        _run(cluster)
        # h1 alone also receives the precommit quorum and commits A.
        for voter in (h2, liar):
            validators[h1]._handle_vote(
                Vote(PRECOMMIT, 1, 0, block.block_id, voter), voter
            )
        _run(cluster)

        # Round 2: h3 (due proposer, saw only sibling B, never committed)
        # re-proposes B's value; h2 receives it plus a prevote/precommit
        # quorum.  Lockless, h2 prevotes B and commits it — locked, h2
        # prevotes NIL and the quorum dies at 2 of 3.
        nil_prevotes = []
        original = validators[h2]._broadcast

        def spy(kind, payload, size):
            if kind == "VOTE" and payload.phase == PREVOTE:
                nil_prevotes.append(payload.block_id)
            original(kind, payload, size)

        validators[h2]._broadcast = spy
        reproposal = Block.build(1, 2, h3, list(sibling.transactions), GENESIS_ID)
        assert reproposal.block_id == sibling.block_id  # value identity
        validators[h2]._handle_proposal(reproposal, h3)
        _run(cluster)
        for voter in (h3, liar):
            validators[h2]._handle_vote(
                Vote(PREVOTE, 1, 2, sibling.block_id, voter), voter
            )
        _run(cluster)
        for voter in (h3, liar):
            validators[h2]._handle_vote(
                Vote(PRECOMMIT, 1, 2, sibling.block_id, voter), voter
            )
        _run(cluster)
        return plane, validators, h1, h2, block, sibling, nil_prevotes

    def test_lockless_quorum_forks_and_the_invariant_fires(self, monkeypatch):
        def lockless(self, vote):
            if vote.height != self.height:
                return
            key = (vote.height, vote.round)
            if key not in self._precommitted:
                self._precommitted.add(key)
                self._send_vote(
                    Vote(PRECOMMIT, vote.height, vote.round, vote.block_id, self.node_id)
                )

        monkeypatch.setattr(Validator, "_on_prevote_quorum", lockless)
        plane, validators, h1, h2, block, sibling, prevotes = self._drive()
        assert [b.block_id for b in validators[h1].chain] == [block.block_id]
        assert [b.block_id for b in validators[h2].chain] == [sibling.block_id]
        assert sibling.block_id in prevotes, "lockless node helps the rival"
        violations = honest_no_divergence(plane)
        assert violations and "diverge at height 1" in violations[0]

    def test_locked_node_prevotes_nil_and_no_fork_forms(self):
        from repro.consensus.types import NIL

        plane, validators, h1, h2, block, sibling, prevotes = self._drive()
        assert [b.block_id for b in validators[h1].chain] == [block.block_id]
        assert validators[h2].chain == [], "the lock rule starves the rival quorum"
        assert NIL in prevotes, "locked node must prevote NIL against the rival"
        assert honest_no_divergence(plane) == []


class TestSignatureMutation:
    """Disable signature verification (both the single-verify path the
    condition checks use and the batch path block validation uses) and
    the adversarial workload's forged spends sail through semantic
    validation into committed blocks — ``no_forged_admission`` goes red
    on every probed seed."""

    @pytest.fixture()
    def signatures_disabled(self, monkeypatch):
        monkeypatch.setattr(
            conditions_module, "verify_signature", lambda *args, **kwargs: True
        )
        monkeypatch.setattr(
            validation_module,
            "verify_signatures_batch",
            lambda triples, **kwargs: [True] * len(triples),
        )
        # The shared verdict cache must not leak forged-True entries into
        # other tests (nor serve honest verdicts that mask the mutation).
        previous = set_shared_cache(SignatureCache())
        yield
        set_shared_cache(previous)

    def test_forged_spend_commits_and_the_invariant_fires(self, signatures_disabled):
        report = SimHarness(SimtestConfig(seed=5, **_BYZANTINE)).run()
        assert not report.ok
        assert report.violations[0].invariant == "no_forged_admission"
        assert "forged-signature tx" in report.violations[0].detail

    def test_other_seeds_catch_it_too(self, signatures_disabled):
        report = SimHarness(SimtestConfig(seed=7, **_BYZANTINE)).run()
        assert not report.ok
        assert report.violations[0].invariant == "no_forged_admission"


class TestByzantineHarnessRuns:
    def test_byzantine_run_is_green_and_deterministic(self):
        first = SimHarness(SimtestConfig(seed=11, **_BYZANTINE)).run()
        second = SimHarness(SimtestConfig(seed=11, **_BYZANTINE)).run()
        assert first.ok, [v.describe() for v in first.violations[:3]]
        assert first.step_log == second.step_log
        assert first.schedule.to_json() == second.schedule.to_json()
        assert first.stats["workload"] == second.stats["workload"]
        # The run actually exercised the new machinery.
        assert first.stats["workload"]["forged"] > 0
        assert first.stats["workload"]["forged_admitted"] == 0

    def test_seed7_lock_release_race_stays_green(self):
        """Regression: this exact configuration caught delivery reading
        the live 2PC lock table — shard-2 replicas disagreed on a
        block's valid transactions when an aborted cross-shard lock was
        released mid-delivery (and, once delivery went lock-blind, an
        injected replay could double-spend a tombstoned output).  Both
        closures — guard-free DeliverTx, lock-aware CheckTx, rival-aware
        prepare — must hold under the full byzantine + adversarial mix."""
        report = SimHarness(
            SimtestConfig(
                seed=7, steps=150,
                byzantine_rate=0.25, adversarial_rate=0.25, fault_rate=0.05,
            )
        ).run()
        assert report.ok, [v.describe() for v in report.violations[:3]]

    def test_replay_command_carries_the_byzantine_knobs(self):
        config = SimtestConfig(seed=5, **_BYZANTINE)
        report = SimHarness(config).run()
        assert report.ok
        from repro.simtest.harness import ReproBundle

        bundle = ReproBundle(
            seed=5,
            failed_step=0,
            sim_time=0.0,
            invariant="x",
            detail="x",
            config=config.to_dict(),
            schedule_json=report.schedule.to_json(),
        )
        command = bundle.replay_command()
        assert "--byzantine-rate 0.25" in command
        assert "--adversarial-rate 0.25" in command
