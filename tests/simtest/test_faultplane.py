"""The FaultPlane: one chaos surface over both deployment shapes."""

import pytest

from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import keypair_from_string
from repro.sharding.cluster import ShardedCluster, ShardedClusterConfig
from repro.simtest.plane import SINGLE_SHARD, FaultPlane


@pytest.fixture()
def sharded_plane() -> FaultPlane:
    return FaultPlane(ShardedCluster(ShardedClusterConfig(n_shards=2, seed=5)))


@pytest.fixture()
def single_plane() -> FaultPlane:
    return FaultPlane(SmartchainCluster(ClusterConfig(seed=5)))


class TestTopology:
    def test_sharded_exposes_shards_and_agents(self, sharded_plane):
        assert sharded_plane.sharded
        assert sharded_plane.shard_ids == ["shard-0", "shard-1"]
        assert set(sharded_plane.agents) == {"shard-0", "shard-1"}
        assert len(sharded_plane.nodes("shard-0")) == 4

    def test_single_is_one_pseudo_shard(self, single_plane):
        assert not single_plane.sharded
        assert single_plane.shard_ids == [SINGLE_SHARD]
        assert single_plane.agents == {}
        with pytest.raises(ValueError):
            single_plane.crash_coordinator(SINGLE_SHARD)


class TestNodeFaults:
    def test_crash_and_recover_round_trip(self, sharded_plane):
        node = sharded_plane.nodes("shard-1")[0]
        sharded_plane.crash_node("shard-1", node)
        assert sharded_plane.crashed_nodes("shard-1") == [node]
        sharded_plane.recover_node("shard-1", node)
        assert sharded_plane.crashed_nodes("shard-1") == []

    def test_coordinator_crash_flag(self, sharded_plane):
        sharded_plane.crash_coordinator("shard-0")
        assert sharded_plane.coordinator_crashed("shard-0")
        assert not sharded_plane.coordinator_crashed("shard-1")
        sharded_plane.recover_coordinator("shard-0")
        assert not sharded_plane.coordinator_crashed("shard-0")


class TestPartitionAndHeal:
    def test_partitioned_minority_lags_then_heals(self, single_plane):
        plane = single_plane
        cluster = plane.cluster
        owner = keypair_from_string("plane-owner")
        plane.partition_minority(SINGLE_SHARD)
        nodes = plane.nodes(SINGLE_SHARD)
        isolated, receiver = nodes[-1], nodes[0]
        for index in range(3):
            tx = cluster.driver.prepare_create(owner, {"capabilities": [f"c{index}"]})
            # Submit into the majority side: a tx stranded in the isolated
            # minority's mempool would spin round timeouts until the heal.
            cluster.submit_payload(tx.to_dict(), receiver=receiver)
        cluster.run()
        behind = cluster.servers[isolated].database.collection("blocks").count({})
        ahead = max(
            server.database.collection("blocks").count({})
            for server in cluster.servers.values()
        )
        assert behind < ahead  # the minority missed commits
        plane.heal(SINGLE_SHARD)
        cluster.run()
        caught_up = cluster.servers[isolated].database.collection("blocks").count({})
        assert caught_up == ahead  # heal triggers the catch-up resync

    def test_time_jump_advances_the_clock(self, single_plane):
        before = single_plane.now
        single_plane.time_jump(2.5)
        assert single_plane.now == pytest.approx(before + 2.5)

    def test_chaos_delay_installs_and_clears(self, sharded_plane):
        network = sharded_plane.shard_cluster("shard-0").network
        sharded_plane.set_chaos_delay("shard-0", 0.02)
        assert network.chaos_extra_delay == 0.02
        sharded_plane.set_chaos_delay("shard-0", 0.0)
        assert network.chaos_extra_delay == 0.0


class TestQuiesce:
    def test_quiesce_repairs_everything(self, sharded_plane):
        plane = sharded_plane
        node = plane.nodes("shard-0")[1]
        plane.crash_node("shard-0", node)
        plane.crash_coordinator("shard-1")
        plane.partition_minority("shard-1")
        plane.set_chaos_delay("shard-0", 0.03)
        plane.quiesce()
        assert plane.crashed_nodes("shard-0") == []
        assert not plane.coordinator_crashed("shard-1")
        assert plane.shard_cluster("shard-0").network.chaos_extra_delay == 0.0
        for agent in plane.agents.values():
            assert agent.active_locks() == []

    def test_phase_listener_reaches_every_agent(self, sharded_plane):
        seen = []
        sharded_plane.register_phase_listener(
            lambda shard, phase, tx: seen.append((shard, phase))
        )
        for agent in sharded_plane.agents.values():
            agent._notify("probe", "tx-0")
        assert seen == [("shard-0", "probe"), ("shard-1", "probe")]
