"""mv_consistency invariant + the byz_poison schedule kind.

Short runs only — the 25-seed × 300-step sweeps live in CI's chaos job.
"""

from repro.simtest import SimHarness, SimtestConfig
from repro.simtest.invariants import DEFAULT_INVARIANTS, mv_consistency
from repro.simtest.schedule import (
    BYZANTINE_BEHAVIORS,
    BYZANTINE_KINDS,
    ScheduleGenerator,
)
from repro.simtest.plane import FaultPlane
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.sim.rng import SeededRng


def _run(seed=7, steps=50, **kwargs):
    harness = SimHarness(SimtestConfig(seed=seed, steps=steps, **kwargs))
    return harness, harness.run()


class TestRegistration:
    def test_mv_consistency_is_a_quiesce_invariant(self):
        registered = {inv.name: inv for inv in DEFAULT_INVARIANTS}
        assert registered["mv_consistency"].scope == "quiesce"
        assert not registered["mv_consistency"].sharded_only

    def test_volatile_deployments_skip(self):
        plane = FaultPlane(SmartchainCluster(ClusterConfig(seed=5)))
        assert mv_consistency(plane) == []


class TestHarnessRuns:
    def test_mv_consistency_holds_through_a_faulty_run(self):
        harness, report = _run(seed=9, steps=60, fault_rate=0.2)
        assert report.ok
        assert harness.checker.checks_run.get("mv_consistency", 0) >= 1

    def test_mv_consistency_holds_single_cluster(self):
        harness, report = _run(seed=10, steps=40, single=True, fault_rate=0.2)
        assert report.ok
        assert harness.checker.checks_run.get("mv_consistency", 0) >= 1

    def test_detects_a_dropped_view_update(self):
        """Mutation: silently skip one applied block's view update — the
        quiesce check must flag the drift (otherwise it tests nothing)."""
        harness = SimHarness(SimtestConfig(seed=9, steps=30))
        plane = harness.plane
        report = harness.run()
        assert report.ok
        views = plane.cluster.views
        shard, height = next(iter(views.heights().items()))
        # Corrupt: pretend one more block was applied with no content.
        views._heights[shard] = height + 1
        assert any("drifted" in v for v in mv_consistency(plane))


class TestPoisonScheduling:
    def test_byz_poison_is_in_the_vocabulary(self):
        assert "byz_poison" in BYZANTINE_KINDS
        assert BYZANTINE_BEHAVIORS["byz_poison"] == "poison"

    def test_byzantine_heavy_plans_schedule_poisoners(self):
        harness = SimHarness(SimtestConfig(seed=11, steps=200))
        generator = ScheduleGenerator(
            SeededRng(11), harness.plane, 0.12, byzantine_rate=0.6
        )
        schedule = generator.generate(200)
        kinds = {action.kind for action in schedule.actions}
        assert "byz_poison" in kinds

    def test_poisoned_run_stays_green(self):
        _, report = _run(seed=12, steps=80, byzantine_rate=0.5)
        assert report.ok
