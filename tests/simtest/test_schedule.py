"""Fault-plan generation: determinism, pairing discipline, serialization."""

import json

from repro.sim.rng import SeededRng
from repro.simtest.plane import FaultPlane
from repro.simtest.schedule import FaultAction, Schedule, ScheduleGenerator
from repro.sharding.cluster import ShardedCluster, ShardedClusterConfig


def _plane(n_shards: int = 2) -> FaultPlane:
    return FaultPlane(ShardedCluster(ShardedClusterConfig(n_shards=n_shards, seed=9)))


def _generate(seed: int = 9, steps: int = 300, fault_rate: float = 0.25) -> Schedule:
    plane = _plane()
    return ScheduleGenerator(SeededRng(seed), plane, fault_rate).generate(steps)


class TestGeneration:
    def test_same_seed_same_plan(self):
        assert _generate(seed=9).to_json() == _generate(seed=9).to_json()

    def test_different_seed_different_plan(self):
        assert _generate(seed=9).to_json() != _generate(seed=10).to_json()

    def test_every_fault_is_paired_with_its_repair(self):
        schedule = _generate(steps=400)
        pairs = {
            "crash_node": "recover_node",
            "partition": "heal",
            "crash_coordinator": "recover_coordinator",
            "phase_trap": "trap_clear",
            "net_delay": "net_calm",
        }
        for fault_kind, repair_kind in pairs.items():
            faults = [a for a in schedule.actions if a.kind == fault_kind]
            repairs = [a for a in schedule.actions if a.kind == repair_kind]
            assert len(faults) == len(repairs), fault_kind
            for fault in faults:
                match = [
                    r for r in repairs
                    if r.step > fault.step
                    and r.shard == fault.shard
                    and r.node == fault.node
                ]
                assert match, f"{fault_kind} at step {fault.step} never repaired"

    def test_at_most_one_disruption_per_shard(self):
        """Node crashes and partitions never stack on one shard — the
        schedule must keep every BFT quorum able to make progress."""
        schedule = _generate(steps=400, fault_rate=0.5)
        open_disruption: dict[str, str] = {}
        for action in sorted(schedule.actions, key=lambda a: (a.step,)):
            if action.kind in ("crash_node", "partition"):
                assert action.shard not in open_disruption
                open_disruption[action.shard] = action.kind
            elif action.kind in ("recover_node", "heal"):
                open_disruption.pop(action.shard, None)

    def test_fault_rate_zero_is_an_empty_plan(self):
        assert _generate(fault_rate=0.0).actions == []

    def test_single_cluster_plans_skip_coordinator_faults(self):
        from repro.core.cluster import ClusterConfig, SmartchainCluster

        plane = FaultPlane(SmartchainCluster(ClusterConfig(seed=9)))
        schedule = ScheduleGenerator(SeededRng(9), plane, 0.5).generate(300)
        kinds = {action.kind for action in schedule.actions}
        assert not kinds & {"crash_coordinator", "recover_coordinator", "phase_trap"}


class TestSerialization:
    def test_round_trip(self):
        schedule = _generate()
        clone = Schedule.from_json(schedule.to_json())
        assert clone.to_json() == schedule.to_json()
        assert clone.actions == schedule.actions

    def test_canonical_json_is_stable(self):
        text = _generate().to_json()
        data = json.loads(text)
        assert json.dumps(data, sort_keys=True, separators=(",", ":")) == text

    def test_describe_renders_args(self):
        action = FaultAction(3, "net_delay", shard="shard-1", arg=0.0125)
        assert action.describe() == "net_delay shard=shard-1 arg=0.012500"
        trap = FaultAction(4, "phase_trap", arg="commit_pending")
        assert "arg=commit_pending" in trap.describe()

    def test_lookup_by_step(self):
        schedule = Schedule(1, 10, [FaultAction(2, "time_jump", arg=0.5)])
        assert schedule.at(2)[0].kind == "time_jump"
        assert schedule.at(3) == []
