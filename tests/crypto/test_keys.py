"""Key pairs, reserved accounts, signature helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import InvalidKeyError
from repro.crypto.keys import (
    KeyPair,
    ReservedAccounts,
    generate_keypair,
    keypair_from_string,
    verify_signature,
)


class TestKeyPair:
    def test_deterministic_from_seed(self):
        left = generate_keypair(b"\x07" * 32)
        right = generate_keypair(b"\x07" * 32)
        assert left == right

    def test_distinct_seeds_distinct_keys(self):
        assert generate_keypair(b"\x01" * 32) != generate_keypair(b"\x02" * 32)

    def test_bad_seed_length(self):
        with pytest.raises(InvalidKeyError):
            generate_keypair(b"short")

    def test_sign_and_verify(self):
        keypair = generate_keypair(b"\x03" * 32)
        signature = keypair.sign(b"payload")
        assert keypair.verify(b"payload", signature)
        assert not keypair.verify(b"other", signature)

    def test_verify_signature_cross_key_fails(self):
        signer = generate_keypair(b"\x04" * 32)
        other = generate_keypair(b"\x05" * 32)
        signature = signer.sign(b"m")
        assert verify_signature(signer.public_key, b"m", signature)
        assert not verify_signature(other.public_key, b"m", signature)

    def test_verify_signature_garbage_inputs(self):
        assert not verify_signature("not-base58-0OIl", b"m", "sig")
        keypair = generate_keypair(b"\x06" * 32)
        assert not verify_signature(keypair.public_key, b"m", "!!!")

    def test_keypair_from_string_deterministic(self):
        assert keypair_from_string("alice") == keypair_from_string("alice")
        assert keypair_from_string("alice") != keypair_from_string("bob")

    @settings(max_examples=10, deadline=None)
    @given(st.text(min_size=1, max_size=20))
    def test_string_derivation_always_signs(self, material):
        keypair = keypair_from_string(material)
        assert keypair.verify(b"x", keypair.sign(b"x"))


class TestReservedAccounts:
    def test_escrow_is_reserved(self):
        reserved = ReservedAccounts()
        assert reserved.is_reserved(reserved.escrow.public_key)

    def test_unknown_key_not_reserved(self):
        reserved = ReservedAccounts()
        outsider = generate_keypair(b"\x09" * 32)
        assert not reserved.is_reserved(outsider.public_key)

    def test_admins_are_reserved(self):
        admin = generate_keypair(b"\x0a" * 32)
        reserved = ReservedAccounts(admins=[admin])
        assert reserved.is_reserved(admin.public_key)
        assert len(reserved.public_keys()) == 2

    def test_escrow_is_deterministic_per_deployment(self):
        # Same derivation string -> same escrow across node instances,
        # which the cluster relies on for replicated RETURN building.
        assert ReservedAccounts().escrow == ReservedAccounts().escrow
