"""The fast Ed25519 path: windowed multiplication and batch verification.

RFC 8032 interoperability of the single-verify path is pinned by
``test_ed25519.py``; this module covers what the batching PR added — the
windowed/multi-scalar arithmetic agreeing with first principles, the
random-linear-combination batch check, its per-signature fallback when a
batch contains a forgery, and the malformed-input edge cases the
validation pipeline feeds it.
"""

import random

import pytest

from repro.crypto import ed25519

RFC8032_VECTORS = [
    (
        "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
        "",
        "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e065224901555fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b",
    ),
    (
        "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
        "72",
        "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00",
    ),
    (
        "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
        "af82",
        "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a",
    ),
]


def make_triples(count, tag="batch"):
    triples = []
    for number in range(count):
        seed = bytes([number + 1]) * 32
        public = ed25519.public_key_from_seed(seed)
        message = f"{tag}-{number}".encode() * 4
        triples.append((public, message, ed25519.sign(seed, message)))
    return triples


class TestWindowedArithmetic:
    """The fast multipliers agree with definitional repeated addition."""

    def test_scalar_mult_matches_repeated_addition(self):
        point = ed25519._BASE
        accumulator = ed25519._IDENTITY
        for scalar in range(0, 40):
            assert ed25519._points_equal(
                ed25519._scalar_mult(point, scalar), accumulator
            ), scalar
            accumulator = ed25519._point_add(accumulator, point)

    def test_scalar_mult_matches_base_table(self):
        for scalar in (1, 15, 16, 2**63 + 11, ed25519.L - 1, ed25519.L + 7):
            assert ed25519._points_equal(
                ed25519._scalar_mult(ed25519._BASE, scalar),
                ed25519._base_mult(scalar),
            ), scalar

    def test_multi_scalar_matches_sum_of_singles(self):
        rng = random.Random(99)
        points = [
            ed25519._scalar_mult(ed25519._BASE, rng.getrandbits(64) | 1)
            for _ in range(4)
        ]
        scalars = [rng.getrandbits(130) for _ in range(4)]
        combined = ed25519._multi_scalar_mult(list(zip(scalars, points)))
        expected = ed25519._IDENTITY
        for scalar, point in zip(scalars, points):
            expected = ed25519._point_add(expected, ed25519._scalar_mult(point, scalar))
        assert ed25519._points_equal(combined, expected)

    def test_multi_scalar_empty_and_zero_scalars(self):
        assert ed25519._points_equal(ed25519._multi_scalar_mult([]), ed25519._IDENTITY)
        assert ed25519._points_equal(
            ed25519._multi_scalar_mult([(0, ed25519._BASE)]), ed25519._IDENTITY
        )


class TestBatchVerify:
    def test_rfc8032_vectors_as_a_batch(self):
        items = [
            (bytes.fromhex(public), bytes.fromhex(message), bytes.fromhex(signature))
            for _, public, message, signature in RFC8032_VECTORS
        ]
        assert ed25519.verify_batch(items) == [True, True, True]

    def test_empty_batch(self):
        assert ed25519.verify_batch([]) == []

    def test_single_item_batch(self):
        items = make_triples(1)
        assert ed25519.verify_batch(items) == [True]
        public, message, signature = items[0]
        assert ed25519.verify_batch([(public, b"other", signature)]) == [False]

    def test_all_valid_batch(self):
        assert all(ed25519.verify_batch(make_triples(8)))

    def test_one_bad_signature_does_not_poison_the_batch(self):
        """The fallback requirement: a forgery neither vetoes nor rides."""
        items = make_triples(8)
        good_sig = items[1][2]
        items[5] = (items[5][0], items[5][1], good_sig)  # wrong key/message
        verdicts = ed25519.verify_batch(items)
        assert verdicts[5] is False
        assert [v for i, v in enumerate(verdicts) if i != 5] == [True] * 7

    def test_multiple_bad_signatures(self):
        items = make_triples(6)
        items[0] = (items[0][0], b"swapped", items[0][2])
        tampered = bytearray(items[3][2])
        tampered[40] ^= 0x01
        items[3] = (items[3][0], items[3][1], bytes(tampered))
        assert ed25519.verify_batch(items) == [False, True, True, False, True, True]

    def test_malformed_items_rejected_without_disturbing_others(self):
        items = make_triples(6)
        items[0] = (b"short-key", items[0][1], items[0][2])
        items[2] = (items[2][0], items[2][1], b"short-sig")
        items[4] = (items[4][0], items[4][1], items[4][2][:32] + b"\xff" * 32)  # s >= L
        off_curve = bytes([0x13] * 31 + [0x80])
        items[5] = (off_curve, items[5][1], items[5][2])
        verdicts = ed25519.verify_batch(items)
        assert verdicts == [False, True, False, True, False, False]

    def test_duplicate_triples_in_one_batch(self):
        items = make_triples(3)
        assert ed25519.verify_batch(items + items) == [True] * 6

    def test_seeded_rng_is_deterministic_and_agrees_with_hash_coefficients(self):
        items = make_triples(5)
        items[2] = (items[2][0], b"not the signed message", items[2][2])
        expected = [True, True, False, True, True]
        assert ed25519.verify_batch(items) == expected
        assert (
            ed25519.verify_batch(items, rng=random.Random(1234))
            == ed25519.verify_batch(items, rng=random.Random(1234))
            == expected
        )

    def test_batch_agrees_with_single_verify_pointwise(self):
        items = make_triples(4)
        items[1] = (items[1][0], items[1][1], items[0][2])
        singles = [ed25519.verify(*item) for item in items]
        assert ed25519.verify_batch(items) == singles


class TestCofactoredVerification:
    """Single and batch verification share one *cofactored* acceptance set.

    Cofactorless RLC batching is unsound against crafted signatures: a
    defect in the order-8 torsion subgroup (``R + T`` for small-order
    ``T``) contributes ``z_i * T`` to the combined point, and paired
    defects can cancel when the coefficients' parities align.  Multiplying
    by the cofactor 8 annihilates all torsion — and because the *single*
    verify uses the cofactored form too (RFC 8032 sanctions either), a
    torsion-component signature gets the same verdict from every path:
    no batch-size dependence, no cache-eviction verdict flips, no
    replica divergence on block validity.
    """

    ORDER_2 = (0, ed25519.P - 1, 1, 0)  # the order-2 point (0, -1)

    def torsioned(self, triple):
        public, message, signature = triple
        r_point = ed25519._point_decompress(signature[:32])
        twisted = ed25519._point_add(r_point, self.ORDER_2)
        return (public, message, ed25519._point_compress(twisted) + signature[32:])

    def test_order_2_point_is_order_2(self):
        doubled = ed25519._point_double(self.ORDER_2)
        assert ed25519._points_equal(doubled, ed25519._IDENTITY)
        assert not ed25519._points_equal(self.ORDER_2, ed25519._IDENTITY)

    def test_torsioned_signature_has_one_verdict_everywhere(self):
        """The state-dependence regression: single verify, a 1-item batch
        (which falls back to single verify), and a multi-item batch must
        agree on a torsion-component signature."""
        base = make_triples(3)
        defective = self.torsioned(base[0])
        single = ed25519.verify(*defective)
        assert ed25519.verify_batch([defective]) == [single]
        multi = ed25519.verify_batch([defective, base[1], base[2]])
        assert multi == [single, True, True]

    def test_paired_torsion_defects_cannot_ride_coefficient_parity(self):
        """The pre-cofactoring attack: two identical order-2 defects whose
        coefficients sum to an even number cancel in the combined point.
        With cofactoring the verdict no longer depends on that parity at
        all — pinned here by checking the batch verdicts are identical
        across many different coefficient draws and match single verify."""
        base = make_triples(4)
        defective = self.torsioned(base[0])
        batch = [defective, defective, base[1], base[2]]
        verdicts = {tuple(ed25519.verify_batch(batch, rng=random.Random(seed))) for seed in range(12)}
        assert len(verdicts) == 1, "verdict must not depend on coefficient draw"
        expected = [ed25519.verify(*item) for item in batch]
        assert list(verdicts.pop()) == expected

    def test_honest_batches_and_ordinary_forgeries_are_unaffected(self):
        triples = make_triples(5)
        assert ed25519.verify_batch(triples) == [True] * 5
        tampered = bytearray(triples[2][2])
        tampered[5] ^= 0x40
        triples[2] = (triples[2][0], triples[2][1], bytes(tampered))
        assert ed25519.verify_batch(triples) == [True, True, False, True, True]

    def test_same_signer_scalars_merge_without_changing_verdicts(self):
        """Batches dominated by one key (the merged-window-table path)
        agree with per-item single verification."""
        seed = bytes([7] * 32)
        public = ed25519.public_key_from_seed(seed)
        triples = [
            (public, f"m-{i}".encode(), ed25519.sign(seed, f"m-{i}".encode()))
            for i in range(6)
        ]
        tampered = bytearray(triples[3][2])
        tampered[40] ^= 0x02
        triples[3] = (public, triples[3][1], bytes(tampered))
        assert ed25519.verify_batch(triples) == [True, True, True, False, True, True]


class TestMalformedKeyEdgeCases:
    """Fast-path decoding edge cases the pipeline must reject cleanly."""

    def test_y_coordinate_out_of_range(self):
        # y >= P with the sign bit clear: not a canonical encoding.
        bad = int.to_bytes(ed25519.P + 1, 32, "little")
        with pytest.raises(Exception):
            ed25519._point_decompress(bad)
        _, message, signature = make_triples(1)[0]
        assert not ed25519.verify(bad, message, signature)

    def test_sign_bit_with_zero_x_rejected(self):
        # y = 1 gives x = 0; the sign bit then admits no valid x.
        bad = int.to_bytes(1 | (1 << 255), 32, "little")
        _, message, signature = make_triples(1)[0]
        assert not ed25519.verify(bad, message, signature)

    def test_pubkey_cache_does_not_leak_wrong_points(self):
        """Decompression caching is keyed by the exact encoding."""
        triples = make_triples(2)
        (pub_a, msg_a, sig_a), (pub_b, msg_b, sig_b) = triples
        assert ed25519.verify(pub_a, msg_a, sig_a)
        assert ed25519.verify(pub_b, msg_b, sig_b)
        assert not ed25519.verify(pub_a, msg_b, sig_b)
        assert not ed25519.verify(pub_b, msg_a, sig_a)
