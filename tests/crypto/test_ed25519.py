"""Ed25519 against RFC 8032 vectors plus behavioural properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import InvalidKeyError, InvalidSignatureError
from repro.crypto import ed25519

# RFC 8032 section 7.1 test vectors (seed, public, message, signature).
RFC8032_VECTORS = [
    (
        "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
        "",
        "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e065224901555fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b",
    ),
    (
        "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
        "72",
        "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00",
    ),
    (
        "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
        "af82",
        "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a",
    ),
]


class TestRfc8032Vectors:
    @pytest.mark.parametrize("seed_hex,public_hex,message_hex,signature_hex", RFC8032_VECTORS)
    def test_public_key_derivation(self, seed_hex, public_hex, message_hex, signature_hex):
        assert ed25519.public_key_from_seed(bytes.fromhex(seed_hex)).hex() == public_hex

    @pytest.mark.parametrize("seed_hex,public_hex,message_hex,signature_hex", RFC8032_VECTORS)
    def test_signature(self, seed_hex, public_hex, message_hex, signature_hex):
        signature = ed25519.sign(bytes.fromhex(seed_hex), bytes.fromhex(message_hex))
        assert signature.hex() == signature_hex

    @pytest.mark.parametrize("seed_hex,public_hex,message_hex,signature_hex", RFC8032_VECTORS)
    def test_verify(self, seed_hex, public_hex, message_hex, signature_hex):
        assert ed25519.verify(
            bytes.fromhex(public_hex),
            bytes.fromhex(message_hex),
            bytes.fromhex(signature_hex),
        )


class TestBehaviour:
    SEED = bytes(range(32))

    def test_wrong_message_rejected(self):
        public = ed25519.public_key_from_seed(self.SEED)
        signature = ed25519.sign(self.SEED, b"original")
        assert not ed25519.verify(public, b"tampered", signature)

    def test_wrong_key_rejected(self):
        other_public = ed25519.public_key_from_seed(bytes(reversed(range(32))))
        signature = ed25519.sign(self.SEED, b"message")
        assert not ed25519.verify(other_public, b"message", signature)

    def test_corrupted_signature_rejected(self):
        public = ed25519.public_key_from_seed(self.SEED)
        signature = bytearray(ed25519.sign(self.SEED, b"message"))
        signature[10] ^= 0xFF
        assert not ed25519.verify(public, b"message", bytes(signature))

    def test_malformed_inputs_return_false(self):
        public = ed25519.public_key_from_seed(self.SEED)
        assert not ed25519.verify(b"short", b"m", b"x" * 64)
        assert not ed25519.verify(public, b"m", b"short")

    def test_scalar_out_of_range_rejected(self):
        public = ed25519.public_key_from_seed(self.SEED)
        signature = ed25519.sign(self.SEED, b"m")
        # Force s >= L.
        bad = signature[:32] + (b"\xff" * 32)
        assert not ed25519.verify(public, b"m", bad)

    def test_bad_seed_length_raises(self):
        with pytest.raises(InvalidKeyError):
            ed25519.sign(b"short", b"m")
        with pytest.raises(InvalidKeyError):
            ed25519.public_key_from_seed(b"x" * 33)

    def test_verify_strict_raises(self):
        public = ed25519.public_key_from_seed(self.SEED)
        with pytest.raises(InvalidSignatureError):
            ed25519.verify_strict(public, b"m", b"\x00" * 64)

    def test_signing_is_deterministic(self):
        assert ed25519.sign(self.SEED, b"m") == ed25519.sign(self.SEED, b"m")

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=32, max_size=32), st.binary(max_size=64))
    def test_sign_verify_roundtrip_property(self, seed, message):
        public = ed25519.public_key_from_seed(seed)
        signature = ed25519.sign(seed, message)
        assert ed25519.verify(public, message, signature)
