"""Crypto-conditions: single-owner and threshold (multisig) fulfillment."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SchemaValidationError, ThresholdNotMetError
from repro.crypto.conditions import (
    ED25519_TYPE,
    THRESHOLD_TYPE,
    Condition,
    Fulfillment,
    multisignature_string,
)
from repro.crypto.keys import generate_keypair

KEYS = [generate_keypair(bytes([i]) * 32) for i in range(1, 6)]


class TestCondition:
    def test_single_owner_type(self):
        condition = Condition.for_owner(KEYS[0].public_key)
        assert condition.type_name == ED25519_TYPE

    def test_group_type(self):
        condition = Condition.for_group([k.public_key for k in KEYS[:3]], threshold=2)
        assert condition.type_name == THRESHOLD_TYPE

    def test_empty_keys_rejected(self):
        with pytest.raises(SchemaValidationError):
            Condition(public_keys=(), threshold=1)

    def test_threshold_out_of_range_rejected(self):
        with pytest.raises(SchemaValidationError):
            Condition(public_keys=(KEYS[0].public_key,), threshold=2)
        with pytest.raises(SchemaValidationError):
            Condition(public_keys=(KEYS[0].public_key,), threshold=0)

    def test_dict_roundtrip(self):
        condition = Condition.for_group([k.public_key for k in KEYS[:3]], threshold=2)
        rebuilt = Condition.from_dict(condition.to_dict())
        assert set(rebuilt.public_keys) == set(condition.public_keys)
        assert rebuilt.threshold == 2

    def test_from_dict_malformed(self):
        with pytest.raises(SchemaValidationError):
            Condition.from_dict({"threshold": 1})


class TestFulfillment:
    MESSAGE = b"spend output 0"

    def test_single_signature_satisfies(self):
        condition = Condition.for_owner(KEYS[0].public_key)
        fulfillment = Fulfillment()
        fulfillment.add_signature(KEYS[0], self.MESSAGE)
        assert fulfillment.satisfies(condition, self.MESSAGE)

    def test_wrong_message_fails(self):
        condition = Condition.for_owner(KEYS[0].public_key)
        fulfillment = Fulfillment()
        fulfillment.add_signature(KEYS[0], self.MESSAGE)
        assert not fulfillment.satisfies(condition, b"other message")

    def test_threshold_met_exactly(self):
        condition = Condition.for_group([k.public_key for k in KEYS[:3]], threshold=2)
        fulfillment = Fulfillment()
        fulfillment.add_signature(KEYS[0], self.MESSAGE)
        fulfillment.add_signature(KEYS[2], self.MESSAGE)
        assert fulfillment.satisfies(condition, self.MESSAGE)

    def test_threshold_not_met(self):
        condition = Condition.for_group([k.public_key for k in KEYS[:3]], threshold=3)
        fulfillment = Fulfillment()
        fulfillment.add_signature(KEYS[0], self.MESSAGE)
        fulfillment.add_signature(KEYS[1], self.MESSAGE)
        assert not fulfillment.satisfies(condition, self.MESSAGE)
        with pytest.raises(ThresholdNotMetError):
            fulfillment.require(condition, self.MESSAGE)

    def test_non_condition_signatures_ignored(self):
        condition = Condition.for_group([k.public_key for k in KEYS[:2]], threshold=2)
        fulfillment = Fulfillment()
        fulfillment.add_signature(KEYS[0], self.MESSAGE)
        fulfillment.add_signature(KEYS[3], self.MESSAGE)  # outsider
        fulfillment.add_signature(KEYS[4], self.MESSAGE)  # outsider
        assert not fulfillment.satisfies(condition, self.MESSAGE)

    def test_invalid_signature_does_not_count(self):
        condition = Condition.for_group([k.public_key for k in KEYS[:2]], threshold=2)
        fulfillment = Fulfillment()
        fulfillment.add_signature(KEYS[0], self.MESSAGE)
        fulfillment.signatures[KEYS[1].public_key] = fulfillment.signatures[KEYS[0].public_key]
        assert not fulfillment.satisfies(condition, self.MESSAGE)

    def test_dict_roundtrip(self):
        fulfillment = Fulfillment()
        fulfillment.add_signature(KEYS[0], self.MESSAGE)
        rebuilt = Fulfillment.from_dict(fulfillment.to_dict())
        condition = Condition.for_owner(KEYS[0].public_key)
        assert rebuilt.satisfies(condition, self.MESSAGE)

    def test_from_dict_malformed(self):
        with pytest.raises(SchemaValidationError):
            Fulfillment.from_dict({"signatures": "nope"})

    def test_multisignature_string_format(self):
        fulfillment = Fulfillment()
        fulfillment.add_signature(KEYS[0], self.MESSAGE)
        text = multisignature_string(fulfillment)
        assert text.startswith("ms[") and text.endswith("]")

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=5))
    def test_threshold_property(self, threshold, signer_count):
        """satisfies() iff at least `threshold` distinct valid signers."""
        threshold = min(threshold, len(KEYS))
        condition = Condition.for_group([k.public_key for k in KEYS], threshold=threshold)
        fulfillment = Fulfillment()
        for keypair in KEYS[:signer_count]:
            fulfillment.add_signature(keypair, self.MESSAGE)
        assert fulfillment.satisfies(condition, self.MESSAGE) == (signer_count >= threshold)
