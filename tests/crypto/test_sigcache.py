"""The cluster-wide signature cache: correctness under eviction and reuse."""

import hashlib

import pytest

from repro.crypto import ed25519
from repro.crypto.keys import (
    generate_keypair,
    verify_signature,
    verify_signatures_batch,
)
from repro.crypto.sigcache import SignatureCache, set_shared_cache, shared_cache


@pytest.fixture
def fresh_cache():
    """Isolate each test from the process-global shared cache."""
    cache = SignatureCache(maxsize=8)
    previous = set_shared_cache(cache)
    yield cache
    set_shared_cache(previous)


def signed(material: str, message: bytes):
    keypair = generate_keypair(seed=material.encode().ljust(32, b"\0")[:32])
    return keypair.public_key, message, keypair.sign(message)


class TestCacheMechanics:
    def test_put_get_roundtrip(self):
        cache = SignatureCache(maxsize=4)
        key = cache.key("pk", b"message", "sig")
        assert cache.get(key) is None
        cache.put(key, True)
        assert cache.get(key) is True
        assert cache.stats()["hits"] == 1

    def test_negative_verdicts_are_cached_too(self):
        cache = SignatureCache(maxsize=4)
        key = cache.key("pk", b"message", "sig")
        cache.put(key, False)
        assert cache.get(key) is False  # a hit, not a miss

    def test_eviction_is_lru_and_bounded(self):
        cache = SignatureCache(maxsize=3)
        keys = [cache.key(f"pk{i}", b"m", f"s{i}") for i in range(4)]
        for key in keys[:3]:
            cache.put(key, True)
        assert cache.get(keys[0]) is True  # refresh 0: 1 is now oldest
        cache.put(keys[3], True)
        assert len(cache) == 3
        assert cache.evictions == 1
        assert cache.get(keys[1]) is None  # the LRU entry went
        assert cache.get(keys[0]) is True
        assert cache.get(keys[2]) is True

    def test_eviction_never_flips_a_verdict(self, fresh_cache):
        """An evicted signature is simply re-verified — same answer."""
        triples = [signed(f"signer-{i}", f"msg-{i}".encode()) for i in range(12)]
        first = [verify_signature(*triple) for triple in triples]
        assert all(first)
        # maxsize=8: the early entries have been evicted by now; verdicts
        # must still come back identical (recomputed, not fabricated).
        assert [verify_signature(*triple) for triple in triples] == first
        assert fresh_cache.evictions > 0

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            SignatureCache(maxsize=0)


class TestVerifySignatureIntegration:
    def test_second_verification_is_a_hit(self, fresh_cache):
        public, message, signature = signed("alice", b"payload")
        assert verify_signature(public, message, signature)
        hits_before = fresh_cache.hits
        assert verify_signature(public, message, signature)
        assert fresh_cache.hits == hits_before + 1

    def test_tampered_message_misses_and_fails(self, fresh_cache):
        public, message, signature = signed("alice", b"payload")
        assert verify_signature(public, message, signature)
        assert not verify_signature(public, b"tampered", signature)

    def test_swapped_signature_cannot_alias_a_cached_verdict(self, fresh_cache):
        public_a, message, signature_a = signed("alice", b"payload")
        public_b, _, signature_b = signed("bob", b"payload")
        assert verify_signature(public_a, message, signature_a)
        assert verify_signature(public_b, message, signature_b)
        assert not verify_signature(public_a, message, signature_b)
        assert not verify_signature(public_b, message, signature_a)

    def test_disabled_cache_still_verifies(self):
        previous = set_shared_cache(None)
        try:
            assert shared_cache() is None
            public, message, signature = signed("carol", b"payload")
            assert verify_signature(public, message, signature)
            assert not verify_signature(public, b"other", signature)
        finally:
            set_shared_cache(previous)


class TestForgedSignatureBinding:
    """ISSUE 6: the cache key must bind the *full* (public key, message
    digest, signature) triple, so an adversarial client's forged
    signature can never alias the honest verdict it was derived from."""

    def test_key_binds_every_component_of_the_triple(self):
        base = SignatureCache.key("pk", b"message", "sig")
        assert base == ("pk", hashlib.sha3_256(b"message").digest(), "sig")
        assert base != SignatureCache.key("pk2", b"message", "sig")
        assert base != SignatureCache.key("pk", b"message2", "sig")
        assert base != SignatureCache.key("pk", b"message", "sig2")

    def test_forged_signature_is_never_cached_true(self, fresh_cache):
        """The exact adversarial-client move from the chaos workload: take
        a signature the cluster has already verified (verdict True is in
        cache), flip one mid-signature base58 character, and re-verify.
        The forged triple must key to its own entry, fail verification,
        and be remembered as False — while the honest entry stays True."""
        public, message, signature = signed("alice", b"adversarial payload")
        assert verify_signature(public, message, signature)
        honest_key = fresh_cache.key(public, message, signature)
        assert fresh_cache.get(honest_key) is True

        mid = len(signature) // 2
        swapped = "3" if signature[mid] == "2" else "2"
        forged = signature[:mid] + swapped + signature[mid + 1 :]
        assert forged != signature

        assert not verify_signature(public, message, forged)
        forged_key = fresh_cache.key(public, message, forged)
        assert forged_key != honest_key
        assert fresh_cache.get(forged_key) is False
        assert fresh_cache.get(honest_key) is True
        # And the forged verdict stays False on re-sight (cache hit).
        assert not verify_signature(public, message, forged)


class TestBatchSeeding:
    def test_batch_seeds_the_cache_for_later_singles(self, fresh_cache):
        triples = [signed(f"signer-{i}", f"msg-{i}".encode()) for i in range(4)]
        assert verify_signatures_batch(triples) == [True] * 4
        hits_before = fresh_cache.hits
        assert all(verify_signature(*triple) for triple in triples)
        assert fresh_cache.hits == hits_before + 4

    def test_batch_with_bad_signature_matches_singles(self, fresh_cache):
        triples = [signed(f"signer-{i}", f"msg-{i}".encode()) for i in range(3)]
        bad = (triples[0][0], triples[0][1], triples[1][2])
        verdicts = verify_signatures_batch(triples + [bad])
        assert verdicts == [True, True, True, False]
        # The cached False must persist for the single-verify path.
        assert not verify_signature(*bad)

    def test_batch_with_undecodable_material(self, fresh_cache):
        public, message, signature = signed("alice", b"payload")
        verdicts = verify_signatures_batch(
            [
                (public, message, signature),
                ("not base58 0OIl", message, signature),
            ]
        )
        assert verdicts == [True, False]

    def test_batch_without_shared_cache_still_returns_verdicts(self):
        previous = set_shared_cache(None)
        try:
            triples = [signed(f"signer-{i}", b"m") for i in range(3)]
            assert verify_signatures_batch(triples) == [True] * 3
        finally:
            set_shared_cache(previous)

    def test_batch_uses_rng_stream_when_provided(self, fresh_cache):
        from repro.sim.rng import SeededRng

        triples = [signed(f"signer-{i}", b"m") for i in range(3)]
        stream = SeededRng(42).stream("crypto-batch")
        assert verify_signatures_batch(triples, rng=stream) == [True] * 3
