"""Hashing helpers and transaction-id derivation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashing import (
    hash_document,
    is_sha3_hexdigest,
    keccak_like_slot,
    sha3_256_hex,
)

json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(min_value=-1000, max_value=1000), st.text(max_size=10)
)
json_documents = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=5), children, max_size=4),
    ),
    max_leaves=12,
)


class TestHashDocument:
    def test_key_order_invariant(self):
        assert hash_document({"a": 1, "b": 2}) == hash_document({"b": 2, "a": 1})

    def test_value_change_changes_hash(self):
        assert hash_document({"a": 1}) != hash_document({"a": 2})

    def test_produces_sha3_hexdigest(self):
        assert is_sha3_hexdigest(hash_document({"x": 1}))

    def test_known_sha3(self):
        # SHA3-256 of empty string.
        assert sha3_256_hex(b"") == (
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
        )

    @given(json_documents)
    def test_deterministic_property(self, document):
        assert hash_document(document) == hash_document(document)


class TestIsSha3Hexdigest:
    def test_accepts_valid(self):
        assert is_sha3_hexdigest("a" * 64)

    def test_rejects_short_long_upper_and_nonstring(self):
        assert not is_sha3_hexdigest("a" * 63)
        assert not is_sha3_hexdigest("a" * 65)
        assert not is_sha3_hexdigest("A" * 64)
        assert not is_sha3_hexdigest(12345)


class TestKeccakLikeSlot:
    def test_256_bit_range(self):
        slot = keccak_like_slot(b"mapping-key")
        assert 0 <= slot < (1 << 256)

    def test_distinct_keys_scatter(self):
        slots = {keccak_like_slot(bytes([i])) for i in range(64)}
        assert len(slots) == 64
