"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.consensus.tendermint import tendermint_config
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import KeyPair, keypair_from_string


@pytest.fixture()
def alice() -> KeyPair:
    return keypair_from_string("alice")


@pytest.fixture()
def bob() -> KeyPair:
    return keypair_from_string("bob")


@pytest.fixture()
def sally() -> KeyPair:
    """The requester in the paper's running example."""
    return keypair_from_string("sally")


@pytest.fixture()
def cluster() -> SmartchainCluster:
    """A small, fast 4-node SmartchainDB cluster."""
    return SmartchainCluster(
        ClusterConfig(
            n_validators=4,
            seed=7,
            consensus=tendermint_config(max_block_txs=8, propose_timeout=0.5),
        )
    )


@pytest.fixture()
def auction_fixture(cluster, alice, bob, sally):
    """A settled-ready auction: two committed assets + a committed REQUEST.

    Returns (cluster, request_tx, [(owner, create_tx), ...], requester).
    """
    driver = cluster.driver
    create_alice = driver.prepare_create(
        alice, {"capabilities": ["3d-print", "iso-9001"], "name": "printer-a"}
    )
    create_bob = driver.prepare_create(
        bob, {"capabilities": ["3d-print", "iso-9001", "cnc"], "name": "printer-b"}
    )
    cluster.submit_payload(create_alice.to_dict())
    cluster.submit_payload(create_bob.to_dict())
    cluster.run()
    request = driver.prepare_request(sally, ["3d-print"])
    cluster.submit_payload(request.to_dict())
    cluster.run()
    return cluster, request, [(alice, create_alice), (bob, create_bob)], sally
