"""yamlite: the YAML subset the transaction schemas use."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import yamlite
from repro.common.errors import YamlParseError


class TestScalars:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("key: 5", {"key": 5}),
            ("key: -3", {"key": -3}),
            ("key: 2.5", {"key": 2.5}),
            ("key: true", {"key": True}),
            ("key: false", {"key": False}),
            ("key: null", {"key": None}),
            ("key: ~", {"key": None}),
            ("key: plain text", {"key": "plain text"}),
            ('key: "quoted: text"', {"key": "quoted: text"}),
            ("key: 'single # quoted'", {"key": "single # quoted"}),
            ('key: "escaped \\"inner\\""', {"key": 'escaped "inner"'}),
        ],
    )
    def test_scalar_parsing(self, source, expected):
        assert yamlite.loads(source) == expected

    def test_comment_stripping(self):
        assert yamlite.loads("key: 5  # trailing comment") == {"key": 5}

    def test_hash_inside_quotes_kept(self):
        assert yamlite.loads('key: "a # b"') == {"key": "a # b"}


class TestStructures:
    def test_nested_mapping(self):
        source = "outer:\n  inner:\n    leaf: 1"
        assert yamlite.loads(source) == {"outer": {"inner": {"leaf": 1}}}

    def test_block_sequence(self):
        source = "items:\n  - 1\n  - 2\n  - three"
        assert yamlite.loads(source) == {"items": [1, 2, "three"]}

    def test_sequence_of_mappings(self):
        source = "items:\n  - name: a\n    value: 1\n  - name: b\n    value: 2"
        assert yamlite.loads(source) == {
            "items": [{"name": "a", "value": 1}, {"name": "b", "value": 2}]
        }

    def test_flow_sequence(self):
        assert yamlite.loads("key: [1, two, true]") == {"key": [1, "two", True]}

    def test_nested_flow_sequence(self):
        assert yamlite.loads("key: [[1, 2], [3]]") == {"key": [[1, 2], [3]]}

    def test_empty_flow_containers(self):
        assert yamlite.loads("a: []\nb: {}") == {"a": [], "b": {}}

    def test_top_level_sequence(self):
        assert yamlite.loads("- 1\n- 2") == [1, 2]

    def test_empty_document(self):
        assert yamlite.loads("") is None
        assert yamlite.loads("# only a comment\n") is None

    def test_empty_value_is_null(self):
        assert yamlite.loads("key:") == {"key": None}


class TestErrors:
    def test_tabs_rejected(self):
        with pytest.raises(YamlParseError):
            yamlite.loads("key:\n\tvalue: 1")

    def test_duplicate_keys_rejected(self):
        with pytest.raises(YamlParseError):
            yamlite.loads("a: 1\na: 2")

    def test_anchor_rejected(self):
        with pytest.raises(YamlParseError):
            yamlite.loads("key: &anchor value")

    def test_unterminated_quote_rejected(self):
        with pytest.raises(YamlParseError):
            yamlite.loads('key: "unterminated')

    def test_error_carries_line_number(self):
        with pytest.raises(YamlParseError) as info:
            yamlite.loads("a: 1\na: 2")
        assert info.value.line == 2


yaml_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-999, max_value=999),
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
            min_size=1,
            max_size=10,
        ),
    ),
    lambda children: st.one_of(
        st.lists(children, min_size=1, max_size=3),
        st.dictionaries(
            st.text(
                alphabet=st.characters(whitelist_categories=("Ll",)), min_size=1, max_size=6
            ),
            children,
            min_size=1,
            max_size=3,
        ),
    ),
    max_leaves=10,
)


class TestRoundtrip:
    def test_schema_like_roundtrip(self):
        document = {
            "type": "object",
            "required": ["id", "operation"],
            "properties": {
                "id": {"pattern": "^[0-9a-f]{64}$"},
                "operation": {"enum": ["CREATE", "TRANSFER"]},
                "amount": {"type": "integer", "minimum": 1},
            },
        }
        assert yamlite.loads(yamlite.dumps(document)) == document

    @given(st.dictionaries(
        st.text(alphabet=st.characters(whitelist_categories=("Ll",)), min_size=1, max_size=6),
        yaml_values, min_size=1, max_size=4))
    def test_dump_load_roundtrip_property(self, document):
        assert yamlite.loads(yamlite.dumps(document)) == document
