"""Legacy setup shim: the build environment has no `wheel`, so editable
installs must go through `setup.py develop` (pip --no-use-pep517)."""
from setuptools import setup

setup()
