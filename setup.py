"""Legacy setup shim: the build environment has no `wheel`, so editable
installs must go through `setup.py develop` (pip --no-use-pep517).

The YAML schema definitions are data files inside ``repro.schema``;
declaring them as package data ensures ``importlib.resources`` finds them
from an installed wheel, not only from a source checkout on PYTHONPATH.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    packages=find_packages("src"),
    package_dir={"": "src"},
    package_data={"repro.schema": ["definitions/*.yaml"]},
    include_package_data=True,
)
