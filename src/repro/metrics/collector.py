"""Metric calculation (paper Section 5.1.4).

* **Latency** — "time elapsed from the moment the transaction was
  received to its final commitment", averaged per transaction type.
* **Throughput** — "the number of transactions that were successfully
  committed within a time frame, defined as the interval between the
  reception of the first and the commitment of the last transaction".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean, median
from typing import Iterable, Protocol


class LatencyRecord(Protocol):
    """Anything with the lifecycle fields both systems' records expose."""

    submitted_at: float
    committed_at: float | None


@dataclass
class OperationStats:
    """Latency summary for one transaction type."""

    operation: str
    count: int
    mean_latency: float
    median_latency: float
    p95_latency: float
    max_latency: float

    @classmethod
    def from_latencies(cls, operation: str, latencies: list[float]) -> "OperationStats":
        ordered = sorted(latencies)
        p95_index = min(len(ordered) - 1, int(0.95 * len(ordered)))
        return cls(
            operation=operation,
            count=len(ordered),
            mean_latency=mean(ordered),
            median_latency=median(ordered),
            p95_latency=ordered[p95_index],
            max_latency=ordered[-1],
        )


@dataclass
class RunMetrics:
    """Full metric set for one experiment run."""

    system: str
    per_operation: dict[str, OperationStats] = field(default_factory=dict)
    throughput_tps: float = 0.0
    committed: int = 0
    submitted: int = 0
    span_seconds: float = 0.0

    def latency(self, operation: str) -> float:
        """Mean latency for an operation (inf when none committed)."""
        stats = self.per_operation.get(operation)
        return stats.mean_latency if stats else float("inf")


def collect_metrics(
    system: str,
    records: Iterable[object],
    operation_of=lambda record: getattr(record, "operation", None)
    or getattr(record, "method", None)
    or getattr(record, "kind", "?"),
) -> RunMetrics:
    """Compute paper-definition metrics from lifecycle records.

    Args:
        system: label ("SCDB" / "ETH-SC").
        records: objects with ``submitted_at`` / ``committed_at``.
        operation_of: how to bucket records into transaction types.
    """
    latencies: dict[str, list[float]] = {}
    first_reception: float | None = None
    last_commit: float | None = None
    committed = 0
    submitted = 0
    for record in records:
        submitted += 1
        received = record.submitted_at
        if first_reception is None or received < first_reception:
            first_reception = received
        committed_at = record.committed_at
        if committed_at is None:
            continue
        committed += 1
        if last_commit is None or committed_at > last_commit:
            last_commit = committed_at
        operation = str(operation_of(record))
        latencies.setdefault(operation, []).append(committed_at - received)

    metrics = RunMetrics(system=system, submitted=submitted, committed=committed)
    for operation, values in latencies.items():
        metrics.per_operation[operation] = OperationStats.from_latencies(operation, values)
    if first_reception is not None and last_commit is not None and last_commit > first_reception:
        metrics.span_seconds = last_commit - first_reception
        metrics.throughput_tps = committed / metrics.span_seconds
    return metrics
