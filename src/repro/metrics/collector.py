"""Metric calculation (paper Section 5.1.4).

* **Latency** — "time elapsed from the moment the transaction was
  received to its final commitment", averaged per transaction type.
* **Throughput** — "the number of transactions that were successfully
  committed within a time frame, defined as the interval between the
  reception of the first and the commitment of the last transaction".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean, median
from typing import Iterable, Protocol

from repro.telemetry.registry import exact_percentile

#: Smallest throughput span: one run whose every commit shares a single
#: simulated timestamp still did its work in *some* interval — clamp to
#: one sim tick instead of reporting 0 tps (the degenerate-span bug).
MIN_SPAN_SECONDS = 1e-6


class LatencyRecord(Protocol):
    """Anything with the lifecycle fields both systems' records expose."""

    submitted_at: float
    committed_at: float | None


@dataclass
class OperationStats:
    """Latency summary for one transaction type."""

    operation: str
    count: int
    mean_latency: float
    median_latency: float
    p95_latency: float
    max_latency: float
    p50_latency: float = 0.0
    p99_latency: float = 0.0
    p999_latency: float = 0.0

    @classmethod
    def from_latencies(cls, operation: str, latencies: list[float]) -> "OperationStats":
        ordered = sorted(latencies)
        # Nearest-rank (ceil) percentiles: ``int(0.95 * n)`` under-reported
        # the tail for small samples (p95 of 5 values picked the 5th from
        # a 0-based index 4 only by accident of the min() clamp; p95 of 20
        # picked the 19th instead of the ceil-rank 19th — and p95 of 19
        # picked the 18th where nearest-rank wants the 19th).
        return cls(
            operation=operation,
            count=len(ordered),
            mean_latency=mean(ordered),
            median_latency=median(ordered),
            p95_latency=exact_percentile(ordered, 0.95),
            max_latency=ordered[-1],
            p50_latency=exact_percentile(ordered, 0.50),
            p99_latency=exact_percentile(ordered, 0.99),
            p999_latency=exact_percentile(ordered, 0.999),
        )


@dataclass
class RunMetrics:
    """Full metric set for one experiment run."""

    system: str
    per_operation: dict[str, OperationStats] = field(default_factory=dict)
    throughput_tps: float = 0.0
    committed: int = 0
    submitted: int = 0
    span_seconds: float = 0.0
    #: Deployment-wide commit-latency tails (p50/p95/p99/p999, in ms) —
    #: filled from the telemetry registry's merged histograms when the
    #: run came from an instrumented cluster, so every surface reports
    #: the same numbers the registry exports.
    percentiles_ms: dict[str, float] = field(default_factory=dict)

    def latency(self, operation: str) -> float:
        """Mean latency for an operation (inf when none committed)."""
        stats = self.per_operation.get(operation)
        return stats.mean_latency if stats else float("inf")


def collect_metrics(
    system: str,
    records: Iterable[object],
    operation_of=lambda record: getattr(record, "operation", None)
    or getattr(record, "method", None)
    or getattr(record, "kind", "?"),
) -> RunMetrics:
    """Compute paper-definition metrics from lifecycle records.

    Args:
        system: label ("SCDB" / "ETH-SC").
        records: objects with ``submitted_at`` / ``committed_at``.
        operation_of: how to bucket records into transaction types.
    """
    latencies: dict[str, list[float]] = {}
    first_reception: float | None = None
    last_commit: float | None = None
    committed = 0
    submitted = 0
    for record in records:
        submitted += 1
        received = record.submitted_at
        if first_reception is None or received < first_reception:
            first_reception = received
        committed_at = record.committed_at
        if committed_at is None:
            continue
        committed += 1
        if last_commit is None or committed_at > last_commit:
            last_commit = committed_at
        operation = str(operation_of(record))
        latencies.setdefault(operation, []).append(committed_at - received)

    metrics = RunMetrics(system=system, submitted=submitted, committed=committed)
    for operation, values in latencies.items():
        metrics.per_operation[operation] = OperationStats.from_latencies(operation, values)
    if first_reception is not None and last_commit is not None and committed:
        # Clamp the span: commits sharing one simulated timestamp used to
        # report throughput_tps=0.0 (span 0 failed the strict > check).
        metrics.span_seconds = max(last_commit - first_reception, MIN_SPAN_SECONDS)
        metrics.throughput_tps = committed / metrics.span_seconds
    return metrics
