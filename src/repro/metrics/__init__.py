"""Latency/throughput metrics (paper Section 5.1.4) and report rendering."""

from repro.metrics.collector import OperationStats, RunMetrics, collect_metrics
from repro.metrics.report import format_series, format_table, ratio

__all__ = [
    "OperationStats",
    "RunMetrics",
    "collect_metrics",
    "format_series",
    "format_table",
    "ratio",
]
