"""Plain-text tables and series for the benchmark harness.

Every figure/table benchmark prints the same rows/series the paper
reports, through these helpers, so ``pytest benchmarks/ --benchmark-only``
regenerates human-readable evaluation output.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Fixed-width table with right-aligned numeric columns."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[index]) for index, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line([str(header) for header in headers]))
    parts.append(line(["-" * width for width in widths]))
    for row in rendered_rows:
        parts.append(line(row))
    return "\n".join(parts)


def _render(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    return str(value)


def format_series(name: str, xs: Sequence[Any], ys: Sequence[Any], x_label: str, y_label: str) -> str:
    """One figure series as aligned (x, y) pairs."""
    rows = list(zip(xs, ys))
    return format_table([x_label, y_label], rows, title=name)


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio (inf-aware) for speedup reporting."""
    if denominator <= 0:
        return float("inf")
    return numerator / denominator
