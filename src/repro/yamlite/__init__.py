"""Minimal YAML subset parser/dumper for transaction schemas."""

from repro.yamlite.parser import dumps, loads, parse_scalar

__all__ = ["dumps", "loads", "parse_scalar"]
