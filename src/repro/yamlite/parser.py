"""yamlite — a minimal YAML subset parser and dumper.

SmartchainDB defines every transaction type with a YAML schema (paper
Fig. 5).  The execution environment has no PyYAML, so this module
implements the subset of YAML those schemas need, from scratch:

* block mappings (``key: value``) with arbitrary nesting by indentation
* block sequences (``- item``), including sequences of mappings
* flow sequences (``[a, b, c]``) of scalars
* scalars: strings (plain, single- and double-quoted), integers, floats,
  booleans (``true``/``false``), ``null``/``~``
* comments (``# ...``) and blank lines
* multi-document is *not* supported — one document per string

The grammar is strict: tabs are rejected, indentation must be consistent,
and unsupported constructs (anchors, tags, block scalars) raise
:class:`~repro.common.errors.YamlParseError` rather than silently
misparsing.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.common.errors import YamlParseError

_KEY_RE = re.compile(r"^(?P<key>[^:#]+?)\s*:(?:\s+(?P<value>.*))?$")
_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+[eE][+-]?\d+|\d+\.\d*[eE][+-]?\d+)$")


@dataclass
class _Line:
    """A significant (non-blank, non-comment) source line."""

    number: int
    indent: int
    content: str


def _strip_comment(text: str) -> str:
    """Remove a trailing comment, respecting quoted strings."""
    in_single = False
    in_double = False
    for index, char in enumerate(text):
        if char == "'" and not in_double:
            in_single = not in_single
        elif char == '"' and not in_single:
            in_double = not in_double
        elif char == "#" and not in_single and not in_double:
            if index == 0 or text[index - 1] in " \t":
                return text[:index].rstrip()
    return text.rstrip()


def _significant_lines(source: str) -> list[_Line]:
    """Split source into indentation-annotated significant lines.

    Raises:
        YamlParseError: if a line is indented with tabs.
    """
    lines: list[_Line] = []
    for number, raw in enumerate(source.splitlines(), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise YamlParseError("tabs are not allowed in indentation", number)
        stripped = _strip_comment(raw)
        if not stripped.strip():
            continue
        indent = len(stripped) - len(stripped.lstrip(" "))
        lines.append(_Line(number, indent, stripped.strip()))
    return lines


def parse_scalar(token: str, line: int | None = None) -> Any:
    """Parse a scalar token into its Python value.

    Quoted strings keep their exact contents (double-quoted strings honour
    ``\\n``, ``\\t``, ``\\\"`` and ``\\\\`` escapes); plain tokens are
    resolved to bool/null/int/float where they match, else string.
    """
    token = token.strip()
    if token.startswith('"'):
        if not token.endswith('"') or len(token) < 2:
            raise YamlParseError(f"unterminated double-quoted string: {token}", line)
        body = token[1:-1]
        return (
            body.replace("\\\\", "\x00")
            .replace('\\"', '"')
            .replace("\\n", "\n")
            .replace("\\t", "\t")
            .replace("\x00", "\\")
        )
    if token.startswith("'"):
        if not token.endswith("'") or len(token) < 2:
            raise YamlParseError(f"unterminated single-quoted string: {token}", line)
        return token[1:-1].replace("''", "'")
    lowered = token.lower()
    if lowered in ("null", "~"):
        return None
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if _INT_RE.match(token):
        return int(token)
    if _FLOAT_RE.match(token):
        return float(token)
    if token.startswith("&") or token.startswith("*") or token.startswith("!"):
        raise YamlParseError(f"anchors/aliases/tags are not supported: {token}", line)
    if token in ("|", ">") or token.startswith(("| ", "> ")):
        raise YamlParseError("block scalars are not supported", line)
    return token


def _parse_flow_sequence(token: str, line: int) -> list[Any]:
    """Parse a ``[a, b, c]`` flow sequence of scalars."""
    body = token[1:-1].strip()
    if not body:
        return []
    items: list[str] = []
    depth = 0
    in_single = False
    in_double = False
    current = ""
    for char in body:
        if char == "'" and not in_double:
            in_single = not in_single
        elif char == '"' and not in_single:
            in_double = not in_double
        elif char == "[" and not (in_single or in_double):
            depth += 1
        elif char == "]" and not (in_single or in_double):
            depth -= 1
        if char == "," and depth == 0 and not in_single and not in_double:
            items.append(current)
            current = ""
        else:
            current += char
    items.append(current)
    result = []
    for item in items:
        item = item.strip()
        if item.startswith("[") and item.endswith("]"):
            result.append(_parse_flow_sequence(item, line))
        else:
            result.append(parse_scalar(item, line))
    return result


def _parse_value_token(token: str, line: int) -> Any:
    """Parse an inline value (scalar, flow sequence, or empty flow map)."""
    token = token.strip()
    if token.startswith("[") and token.endswith("]"):
        return _parse_flow_sequence(token, line)
    if token == "{}":
        return {}
    if token.startswith("{"):
        raise YamlParseError("flow mappings are not supported (except {})", line)
    return parse_scalar(token, line)


class _Parser:
    """Recursive-descent block parser over significant lines."""

    def __init__(self, lines: list[_Line]):
        self._lines = lines
        self._position = 0

    def _peek(self) -> _Line | None:
        if self._position < len(self._lines):
            return self._lines[self._position]
        return None

    def parse_block(self, indent: int) -> Any:
        """Parse the block starting at the current position at ``indent``."""
        line = self._peek()
        if line is None:
            return None
        if line.content.startswith("- ") or line.content == "-":
            return self._parse_sequence(indent)
        return self._parse_mapping(indent)

    def _parse_sequence(self, indent: int) -> list[Any]:
        items: list[Any] = []
        while True:
            line = self._peek()
            if line is None or line.indent < indent:
                return items
            if line.indent > indent:
                raise YamlParseError("unexpected indentation in sequence", line.number)
            if not (line.content.startswith("- ") or line.content == "-"):
                return items
            self._position += 1
            rest = line.content[1:].strip()
            if not rest:
                # Nested block under the dash.
                next_line = self._peek()
                if next_line is not None and next_line.indent > indent:
                    items.append(self.parse_block(next_line.indent))
                else:
                    items.append(None)
            elif _KEY_RE.match(rest) and not rest.startswith(("[", '"', "'")):
                # Inline mapping entry: "- key: value" starts a mapping whose
                # keys continue at indent + 2.
                items.append(self._parse_inline_sequence_mapping(rest, line, indent))
            else:
                items.append(_parse_value_token(rest, line.number))

    def _parse_inline_sequence_mapping(self, first: str, line: _Line, indent: int) -> dict[str, Any]:
        match = _KEY_RE.match(first)
        if match is None:  # pragma: no cover - guarded by caller
            raise YamlParseError(f"malformed mapping entry: {first}", line.number)
        mapping: dict[str, Any] = {}
        key = parse_scalar(match.group("key"), line.number)
        value_token = match.group("value")
        child_indent = indent + 2
        if value_token is None:
            next_line = self._peek()
            if next_line is not None and next_line.indent > child_indent:
                mapping[key] = self.parse_block(next_line.indent)
            else:
                mapping[key] = None
        else:
            mapping[key] = _parse_value_token(value_token, line.number)
        # Subsequent keys of this mapping sit at indent + 2.
        rest = self._parse_mapping(child_indent) if self._continues_at(child_indent) else {}
        for extra_key, extra_value in rest.items():
            if extra_key in mapping:
                raise YamlParseError(f"duplicate key: {extra_key}", line.number)
            mapping[extra_key] = extra_value
        return mapping

    def _continues_at(self, indent: int) -> bool:
        line = self._peek()
        return line is not None and line.indent == indent and not line.content.startswith("- ")

    def _parse_mapping(self, indent: int) -> dict[str, Any]:
        mapping: dict[str, Any] = {}
        while True:
            line = self._peek()
            if line is None or line.indent < indent:
                return mapping
            if line.indent > indent:
                raise YamlParseError("unexpected indentation", line.number)
            if line.content.startswith("- "):
                return mapping
            match = _KEY_RE.match(line.content)
            if match is None:
                raise YamlParseError(f"expected 'key: value', got {line.content!r}", line.number)
            key = parse_scalar(match.group("key"), line.number)
            if key in mapping:
                raise YamlParseError(f"duplicate key: {key}", line.number)
            self._position += 1
            value_token = match.group("value")
            if value_token is None:
                next_line = self._peek()
                if next_line is not None and next_line.indent > indent:
                    mapping[key] = self.parse_block(next_line.indent)
                else:
                    mapping[key] = None
            else:
                mapping[key] = _parse_value_token(value_token, line.number)


def loads(source: str) -> Any:
    """Parse a yamlite document into Python values.

    Returns ``None`` for an empty document.

    Raises:
        YamlParseError: on any construct outside the supported subset.
    """
    lines = _significant_lines(source)
    if not lines:
        return None
    parser = _Parser(lines)
    result = parser.parse_block(lines[0].indent)
    leftover = parser._peek()
    if leftover is not None:
        raise YamlParseError(f"trailing content: {leftover.content!r}", leftover.number)
    return result


def _needs_quotes(text: str) -> bool:
    if text == "" or text != text.strip():
        return True
    if text.lower() in ("null", "~", "true", "false"):
        return True
    if _INT_RE.match(text) or _FLOAT_RE.match(text):
        return True
    return any(char in text for char in ":#[]{}'\"\n-") or text[0] in "&*!|>"


def _dump_scalar(value: Any) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    if _needs_quotes(text):
        return '"' + text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n") + '"'
    return text


def dumps(value: Any, indent: int = 0) -> str:
    """Serialise Python values back to yamlite text (round-trips loads)."""
    pad = " " * indent
    if isinstance(value, dict):
        if not value:
            return pad + "{}"
        chunks = []
        for key, item in value.items():
            key_text = _dump_scalar(key)
            if isinstance(item, (dict, list)) and item:
                chunks.append(f"{pad}{key_text}:")
                chunks.append(dumps(item, indent + 2))
            else:
                chunks.append(f"{pad}{key_text}: {_dump_inline(item)}")
        return "\n".join(chunks)
    if isinstance(value, list):
        if not value:
            return pad + "[]"
        chunks = []
        for item in value:
            needs_block = (isinstance(item, dict) and item) or (
                isinstance(item, list)
                and any(isinstance(element, (dict, list)) and element for element in item)
            )
            if needs_block:
                # Dash on its own line with the structure nested beneath it —
                # safe for keys that need quoting and for nested containers.
                chunks.append(f"{pad}-")
                chunks.append(dumps(item, indent + 2))
            else:
                chunks.append(f"{pad}- {_dump_inline(item)}")
        return "\n".join(chunks)
    return pad + _dump_scalar(value)


def _dump_inline(value: Any) -> str:
    if isinstance(value, list):
        return "[" + ", ".join(_dump_inline(item) for item in value) + "]"
    if isinstance(value, dict) and not value:
        return "{}"
    return _dump_scalar(value)
