"""Crypto-conditions: output conditions and input fulfillments.

BigchainDB encodes *who may spend an output* as a crypto-condition and
*proof of authority to spend* as a fulfillment.  Two condition types cover
the paper's needs:

* ``ed25519-sha-256`` — a single key must sign.
* ``threshold-sha-256`` — at least ``threshold`` of ``n`` keys must sign
  (the paper's multi-signature strings ``ms_{i,j,k}``).

Conditions serialise to plain dictionaries so they can live inside the
canonical transaction JSON; fulfillments carry base58 signatures keyed by
public key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import SchemaValidationError, ThresholdNotMetError
from repro.crypto.keys import KeyPair, verify_signature

ED25519_TYPE = "ed25519-sha-256"
THRESHOLD_TYPE = "threshold-sha-256"


@dataclass(frozen=True)
class Condition:
    """Spending condition attached to a transaction output.

    Attributes:
        public_keys: keys allowed to sign; order is canonical (sorted).
        threshold: how many distinct keys must sign.  ``1`` with a single
            key is the plain ed25519 condition; anything else is a
            threshold (multisig) condition.
    """

    public_keys: tuple[str, ...]
    threshold: int = 1

    def __post_init__(self) -> None:
        if not self.public_keys:
            raise SchemaValidationError("condition requires at least one public key", "condition.public_keys")
        if not 1 <= self.threshold <= len(self.public_keys):
            raise SchemaValidationError(
                f"threshold {self.threshold} out of range for {len(self.public_keys)} keys",
                "condition.threshold",
            )

    @property
    def type_name(self) -> str:
        """Condition type URI fragment."""
        if len(self.public_keys) == 1 and self.threshold == 1:
            return ED25519_TYPE
        return THRESHOLD_TYPE

    def to_dict(self) -> dict[str, Any]:
        """Schema-conformant dictionary representation."""
        return {
            "type": self.type_name,
            "public_keys": sorted(self.public_keys),
            "threshold": self.threshold,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Condition":
        """Parse a condition dictionary.

        Raises:
            SchemaValidationError: on missing/malformed fields.
        """
        try:
            keys = tuple(data["public_keys"])
            threshold = int(data.get("threshold", 1))
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaValidationError(f"malformed condition: {exc}", "condition") from exc
        return cls(public_keys=keys, threshold=threshold)

    @classmethod
    def for_owner(cls, public_key: str) -> "Condition":
        """Single-owner ed25519 condition."""
        return cls(public_keys=(public_key,), threshold=1)

    @classmethod
    def for_group(cls, public_keys: list[str], threshold: int) -> "Condition":
        """Threshold condition over a group of keys (multisig)."""
        return cls(public_keys=tuple(public_keys), threshold=threshold)


@dataclass
class Fulfillment:
    """Proof that an input's owner(s) authorised the spend.

    ``signatures`` maps public key -> base58 signature over the signing
    payload (the transaction body without fulfillments, canonically
    serialised — see :mod:`repro.core.transaction`).
    """

    signatures: dict[str, str] = field(default_factory=dict)

    def add_signature(self, keypair: KeyPair, message: bytes) -> None:
        """Sign ``message`` with ``keypair`` and record the signature."""
        self.signatures[keypair.public_key] = keypair.sign(message)

    def to_dict(self) -> dict[str, Any]:
        """Dictionary form for embedding in transaction JSON."""
        return {"signatures": dict(sorted(self.signatures.items()))}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Fulfillment":
        """Parse a fulfillment dictionary.

        Raises:
            SchemaValidationError: if the structure is malformed.
        """
        signatures = data.get("signatures")
        if not isinstance(signatures, dict):
            raise SchemaValidationError("fulfillment.signatures must be a mapping", "fulfillment")
        return cls(signatures=dict(signatures))

    def signature_items(self, condition: Condition, message: bytes) -> list[tuple[str, bytes, str]]:
        """The ``(public_key, message, signature)`` triples :meth:`satisfies`
        would verify — the unit the batched validation pipeline collects
        across a whole block and settles in one batch check."""
        return [
            (public_key, message, self.signatures[public_key])
            for public_key in condition.public_keys
            if public_key in self.signatures
        ]

    def satisfies(self, condition: Condition, message: bytes) -> bool:
        """Check whether this fulfillment satisfies ``condition``.

        Counts the distinct condition keys whose recorded signature
        verifies over ``message`` and compares against the threshold.
        Extraneous signatures by non-condition keys are ignored.
        """
        valid = 0
        for public_key in condition.public_keys:
            signature = self.signatures.get(public_key)
            if signature is None:
                continue
            if verify_signature(public_key, message, signature):
                valid += 1
        return valid >= condition.threshold

    def require(self, condition: Condition, message: bytes) -> None:
        """Raise unless the fulfillment satisfies ``condition``.

        Raises:
            ThresholdNotMetError: with the shortfall spelled out.
        """
        if not self.satisfies(condition, message):
            raise ThresholdNotMetError(
                f"fulfillment does not satisfy {condition.type_name} condition "
                f"(threshold {condition.threshold} of {len(condition.public_keys)})"
            )


def multisignature_string(fulfillment: Fulfillment) -> str:
    """Render a fulfillment as the paper's ``ms_{i,j,k}`` display string.

    Purely cosmetic — used by examples and debug output to echo the
    formal model's notation.
    """
    keys = sorted(fulfillment.signatures)
    return "ms[" + ",".join(key[:8] for key in keys) + "]"
