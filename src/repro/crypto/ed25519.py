"""Pure-Python Ed25519 (RFC 8032).

BigchainDB signs transaction payloads with Ed25519 keys.  This module is a
self-contained implementation of the signature scheme over the twisted
Edwards curve edwards25519, using extended homogeneous coordinates for
group arithmetic.  It is deliberately free of third-party dependencies;
``hashlib.sha512`` is the only primitive it borrows.

The implementation favours clarity over constant-time guarantees — it is a
research reproduction, not a hardened production signer — but it is fully
interoperable: signatures verify against the RFC 8032 test vectors (see
``tests/crypto/test_ed25519.py``).
"""

from __future__ import annotations

import hashlib
from typing import NamedTuple

from repro.common.errors import InvalidKeyError, InvalidSignatureError

# Curve constants for edwards25519 (RFC 8032, section 5.1).
P = 2**255 - 19
L = 2**252 + 27742317777372353535851937790883648493
D = (-121665 * pow(121666, P - 2, P)) % P

#: Sign bit mask for point encoding.
_SIGN_BIT = 1 << 255


class _Point(NamedTuple):
    """A curve point in extended homogeneous coordinates (X, Y, Z, T)."""

    x: int
    y: int
    z: int
    t: int


def _point_add(a: _Point, b: _Point) -> _Point:
    """Add two points (RFC 8032 'add' on extended coordinates)."""
    aa = (a.y - a.x) * (b.y - b.x) % P
    bb = (a.y + a.x) * (b.y + b.x) % P
    cc = 2 * a.t * b.t * D % P
    dd = 2 * a.z * b.z % P
    e = bb - aa
    f = dd - cc
    g = dd + cc
    h = bb + aa
    return _Point(e * f % P, g * h % P, f * g % P, e * h % P)


def _point_double(a: _Point) -> _Point:
    """Double a point using the dedicated doubling formula."""
    aa = a.x * a.x % P
    bb = a.y * a.y % P
    cc = 2 * a.z * a.z % P
    h = (aa + bb) % P
    e = (h - (a.x + a.y) * (a.x + a.y)) % P
    g = (aa - bb) % P
    f = (cc + g) % P
    return _Point(e * f % P, g * h % P, f * g % P, e * h % P)


_IDENTITY = _Point(0, 1, 1, 0)


def _scalar_mult(point: _Point, scalar: int) -> _Point:
    """Double-and-add scalar multiplication."""
    result = _IDENTITY
    addend = point
    while scalar > 0:
        if scalar & 1:
            result = _point_add(result, addend)
        addend = _point_double(addend)
        scalar >>= 1
    return result


def _recover_x(y: int, sign: int) -> int:
    """Recover the x coordinate of a point from y and the sign bit.

    Raises:
        InvalidKeyError: if no square root exists (point not on curve).
    """
    if y >= P:
        raise InvalidKeyError("y coordinate out of range")
    x2 = (y * y - 1) * pow(D * y * y + 1, P - 2, P) % P
    if x2 == 0:
        if sign:
            raise InvalidKeyError("invalid sign bit for x = 0")
        return 0
    # Square root via the p = 5 (mod 8) shortcut.
    x = pow(x2, (P + 3) // 8, P)
    if (x * x - x2) % P != 0:
        x = x * pow(2, (P - 1) // 4, P) % P
    if (x * x - x2) % P != 0:
        raise InvalidKeyError("point is not on the curve")
    if (x & 1) != sign:
        x = P - x
    return x


# Base point B (RFC 8032 section 5.1).
_BASE_Y = 4 * pow(5, P - 2, P) % P
_BASE_X = _recover_x(_BASE_Y, 0)
_BASE = _Point(_BASE_X, _BASE_Y, 1, _BASE_X * _BASE_Y % P)

# Precomputed table of B * 2^(4i) multiples for 4-bit windowed multiplication
# of the base point; signing performance matters because the benchmark
# harness signs hundreds of thousands of transactions.
_WINDOW_BITS = 4
_TABLE: list[list[_Point]] = []
_current = _BASE
for _ in range(64):  # 256 bits / 4 bits per window
    row = [_IDENTITY]
    for _i in range(1, 16):
        row.append(_point_add(row[-1], _current))
    _TABLE.append(row)
    for _i in range(_WINDOW_BITS):
        _current = _point_double(_current)


def _base_mult(scalar: int) -> _Point:
    """Multiply the base point by ``scalar`` using the precomputed table."""
    result = _IDENTITY
    window = 0
    while scalar > 0:
        nibble = scalar & 0xF
        if nibble:
            result = _point_add(result, _TABLE[window][nibble])
        scalar >>= 4
        window += 1
    return result


def _point_compress(point: _Point) -> bytes:
    """Encode a point to its 32-byte compressed form."""
    z_inv = pow(point.z, P - 2, P)
    x = point.x * z_inv % P
    y = point.y * z_inv % P
    return int.to_bytes(y | ((x & 1) << 255), 32, "little")


def _point_decompress(data: bytes) -> _Point:
    """Decode a 32-byte compressed point.

    Raises:
        InvalidKeyError: on malformed encodings or off-curve points.
    """
    if len(data) != 32:
        raise InvalidKeyError("compressed point must be 32 bytes")
    y = int.from_bytes(data, "little")
    sign = y >> 255
    y &= (1 << 255) - 1
    x = _recover_x(y, sign)
    return _Point(x, y, 1, x * y % P)


def _points_equal(a: _Point, b: _Point) -> bool:
    """Projective equality: X1*Z2 == X2*Z1 and Y1*Z2 == Y2*Z1."""
    if (a.x * b.z - b.x * a.z) % P != 0:
        return False
    return (a.y * b.z - b.y * a.z) % P == 0


def _sha512_int(*parts: bytes) -> int:
    digest = hashlib.sha512(b"".join(parts)).digest()
    return int.from_bytes(digest, "little")


def _clamp(seed_hash: bytes) -> int:
    scalar = int.from_bytes(seed_hash[:32], "little")
    scalar &= (1 << 254) - 8
    scalar |= 1 << 254
    return scalar


def public_key_from_seed(seed: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte private seed.

    Raises:
        InvalidKeyError: if the seed is not exactly 32 bytes.
    """
    if len(seed) != 32:
        raise InvalidKeyError("Ed25519 seed must be 32 bytes")
    scalar = _clamp(hashlib.sha512(seed).digest())
    return _point_compress(_base_mult(scalar))


def sign(seed: bytes, message: bytes) -> bytes:
    """Produce a 64-byte RFC 8032 signature of ``message``.

    Args:
        seed: the signer's 32-byte private seed.
        message: arbitrary bytes to sign.

    Raises:
        InvalidKeyError: if the seed is malformed.
    """
    if len(seed) != 32:
        raise InvalidKeyError("Ed25519 seed must be 32 bytes")
    seed_hash = hashlib.sha512(seed).digest()
    scalar = _clamp(seed_hash)
    prefix = seed_hash[32:]
    public = _point_compress(_base_mult(scalar))

    r = _sha512_int(prefix, message) % L
    r_point = _point_compress(_base_mult(r))
    challenge = _sha512_int(r_point, public, message) % L
    s = (r + challenge * scalar) % L
    return r_point + int.to_bytes(s, 32, "little")


def verify(public_key: bytes, message: bytes, signature: bytes) -> bool:
    """Check a signature; returns ``True`` iff it is valid.

    Malformed keys/signatures return ``False`` rather than raising, so the
    validation pipeline can treat all failures uniformly.
    """
    if len(public_key) != 32 or len(signature) != 64:
        return False
    try:
        a_point = _point_decompress(public_key)
        r_point = _point_decompress(signature[:32])
    except InvalidKeyError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= L:
        return False
    challenge = _sha512_int(signature[:32], public_key, message) % L
    # Check s*B == R + h*A.
    left = _base_mult(s)
    right = _point_add(r_point, _scalar_mult(a_point, challenge))
    return _points_equal(left, right)


def verify_strict(public_key: bytes, message: bytes, signature: bytes) -> None:
    """Like :func:`verify` but raises on failure.

    Raises:
        InvalidSignatureError: if verification fails for any reason.
    """
    if not verify(public_key, message, signature):
        raise InvalidSignatureError("Ed25519 signature verification failed")
