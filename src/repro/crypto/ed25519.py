"""Pure-Python Ed25519 (RFC 8032) with a batched fast path.

BigchainDB signs transaction payloads with Ed25519 keys.  This module is a
self-contained implementation of the signature scheme over the twisted
Edwards curve edwards25519, using extended homogeneous coordinates for
group arithmetic.  It is deliberately free of third-party dependencies;
``hashlib.sha512`` is the only primitive it borrows.

The hot path is tuned for the validation pipeline, which verifies every
signature of every block on every replica:

* all group arithmetic runs on extended (projective) coordinates, so a
  scalar multiplication performs **zero** field inversions (one inversion
  happens only at point compression);
* base-point multiples come from a precomputed 4-bit window table
  (signing and the ``s*B`` half of verification);
* variable-point multiplication (``h*A`` in verification) uses fixed-window
  recoding instead of double-and-add, halving the number of point adds;
* :func:`verify_batch` checks many signatures at once through a single
  random-linear-combination equation evaluated with a Straus interleaved
  multi-scalar multiplication — the doubling chain is shared across the
  whole batch, which is where the batch speedup comes from.

The implementation favours clarity over constant-time guarantees — it is a
research reproduction, not a hardened production signer — but it is fully
interoperable: signatures verify against the RFC 8032 test vectors (see
``tests/crypto/test_ed25519.py``).
"""

from __future__ import annotations

import hashlib
from typing import Any, NamedTuple, Sequence

from repro.common.errors import InvalidKeyError, InvalidSignatureError

# Curve constants for edwards25519 (RFC 8032, section 5.1).
P = 2**255 - 19
L = 2**252 + 27742317777372353535851937790883648493
D = (-121665 * pow(121666, P - 2, P)) % P

#: Sign bit mask for point encoding.
_SIGN_BIT = 1 << 255


class _Point(NamedTuple):
    """A curve point in extended homogeneous coordinates (X, Y, Z, T).

    The hot-path arithmetic below trades on ``_Point`` being a tuple: the
    group operations unpack their operands positionally and return plain
    ``(x, y, z, t)`` tuples, skipping the NamedTuple constructor — at
    hundreds of point operations per signature the object overhead is
    measurable next to the ~255-bit field multiplies.
    """

    x: int
    y: int
    z: int
    t: int


#: 2*D, folded into the addition formula's ``cc`` term.
_D2 = 2 * D % P


def _point_add(a, b):
    """Add two points (RFC 8032 'add' on extended coordinates)."""
    ax, ay, az, at = a
    bx, by, bz, bt = b
    aa = (ay - ax) * (by - bx) % P
    bb = (ay + ax) * (by + bx) % P
    cc = at * bt % P * _D2 % P
    dd = 2 * az * bz % P
    e = bb - aa
    f = dd - cc
    g = dd + cc
    h = bb + aa
    return (e * f % P, g * h % P, f * g % P, e * h % P)


def _point_double(a):
    """Double a point using the dedicated doubling formula."""
    ax, ay, az, _ = a
    aa = ax * ax % P
    bb = ay * ay % P
    cc = 2 * az * az % P
    h = (aa + bb) % P
    e = (h - (ax + ay) * (ax + ay)) % P
    g = (aa - bb) % P
    f = (cc + g) % P
    return (e * f % P, g * h % P, f * g % P, e * h % P)


_IDENTITY = _Point(0, 1, 1, 0)


def _window_table(point: _Point) -> list[_Point]:
    """Multiples ``0..15`` of ``point`` for 4-bit window recoding."""
    table = [_IDENTITY, point]
    for _ in range(14):
        table.append(_point_add(table[-1], point))
    return table


def _scalar_mult(point, scalar: int):
    """Fixed-window (4-bit) scalar multiplication of a variable point.

    Processes the scalar one nibble at a time from the most significant
    end: four doublings then at most one table add per window — about half
    the point additions of double-and-add for the ~253-bit scalars the
    verification equation produces, with no field inversions anywhere.
    The doubling chain is inlined on local field elements: at ~250
    doublings per multiplication, tuple construction and call dispatch
    would otherwise rival the big-int arithmetic itself.
    """
    if scalar <= 0:
        return _IDENTITY
    table = _window_table(point)
    nibbles: list[int] = []
    while scalar > 0:
        nibbles.append(scalar & 0xF)
        scalar >>= 4
    x, y, z, t = table[nibbles[-1]]
    p = P
    for nibble in reversed(nibbles[:-1]):
        for _ in range(4):
            aa = x * x % p
            bb = y * y % p
            cc = 2 * z * z % p
            h = aa + bb
            e = h - (x + y) * (x + y)
            g = aa - bb
            f = cc + g
            x, y, z, t = e * f % p, g * h % p, f * g % p, e * h % p
        if nibble:
            bx, by, bz, bt = table[nibble]
            aa = (y - x) * (by - bx) % p
            bb = (y + x) * (by + bx) % p
            cc = t * bt % p * _D2 % p
            dd = 2 * z * bz % p
            e = bb - aa
            f = dd - cc
            g = dd + cc
            h = bb + aa
            x, y, z, t = e * f % p, g * h % p, f * g % p, e * h % p
    return (x, y, z, t)


def _multi_scalar_mult(pairs: Sequence[tuple[int, Any]]):
    """Straus interleaved multi-scalar multiplication: ``sum(k_i * P_i)``.

    One shared doubling chain serves every term, so the marginal cost of
    an extra point is its 4-bit window table plus ~one add per window —
    the workhorse of :func:`verify_batch`.
    """
    tables = []
    nibble_rows = []
    max_windows = 0
    for scalar, point in pairs:
        if scalar <= 0:
            continue
        nibbles: list[int] = []
        while scalar > 0:
            nibbles.append(scalar & 0xF)
            scalar >>= 4
        tables.append(_window_table(point))
        nibble_rows.append(nibbles)
        max_windows = max(max_windows, len(nibbles))
    if not tables:
        return _IDENTITY
    x, y, z, t = _IDENTITY
    p = P
    started = False
    for window in range(max_windows - 1, -1, -1):
        if started:
            for _ in range(4):
                aa = x * x % p
                bb = y * y % p
                cc = 2 * z * z % p
                h = aa + bb
                e = h - (x + y) * (x + y)
                g = aa - bb
                f = cc + g
                x, y, z, t = e * f % p, g * h % p, f * g % p, e * h % p
        for table, nibbles in zip(tables, nibble_rows):
            if window < len(nibbles) and nibbles[window]:
                started = True
                bx, by, bz, bt = table[nibbles[window]]
                aa = (y - x) * (by - bx) % p
                bb = (y + x) * (by + bx) % p
                cc = t * bt % p * _D2 % p
                dd = 2 * z * bz % p
                e = bb - aa
                f = dd - cc
                g = dd + cc
                h = bb + aa
                x, y, z, t = e * f % p, g * h % p, f * g % p, e * h % p
    return (x, y, z, t)


#: sqrt(-1) mod P, the p = 5 (mod 8) square-root fixup factor.
_SQRT_M1 = pow(2, (P - 1) // 4, P)


def _recover_x(y: int, sign: int) -> int:
    """Recover the x coordinate of a point from y and the sign bit.

    Raises:
        InvalidKeyError: if no square root exists (point not on curve).
    """
    if y >= P:
        raise InvalidKeyError("y coordinate out of range")
    x2 = (y * y - 1) * pow(D * y * y + 1, P - 2, P) % P
    if x2 == 0:
        if sign:
            raise InvalidKeyError("invalid sign bit for x = 0")
        return 0
    # Square root via the p = 5 (mod 8) shortcut.
    x = pow(x2, (P + 3) // 8, P)
    if (x * x - x2) % P != 0:
        x = x * _SQRT_M1 % P
    if (x * x - x2) % P != 0:
        raise InvalidKeyError("point is not on the curve")
    if (x & 1) != sign:
        x = P - x
    return x


# Base point B (RFC 8032 section 5.1).
_BASE_Y = 4 * pow(5, P - 2, P) % P
_BASE_X = _recover_x(_BASE_Y, 0)
_BASE = _Point(_BASE_X, _BASE_Y, 1, _BASE_X * _BASE_Y % P)

# Precomputed table of B * 2^(4i) multiples for 4-bit windowed multiplication
# of the base point; signing performance matters because the benchmark
# harness signs hundreds of thousands of transactions.
_WINDOW_BITS = 4
_TABLE: list[list[_Point]] = []
_current = _BASE
for _ in range(64):  # 256 bits / 4 bits per window
    row = [_IDENTITY]
    for _i in range(1, 16):
        row.append(_point_add(row[-1], _current))
    _TABLE.append(row)
    for _i in range(_WINDOW_BITS):
        _current = _point_double(_current)


def _base_mult(scalar: int) -> _Point:
    """Multiply the base point by ``scalar`` using the precomputed table."""
    result = _IDENTITY
    window = 0
    while scalar > 0:
        nibble = scalar & 0xF
        if nibble:
            result = _point_add(result, _TABLE[window][nibble])
        scalar >>= 4
        window += 1
    return result


def _point_compress(point) -> bytes:
    """Encode a point to its 32-byte compressed form (the one inversion)."""
    px, py, pz, _ = point
    z_inv = pow(pz, P - 2, P)
    x = px * z_inv % P
    y = py * z_inv % P
    return int.to_bytes(y | ((x & 1) << 255), 32, "little")


def _point_decompress(data: bytes) -> _Point:
    """Decode a 32-byte compressed point.

    Raises:
        InvalidKeyError: on malformed encodings or off-curve points.
    """
    if len(data) != 32:
        raise InvalidKeyError("compressed point must be 32 bytes")
    y = int.from_bytes(data, "little")
    sign = y >> 255
    y &= (1 << 255) - 1
    x = _recover_x(y, sign)
    return _Point(x, y, 1, x * y % P)


#: Decompressed public keys, bounded.  Point decompression costs two field
#: exponentiations — a third of a single verification — and the same signer
#: keys recur across every block, so memoising ``A`` (never ``R``, which is
#: unique per signature) removes one of the two per-verify inversions.
#: Decompression is a pure function of the encoding, so the cache cannot
#: change any verdict.
_PUBKEY_CACHE: dict[bytes, _Point] = {}
_PUBKEY_CACHE_MAX = 4096


def _decompress_public(data: bytes) -> _Point:
    """Cached :func:`_point_decompress` for recurring public keys."""
    point = _PUBKEY_CACHE.get(data)
    if point is None:
        point = _point_decompress(data)
        if len(_PUBKEY_CACHE) >= _PUBKEY_CACHE_MAX:
            # FIFO eviction of one entry (dicts iterate in insertion
            # order); wholesale clearing would collapse the hit rate for
            # key populations just past the bound.
            del _PUBKEY_CACHE[next(iter(_PUBKEY_CACHE))]
        _PUBKEY_CACHE[data] = point
    return point


def _points_equal(a, b) -> bool:
    """Projective equality: X1*Z2 == X2*Z1 and Y1*Z2 == Y2*Z1."""
    ax, ay, az, _ = a
    bx, by, bz, _ = b
    if (ax * bz - bx * az) % P != 0:
        return False
    return (ay * bz - by * az) % P == 0


def _sha512_int(*parts: bytes) -> int:
    digest = hashlib.sha512(b"".join(parts)).digest()
    return int.from_bytes(digest, "little")


def _clamp(seed_hash: bytes) -> int:
    scalar = int.from_bytes(seed_hash[:32], "little")
    scalar &= (1 << 254) - 8
    scalar |= 1 << 254
    return scalar


def public_key_from_seed(seed: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte private seed.

    Raises:
        InvalidKeyError: if the seed is not exactly 32 bytes.
    """
    if len(seed) != 32:
        raise InvalidKeyError("Ed25519 seed must be 32 bytes")
    scalar = _clamp(hashlib.sha512(seed).digest())
    return _point_compress(_base_mult(scalar))


def sign(seed: bytes, message: bytes) -> bytes:
    """Produce a 64-byte RFC 8032 signature of ``message``.

    Args:
        seed: the signer's 32-byte private seed.
        message: arbitrary bytes to sign.

    Raises:
        InvalidKeyError: if the seed is malformed.
    """
    if len(seed) != 32:
        raise InvalidKeyError("Ed25519 seed must be 32 bytes")
    seed_hash = hashlib.sha512(seed).digest()
    scalar = _clamp(seed_hash)
    prefix = seed_hash[32:]
    public = _point_compress(_base_mult(scalar))

    r = _sha512_int(prefix, message) % L
    r_point = _point_compress(_base_mult(r))
    challenge = _sha512_int(r_point, public, message) % L
    s = (r + challenge * scalar) % L
    return r_point + int.to_bytes(s, 32, "little")


def verify(public_key: bytes, message: bytes, signature: bytes) -> bool:
    """Check a signature; returns ``True`` iff it is valid.

    Malformed keys/signatures return ``False`` rather than raising, so the
    validation pipeline can treat all failures uniformly.

    This is the *cofactored* check ``8*s*B == 8*R + 8*h*A`` (RFC 8032
    sanctions either form) — deliberately the same acceptance set as
    :func:`verify_batch`'s cofactored batch equation.  If the two forms
    differed, a signature crafted with a small-order torsion component
    would flip verdicts between the batch and single paths (and therefore
    across cache evictions), making block validity state-dependent —
    exactly what a replicated validation pipeline cannot tolerate.
    """
    if len(public_key) != 32 or len(signature) != 64:
        return False
    try:
        a_point = _decompress_public(public_key)
        r_point = _point_decompress(signature[:32])
    except InvalidKeyError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= L:
        return False
    challenge = _sha512_int(signature[:32], public_key, message) % L
    # Check 8*s*B == 8*(R + h*A): three doublings per side kill torsion.
    left = _base_mult(s)
    right = _point_add(r_point, _scalar_mult(a_point, challenge))
    left = _point_double(_point_double(_point_double(left)))
    right = _point_double(_point_double(_point_double(right)))
    return _points_equal(left, right)


def verify_strict(public_key: bytes, message: bytes, signature: bytes) -> None:
    """Like :func:`verify` but raises on failure.

    Raises:
        InvalidSignatureError: if verification fails for any reason.
    """
    if not verify(public_key, message, signature):
        raise InvalidSignatureError("Ed25519 signature verification failed")


# -- batch verification ---------------------------------------------------------

#: Bit width of the random linear-combination coefficients.  128 bits keeps
#: the probability of a bad signature slipping through one batch equation
#: at 2^-128 (the standard choice for Ed25519 batch verification).
_BATCH_COEFF_BITS = 128


def _batch_coefficient(rng: Any, index: int, parts: tuple[bytes, bytes, bytes]) -> int:
    """One nonzero RLC coefficient.

    ``rng`` is any object with ``getrandbits`` (a named ``sim.rng`` stream
    in the simulator, keeping replays byte-identical per seed).  Without an
    rng the coefficient is derived Fiat-Shamir style from the batch item
    itself, which is equally deterministic and needs no plumbing.
    """
    if rng is not None:
        return rng.getrandbits(_BATCH_COEFF_BITS) | 1
    public_key, message, signature = parts
    digest = hashlib.sha512(
        b"ed25519-batch-coeff"
        + index.to_bytes(4, "little")
        + public_key
        + signature
        + hashlib.sha512(message).digest()
    ).digest()
    return int.from_bytes(digest[: _BATCH_COEFF_BITS // 8], "little") | 1


def _batch_equation_holds(
    candidates: list[tuple[int, _Point, _Point, int, int]], coefficients: list[int]
) -> bool:
    """The single RLC check ``sum(z_i*s_i)*B == sum(z_i*R_i) + sum(z_i*h_i*A_i)``.

    Rearranged as ``(-sum(z_i*s_i))*B + sum(z_i*R_i) + sum((z_i*h_i)*A_i)
    == identity`` so one interleaved multi-scalar multiplication plus one
    table-driven base multiplication decides the whole batch.

    The combined point is multiplied by the cofactor 8 before the
    identity test (RFC 8032's cofactored batch form).  Without it, the
    random linear combination is unsound for *crafted* signatures: a
    defect living in the order-8 torsion (e.g. ``R + T`` for an order-2
    point ``T``) contributes ``z_i * T``, and an attacker who can predict
    the coefficients' parity can pair two such defects so they cancel.
    Cofactoring annihilates every torsion contribution instead, at the
    cost of three point doublings per batch.
    """
    base_scalar = 0
    merged: dict[int, list] = {}

    def add_term(scalar: int, point) -> None:
        # Merge scalars for recurring points (the same signer key across a
        # block, interned by the decompression memo) so each distinct
        # point pays for one window table.  Summing mod L is sound under
        # the cofactored check: any torsion discrepancy it introduces is
        # annihilated by the final multiplication by 8.
        entry = merged.get(id(point))
        if entry is None:
            merged[id(point)] = [scalar % L, point]
        else:
            entry[0] = (entry[0] + scalar) % L

    for (_, a_point, r_point, s, challenge), z in zip(candidates, coefficients):
        base_scalar = (base_scalar + z * s) % L
        add_term(z, r_point)
        add_term(z * challenge, a_point)
    pairs = [(scalar, point) for scalar, point in merged.values()]
    combined = _point_add(_base_mult((-base_scalar) % L), _multi_scalar_mult(pairs))
    combined = _point_double(_point_double(_point_double(combined)))
    return _points_equal(combined, _IDENTITY)


def verify_batch(
    items: Sequence[tuple[bytes, bytes, bytes]], rng: Any = None
) -> list[bool]:
    """Verify many ``(public_key, message, signature)`` triples at once.

    Structurally malformed items (bad lengths, off-curve points, scalar out
    of range) are marked invalid up front without disturbing the rest.  The
    well-formed remainder is checked through one *cofactored*
    random-linear-combination equation; if that holds, every signature in
    it is valid except with probability ~2^-128 per coefficient draw.  If
    it fails — at least one bad signature hides in the batch — each
    remaining item falls back to an independent :func:`verify`, so one
    forgery can neither veto nor smuggle through its batchmates.

    :func:`verify` uses the cofactored check too, so batch and single
    paths share one acceptance set: a verdict can never depend on which
    path (or cache state) happened to judge a signature first.

    Args:
        items: the triples to check.
        rng: optional ``getrandbits`` provider for the RLC coefficients
            (pass a seeded ``sim.rng`` stream inside the simulator);
            ``None`` derives deterministic per-item coefficients by
            hashing, so results never depend on process-global randomness.

    Returns:
        Per-item verdicts, aligned with ``items``.
    """
    results = [False] * len(items)
    candidates: list[tuple[int, _Point, _Point, int, int]] = []
    for index, (public_key, message, signature) in enumerate(items):
        if len(public_key) != 32 or len(signature) != 64:
            continue
        try:
            a_point = _decompress_public(public_key)
            r_point = _point_decompress(signature[:32])
        except InvalidKeyError:
            continue
        s = int.from_bytes(signature[32:], "little")
        if s >= L:
            continue
        challenge = _sha512_int(signature[:32], public_key, message) % L
        candidates.append((index, a_point, r_point, s, challenge))
    if not candidates:
        return results
    if len(candidates) == 1:
        index = candidates[0][0]
        public_key, message, signature = items[index]
        results[index] = verify(public_key, message, signature)
        return results
    coefficients = [
        _batch_coefficient(rng, position, items[candidate[0]])
        for position, candidate in enumerate(candidates)
    ]
    if _batch_equation_holds(candidates, coefficients):
        for index, *_ in candidates:
            results[index] = True
        return results
    # At least one forgery in the batch: settle each signature on its own.
    for index, *_ in candidates:
        public_key, message, signature = items[index]
        results[index] = verify(public_key, message, signature)
    return results
