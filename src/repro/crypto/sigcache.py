"""Cluster-wide signature-verification cache.

An Ed25519 verdict is a pure function of ``(public_key, message,
signature)`` — there is nothing node-local about it.  Yet the replicated
pipeline verifies the same triple many times: the receiver node checks it
during semantic validation, every other validator re-checks it at CheckTx
admission, and block validation walks the same signatures again on every
replica.  This module holds one bounded LRU of verdicts shared by every
simulated node in the process, so a signature the proposer already
verified costs its replicas a dictionary lookup.

Keys are ``(public_key, sha3-256(message), signature)``.  The message is
folded to its digest so the key stays small for large payloads; the full
signature and key stay in the key, so a forged signature or a swapped key
can never alias a cached verdict.  Both positive and negative verdicts are
cached — both are pure.

The shared instance is process-global on purpose: a "cluster" here is
many simulated nodes in one interpreter, and sharing the cache across
them is exactly the cross-replica amortisation the batching pipeline is
after.  Tests and benchmarks that need isolation swap the instance with
:func:`set_shared_cache` (or pass ``cache=None`` to the verify helpers).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Hashable


class SignatureCache:
    """Bounded LRU of signature-verification verdicts.

    Args:
        maxsize: resident entry bound; the least recently used entry is
            evicted beyond it.  An evicted signature simply gets
            re-verified on next sight — eviction can never flip a verdict.
    """

    def __init__(self, maxsize: int = 65_536):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(public_key: Hashable, message: bytes, signature: Hashable) -> tuple:
        """Cache key for a triple; the message is folded to its digest."""
        return (public_key, hashlib.sha3_256(message).digest(), signature)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> bool | None:
        """Cached verdict for a :meth:`key`, or ``None`` on a miss."""
        verdict = self._entries.get(key)
        if verdict is None:  # only True/False are ever stored
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return verdict

    def put(self, key: tuple, verdict: bool) -> None:
        """Record a verdict, evicting the oldest entry past the bound."""
        self._entries[key] = verdict
        self._entries.move_to_end(key)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate(), 4),
        }

    def publish(self, registry) -> None:
        """Mirror the cache counters into a telemetry registry as gauges.

        Gauges, not counters: the cache is process-global and may be
        snapshotted many times per run, so absolute values are set rather
        than incremented.
        """
        for key, value in self.stats().items():
            registry.gauge(f"sigcache_{key}", cache="shared").set(value)


_shared: SignatureCache | None = SignatureCache()


def shared_cache() -> SignatureCache | None:
    """The process-wide cache every node consults (``None`` = disabled)."""
    return _shared


def set_shared_cache(cache: SignatureCache | None) -> SignatureCache | None:
    """Swap the shared cache (pass ``None`` to disable); returns the old one."""
    global _shared
    previous = _shared
    _shared = cache
    return previous
