"""Hashing helpers.

Transaction ids in BigchainDB (and therefore SmartchainDB) are the SHA3-256
hex digest of the canonically serialised transaction body — the schema in
Fig. 5 of the paper constrains ``id`` to a ``sha3_hexdigest`` pattern.
"""

from __future__ import annotations

import hashlib
import re
from typing import Any

from repro.common.encoding import canonical_bytes

#: Pattern enforced by the transaction schema for ids (64 lowercase hex chars).
SHA3_HEXDIGEST_PATTERN = re.compile(r"^[0-9a-f]{64}$")


def sha3_256_hex(data: bytes) -> str:
    """Hex digest of SHA3-256 over raw bytes."""
    return hashlib.sha3_256(data).hexdigest()


def hash_document(document: Any) -> str:
    """SHA3-256 hex digest of a JSON-like document in canonical form.

    This is the transaction-id function: two structurally identical
    documents always hash identically regardless of key order.
    """
    return sha3_256_hex(canonical_bytes(document))


def is_sha3_hexdigest(value: Any) -> bool:
    """True if ``value`` looks like a SHA3-256 hex digest."""
    return isinstance(value, str) and bool(SHA3_HEXDIGEST_PATTERN.match(value))


def keccak_like_slot(data: bytes) -> int:
    """Map bytes to a 256-bit storage-slot index for the EVM baseline.

    Real Solidity uses keccak-256 to place mapping entries among 2**256
    slots; the standard library lacks keccak, so SHA3-256 stands in.  The
    property the evaluation relies on — uniformly scattered slots with no
    locality — is preserved.
    """
    return int.from_bytes(hashlib.sha3_256(data).digest(), "big")
