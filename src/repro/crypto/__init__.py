"""Cryptographic substrate: Ed25519, hashing, conditions, key management."""

from repro.crypto.conditions import (
    ED25519_TYPE,
    THRESHOLD_TYPE,
    Condition,
    Fulfillment,
    multisignature_string,
)
from repro.crypto.hashing import (
    SHA3_HEXDIGEST_PATTERN,
    hash_document,
    is_sha3_hexdigest,
    keccak_like_slot,
    sha3_256_hex,
)
from repro.crypto.keys import (
    KeyPair,
    ReservedAccounts,
    generate_keypair,
    keypair_from_string,
    verify_signature,
)

__all__ = [
    "ED25519_TYPE",
    "THRESHOLD_TYPE",
    "Condition",
    "Fulfillment",
    "KeyPair",
    "ReservedAccounts",
    "SHA3_HEXDIGEST_PATTERN",
    "generate_keypair",
    "hash_document",
    "is_sha3_hexdigest",
    "keccak_like_slot",
    "keypair_from_string",
    "multisignature_string",
    "sha3_256_hex",
    "verify_signature",
]
