"""Key pairs and account identities.

The formal model (Section 3.1) is built on a set ``PBPK`` of public/private
key pairs, with a reserved subset ``PBPK-Res`` of system accounts (escrow,
admin).  Keys are Ed25519; both halves are rendered in base58 like
BigchainDB renders them.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field

from repro.common.encoding import base58_decode, base58_encode
from repro.common.errors import InvalidKeyError
from repro.crypto import ed25519, sigcache


@dataclass(frozen=True)
class KeyPair:
    """An account identity: base58 public key + base58 private seed."""

    public_key: str
    private_key: str

    def sign(self, message: bytes) -> str:
        """Sign ``message``; returns the base58 signature string."""
        seed = base58_decode(self.private_key)
        return base58_encode(ed25519.sign(seed, message))

    def verify(self, message: bytes, signature: str) -> bool:
        """Verify a base58 signature made by this key pair."""
        return verify_signature(self.public_key, message, signature)


def generate_keypair(seed: bytes | None = None) -> KeyPair:
    """Create a fresh Ed25519 key pair.

    Args:
        seed: optional 32-byte deterministic seed (tests and reproducible
            workloads); defaults to ``os.urandom``.

    Raises:
        InvalidKeyError: if an explicit seed has the wrong length.
    """
    if seed is None:
        seed = os.urandom(32)
    if len(seed) != 32:
        raise InvalidKeyError("seed must be exactly 32 bytes")
    public = ed25519.public_key_from_seed(seed)
    return KeyPair(public_key=base58_encode(public), private_key=base58_encode(seed))


def keypair_from_string(material: str) -> KeyPair:
    """Derive a deterministic key pair from arbitrary string material.

    Used by the workload generator to mint large account populations
    reproducibly: the seed is SHA3-256 of the material.
    """
    seed = hashlib.sha3_256(material.encode("utf-8")).digest()
    return generate_keypair(seed)


def verify_signature(public_key: str, message: bytes, signature: str) -> bool:
    """Verify a base58-encoded signature against a base58 public key.

    Any decoding failure counts as an invalid signature (returns False).
    Verdicts flow through the cluster-wide :mod:`repro.crypto.sigcache`
    when one is installed — a replica never re-verifies a triple another
    node (or a batch pre-pass) already settled.
    """
    cache = sigcache.shared_cache()
    if cache is None:
        return _verify_signature_uncached(public_key, message, signature)
    key = cache.key(public_key, message, signature)
    verdict = cache.get(key)
    if verdict is None:
        verdict = _verify_signature_uncached(public_key, message, signature)
        cache.put(key, verdict)
    return verdict


def _verify_signature_uncached(public_key: str, message: bytes, signature: str) -> bool:
    try:
        public = base58_decode(public_key)
        sig = base58_decode(signature)
    except Exception:
        return False
    return ed25519.verify(public, message, sig)


def verify_signatures_batch(
    items: list[tuple[str, bytes, str]], rng=None
) -> list[bool]:
    """Batch-verify base58 ``(public_key, message, signature)`` triples.

    The batch-first half of block validation: triples with a cached
    verdict are answered from the cluster-wide signature cache, the rest
    go through :func:`repro.crypto.ed25519.verify_batch` in one
    random-linear-combination check, and every fresh verdict is written
    back to the cache — so the per-signature checks that follow (condition
    thresholds, semantic validators) hit instead of re-verifying.

    Args:
        items: the triples, in check order.
        rng: optional ``getrandbits`` provider for the batch coefficients
            (a seeded ``sim.rng`` stream in the simulator).

    Returns:
        Per-item verdicts, aligned with ``items``.
    """
    cache = sigcache.shared_cache()
    results: list[bool | None] = [None] * len(items)
    pending: list[int] = []
    keys: list[tuple | None] = [None] * len(items)
    for index, (public_key, message, signature) in enumerate(items):
        if cache is not None:
            key = cache.key(public_key, message, signature)
            keys[index] = key
            verdict = cache.get(key)
            if verdict is not None:
                results[index] = verdict
                continue
        pending.append(index)
    decoded: list[tuple[bytes, bytes, bytes]] = []
    decodable: list[int] = []
    for index in pending:
        public_key, message, signature = items[index]
        try:
            decoded.append((base58_decode(public_key), message, base58_decode(signature)))
            decodable.append(index)
        except Exception:
            results[index] = False  # malformed encodings never verify
    if decoded:
        for index, verdict in zip(decodable, ed25519.verify_batch(decoded, rng=rng)):
            results[index] = verdict
    if cache is not None:
        for index in pending:
            key = keys[index]
            if key is not None:
                cache.put(key, bool(results[index]))
    return [bool(verdict) for verdict in results]


@dataclass
class ReservedAccounts:
    """The ``PBPK-Res`` reserved account set: escrow + admin system keys.

    The paper's BID semantics send every bid output to a reserved escrow
    account (CBID.6); ACCEPT_BID spends escrow-held outputs (CACCEPT_BID.7).
    A deployment owns one escrow key pair plus any number of additional
    admin accounts.
    """

    escrow: KeyPair = field(default_factory=lambda: keypair_from_string("smartchaindb-escrow"))
    admins: list[KeyPair] = field(default_factory=list)

    def public_keys(self) -> set[str]:
        """All reserved public keys (escrow first)."""
        keys = {self.escrow.public_key}
        keys.update(admin.public_key for admin in self.admins)
        return keys

    def is_reserved(self, public_key: str) -> bool:
        """True if ``public_key`` belongs to the reserved set."""
        return public_key in self.public_keys()
