"""Flight recorder: a bounded ring of recent pipeline events.

When an invariant trips three hundred steps into a chaos run, the step
log says *what* diverged; the flight recorder says *where in the
pipeline* the implicated transactions were just before it happened —
block commits, lock adoptions, 2PC phase transitions, WAL flushes — in
exact event-loop order.  `SimHarness` dumps it into the repro bundle on
failure, and because every timestamp is sim time and the ring is a plain
FIFO, the dump is byte-identical across replays of one seed.
"""

from __future__ import annotations

from collections import deque
from typing import Any


class FlightRecorder:
    """Bounded FIFO of recent state-transition events.

    Args:
        capacity: resident event bound; the oldest event falls out first
            (what matters for diagnosis is the window *before* the
            failure, which is exactly what survives).
    """

    def __init__(self, capacity: int = 1024):
        self.capacity = capacity
        self._events: "deque[dict[str, Any]]" = deque(maxlen=capacity)
        self.recorded = 0

    def record(self, ts: float, node: str, kind: str, tx_id: str = "", **detail: Any) -> None:
        """Append one event (evicting the oldest past capacity)."""
        self.recorded += 1
        event: dict[str, Any] = {"t": ts, "node": node, "kind": kind}
        if tx_id:
            event["tx"] = tx_id
        if detail:
            event.update(detail)
        self._events.append(event)

    @property
    def dropped(self) -> int:
        """Events that aged out of the ring."""
        return self.recorded - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def dump(self) -> list[dict[str, Any]]:
        """The resident window, oldest first."""
        return [dict(event) for event in self._events]

    def events_for(self, tx_id: str) -> list[dict[str, Any]]:
        """Resident events mentioning one transaction."""
        return [dict(event) for event in self._events if event.get("tx") == tx_id]

    def clear(self) -> None:
        self._events.clear()
        self.recorded = 0
