"""Deterministic metrics registry: counters, gauges, log-bucketed histograms.

Every number in here is a pure function of the simulation: timestamps
come from the injected :class:`~repro.sim.events.SimClock` (the callers'
responsibility — this module never reads a clock itself), and nothing in
the registry draws randomness.  Two replays of one seed therefore export
byte-identical snapshots, which is what lets the chaos harness ship
metric state inside a repro bundle.

Histograms keep two representations:

* **log buckets** (powers of two) — the bounded, mergeable shape that
  renders to Prometheus ``_bucket`` series and survives aggregation
  across shards without losing its error bound;
* **raw samples** — retained (bounded) so percentile extraction is
  *exact* nearest-rank over what was observed, not a bucket-midpoint
  estimate.  Simulated runs observe thousands of values, not billions,
  so exactness is affordable; past the retention bound the histogram
  degrades to bucket-interpolated percentiles and says so.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable

#: Raw samples retained per histogram for exact percentile extraction.
DEFAULT_SAMPLE_LIMIT = 100_000

#: Histogram bucket upper bounds are ``2 ** exponent`` for exponents in
#: this range; values outside clamp to the first/last bucket.
_MIN_EXPONENT = -20  # ~1e-6
_MAX_EXPONENT = 40  # ~1e12


def exact_percentile(ordered: list[float], quantile: float) -> float:
    """Nearest-rank percentile (ceil convention) over a sorted list.

    The value at rank ``ceil(q * n)`` — for small samples this is the
    statistic the paper's tail-latency tables mean: p95 of 5 samples is
    the maximum, not the 4th value (``int(0.95 * 5) == 4`` under-reports,
    the bias the seed collector had).

    Raises:
        ValueError: on an empty list.
    """
    if not ordered:
        raise ValueError("percentile of an empty sample")
    if quantile <= 0.0:
        return ordered[0]
    rank = math.ceil(quantile * len(ordered))
    return ordered[min(len(ordered), max(rank, 1)) - 1]


def _bucket_exponent(value: float) -> int:
    """Index of the log2 bucket whose upper bound is ``2 ** exponent``."""
    if value <= 0.0:
        return _MIN_EXPONENT
    exponent = math.ceil(math.log2(value))
    return max(_MIN_EXPONENT, min(_MAX_EXPONENT, exponent))


class Counter:
    """Monotonic counter."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """Set-to-current-value instrument (queue depths, cache sizes)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def to_dict(self) -> dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """Log2-bucketed histogram with exact percentile extraction.

    Args:
        sample_limit: raw observations retained for exact percentiles.
            Beyond it, new observations still count into the buckets and
            the sum, and percentiles fall back to bucket upper bounds.
    """

    kind = "histogram"

    def __init__(self, sample_limit: int = DEFAULT_SAMPLE_LIMIT):
        self.sample_limit = sample_limit
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.buckets: dict[int, int] = {}
        self._samples: list[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        exponent = _bucket_exponent(value)
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1
        if len(self._samples) < self.sample_limit:
            if self._samples and value < self._samples[-1]:
                self._sorted = False
            self._samples.append(value)

    @property
    def exact(self) -> bool:
        """True while every observation is retained for percentiles."""
        return len(self._samples) == self.count

    def _ordered(self) -> list[float]:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        return self._samples

    def percentile(self, quantile: float) -> float:
        """Nearest-rank percentile.  Exact while within the sample bound,
        bucket-upper-bound conservative past it."""
        if self.count == 0:
            return 0.0
        if self.exact:
            return exact_percentile(self._ordered(), quantile)
        # Degraded path: walk the cumulative buckets; report the upper
        # bound of the bucket holding the target rank (an over-, never
        # under-, estimate of the true tail).
        rank = max(1, math.ceil(quantile * self.count))
        seen = 0
        for exponent in sorted(self.buckets):
            seen += self.buckets[exponent]
            if seen >= rank:
                return float(2.0**exponent)
        return float(self.max or 0.0)

    def percentiles(self) -> dict[str, float]:
        """The standard tail set (p50/p95/p99/p999) plus count and mean."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.sum / self.count,
            "min": self.min or 0.0,
            "max": self.max or 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
        }

    def merge(self, other: "Histogram") -> "Histogram":
        """Combined histogram (shard aggregation).  Exactness survives as
        long as the merged samples fit the (larger) sample bound."""
        merged = Histogram(sample_limit=max(self.sample_limit, other.sample_limit))
        merged.count = self.count + other.count
        merged.sum = self.sum + other.sum
        mins = [value for value in (self.min, other.min) if value is not None]
        maxs = [value for value in (self.max, other.max) if value is not None]
        merged.min = min(mins) if mins else None
        merged.max = max(maxs) if maxs else None
        for source in (self.buckets, other.buckets):
            for exponent, count in source.items():
                merged.buckets[exponent] = merged.buckets.get(exponent, 0) + count
        combined = self._samples + other._samples
        if self.exact and other.exact and len(combined) <= merged.sample_limit:
            merged._samples = sorted(combined)
        else:
            merged._samples = sorted(combined)[: merged.sample_limit]
        merged._sorted = True
        return merged

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "count": self.count,
            "sum": self.sum,
            "exact": self.exact,
            "buckets": {str(exponent): count for exponent, count in sorted(self.buckets.items())},
        }
        if self.count:
            payload.update(
                {
                    "min": self.min,
                    "max": self.max,
                    "p50": self.percentile(0.50),
                    "p95": self.percentile(0.95),
                    "p99": self.percentile(0.99),
                    "p999": self.percentile(0.999),
                }
            )
        return payload


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Name+labels keyed instrument store with canonical exports."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], Any] = {}

    def _get(self, name: str, labels: dict[str, str], factory: type) -> Any:
        key = (name, _label_key(labels))
        instrument = self._metrics.get(key)
        if instrument is None:
            instrument = factory()
            self._metrics[key] = instrument
        elif not isinstance(instrument, factory):
            raise TypeError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(name, labels, Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(name, labels, Gauge)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get(name, labels, Histogram)

    def instruments(self) -> Iterable[tuple[str, dict[str, str], Any]]:
        """(name, labels, instrument) triples in canonical order."""
        for (name, label_key), instrument in sorted(
            self._metrics.items(), key=lambda item: item[0]
        ):
            yield name, dict(label_key), instrument

    def merged_histogram(self, name: str, **match_labels: str) -> Histogram:
        """Every histogram series of ``name`` whose labels include
        ``match_labels``, merged into one (the cross-shard aggregate)."""
        merged = Histogram()
        for metric_name, labels, instrument in self.instruments():
            if metric_name != name or not isinstance(instrument, Histogram):
                continue
            if any(labels.get(k) != str(v) for k, v in match_labels.items()):
                continue
            merged = merged.merge(instrument)
        return merged

    # -- exports ------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Canonical nested dict: ``{name: {label-string: payload}}``."""
        out: dict[str, Any] = {}
        for name, labels, instrument in self.instruments():
            series = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            out.setdefault(name, {})[series] = {
                "kind": instrument.kind,
                **instrument.to_dict(),
            }
        return out

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace): byte-identical
        across replays of one seed."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every series."""
        lines: list[str] = []
        typed: set[str] = set()
        for name, labels, instrument in self.instruments():
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} {instrument.kind}")
            label_text = ",".join(
                f'{k}="{v}"' for k, v in sorted(labels.items())
            )
            wrap = f"{{{label_text}}}" if label_text else ""
            if isinstance(instrument, Histogram):
                cumulative = 0
                for exponent in sorted(instrument.buckets):
                    cumulative += instrument.buckets[exponent]
                    bound = 2.0**exponent
                    le = ",".join(filter(None, [label_text, f'le="{bound}"']))
                    lines.append(f"{name}_bucket{{{le}}} {cumulative}")
                le = ",".join(filter(None, [label_text, 'le="+Inf"']))
                lines.append(f"{name}_bucket{{{le}}} {instrument.count}")
                lines.append(f"{name}_sum{wrap} {instrument.sum}")
                lines.append(f"{name}_count{wrap} {instrument.count}")
            else:
                lines.append(f"{name}{wrap} {instrument.value}")
        return "\n".join(lines) + ("\n" if lines else "")
