"""Deterministic observability: metrics registry, tracing, flight recorder.

One :class:`Telemetry` object per deployment (shared by every shard of a
:class:`~repro.sharding.cluster.ShardedCluster`, so cross-shard traces
stitch on the globally stable ``tx_id``).  Instrumented components hold
an optional ``telemetry`` attribute defaulting to ``None``; every hot
site guards with ``tel is not None and tel.enabled``, so the disabled
cost is one attribute read and the absent cost is zero.

Nothing in this package reads a wall clock or draws global randomness:
timestamps come from the injected sim clock and the trace-sampling salt
from a seeded rng stream — the determinism lint pins both.
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.flight import FlightRecorder
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exact_percentile,
)
from repro.telemetry.tracing import (
    DEFAULT_SAMPLE_RATE,
    TRACE_SAMPLED,
    Tracer,
    sample_decision,
)

__all__ = [
    "Counter",
    "DEFAULT_SAMPLE_RATE",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TRACE_SAMPLED",
    "Telemetry",
    "Tracer",
    "exact_percentile",
    "sample_decision",
]

#: The tail-percentile set every latency surface reports.
PERCENTILE_KEYS = ("p50", "p95", "p99", "p999")


class Telemetry:
    """Registry + tracer + flight recorder behind one enabled flag.

    Args:
        clock: the deployment's sim clock (``.now`` attribute).
        sample_salt: trace-sampling salt — draw from a seeded rng stream
            (``rng.stream("telemetry").getrandbits(64)``).
        sample_rate: fraction of transactions whose timeline is traced.
        enabled: master switch; when False every instrumentation site
            short-circuits after one attribute read.
        flight_capacity: flight-recorder ring size.
    """

    def __init__(
        self,
        clock: Any,
        sample_salt: int = 0,
        sample_rate: float = DEFAULT_SAMPLE_RATE,
        enabled: bool = True,
        flight_capacity: int = 1024,
    ):
        self.clock = clock
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.tracer = Tracer(clock, sample_rate=sample_rate, salt=sample_salt)
        self.flight = FlightRecorder(flight_capacity)

    # -- convenience shorthands used by instrumentation sites ---------------

    def counter(self, name: str, **labels: str) -> Counter:
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self.registry.histogram(name, **labels)

    def observe_ms(self, name: str, seconds: float, **labels: str) -> None:
        """Record a duration histogram point in milliseconds."""
        self.registry.histogram(name, **labels).observe(seconds * 1000.0)

    def flight_event(self, node: str, kind: str, tx_id: str = "", **detail: Any) -> None:
        self.flight.record(self.clock.now, node, kind, tx_id, **detail)

    def latency_percentiles(self, name: str = "tx_commit_latency_ms", **match_labels: str) -> dict[str, float]:
        """Merged-percentile summary for a histogram family — the single
        source benchmarks and facades read p50/p99/p999 from."""
        merged = self.registry.merged_histogram(name, **match_labels)
        if merged.count == 0:
            return {"count": 0}
        summary = merged.percentiles()
        return {
            "count": summary["count"],
            "mean_ms": summary["mean"],
            "p50_ms": summary["p50"],
            "p95_ms": summary["p95"],
            "p99_ms": summary["p99"],
            "p999_ms": summary["p999"],
            "max_ms": summary["max"],
        }
