"""Per-transaction lifecycle tracing.

A *trace* is the ordered list of lifecycle events one transaction
produced as it moved through the pipeline — submit, mempool admission,
signature verification, consensus propose/commit, 2PC phases, WAL group
commit, application.  Traces are keyed by ``tx_id``: the id is globally
stable across shard boundaries (2PC ships the same payload), so one
shared :class:`Tracer` per deployment stitches the cross-shard timeline
together without any wire-format changes beyond the envelope's sampling
flag.

Determinism: timestamps come only from the injected sim clock, and the
sampling decision is a pure hash of ``(salt, tx_id)`` — the salt is
drawn once from the deployment's seeded rng at construction, so replays
of one seed sample the identical transaction set, and every shard of a
deployment (sharing one tracer) agrees on what is sampled.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any

#: Envelope flag bit: this transaction's trace is sampled.
TRACE_SAMPLED = 1

#: Default fraction of transactions traced (metrics are never sampled —
#: only the per-transaction event timelines are).
DEFAULT_SAMPLE_RATE = 1.0 / 64.0

_SAMPLE_SPACE = 1 << 53


def sample_decision(salt: int, trace_id: str, rate: float) -> bool:
    """Deterministic sampling verdict for one trace id.

    Pure function of its arguments: hash the salted id into [0, 1) and
    compare against the rate.  No rng state is consumed per decision, so
    tracing config cannot perturb any other seeded stream.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    digest = hashlib.sha3_256(f"{salt}:{trace_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % _SAMPLE_SPACE < rate * _SAMPLE_SPACE


class Tracer:
    """Bounded store of sampled per-transaction event timelines.

    Args:
        clock: the deployment's :class:`~repro.sim.events.SimClock` (or
            anything with a ``now`` attribute) — the *only* time source.
        sample_rate: fraction of transactions traced.
        salt: sampling salt; draw it from a seeded rng stream.
        max_traces: resident trace bound (oldest evicted beyond it).
        max_events: per-trace event bound (a runaway retry loop must not
            grow one timeline without bound).
    """

    def __init__(
        self,
        clock: Any,
        sample_rate: float = DEFAULT_SAMPLE_RATE,
        salt: int = 0,
        max_traces: int = 4096,
        max_events: int = 512,
    ):
        self._clock = clock
        self.sample_rate = sample_rate
        self.salt = salt
        self.max_traces = max_traces
        self.max_events = max_events
        self._traces: "OrderedDict[str, list[dict[str, Any]]]" = OrderedDict()
        self.started = 0
        self.skipped = 0

    # -- lifecycle ----------------------------------------------------------

    def begin(self, trace_id: str, name: str = "submit", node: str = "", **attrs: Any) -> bool:
        """Open a trace (idempotent).  Returns the sampling verdict."""
        if trace_id in self._traces:
            return True
        if not sample_decision(self.salt, trace_id, self.sample_rate):
            self.skipped += 1
            return False
        self.started += 1
        self._traces[trace_id] = []
        while len(self._traces) > self.max_traces:
            self._traces.popitem(last=False)
        self.event(trace_id, name, node=node, **attrs)
        return True

    def sampled(self, trace_id: str) -> bool:
        """Is this transaction's timeline being recorded?  O(1)."""
        return trace_id in self._traces

    def event(self, trace_id: str, name: str, node: str = "", **attrs: Any) -> None:
        """Append one instant event to a sampled trace (no-op otherwise)."""
        timeline = self._traces.get(trace_id)
        if timeline is None or len(timeline) >= self.max_events:
            return
        entry: dict[str, Any] = {"t": self._clock.now, "name": name}
        if node:
            entry["node"] = node
        if attrs:
            entry.update(attrs)
        timeline.append(entry)

    # -- reads --------------------------------------------------------------

    def trace_ids(self) -> list[str]:
        return list(self._traces)

    def timeline(self, trace_id: str) -> list[dict[str, Any]]:
        """The trace's events, in the order they occurred (event-loop
        order *is* causal order in the deterministic simulation)."""
        return [dict(entry) for entry in self._traces.get(trace_id, [])]

    def spans(self, trace_id: str) -> list[dict[str, Any]]:
        """Derived stage spans: consecutive events become (stage, start,
        end) intervals — the pipeline dwell times the paper's per-stage
        profiling needs."""
        timeline = self._traces.get(trace_id) or []
        spans: list[dict[str, Any]] = []
        for previous, current in zip(timeline, timeline[1:]):
            spans.append(
                {
                    "stage": f"{previous['name']} -> {current['name']}",
                    "start": previous["t"],
                    "end": current["t"],
                    "duration": current["t"] - previous["t"],
                    "node": current.get("node", ""),
                }
            )
        return spans

    def render_tree(self, trace_id: str) -> str:
        """Human-readable span tree for one transaction, grouped by the
        node that emitted each event (the CLI ``trace`` demo's output)."""
        timeline = self._traces.get(trace_id)
        if not timeline:
            return f"trace {trace_id[:12]}: not sampled (or evicted)"
        t0 = timeline[0]["t"]
        total = timeline[-1]["t"] - t0
        lines = [
            f"trace {trace_id[:12]}…  events={len(timeline)}  "
            f"span={total * 1000:.3f}ms"
        ]
        for index, entry in enumerate(timeline):
            connector = "└─" if index == len(timeline) - 1 else "├─"
            offset = (entry["t"] - t0) * 1000
            extras = {
                key: value
                for key, value in entry.items()
                if key not in ("t", "name", "node")
            }
            extra_text = (
                "  " + " ".join(f"{k}={v}" for k, v in sorted(extras.items()))
                if extras
                else ""
            )
            node = entry.get("node", "")
            node_text = f"  [{node}]" if node else ""
            lines.append(
                f"{connector} t+{offset:9.3f}ms  {entry['name']}{node_text}{extra_text}"
            )
        return "\n".join(lines)
