"""Scenario runners: execute one workload on each system, measure both.

The reverse-auction experiment (Section 5.2): windows of CREATEs backing
a REQUEST, several BIDs, then an ACCEPT_BID.  The same intent stream is
replayed against

* a :class:`~repro.core.cluster.SmartchainCluster` (declarative types), and
* a :class:`~repro.ethereum.chain.QuorumChain` running the marketplace
  contract (imperative baseline),

yielding directly comparable :class:`~repro.metrics.collector.RunMetrics`.

Transaction *size* is swept by inflating both the metadata filler and the
capability strings — the paper's "list of strings of various sizes in the
metadata of REQUEST and CREATE transactions".  Longer capability strings
are what trip the contract's O(n^2) ``compareStrings`` validation while
leaving SmartchainDB's set-semantics check untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consensus.tendermint import tendermint_config
from repro.core.cluster import ClusterConfig, SmartchainCluster
from repro.crypto.keys import KeyPair, keypair_from_string
from repro.ethereum.chain import QuorumChain, QuorumChainConfig
from repro.ethereum.client import Web3Client
from repro.metrics.collector import RunMetrics, collect_metrics
from repro.sharding.cluster import ShardedCluster, ShardedClusterConfig
from repro.sharding.router import SHARD_KEY_METADATA
from repro.sim.rng import SeededRng
from repro.workloads.generator import ZipfSampler

#: How the per-transaction byte budget is split.
_CAPABILITY_SHARE = 0.5


@dataclass
class ScenarioSpec:
    """One experiment configuration (both systems consume the same spec).

    ``phased`` reproduces the paper's bulk workload: all CREATEs are
    submitted (and drained), then all REQUESTs, then all BIDs, then the
    ACCEPT_BIDs — so later BIDs meet a populated contract registry, which
    is where the baseline's O(n) scans start to hurt.

    When ``scale_caps_with_payload`` is set, the number of capability
    strings grows with the payload target (the paper's "list of strings
    of various sizes"), which drives the contract's O(n^2)
    ``compareStrings`` validation superlinearly.
    """

    n_windows: int = 6
    creates_per_window: int = 4
    bids_per_window: int = 4
    payload_bytes: int = 1_115
    n_validators: int = 4
    requested_capabilities: int = 2
    offered_capabilities: int = 4
    scale_caps_with_payload: bool = False
    phased: bool = False
    seed: int = 2024
    eth_block_gas_limit: int = 2_000_000
    eth_block_period: float = 1.0

    def caps_counts(self) -> tuple[int, int]:
        """(requested, offered) capability counts for this payload size."""
        if not self.scale_caps_with_payload:
            return self.requested_capabilities, self.offered_capabilities
        offered = max(4, self.payload_bytes // 150)
        requested = max(2, offered // 3)
        return requested, offered

    def capability_strings(self, count: int, tag: str) -> list[str]:
        """Capability strings padded to carry their share of the payload."""
        _, offered = self.caps_counts()
        budget = int(self.payload_bytes * _CAPABILITY_SHARE)
        per_string = max(8, budget // max(offered, 1))
        return [f"cap-{tag}-{index}-" + "p" * max(0, per_string - 10) for index in range(count)]

    def metadata_fill(self) -> str:
        return "m" * int(self.payload_bytes * (1 - _CAPABILITY_SHARE))


@dataclass
class ScenarioResult:
    """Outcome of one run: metrics + extra per-system detail."""

    metrics: RunMetrics
    detail: dict[str, float] = field(default_factory=dict)


def run_scdb_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Drive the declarative system through the reverse-auction workload."""
    cluster = SmartchainCluster(
        ClusterConfig(
            n_validators=spec.n_validators,
            seed=spec.seed,
            consensus=tendermint_config(max_block_txs=8),
        )
    )
    driver = cluster.driver
    actors: list[KeyPair] = [
        keypair_from_string(f"actor-{index}") for index in range(spec.n_windows * 2 + 8)
    ]
    requested_count, offered_count = spec.caps_counts()

    windows = []
    for window in range(spec.n_windows):
        requester = actors[window % len(actors)]
        window_caps = spec.capability_strings(offered_count, f"w{window}")
        windows.append((window, requester, window_caps, window_caps[:requested_count]))

    def submit_creates(window, requester, window_caps, requested):
        assets = []
        for create_index in range(spec.creates_per_window):
            owner = actors[(window + create_index + 1) % len(actors)]
            create_tx = driver.prepare_create(
                owner,
                {"capabilities": list(window_caps), "window": window},
                metadata={"fill": spec.metadata_fill()},
            )
            cluster.submit_payload(create_tx.to_dict())
            assets.append((owner, create_tx))
        return assets

    def submit_request(window, requester, window_caps, requested):
        request_tx = driver.prepare_request(
            requester, requested, metadata={"fill": spec.metadata_fill()}
        )
        cluster.submit_payload(request_tx.to_dict())
        return request_tx

    def submit_bids(assets, request_tx):
        bids = []
        for bid_index in range(min(spec.bids_per_window, len(assets))):
            owner, create_tx = assets[bid_index]
            bid_tx = driver.prepare_bid(
                owner, request_tx.tx_id, create_tx.tx_id, [(create_tx.tx_id, 0, 1)]
            )
            cluster.submit_payload(bid_tx.to_dict())
            bids.append(bid_tx)
        return bids

    if spec.phased:
        # Paper-style bulk workload: one phase per transaction type.
        window_assets = [submit_creates(*w) for w in windows]
        cluster.run()
        window_requests = [submit_request(*w) for w in windows]
        cluster.run()
        window_bids = [
            submit_bids(assets, request_tx)
            for assets, request_tx in zip(window_assets, window_requests)
        ]
        cluster.run()
        for (window, requester, _, _), request_tx, bids in zip(
            windows, window_requests, window_bids
        ):
            if bids:
                accept_tx = driver.prepare_accept_bid(requester, request_tx.tx_id, bids[0])
                cluster.submit_payload(accept_tx.to_dict())
        cluster.run()
    else:
        for entry in windows:
            assets = submit_creates(*entry)
            cluster.run()
            request_tx = submit_request(*entry)
            cluster.run()
            bids = submit_bids(assets, request_tx)
            cluster.run()
            if bids:
                accept_tx = driver.prepare_accept_bid(entry[1], request_tx.tx_id, bids[0])
                cluster.submit_payload(accept_tx.to_dict())
                cluster.run()

    metrics = collect_metrics("SCDB", cluster.records.values())
    metrics.percentiles_ms = cluster.latency_percentiles()
    return ScenarioResult(metrics=metrics, detail={"sim_time": cluster.loop.clock.now})


@dataclass
class ShardedScenarioSpec:
    """The horizontal-scaling workload: asset churn across N shards.

    A population of assets is minted (each lands on its ring shard), then
    ``transfer_rounds`` waves of ownership transfers churn them.  The two
    knobs the sharding evaluation sweeps:

    * ``cross_shard_ratio`` — fraction of transfers that *migrate* the
      asset to another shard (forcing the 2PC path) instead of staying
      on its home shard;
    * ``zipf_skew`` — Zipfian hot-asset popularity: transfer traffic
      concentrates on the leading ranks, so the shards owning them
      become hot while others idle (the imbalance case).
    """

    n_shards: int = 2
    n_validators: int = 4
    n_assets: int = 96
    transfer_rounds: int = 2
    cross_shard_ratio: float = 0.0
    zipf_skew: float = 0.0
    n_owners: int = 16
    max_block_txs: int = 8
    seed: int = 2024


def run_sharded_scenario(spec: ShardedScenarioSpec) -> ScenarioResult:
    """Drive a :class:`~repro.sharding.cluster.ShardedCluster` through the
    asset-churn workload; metrics aggregate over every shard."""
    cluster = ShardedCluster(
        ShardedClusterConfig(
            n_shards=spec.n_shards,
            n_validators=spec.n_validators,
            seed=spec.seed,
            max_block_txs=spec.max_block_txs,
        )
    )
    driver = cluster.driver
    rng = SeededRng(spec.seed)
    owners = [keypair_from_string(f"sh-owner-{index}") for index in range(spec.n_owners)]
    sampler = (
        ZipfSampler(spec.n_assets, spec.zipf_skew, rng.stream("hot-assets"))
        if spec.zipf_skew > 0
        else None
    )

    # Mint the asset population (each CREATE is single-shard by birth).
    holdings: list[tuple[KeyPair, str, str, int]] = []  # (owner, asset, tx, index)
    for index in range(spec.n_assets):
        owner = owners[index % len(owners)]
        create_tx = driver.prepare_create(owner, {"capabilities": ["churn"], "rank": index})
        cluster.submit_payload(create_tx.to_dict())
        holdings.append((owner, create_tx.tx_id, create_tx.tx_id, 0))
    cluster.run()

    def migration_key(asset_index: int, round_index: int, current_home: str) -> str:
        """A shard_key landing on a different shard than ``current_home``."""
        away = [shard for shard in cluster.shard_ids if shard != current_home]
        target = away[(asset_index + round_index) % len(away)]
        return cluster.ring.key_landing_on(
            target, prefix=f"migrate-{asset_index}-{round_index}"
        )

    cross_submitted = 0
    transfer_homes: dict[str, int] = {}
    for round_index in range(spec.transfer_rounds):
        if sampler is None:
            selected = list(range(spec.n_assets))
        else:
            # Zipf traffic: hot ranks dominate; dedupe keeps one transfer
            # per asset per round (a UTXO spends once per commit wave).
            selected = sorted({sampler.sample() for _ in range(spec.n_assets)})
        submitted: dict[int, tuple] = {}
        for asset_index in selected:
            owner, asset_id, tx_id, output_index = holdings[asset_index]
            recipient = owners[(asset_index + round_index + 1) % len(owners)]
            metadata = None
            if spec.n_shards > 1 and rng.uniform("cross", 0.0, 1.0) < spec.cross_shard_ratio:
                current_home = cluster.router.home_of_tx(tx_id)
                metadata = {
                    SHARD_KEY_METADATA: migration_key(asset_index, round_index, current_home)
                }
                cross_submitted += 1
            transfer_tx = driver.prepare_transfer(
                owner,
                [(tx_id, output_index, 1)],
                asset_id,
                [(recipient.public_key, 1)],
                metadata=metadata,
            )
            cluster.submit_payload(transfer_tx.to_dict())
            home = cluster.router.home_of_tx(transfer_tx.tx_id)
            transfer_homes[home] = transfer_homes.get(home, 0) + 1
            submitted[asset_index] = (recipient, asset_id, transfer_tx.tx_id, 0)
        cluster.run()
        for asset_index, holding in submitted.items():
            record = cluster.record_for(holding[2])
            if record is not None and record.committed_at is not None:
                holdings[asset_index] = holding

    metrics = collect_metrics("SCDB-SHARDED", cluster.records.values())
    metrics.percentiles_ms = cluster.latency_percentiles()
    per_shard = {
        shard_id: sum(
            1 for record in shard.records.values() if record.committed_at is not None
        )
        for shard_id, shard in cluster.shards.items()
    }
    # Hot-shard share over *transfer* traffic (the swept variable); the
    # uniformly-placed CREATE phase would only dilute the signal.
    total_transfers = sum(transfer_homes.values())
    hot_share = (
        max(transfer_homes.values()) / total_transfers
        if total_transfers
        else 1.0 / spec.n_shards
    )
    detail: dict[str, float] = {
        "sim_time": cluster.loop.clock.now,
        "cross_submitted": float(cross_submitted),
        "hot_shard_share": hot_share,
    }
    for key, value in cluster.latency_percentiles().items():
        if key != "count":
            detail[f"latency_{key}"] = value
    for shard_id, committed in sorted(per_shard.items()):
        detail[f"committed_{shard_id}"] = float(committed)
    return ScenarioResult(metrics=metrics, detail=detail)


def run_eth_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Drive the Quorum baseline through the same workload."""
    from repro.consensus.ibft import ibft_config

    n_accounts = spec.n_windows * 2 + 8
    accounts = [f"0xacct{index:04d}" for index in range(n_accounts)]
    chain = QuorumChain(
        QuorumChainConfig(
            n_validators=spec.n_validators,
            seed=spec.seed,
            consensus=ibft_config(
                block_gas_limit=spec.eth_block_gas_limit,
                block_period=spec.eth_block_period,
            ),
        ),
        accounts=accounts,
    )
    client = Web3Client(chain)
    client.deploy("ReverseAuctionMarketplace", "market", accounts[0])

    requested_count, offered_count = spec.caps_counts()
    cap_bytes = len(spec.capability_strings(1, "probe")[0])
    hints = {
        "requested_caps": requested_count,
        "offered_caps": offered_count,
        "cap_bytes": cap_bytes,
    }
    windows = []
    for window in range(spec.n_windows):
        requester = accounts[window % len(accounts)]
        window_caps = spec.capability_strings(offered_count, f"w{window}")
        windows.append((window, requester, window_caps, window_caps[:requested_count]))

    def mirror():
        application = chain.any_application()
        address = application.deployed["market"]
        return application.runtime.contracts[address]._mirror

    def window_tag(capabilities: list[str]) -> str:
        return capabilities[0].split("-", 3)[1] if capabilities else ""

    def submit_creates(window, requester, window_caps, requested):
        for create_index in range(spec.creates_per_window):
            owner = accounts[(window + create_index + 1) % len(accounts)]
            client.transact(
                "market",
                "create_asset",
                [list(window_caps), spec.metadata_fill()],
                owner,
                settle=False,
            )

    def committed_assets(window) -> list[tuple[str, int]]:
        """(owner, on-chain asset id) pairs for this window's committed
        creates — ids are assigned by commit order, so they must be read
        back from the replicated contract state, not guessed."""
        tag = f"w{window}"
        return [
            (entry["owner"], entry["id"])
            for entry in mirror()["assets"]
            if window_tag(entry["capabilities"]) == tag
        ]

    def submit_request(window, requester, window_caps, requested):
        client.transact(
            "market", "create_rfq", [list(requested), spec.metadata_fill()], requester,
            settle=False,
        )

    def committed_rfq(window) -> int | None:
        tag = f"w{window}"
        for entry in mirror()["requests"]:
            if window_tag(entry["capabilities"]) == tag:
                return entry["id"]
        return None

    def submit_bids(assets, rfq_id):
        for owner, asset_id in assets[: spec.bids_per_window]:
            client.transact(
                "market", "create_bid", [rfq_id, asset_id], owner, value=1_000,
                estimate_hints=hints, settle=False,
            )

    def committed_bids(rfq_id) -> list[int]:
        return [
            entry["id"]
            for entry in mirror()["bids"]
            if entry["request_id"] == rfq_id and not entry["refunded"] and not entry["accepted"]
        ]

    def submit_accept(window, requester, rfq_id):
        bids = committed_bids(rfq_id)
        if not bids:
            return
        client.transact(
            "market", "accept_bid", [rfq_id, bids[0]], requester,
            estimate_hints={"bids_for_rfq": len(bids), **hints}, settle=False,
        )

    if spec.phased:
        for entry in windows:
            submit_creates(*entry)
        chain.run()
        for entry in windows:
            submit_request(*entry)
        chain.run()
        rfq_ids = {entry[0]: committed_rfq(entry[0]) for entry in windows}
        for entry in windows:
            rfq_id = rfq_ids[entry[0]]
            if rfq_id is not None:
                submit_bids(committed_assets(entry[0]), rfq_id)
        chain.run()
        for window, requester, _, _ in windows:
            rfq_id = rfq_ids[window]
            if rfq_id is not None:
                submit_accept(window, requester, rfq_id)
        chain.run()
    else:
        for entry in windows:
            submit_creates(*entry)
            chain.run()
            submit_request(*entry)
            chain.run()
            rfq_id = committed_rfq(entry[0])
            if rfq_id is None:
                continue
            submit_bids(committed_assets(entry[0]), rfq_id)
            chain.run()
            submit_accept(entry[0], entry[1], rfq_id)
            chain.run()

    def op_of(record) -> str:
        mapping = {
            "create_asset": "CREATE",
            "create_rfq": "REQUEST",
            "create_bid": "BID",
            "accept_bid": "ACCEPT_BID",
            "transfer_asset": "TRANSFER",
        }
        if record.kind == "transfer":
            return "TRANSFER"
        if record.kind == "deploy":
            return "DEPLOY"
        return mapping.get(record.method or "", record.method or "?")

    records = [record for record in chain.records.values() if record.kind != "deploy"]
    metrics = collect_metrics("ETH-SC", records, operation_of=op_of)
    return ScenarioResult(metrics=metrics, detail={"sim_time": chain.loop.clock.now})
