"""Synthetic workloads (Section 5.1.3) and comparable scenario runners."""

from repro.workloads.generator import (
    CAPABILITY_VOCABULARY,
    PAPER_MIX,
    WorkloadGenerator,
    WorkloadItem,
    WorkloadSpec,
    ZipfSampler,
)
from repro.workloads.scenarios import (
    ScenarioResult,
    ScenarioSpec,
    ShardedScenarioSpec,
    run_eth_scenario,
    run_scdb_scenario,
    run_sharded_scenario,
)

__all__ = [
    "CAPABILITY_VOCABULARY",
    "PAPER_MIX",
    "ScenarioResult",
    "ScenarioSpec",
    "WorkloadGenerator",
    "WorkloadItem",
    "WorkloadSpec",
    "ShardedScenarioSpec",
    "ZipfSampler",
    "run_eth_scenario",
    "run_scdb_scenario",
    "run_sharded_scenario",
]
