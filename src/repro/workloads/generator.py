"""Synthetic workload generator (paper Section 5.1.3).

The authors "devised a synthetic workload generator tailored for the
declarative transaction approach.  This generator creates synthetic
payloads varying in data size across different transaction fields" and
sent 110,000 transactions: CREATE 50k, BID 50k, REQUEST 5k, ACCEPT_BID 5k.

This module generates that mix (scalable down for laptop benchmarks),
with capability strings sized so the serialised transaction hits target
payload sizes — the independent variable of Experiment 1.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from itertools import accumulate
from typing import Iterator, Sequence, TypeVar

from repro.sim.rng import SeededRng

T = TypeVar("T")

#: The paper's full mix; benchmarks scale it by a factor.
PAPER_MIX = {"CREATE": 50_000, "BID": 50_000, "REQUEST": 5_000, "ACCEPT_BID": 5_000}

#: A vocabulary of digital-manufacturing capabilities (the workload's
#: domain: "digital manufacturing capabilities being requested and
#: created respectively").
CAPABILITY_VOCABULARY = [
    "3d-printing-fdm",
    "3d-printing-sla",
    "3d-printing-sls",
    "cnc-milling-3axis",
    "cnc-milling-5axis",
    "cnc-turning",
    "injection-molding",
    "sheet-metal-bending",
    "sheet-metal-cutting",
    "laser-cutting",
    "waterjet-cutting",
    "anodizing",
    "powder-coating",
    "heat-treatment",
    "iso-9001-certified",
    "as-9100-certified",
    "itar-registered",
    "medical-grade-clean-room",
    "titanium-machining",
    "aluminum-casting",
]


class ZipfSampler:
    """Rank-biased discrete sampler: ``P(rank k) ∝ 1 / k**skew``.

    The classic hot-key model: with ``skew`` around 1, a handful of
    leading ranks absorb most draws, which is what drives hot-shard
    imbalance in the sharding benchmark.  ``skew == 0`` degenerates to
    uniform.  Sampling is O(log n) via the precomputed CDF.
    """

    def __init__(self, n: int, skew: float, rng: random.Random):
        if n < 1:
            raise ValueError(f"need at least one rank, got {n}")
        if skew < 0:
            raise ValueError(f"skew must be >= 0, got {skew}")
        self.n = n
        self.skew = skew
        self._rng = rng
        weights = [1.0 / (rank ** skew) for rank in range(1, n + 1)]
        self._cdf = list(accumulate(weights))

    def sample(self) -> int:
        """Draw a 0-based rank (0 is the hottest)."""
        point = self._rng.random() * self._cdf[-1]
        return bisect_left(self._cdf, point)

    def choice(self, options: Sequence[T]) -> T:
        """Draw one of ``options`` with rank-biased popularity (the
        element order defines the popularity ranking)."""
        if len(options) != self.n:
            raise ValueError(f"sampler built for {self.n} ranks, got {len(options)}")
        return options[self.sample()]


@dataclass(frozen=True)
class WorkloadItem:
    """One transaction intent, not yet built/signed."""

    operation: str
    actor: int
    capabilities: tuple[str, ...]
    metadata_fill: str
    request_index: int | None = None


@dataclass
class WorkloadSpec:
    """Parameters of a generated workload.

    Attributes:
        total: number of transactions (mix proportions follow PAPER_MIX).
        target_payload_bytes: approximate serialised transaction size —
            reached by padding metadata with filler strings ("a list of
            strings of various sizes in the metadata of REQUEST and
            CREATE transactions").
        n_actors: distinct accounts issuing transactions.
        capabilities_per_item: capability list length for assets/requests.
        zipf_skew: when > 0, actor activity and capability popularity are
            Zipf-distributed with this exponent (hot actors / hot
            capabilities) instead of uniform — the skewed key mix the
            sharding benchmark uses to provoke hot-shard imbalance.
        seed: determinism.
    """

    total: int = 1_100
    target_payload_bytes: int = 1_115  # ~1.09 KB, Experiment 2's fixed size
    n_actors: int = 64
    capabilities_per_item: int = 4
    zipf_skew: float = 0.0
    seed: int = 2024

    def mix(self) -> dict[str, int]:
        """Scale PAPER_MIX down to ``total`` preserving proportions."""
        factor = self.total / sum(PAPER_MIX.values())
        counts = {op: max(1, round(count * factor)) for op, count in PAPER_MIX.items()}
        # ACCEPT_BID cannot outnumber REQUESTs.
        counts["ACCEPT_BID"] = min(counts["ACCEPT_BID"], counts["REQUEST"])
        return counts


class WorkloadGenerator:
    """Generates deterministic transaction intents for both systems."""

    def __init__(self, spec: WorkloadSpec | None = None):
        self.spec = spec or WorkloadSpec()
        self._rng = SeededRng(self.spec.seed)
        self._actor_sampler: ZipfSampler | None = None
        self._capability_sampler: ZipfSampler | None = None
        if self.spec.zipf_skew > 0:
            self._actor_sampler = ZipfSampler(
                self.spec.n_actors, self.spec.zipf_skew, self._rng.stream("zipf-actor")
            )
            self._capability_sampler = ZipfSampler(
                len(CAPABILITY_VOCABULARY),
                self.spec.zipf_skew,
                self._rng.stream("zipf-caps"),
            )

    def _actor(self) -> int:
        if self._actor_sampler is not None:
            return self._actor_sampler.sample()
        return self._rng.randint("actor", 0, self.spec.n_actors - 1)

    def _capabilities(self, stream: str) -> tuple[str, ...]:
        count = self.spec.capabilities_per_item
        if self._capability_sampler is not None:
            return tuple(
                self._capability_sampler.choice(CAPABILITY_VOCABULARY)
                for _ in range(count)
            )
        return tuple(
            self._rng.choice(stream, CAPABILITY_VOCABULARY) for _ in range(count)
        )

    def _filler(self, base_overhead: int) -> str:
        """Metadata padding to reach the target payload size."""
        pad = max(0, self.spec.target_payload_bytes - base_overhead)
        return "x" * pad

    def items(self) -> Iterator[WorkloadItem]:
        """Yield intents in an interleaved, dependency-respecting order.

        CREATEs and REQUESTs flow first within each window so BIDs always
        have assets/requests to build on; ACCEPT_BIDs trail their
        requests.  The interleaving mirrors an open marketplace rather
        than distinct phases.
        """
        counts = self.spec.mix()
        # Base serialised-transaction overhead (measured empirically on the
        # declarative format): ~950 bytes of envelope for small payloads.
        base_overhead = 950
        creates = counts["CREATE"]
        bids = counts["BID"]
        requests = counts["REQUEST"]
        accepts = counts["ACCEPT_BID"]

        # Phase structure per request "window": enough creates to back the
        # bids, the request, the bids, then (later) the accept.
        bids_per_request = max(1, bids // max(requests, 1))
        creates_per_request = max(1, creates // max(requests, 1))

        create_index = 0
        bid_index = 0
        for request_index in range(requests):
            for _ in range(creates_per_request):
                if create_index >= creates:
                    break
                create_index += 1
                yield WorkloadItem(
                    operation="CREATE",
                    actor=self._actor(),
                    capabilities=self._capabilities("caps-create"),
                    metadata_fill=self._filler(base_overhead),
                )
            yield WorkloadItem(
                operation="REQUEST",
                actor=self._actor(),
                capabilities=self._capabilities("caps-request")[:2],
                metadata_fill=self._filler(base_overhead),
                request_index=request_index,
            )
            for _ in range(bids_per_request):
                if bid_index >= bids:
                    break
                bid_index += 1
                yield WorkloadItem(
                    operation="BID",
                    actor=self._actor(),
                    capabilities=(),
                    metadata_fill="",
                    request_index=request_index,
                )
            if request_index < accepts:
                yield WorkloadItem(
                    operation="ACCEPT_BID",
                    actor=0,  # resolved to the requester by the runner
                    capabilities=(),
                    metadata_fill="",
                    request_index=request_index,
                )

    def counts(self) -> dict[str, int]:
        """Actual per-operation counts of :meth:`items`."""
        counts: dict[str, int] = {}
        for item in self.items():
            counts[item.operation] = counts.get(item.operation, 0) + 1
        return counts
