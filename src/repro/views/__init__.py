"""WAL-fed incremental materialized views and follower reads.

The durability WAL (PR 5) already totally orders every committed block —
:class:`~repro.views.feed.ChangeFeed` tails it (via the group-commit
log's post-``fsync`` listener hook, so the feed only ever sees durable
records) into a :class:`~repro.views.manager.ViewManager` that maintains
the marketplace's hot read sets incrementally: open RFQs by capability,
live bids per request, unspent outputs by owner, the exact
``(transaction_id, output_index)``-keyed spend graph that provenance
walks, and operation-volume/settlement counters.

:class:`~repro.views.replica.ReadReplica` wraps a manager into a
snapshot-consistent follower with read-your-writes via chain-height
tokens.  Reads served here never touch the validators' collections —
they stop costing the commit path anything (ROADMAP item 2).
"""

from repro.views.feed import ChangeFeed
from repro.views.manager import ViewManager
from repro.views.replica import ReadReplica, ReadToken

__all__ = ["ChangeFeed", "ReadReplica", "ReadToken", "ViewManager"]
