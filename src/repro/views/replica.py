"""Snapshot-consistent follower reads with read-your-writes tokens.

A :class:`ReadReplica` is the serving edge of the view layer: it wraps a
:class:`~repro.views.manager.ViewManager` and answers wallet and
marketplace queries from the materialized views, deep-copying anything
it hands out so callers can never alias committed state.

Read-your-writes works through chain-height tokens.  A client that just
committed a write captures :meth:`ReadReplica.token` (or builds one from
the commit's shard height); any later read that passes the token back is
checked against the replica's applied heights and refused with
:class:`StaleReadError` while the replica still lags — the caller
retries or falls back to a fresher replica, the replica never silently
serves a snapshot older than the client's own write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.encoding import deep_copy_json
from repro.views.manager import ViewManager


class StaleReadError(RuntimeError):
    """The replica has not yet applied the writes the token names."""


@dataclass(frozen=True)
class ReadToken:
    """Per-shard chain heights a read must be at least as fresh as."""

    heights: tuple[tuple[str, int], ...] = ()

    def covered_by(self, applied: dict[str, int]) -> bool:
        return all(applied.get(shard, 0) >= height for shard, height in self.heights)

    @classmethod
    def for_heights(cls, heights: dict[str, int]) -> "ReadToken":
        return cls(tuple(sorted(heights.items())))


class ReadReplica:
    """Follower read surface over one view manager."""

    def __init__(self, views: ViewManager, label: str = "replica"):
        self._views = views
        self.label = label
        self.stats = {"reads": 0, "stale_rejected": 0}

    # -- tokens ----------------------------------------------------------------

    def token(self) -> ReadToken:
        """A token pinning this replica's current applied heights."""
        return ReadToken.for_heights(self._views.heights())

    def caught_up_to(self, token: ReadToken | None) -> bool:
        return token is None or token.covered_by(self._views.heights())

    def _admit(self, token: ReadToken | None) -> None:
        if not self.caught_up_to(token):
            self.stats["stale_rejected"] += 1
            raise StaleReadError(
                f"replica {self.label} at {self._views.heights()} "
                f"behind token {dict(token.heights)}"
            )
        self.stats["reads"] += 1

    # -- queries ---------------------------------------------------------------

    def open_requests(
        self, capability: str | None = None, token: ReadToken | None = None
    ) -> list[dict[str, Any]]:
        self._admit(token)
        return [deep_copy_json(r) for r in self._views.open_requests(capability)]

    def outputs_for(
        self, public_key: str, token: ReadToken | None = None
    ) -> list[dict[str, Any]]:
        self._admit(token)
        return [deep_copy_json(doc) for doc in self._views.outputs_for(public_key)]

    def transaction(
        self, tx_id: str, token: ReadToken | None = None
    ) -> dict[str, Any] | None:
        self._admit(token)
        payload = self._views.transaction(tx_id)
        return deep_copy_json(payload) if payload is not None else None

    def bids_for(
        self, request_id: str, token: ReadToken | None = None
    ) -> list[dict[str, Any]]:
        self._admit(token)
        return [deep_copy_json(b) for b in self._views.referencing("BID", request_id)]

    def bid_competition(self, token: ReadToken | None = None) -> dict[str, int]:
        self._admit(token)
        return self._views.bid_competition()

    def capability_demand(self, token: ReadToken | None = None) -> dict[str, int]:
        self._admit(token)
        return self._views.capability_demand()

    def operation_volume(self, token: ReadToken | None = None) -> dict[str, int]:
        self._admit(token)
        return self._views.operation_volume()

    def settlement_rate(self, token: ReadToken | None = None) -> float:
        self._admit(token)
        return self._views.settlement_rate()
