"""Change feed: from the group-commit log into the view manager.

The WAL is already a total-order change feed — every committed block is
journaled as ``{"k": "block", "b": <block record>}`` before the commit
is acknowledged.  :class:`ChangeFeed` subscribes to a
:class:`~repro.durability.commitlog.GroupCommitLog`'s post-sync
listeners, so view updates are driven exclusively by records that are
*durable on disk*: a power failure can never leave the views ahead of
what recovery will rebuild.

One feed serves one shard (one log); a deployment-level
:class:`~repro.views.manager.ViewManager` simply attaches one feed per
node per shard — the manager's height cursor collapses the n-way
duplication (every node journals the same block) into a single
application.

For attaching views to a deployment that already has history on disk,
:meth:`ChangeFeed.bootstrap` replays the journal's block records
(snapshot blocks + WAL suffix) through the same cursor, then the live
listener takes over — the classic catch-up-then-tail pattern.
"""

from __future__ import annotations

from typing import Any

from repro.views.manager import ViewManager


class ChangeFeed:
    """Tails one durability journal into a :class:`ViewManager`."""

    def __init__(self, manager: ViewManager, shard: str, log=None):
        self.manager = manager
        self.shard = shard
        #: LSN of the newest record this feed has seen (feed cursor).
        self.last_lsn = 0
        self.stats = {"flushes": 0, "records": 0, "blocks": 0}
        if log is not None:
            self.attach(log)

    def attach(self, log) -> None:
        """Subscribe to a group-commit log's durable-flush notifications.

        ``NodeDurability.reopen`` keeps the same log object across a
        restart-from-disk, so one ``attach`` survives the node's crashes.
        """
        log.listeners.append(self._on_flush)

    def _on_flush(self, entries: list[tuple[int, dict[str, Any]]]) -> None:
        self.stats["flushes"] += 1
        for lsn, record in entries:
            self.stats["records"] += 1
            self.last_lsn = lsn
            if record.get("k") == "block":
                self.stats["blocks"] += 1
                self.manager.apply_block_record(self.shard, record["b"])

    def bootstrap(self, durability, from_height: int = 0) -> int:
        """Replay block records already on disk; returns blocks applied.

        Reads the newest snapshot plus the WAL suffix read-only (the
        node's own recovery machinery is untouched) and pushes every
        block record above ``from_height`` through the same height
        cursor the live listener uses, so a record arriving both ways is
        applied once.
        """
        from repro.durability.recovery import scan_block_records

        applied = 0
        for record in scan_block_records(durability, from_height=from_height):
            if self.manager.apply_block_record(self.shard, record):
                applied += 1
        return applied
