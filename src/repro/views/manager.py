"""Incrementally maintained materialized views over committed blocks.

The :class:`ViewManager` consumes the durability journal's block
records (``{"k": "block", "b": {...}}`` payloads — the vocabulary of
:mod:`repro.durability.recovery`) and maintains every hot read set the
marketplace queries need, so analytics and wallet reads stop re-scanning
the transactions collection per call.

Design points:

- **Block-fed, height-deduplicated.**  Views apply *block* records only,
  keyed by per-shard chain height.  Every node of a shard journals the
  same block at the same height (chain consistency), and catch-up after
  a crash re-journals already-seen blocks — both collapse into one
  application per height.  Out-of-order arrivals (a lagging node's feed
  draining late) buffer until the gap closes.
- **Order-robust across shards.**  A deployment-level manager merges
  per-shard feeds whose interleaving is nondeterministic.  Every table
  is defined so the *final* state is independent of cross-shard apply
  order: a spent output never resurrects (the spender map is consulted
  on insert), and a REQUEST whose ACCEPT_BID applied first is born
  settled.
- **Internal references, copied at the serving edge.**  Like the
  zero-copy collection scans, the manager stores references to the
  journaled payloads; the server/replica layer deep-copies what it
  hands to callers.
"""

from __future__ import annotations

from typing import Any

from repro.core.asset import extract_capabilities

#: Operation names the volume counters report (mirrors the analytics
#: query's fixed vocabulary).
OPERATIONS = (
    "CREATE",
    "TRANSFER",
    "REQUEST",
    "BID",
    "ACCEPT_BID",
    "RETURN",
    "INTEREST",
    "PRE_REQUEST",
)


class ViewManager:
    """Materialized views over the committed transaction stream."""

    def __init__(self, telemetry=None, telemetry_label: str = "views"):
        self.telemetry = telemetry
        self.telemetry_label = telemetry_label
        #: tx_id -> committed payload (reference, not a copy).
        self._txs: dict[str, dict[str, Any]] = {}
        #: tx_id -> shard key that committed it (for per-shard serving).
        self._tx_shard: dict[str, str] = {}
        #: tx_id -> shard key a migration cutover re-homed it to.  Kept
        #: apart from ``_tx_shard`` (and from the consistency snapshot):
        #: a transaction's outputs can change owner shard long after its
        #: committing feed record was applied, and may even re-attribute
        #: *before* that record arrives — the override wins either way.
        self._shard_overrides: dict[str, str] = {}
        #: operation -> tx ids in application order.
        self._by_operation: dict[str, list[str]] = {}
        self._op_counts: dict[str, int] = {}
        #: (transaction_id, output_index) -> spending tx id.
        self._spender: dict[tuple[str, int], str] = {}
        #: (transaction_id, output_index) -> utxo document.
        self._utxos: dict[tuple[str, int], dict[str, Any]] = {}
        #: public key -> ordered set (insertion-ordered dict) of utxo refs.
        self._owner_index: dict[str, dict[tuple[str, int], None]] = {}
        #: ordered set of open (unaccepted) request ids.
        self._open_requests: dict[str, None] = {}
        #: capability -> ordered set of open request ids.
        self._requests_by_capability: dict[str, dict[str, None]] = {}
        #: capability -> total demand count across all requests ever.
        self._capability_demand: dict[str, int] = {}
        #: request id -> bid tx ids in application order.
        self._bids_by_request: dict[str, list[str]] = {}
        #: request id -> interest tx ids in application order.
        self._interest_by_request: dict[str, list[str]] = {}
        #: request id -> accepting tx id.
        self._accept_by_request: dict[str, str] = {}
        #: shard key -> highest contiguously applied height.
        self._heights: dict[str, int] = {}
        #: shard key -> {height: block record} waiting for a gap to close.
        self._pending: dict[str, dict[int, dict[str, Any]]] = {}
        self.stats = {
            "blocks_applied": 0,
            "blocks_duplicate": 0,
            "blocks_buffered": 0,
            "txs_applied": 0,
        }

    # -- ingestion -------------------------------------------------------------

    def apply_block_record(self, shard: str, record: dict[str, Any]) -> bool:
        """Apply one journal block record; returns True if it advanced.

        Records at or below the shard's applied height are duplicates
        (multi-node feeds, catch-up re-journaling) and are dropped;
        records above ``height + 1`` buffer until the gap closes.
        """
        height = record["h"]
        applied = self._heights.get(shard, 0)
        if height <= applied:
            self.stats["blocks_duplicate"] += 1
            return False
        if height > applied + 1:
            self._pending.setdefault(shard, {})[height] = record
            self.stats["blocks_buffered"] += 1
            return False
        self._apply(shard, record)
        # Drain any buffered successors the gap was hiding.
        pending = self._pending.get(shard)
        while pending:
            record = pending.pop(self._heights[shard] + 1, None)
            if record is None:
                break
            self._apply(shard, record)
        return True

    def _apply(self, shard: str, record: dict[str, Any]) -> None:
        txs = record.get("txs") or []
        for entry in txs:
            self._apply_tx(shard, entry[0], entry[1])
        self._heights[shard] = record["h"]
        self.stats["blocks_applied"] += 1
        self.stats["txs_applied"] += len(txs)
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter("view_blocks_applied", node=self.telemetry_label).inc()
            tel.histogram("view_apply_txs", node=self.telemetry_label).observe(
                float(len(txs))
            )

    def _apply_tx(self, shard: str, tx_id: str, payload: dict[str, Any]) -> None:
        if tx_id in self._txs:
            return
        self._txs[tx_id] = payload
        self._tx_shard[tx_id] = shard
        operation = payload.get("operation", "?")
        self._op_counts[operation] = self._op_counts.get(operation, 0) + 1
        self._by_operation.setdefault(operation, []).append(tx_id)

        for item in payload.get("inputs") or []:
            fulfills = item.get("fulfills") if isinstance(item, dict) else None
            if not isinstance(fulfills, dict):
                continue
            ref = (fulfills.get("transaction_id"), fulfills.get("output_index"))
            if ref[0] is None or ref[1] is None:
                continue
            self._spender[ref] = tx_id
            self._drop_utxo(ref)

        for index, output in enumerate(payload.get("outputs") or []):
            ref = (tx_id, index)
            # A cross-shard spender's block may have applied before its
            # input's creating block: never resurrect a spent output.
            if ref in self._spender:
                continue
            document = {
                "transaction_id": tx_id,
                "output_index": index,
                "public_keys": output.get("public_keys", []),
                "amount": output.get("amount"),
            }
            self._utxos[ref] = document
            for public_key in document["public_keys"]:
                self._owner_index.setdefault(public_key, {})[ref] = None

        if operation == "REQUEST":
            capabilities = extract_capabilities(payload.get("asset"))
            for capability in capabilities:
                self._capability_demand[capability] = (
                    self._capability_demand.get(capability, 0) + 1
                )
            # Born settled if the ACCEPT_BID's shard applied first.
            if tx_id not in self._accept_by_request:
                self._open_requests[tx_id] = None
                for capability in capabilities:
                    self._requests_by_capability.setdefault(capability, {})[tx_id] = None
        elif operation == "BID":
            for reference in payload.get("references") or []:
                self._bids_by_request.setdefault(reference, []).append(tx_id)
        elif operation == "INTEREST":
            for reference in payload.get("references") or []:
                self._interest_by_request.setdefault(reference, []).append(tx_id)
        elif operation == "ACCEPT_BID":
            for reference in payload.get("references") or []:
                self._accept_by_request[reference] = tx_id
                self._close_request(reference)

    def _drop_utxo(self, ref: tuple[str, int]) -> None:
        document = self._utxos.pop(ref, None)
        if document is None:
            return
        for public_key in document["public_keys"]:
            owned = self._owner_index.get(public_key)
            if owned is not None:
                owned.pop(ref, None)

    def _close_request(self, request_id: str) -> None:
        self._open_requests.pop(request_id, None)
        request = self._txs.get(request_id)
        if request is None:
            return
        for capability in extract_capabilities(request.get("asset")):
            index = self._requests_by_capability.get(capability)
            if index is not None:
                index.pop(request_id, None)

    # -- cursors ---------------------------------------------------------------

    def height(self, shard: str) -> int:
        """Highest contiguously applied block height for one shard."""
        return self._heights.get(shard, 0)

    def heights(self) -> dict[str, int]:
        return dict(self._heights)

    def total_height(self) -> int:
        return sum(self._heights.values())

    # -- marketplace views -----------------------------------------------------

    def open_requests(
        self, capability: str | None = None, shard: str | None = None
    ) -> list[dict[str, Any]]:
        """Open RFQ payloads, in commit order (references, not copies)."""
        if capability is None:
            ids = self._open_requests
        else:
            ids = self._requests_by_capability.get(capability, {})
        requests = (self._txs[request_id] for request_id in ids)
        if shard is None:
            return list(requests)
        return [r for r in requests if self._shard_of(r["id"]) == shard]

    def outputs_for(
        self, public_key: str, shard: str | None = None
    ) -> list[dict[str, Any]]:
        """Unspent output documents for an owner (references)."""
        refs = self._owner_index.get(public_key, {})
        if shard is None:
            return [self._utxos[ref] for ref in refs]
        return [
            self._utxos[ref]
            for ref in refs
            if self._shard_of(ref[0]) == shard
        ]

    def _shard_of(self, tx_id: str) -> str | None:
        """Serving shard of a transaction's outputs: migration override
        first, committing shard otherwise."""
        override = self._shard_overrides.get(tx_id)
        if override is not None:
            return override
        return self._tx_shard.get(tx_id)

    def note_migration(self, tx_ids: list[str], shard: str) -> None:
        """Re-attribute moved transactions to their new owner shard.

        Called at every migration cutover (and by its idempotent repair
        passes): the per-shard serving feeds re-bootstrap so reads for
        the moved range resolve against the new owner immediately, even
        for feed records still in flight.  The override map is not part
        of the consistency snapshot — ``mv_consistency`` compares the
        committed stream's deterministic state, and ownership moves are
        a routing overlay on top of it.
        """
        for tx_id in tx_ids:
            self._shard_overrides[tx_id] = shard

    def transaction(self, tx_id: str) -> dict[str, Any] | None:
        return self._txs.get(tx_id)

    def transactions_by_operation(self, operation: str) -> list[dict[str, Any]]:
        return [self._txs[tx_id] for tx_id in self._by_operation.get(operation, [])]

    def operation_count(self, operation: str) -> int:
        return self._op_counts.get(operation, 0)

    def referencing(self, operation: str, reference: str) -> list[dict[str, Any]]:
        """Transactions of one operation referencing a request id."""
        if operation == "BID":
            ids = self._bids_by_request.get(reference, [])
        elif operation == "INTEREST":
            ids = self._interest_by_request.get(reference, [])
        elif operation == "ACCEPT_BID":
            accept = self._accept_by_request.get(reference)
            ids = [accept] if accept is not None else []
        else:
            return [
                self._txs[tx_id]
                for tx_id in self._by_operation.get(operation, [])
                if reference in (self._txs[tx_id].get("references") or [])
            ]
        return [self._txs[tx_id] for tx_id in ids]

    def spender_of(self, tx_id: str, output_index: int) -> dict[str, Any] | None:
        """The committed transaction spending one exact output ref."""
        spender = self._spender.get((tx_id, output_index))
        return self._txs.get(spender) if spender is not None else None

    def bid_competition(self) -> dict[str, int]:
        return {
            request_id: len(bids)
            for request_id, bids in self._bids_by_request.items()
            if bids
        }

    def capability_demand(self) -> dict[str, int]:
        return dict(self._capability_demand)

    def operation_volume(self) -> dict[str, int]:
        return {
            operation: self._op_counts[operation]
            for operation in OPERATIONS
            if self._op_counts.get(operation)
        }

    def settlement_rate(self) -> float:
        requests = self._op_counts.get("REQUEST", 0)
        if requests == 0:
            return 0.0
        return self._op_counts.get("ACCEPT_BID", 0) / requests

    # -- consistency -----------------------------------------------------------

    def consistency_snapshot(self) -> dict[str, Any]:
        """Canonical, apply-order-independent digest of every view.

        Two managers fed the same blocks — in any per-shard-contiguous
        interleaving — produce equal snapshots.  The chaos harness's
        ``mv_consistency`` invariant compares the live manager against a
        from-scratch rebuild through this.
        """
        return {
            "heights": dict(sorted(self._heights.items())),
            "op_counts": dict(sorted(self._op_counts.items())),
            "tx_ids": sorted(self._txs),
            "spenders": sorted(
                (ref[0], ref[1], spender) for ref, spender in self._spender.items()
            ),
            "utxos": sorted(
                (ref[0], ref[1], tuple(doc["public_keys"]), doc["amount"])
                for ref, doc in self._utxos.items()
            ),
            "open_requests": sorted(self._open_requests),
            "requests_by_capability": {
                capability: sorted(ids)
                for capability, ids in sorted(self._requests_by_capability.items())
                if ids
            },
            "capability_demand": dict(sorted(self._capability_demand.items())),
            "bids_by_request": {
                request_id: sorted(ids)
                for request_id, ids in sorted(self._bids_by_request.items())
                if ids
            },
            "accept_by_request": dict(sorted(self._accept_by_request.items())),
        }
