"""The SmartchainDB cluster: servers + Tendermint + network, assembled.

This is the top-level object examples and benchmarks interact with: it
owns the simulated event loop, the validator network, one
:class:`~repro.core.server.SmartchainServer` per node, the
:class:`~repro.core.driver.Driver`, nested-transaction workers and the
latency/throughput records the evaluation section measures.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.common.encoding import canonical_bytes, deep_copy_json
from repro.common.errors import SchemaValidationError, ValidationError
from repro.consensus.abci import envelope_for
from repro.consensus.bft import BftConfig, BftEngine, CommitRecord
from repro.consensus.tendermint import make_tendermint_cluster, tendermint_config
from repro.core.context import ValidationContext
from repro.core.driver import Driver, DriverCallback
from repro.core.nested import NestedTransactionProcessor
from repro.core.server import ServerCostModel, SmartchainServer
from repro.core.transaction import ACCEPT_BID
from repro.crypto.keys import ReservedAccounts
from repro.durability.node import DurabilityConfig, NodeDurability
from repro.durability.recovery import collections_state, recover
from repro.sim.events import EventLoop
from repro.sim.failures import FailureInjector
from repro.sim.network import Network, NetworkConfig
from repro.sim.rng import SeededRng
from repro.storage.database import make_smartchaindb_database
from repro.telemetry import DEFAULT_SAMPLE_RATE, TRACE_SAMPLED, Telemetry


@dataclass
class TxRecord:
    """Lifecycle record for one submitted transaction."""

    tx_id: str
    operation: str
    size_bytes: int
    submitted_at: float
    committed_at: float | None = None
    rejected: str | None = None

    @property
    def latency(self) -> float | None:
        if self.committed_at is None:
            return None
        return self.committed_at - self.submitted_at


@dataclass
class ClusterConfig:
    """Everything tunable about a SmartchainDB deployment."""

    n_validators: int = 4
    seed: int = 2024
    consensus: BftConfig = field(default_factory=lambda: tendermint_config(max_block_txs=8))
    network: NetworkConfig = field(default_factory=NetworkConfig)
    cost_model: ServerCostModel = field(default_factory=ServerCostModel)
    indexed_storage: bool = True
    #: Parallel conflict-free validation lanes per node (1 = serial); the
    #: declarative access sets make the partition exact, so lanes change
    #: block-validation time, never verdicts.
    validation_lanes: int = 4
    #: Register the INTEREST / PRE_REQUEST extension types on every node.
    enable_extensions: bool = False
    #: Delay before nested-transaction workers pick up queued RETURNs.
    worker_poll_interval: float = 0.002
    #: Parallel RETURN workers per receiver node.
    worker_parallelism: int = 4
    #: Per-node durability stack (WAL + group commit + snapshots).  None
    #: keeps the abstract always-durable storage model; set to a
    #: :class:`~repro.durability.node.DurabilityConfig` to journal every
    #: mutation and enable :meth:`SmartchainCluster.restart_node_from_disk`.
    durability: DurabilityConfig | None = None
    #: Master telemetry switch: False keeps the registry/tracer/flight
    #: recorder constructed but dormant (one attribute read per hot site).
    telemetry_enabled: bool = True
    #: WAL-fed materialized views (:mod:`repro.views`).  None = auto:
    #: enabled whenever durability is on (the feed tails the WAL, so a
    #: volatile deployment has nothing to tail).  False disables even on
    #: durable deployments.
    views: bool | None = None
    #: Fraction of transactions whose lifecycle timeline is traced.
    #: Metrics (histograms/counters/gauges) are never sampled.
    trace_sample_rate: float = DEFAULT_SAMPLE_RATE


class SmartchainCluster:
    """A full SmartchainDB deployment on a simulated network.

    Args:
        config: deployment parameters.
        loop: optional shared event loop — a sharded deployment composes
            several clusters on one loop so their simulated time advances
            together and cross-shard protocols interleave with consensus.
        telemetry: optional shared :class:`~repro.telemetry.Telemetry` —
            a sharded deployment hands every shard one instance so
            cross-shard traces stitch and histograms merge in one place.
        scope: label prefix for this cluster's metric series ("shard-0")
            so node ids stay unique across shards in one registry.
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        loop: EventLoop | None = None,
        telemetry: Telemetry | None = None,
        scope: str = "",
        views=None,
    ):
        self.config = config or ClusterConfig()
        self.loop = loop or EventLoop()
        self.rng = SeededRng(self.config.seed)
        self.scope = scope
        if telemetry is not None:
            self.telemetry = telemetry
        else:
            self.telemetry = Telemetry(
                self.loop.clock,
                # Salt from a named seeded stream: sampling verdicts replay
                # byte-identically and consume no other stream's draws.
                sample_salt=self.rng.stream("telemetry").getrandbits(64),
                sample_rate=self.config.trace_sample_rate,
                enabled=self.config.telemetry_enabled,
            )
        #: Predicate deciding whether a commit observes into the latency
        #: histograms (the sharded facade filters out its own internal
        #: home-shard submissions of cross-shard transactions, whose
        #: end-to-end latency the facade records instead).
        self.latency_filter = None
        #: Callables fired with the node id at the end of every
        #: :meth:`resync_node` — the sharded facade hangs migration
        #: scrubbing here, so a node restored from a pre-cutover disk
        #: image gets its moved/received keys re-applied from the forced
        #: migration journal before traffic reaches it.
        self.resync_hooks: list = []
        self.network = Network(self.loop, self.rng, self.config.network)
        self.reserved = ReservedAccounts()
        self.servers: dict[str, SmartchainServer] = {}
        #: Per-node persistence stacks (empty when durability is off).
        self.node_durability: dict[str, NodeDurability] = {}

        def factory(node_id: str) -> SmartchainServer:
            durability = None
            if self.config.durability is not None:
                durability = NodeDurability(
                    node_id, self.loop, self.config.durability
                )
                self.node_durability[node_id] = durability
            server = SmartchainServer(
                node_id,
                self.reserved,
                clock=self.loop.clock,
                cost_model=self.config.cost_model,
                indexed_storage=self.config.indexed_storage,
                # One shared named stream: batch-verify coefficients are
                # the only randomness crypto consumes, and routing it
                # through the cluster seed keeps replays byte-identical.
                rng=self.rng.stream("crypto-batch"),
                validation_lanes=self.config.validation_lanes,
                durability=durability,
            )
            if self.config.enable_extensions:
                from repro.core.extensions import register_marketplace_extensions

                register_marketplace_extensions(server.validator)
            server.telemetry = self.telemetry
            server.telemetry_label = self.node_label(node_id)
            if durability is not None:
                durability.log.telemetry = self.telemetry
                durability.log.telemetry_label = self.node_label(node_id)
            self.servers[node_id] = server
            return server

        self.engine: BftEngine = make_tendermint_cluster(
            self.loop,
            self.network,
            factory,
            n_validators=self.config.n_validators,
            config=self.config.consensus,
        )
        self.failures = FailureInjector(self.loop, self.network)
        for node_id in self.engine.validator_order:
            validator = self.engine.validator(node_id)
            validator.telemetry = self.telemetry
            validator.telemetry_label = self.node_label(node_id)
            validator.mempool.telemetry = self.telemetry
            validator.mempool.telemetry_label = self.node_label(node_id)
            self.failures.register_callbacks(
                node_id,
                on_crash=validator.on_crash,
                on_recover=lambda nid=node_id: self.resync_node(nid),
            )
            durability = self.node_durability.get(node_id)
            if durability is not None:
                validator.persistence = durability
                durability.state_provider = (
                    lambda nid=node_id: self._node_checkpoint_state(nid)
                )

        #: Deployment-level :class:`~repro.views.ViewManager` (shared by
        #: a sharded facade, owned by a standalone durable cluster, None
        #: when disabled or volatile) and the live feeds tailing each
        #: node's group-commit log into it.
        self.views = views
        self.view_feeds: list = []
        views_enabled = (
            self.config.views if self.config.views is not None else True
        ) and self.config.durability is not None
        if views_enabled:
            from repro.views import ChangeFeed, ViewManager

            if self.views is None:
                self.views = ViewManager(
                    telemetry=self.telemetry, telemetry_label=self.view_shard_key
                )
            for node_id, durability in self.node_durability.items():
                # One feed per node: every replica journals every block,
                # and the manager's per-shard height cursor collapses the
                # n-way duplication.  reopen() keeps the log object across
                # restart-from-disk, so these subscriptions are permanent.
                self.view_feeds.append(
                    ChangeFeed(self.views, self.view_shard_key, durability.log)
                )
            for node_id, server in self.servers.items():
                server.views = self.views
                server.views_shard = self.view_shard_key
                server.chain_height_provider = (
                    lambda nid=node_id: len(self.engine.validator(nid).chain)
                )

        self.driver = Driver(self)
        self.records: dict[str, TxRecord] = {}
        #: Outputs consumed by cross-shard commits (see consume_outputs):
        #: kept so a node applying the *creating* block late — it was
        #: crashed or partitioned when the 2PC decision landed — does not
        #: resurrect an already-spent UTXO.  Found by the chaos harness.
        #: Bounded FIFO window (like the mempool's dedup memory): a
        #: laggard only needs the entry until it next catches up, which
        #: is far sooner than the window takes to cycle.
        self._foreign_spent: "OrderedDict[tuple[str, int], None]" = OrderedDict()
        self._foreign_spent_capacity = 100_000
        for server in self.servers.values():
            server.commit_hooks.append(
                lambda payload, srv=server: self._scrub_foreign_spent(srv, payload)
            )
        self._callbacks: dict[str, DriverCallback] = {}
        #: accept_id -> receiver node responsible for its RETURN children.
        self._accept_receivers: dict[str, str] = {}
        self.engine.commit_listeners.append(self._on_block_commit)

    def node_label(self, node_id: str) -> str:
        """Registry label for one node, unique across a sharded deployment."""
        return f"{self.scope}/{node_id}" if self.scope else node_id

    @property
    def view_shard_key(self) -> str:
        """Key this cluster's blocks apply under in a view manager."""
        return self.scope or "main"

    def read_replica(self, label: str = "replica"):
        """A follower read surface over the materialized views.

        Raises:
            RuntimeError: when views are disabled (volatile deployment).
        """
        if self.views is None:
            raise RuntimeError("materialized views are disabled on this cluster")
        from repro.views import ReadReplica

        return ReadReplica(self.views, label=label)

    # -- submission path -----------------------------------------------------------

    def submit_payload(
        self,
        payload: dict[str, Any],
        callback: DriverCallback | None = None,
        receiver: str | None = None,
        shard_hint: str | None = None,
        _retry: bool = False,
    ):
        """Route a payload to a (random) receiver node — Fig. 4 lifecycle.

        The receiver performs full semantic validation (charged to the
        simulated clock), then gossips the transaction into mempools.

        ``shard_hint`` exists for driver compatibility with sharded
        deployments; a single cluster is its own (only) shard and ignores
        the hint.
        """
        from repro.core.driver import SubmitResult  # local import to avoid cycle

        tx_id = payload.get("id", "")
        operation = payload.get("operation", "?")
        existing = self.records.get(tx_id)
        if existing is not None and existing.rejected is None and not _retry:
            # Already in flight or committed (e.g. the same RETURN child
            # determined by several nodes): keep the original record.
            return SubmitResult(tx_id, operation, accepted=True)
        if not _retry:
            # The driver-to-cluster trust boundary: one deep copy here
            # means no caller-held reference can mutate the payload the
            # pipeline (and its identity-keyed verification cache)
            # verifies — the single copy the zero-copy discipline keeps.
            payload = deep_copy_json(payload)
        size_bytes = len(canonical_bytes(payload))
        now = self.loop.clock.now
        record = TxRecord(tx_id, operation, size_bytes, submitted_at=now)
        self.records[tx_id] = record
        if callback is not None:
            self._callbacks[tx_id] = callback
        trace_flags = 0
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter("tx_submitted", shard=self.scope or "main").inc()
            if tel.tracer.begin(tx_id, "submit", operation=operation, size=size_bytes):
                trace_flags = TRACE_SAMPLED

        receiver_id = receiver or self.rng.choice("receiver", self.engine.validator_order)
        if self.network.is_crashed(receiver_id):
            alive = [n for n in self.engine.validator_order if not self.network.is_crashed(n)]
            if not alive:
                record.rejected = "no live validators"
                return SubmitResult(tx_id, operation, accepted=False, error=record.rejected)
            receiver_id = alive[0]
        server = self.servers[receiver_id]
        if operation == ACCEPT_BID:
            self._accept_receivers[tx_id] = receiver_id

        cost = server.costs.validation_cost(operation, size_bytes)

        def receiver_step() -> None:
            if self.network.is_crashed(receiver_id):
                # Crash during initial validation: the driver re-triggers
                # after a timeout (Section 4.2.1 case 1).
                self.loop.schedule_in(
                    1.0,
                    lambda: self.submit_payload(
                        payload, self._callbacks.get(tx_id), _retry=True
                    ),
                )
                return
            try:
                server.receiver_validate(payload)
            except (SchemaValidationError, ValidationError) as error:
                # SchemaValidationError is a sibling of ValidationError in
                # the hierarchy; a structurally broken payload must reject
                # through the driver callback, not crash the event loop.
                record.rejected = str(error)
                if trace_flags & TRACE_SAMPLED:
                    self.telemetry.tracer.event(
                        tx_id,
                        "rejected",
                        node=self.node_label(receiver_id),
                        reason=str(error)[:80],
                    )
                self._fire_callback(tx_id, "rejected", str(error))
                return
            if trace_flags & TRACE_SAMPLED:
                self.telemetry.tracer.event(
                    tx_id, "receiver_validated", node=self.node_label(receiver_id)
                )
            envelope = envelope_for(
                payload,
                tx_id,
                size_bytes,
                now=self.loop.clock.now,
                trace_flags=trace_flags,
            )
            self.engine.validator(receiver_id).submit_transaction(envelope)

        self.loop.schedule_in(cost, receiver_step)
        return SubmitResult(tx_id, operation, accepted=True)

    # -- commit handling --------------------------------------------------------------

    def _on_block_commit(self, record: CommitRecord) -> None:
        tel = self.telemetry
        observing = tel is not None and tel.enabled
        for envelope in record.block.transactions:
            tx_record = self.records.get(envelope.tx_id)
            if tx_record is not None and tx_record.committed_at is None:
                tx_record.committed_at = record.committed_at
                if observing and (
                    self.latency_filter is None or self.latency_filter(envelope.tx_id)
                ):
                    tel.observe_ms(
                        "tx_commit_latency_ms",
                        record.committed_at - tx_record.submitted_at,
                        shard=self.scope or "main",
                        operation=tx_record.operation,
                    )
            if observing and envelope.trace_flags & TRACE_SAMPLED:
                tel.tracer.event(
                    envelope.tx_id,
                    "applied",
                    node=self.node_label(record.node_id),
                    height=record.block.height,
                )
            self._fire_callback(envelope.tx_id, "committed", envelope.payload)
            if envelope.payload.get("operation") == ACCEPT_BID:
                self._schedule_return_workers(envelope.tx_id)

    def _fire_callback(self, tx_id: str, status: str, detail: Any) -> None:
        callback = self._callbacks.pop(tx_id, None)
        if callback is not None:
            callback(status, detail)

    # -- nested transaction workers -----------------------------------------------------

    def _schedule_return_workers(self, accept_id: str) -> None:
        receiver_id = self._accept_receivers.get(accept_id)
        if receiver_id is None:
            receiver_id = self.engine.validator_order[0]
        if self.network.is_crashed(receiver_id):
            # Crash while enqueueing: recovery (case 2) re-enqueues later.
            return
        for _ in range(self.config.worker_parallelism):
            self.loop.schedule_in(
                self.config.worker_poll_interval,
                lambda nid=receiver_id: self._drain_one_return(nid),
            )

    def _drain_one_return(self, node_id: str) -> None:
        if self.network.is_crashed(node_id):
            return
        server = self.servers[node_id]
        job = server.nested.queue.get()
        if job is None:
            return
        # "RETURNs are sent to a randomly selected validator node" (4.2.1).
        target = self.rng.choice("return-target", self.engine.validator_order)
        self.submit_payload(job.payload, receiver=target)
        # Keep draining until the queue is empty.
        self.loop.schedule_in(self.config.worker_poll_interval, lambda: self._drain_one_return(node_id))

    def resync_node(self, node_id: str) -> None:
        """Bring one node back in step with the cluster: catch up missed
        blocks from a live peer and re-enqueue pending RETURNs from the
        durable log.  The crash-recovery path runs this, and it is safe
        on a node that never crashed — a healed partition leaves the
        minority side lagging exactly like a short outage does, so the
        chaos harness calls it after every heal."""
        self.engine.validator(node_id).on_recover()
        server = self.servers[node_id]
        reenqueued = server.nested.recover(server.context.locked_bids)
        if reenqueued:
            for _ in range(self.config.worker_parallelism):
                self.loop.schedule_in(
                    self.config.worker_poll_interval,
                    lambda: self._drain_one_return(node_id),
                )
        for hook in self.resync_hooks:
            hook(node_id)

    # -- durability: checkpoints + restart-from-disk ---------------------------------

    def _node_checkpoint_state(self, node_id: str) -> dict[str, Any]:
        """Full snapshot state of one node: collections + chain + lock."""
        server = self.servers[node_id]
        return {
            "collections": collections_state(server.database),
            **self.engine.validator(node_id).consensus_snapshot(),
        }

    def restart_node_from_disk(self, node_id: str, torn_bytes: int = 0) -> None:
        """Kill a node, discard its memory, restore it purely from disk.

        This is the real crash-restart the abstract model only mimed:
        the in-memory database, validation context, nested-transaction
        processor and consensus chain are all rebuilt from the node's
        :class:`~repro.durability.wal.SimDisk` (snapshot + WAL suffix,
        scan-to-torn-tail), after the device loses its unsynced tail —
        optionally keeping ``torn_bytes`` of it as a torn write.  The
        node then rejoins through the normal recovery path (catch-up
        from peers, RETURN re-enqueue).

        Raises:
            ValidationError: if the cluster was built without durability.
        """
        durability = self.node_durability.get(node_id)
        if durability is None:
            raise ValidationError(
                f"{node_id} has no durability stack; set ClusterConfig.durability"
            )
        if not self.network.is_crashed(node_id):
            self.failures.crash_now(node_id)
        durability.power_fail(torn_bytes)
        recovered = recover(
            durability,
            lambda: make_smartchaindb_database(
                name=f"smartchaindb-{node_id}",
                indexed=self.config.indexed_storage,
            ),
        )
        recovered.database.attach_wal(durability.log)
        server = self.servers[node_id]
        # Spend guards (the 2PC lock oracle) are deployment wiring, not
        # node state: they must survive the context rebuild or remote
        # locks would stop being visible to local validation.
        guards = list(server.context.spend_guards)
        gates = list(server.context.ingress_gates)
        server.database = recovered.database
        server.context = ValidationContext(server.database, self.reserved)
        server.context.spend_guards.extend(guards)
        server.context.ingress_gates.extend(gates)
        server.nested = NestedTransactionProcessor(self.reserved.escrow, server.database)
        locked_round, locked_block = recovered.locked()
        self.engine.validator(node_id).restore_durable(
            recovered.blocks(), locked_round, locked_block, certs=recovered.certs
        )
        self.failures.recover_now(node_id)

    # -- convenience -----------------------------------------------------------------

    def run(self, duration: float | None = None, max_events: int = 5_000_000) -> None:
        """Advance the simulation (until idle or for ``duration`` seconds)."""
        if duration is None:
            self.loop.run_until_idle(max_events=max_events)
        else:
            self.loop.run(until=self.loop.clock.now + duration, max_events=max_events)

    def submit_and_settle(self, transaction, max_events: int = 5_000_000) -> TxRecord:
        """Submit one transaction and run the loop until it settles."""
        payload = transaction.to_dict() if hasattr(transaction, "to_dict") else transaction
        self.submit_payload(payload)
        self.loop.run_until_idle(max_events=max_events)
        return self.records[payload["id"]]

    def any_server(self) -> SmartchainServer:
        """A live server for queries (first non-crashed node)."""
        for node_id in self.engine.validator_order:
            if not self.network.is_crashed(node_id):
                return self.servers[node_id]
        raise ValidationError("all nodes are down")

    def committed_records(self) -> list[TxRecord]:
        return [record for record in self.records.values() if record.committed_at is not None]

    # -- telemetry ------------------------------------------------------------------

    def snapshot_metrics(self) -> dict:
        """Harvest every component's counters into the telemetry registry
        (gauges, since the sources are cumulative dicts) and return the
        canonical snapshot.  Live histograms (latencies, batch sizes) are
        recorded at their sites; this collects the stats surfaces that
        predate the registry."""
        tel = self.telemetry
        if tel is None:
            return {}
        registry = tel.registry
        for node_id, server in self.servers.items():
            label = self.node_label(node_id)
            for key, value in server.stats.items():
                registry.gauge(f"server_{key}", node=label).set(value)
            validator = self.engine.validator(node_id)
            for key, value in validator.check_stats.items():
                registry.gauge(f"checktx_{key}", node=label).set(value)
            for key, value in validator.mempool.stats.items():
                registry.gauge(f"mempool_{key}", node=label).set(value)
            registry.gauge("mempool_depth", node=label).set(len(validator.mempool))
            registry.gauge("mempool_seen", node=label).set(validator.mempool.seen_size())
            server.database.publish_metrics(registry, node=label)
        for node_id, durability in self.node_durability.items():
            label = self.node_label(node_id)
            for key, value in durability.log.stats.items():
                registry.gauge(f"wal_{key}", node=label).set(value)
            registry.gauge("wal_pending", node=label).set(durability.log.pending)
        if self.views is not None:
            shard = self.view_shard_key
            view_height = self.views.height(shard)
            chain_height = max(
                (
                    len(self.engine.validator(node_id).chain)
                    for node_id in self.engine.validator_order
                ),
                default=0,
            )
            registry.gauge("view_height", shard=shard).set(view_height)
            registry.gauge("view_lag_blocks", shard=shard).set(
                max(0, chain_height - view_height)
            )
            for key, value in self.views.stats.items():
                registry.gauge(f"view_{key}", shard=shard).set(value)
        from repro.crypto.sigcache import shared_cache

        cache = shared_cache()
        if cache is not None:
            cache.publish(registry)
        return registry.to_dict()

    def latency_percentiles(self) -> dict[str, float]:
        """Commit-latency tails (ms) read from the registry's merged
        ``tx_commit_latency_ms`` histograms — the single percentile
        source benchmarks and reports share."""
        if self.telemetry is None:
            return {"count": 0}
        return self.telemetry.latency_percentiles()

    # -- cross-shard hooks (used by repro.sharding) --------------------------------

    def add_spend_guard(self, guard) -> None:
        """Install an external spend oracle on every node's validation
        context.  The sharding coordinator uses this to make a remote
        2PC lock on a local UTXO visible to local double-spend checks."""
        for server in self.servers.values():
            server.context.spend_guards.append(guard)

    def add_ingress_gate(self, gate) -> None:
        """Install an admission gatekeeper ``payload -> reason | None``
        on every node.  The sharded deployment uses one to keep
        transactions spending foreign-homed outputs out of this shard's
        mempools unless they arrive via their own 2PC commit-point
        submission — a directly injected copy would otherwise commit
        intra-shard while the coordinator aborts, leaving the remote
        input unconsumed (a cross-shard double-spend door found by the
        adversarial double-submit client)."""
        for server in self.servers.values():
            server.context.ingress_gates.append(gate)

    def inflight_spender(self, ref) -> str | None:
        """Id of an admitted-but-uncommitted transaction spending ``ref``,
        or None.  Scans every validator's mempool (proposals assemble via
        non-destructive ``peek``, so in-flight block contents are still
        pooled).  The 2PC participant refuses to lock an output a local
        rival is already racing for — block delivery no longer consults
        the lock table, so a lock granted over a pooled rival could be
        broken by that rival's commit."""
        for node_id in self.engine.validator_order:
            for envelope in self.engine.validator(node_id).mempool.pending_envelopes():
                for item in envelope.payload.get("inputs", []):
                    fulfills = item.get("fulfills")
                    if (
                        fulfills
                        and fulfills["transaction_id"] == ref.transaction_id
                        and fulfills["output_index"] == ref.output_index
                    ):
                        return envelope.tx_id
        return None

    def import_reference_payloads(self, payloads: list[dict[str, Any]]) -> int:
        """Replicate foreign transaction payloads into every node's store.

        Cross-shard data shipping: before a transaction that spends
        outputs held on another shard can validate here, the prior
        transactions it references must be readable locally.  Imports are
        idempotent (the unique ``id`` index is checked first) and count as
        reference copies — they create no local UTXOs.
        """
        imported = 0
        for server in self.servers.values():
            transactions = server.database.collection("transactions")
            for payload in payloads:
                if transactions.find_one({"id": payload["id"]}, copy=False) is None:
                    transactions.insert_one(payload)
                    imported += 1
        return imported

    def consume_outputs(self, refs: list[tuple[str, int]]) -> None:
        """Drop UTXO documents for outputs spent by a cross-shard commit.

        The authoritative double-spend barrier is the coordinator's lock
        tombstone; this keeps every node's wallet view (``utxos``) in
        step with it.  Consumed refs are remembered so nodes that apply
        the creating block *after* the decision (crash/partition lag)
        scrub the output on arrival instead of resurrecting it.
        """
        for transaction_id, output_index in refs:
            self._foreign_spent[(transaction_id, output_index)] = None
            self._foreign_spent.move_to_end((transaction_id, output_index))
        while len(self._foreign_spent) > self._foreign_spent_capacity:
            self._foreign_spent.popitem(last=False)
        for server in self.servers.values():
            utxos = server.database.collection("utxos")
            for transaction_id, output_index in refs:
                utxos.delete_many(
                    {"transaction_id": transaction_id, "output_index": output_index}
                )

    def _scrub_foreign_spent(self, server: SmartchainServer, payload: dict[str, Any]) -> None:
        """Post-commit hook: drop outputs a cross-shard commit already
        spent before this node got around to applying their creator."""
        if not self._foreign_spent:
            return
        tx_id = payload.get("id")
        for index in range(len(payload.get("outputs", []))):
            if (tx_id, index) in self._foreign_spent:
                server.database.collection("utxos").delete_many(
                    {"transaction_id": tx_id, "output_index": index}
                )
