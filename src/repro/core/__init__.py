"""The paper's contribution: declarative, typed blockchain transactions."""

from repro.core.asset import (
    CAPABILITIES_KEY,
    Asset,
    capabilities_satisfied,
    extract_capabilities,
)
from repro.core.builders import (
    build_accept_bid,
    build_bid,
    build_create,
    build_request,
    build_return,
    build_transfer,
)
from repro.core.cluster import ClusterConfig, SmartchainCluster, TxRecord
from repro.core.context import ValidationContext
from repro.core.driver import Driver, SubmitResult
from repro.core.extensions import (
    build_interest,
    build_pre_request,
    interest_type,
    pre_request_type,
    register_marketplace_extensions,
)
from repro.core.parallel import (
    AccessSet,
    ConflictScheduler,
    Schedule,
    access_set_of,
    parallel_validation_cost,
)
from repro.core.predicates import (
    DeclarativeType,
    Predicate,
    all_of,
    any_of,
    declarative_type,
    negate,
)
from repro.core.nested import (
    NestedTransactionProcessor,
    RecoveryLog,
    ReturnJob,
    ReturnQueue,
    determine_return_txs,
)
from repro.core.server import ServerCostModel, SmartchainServer
from repro.core.transaction import (
    ACCEPT_BID,
    BID,
    CREATE,
    REQUEST,
    RETURN,
    TRANSFER,
    Input,
    Output,
    OutputRef,
    Transaction,
)
from repro.core.validation import TransactionValidator
from repro.core.workflow import (
    MARKETPLACE_WORKFLOWS,
    WorkflowEngine,
    WorkflowSpec,
    WorkflowTrace,
)

__all__ = [
    "ACCEPT_BID",
    "AccessSet",
    "Asset",
    "ConflictScheduler",
    "Schedule",
    "access_set_of",
    "parallel_validation_cost",
    "BID",
    "CAPABILITIES_KEY",
    "CREATE",
    "ClusterConfig",
    "DeclarativeType",
    "Driver",
    "Predicate",
    "Input",
    "MARKETPLACE_WORKFLOWS",
    "NestedTransactionProcessor",
    "Output",
    "OutputRef",
    "REQUEST",
    "RETURN",
    "RecoveryLog",
    "ReturnJob",
    "ReturnQueue",
    "ServerCostModel",
    "SmartchainCluster",
    "SmartchainServer",
    "SubmitResult",
    "TRANSFER",
    "Transaction",
    "TransactionValidator",
    "TxRecord",
    "ValidationContext",
    "WorkflowEngine",
    "WorkflowSpec",
    "WorkflowTrace",
    "all_of",
    "any_of",
    "build_accept_bid",
    "build_bid",
    "build_create",
    "build_interest",
    "build_pre_request",
    "build_request",
    "build_return",
    "build_transfer",
    "declarative_type",
    "interest_type",
    "negate",
    "pre_request_type",
    "register_marketplace_extensions",
    "capabilities_satisfied",
    "determine_return_txs",
    "extract_capabilities",
]
