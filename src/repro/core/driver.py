"""The SmartchainDB Driver: prepare, sign, submit, callback.

The paper's Driver (Java in the original; Python here) turns client
intent into signed transactions using per-type templates, submits them to
a randomly selected receiver node, and invokes a callback "when the
transaction is committed or if any validation error is raised" (Fig. 4).

Two modes mirror Section 4.2's execution modes:

* ``sync``  — the call returns immediately after submission (response
  before validation);
* ``async`` — the registered callback fires on commit or on rejection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.common.errors import ReproError
from repro.core import builders
from repro.core.transaction import Transaction
from repro.crypto.keys import KeyPair

#: callback(status, payload_or_error) with status in {"committed", "rejected"}.
DriverCallback = Callable[[str, Any], None]

#: Rejection-detail substrings that mean "wrong or moving home shard" —
#: the migration fence (``redirect:migrating``), the post-cutover tomb
#: (``redirect:moved``), an epoch-stamped lookup against a bumped router
#: (``stale epoch`` / ``routing epoch advanced``), or a plain wrong-shard
#: refusal.  These are *placement* errors, not validity errors: the same
#: signed payload succeeds once re-routed against fresh routing state.
REDIRECT_MARKERS = (
    "redirect",
    "stale epoch",
    "routing epoch advanced",
    "wrong shard",
)


def is_redirect_rejection(error: Any) -> bool:
    """True when a rejection detail names a routing/migration redirect."""
    text = str(error)
    return any(marker in text for marker in REDIRECT_MARKERS)


@dataclass
class SubmitResult:
    """What the driver hands back at submission time."""

    tx_id: str
    operation: str
    accepted: bool
    error: str | None = None


class Driver:
    """Client-side driver bound to one cluster."""

    def __init__(self, cluster: "SmartchainCluster"):  # noqa: F821 (circular by design)
        self._cluster = cluster
        self.escrow_public_key = cluster.reserved.escrow.public_key
        #: Redirect/stale-epoch rejections are retried this many times
        #: with deterministic exponential backoff (0 disables retries).
        self.redirect_retries = 3
        #: Backoff base in simulated seconds: attempt k waits base * 2^k.
        self.redirect_backoff = 0.05
        #: tx_id -> retry attempts spent (observability + tests).
        self.retry_log: dict[str, int] = {}

    # -- prepare-and-sign templates ------------------------------------------------

    def prepare_create(self, owner: KeyPair, asset_data: dict[str, Any], **kwargs: Any) -> Transaction:
        """Template for CREATE (signs with ``owner``)."""
        return builders.build_create(owner, asset_data, **kwargs).sign([owner])

    def prepare_transfer(
        self,
        sender: KeyPair,
        spent: list[tuple[str, int, int]],
        asset_id: str,
        recipients: list[tuple[str, int]],
        **kwargs: Any,
    ) -> Transaction:
        """Template for TRANSFER."""
        return builders.build_transfer(sender, spent, asset_id, recipients, **kwargs).sign([sender])

    def prepare_request(self, requester: KeyPair, capabilities: list[str], **kwargs: Any) -> Transaction:
        """Template for REQUEST."""
        return builders.build_request(requester, capabilities, **kwargs).sign([requester])

    def prepare_bid(
        self,
        bidder: KeyPair,
        request_id: str,
        bid_asset_id: str,
        spent: list[tuple[str, int, int]],
        **kwargs: Any,
    ) -> Transaction:
        """Template for BID (outputs escrowed automatically, CBID.6)."""
        return builders.build_bid(
            bidder, request_id, bid_asset_id, spent, self.escrow_public_key, **kwargs
        ).sign([bidder])

    def prepare_accept_bid(
        self,
        requester: KeyPair,
        request_id: str,
        winning_bid: Transaction | dict[str, Any],
        **kwargs: Any,
    ) -> Transaction:
        """Template for ACCEPT_BID."""
        if isinstance(winning_bid, dict):
            winning_bid = Transaction.from_dict(winning_bid)
        return builders.build_accept_bid(requester, request_id, winning_bid, **kwargs).sign(
            [requester]
        )

    # -- submission ------------------------------------------------------------------

    def submit(
        self,
        transaction: Transaction | dict[str, Any],
        callback: DriverCallback | None = None,
        mode: str = "async",
        shard_hint: str | None = None,
    ) -> SubmitResult:
        """Submit a signed transaction to a random receiver node.

        Args:
            transaction: signed transaction (or raw payload dict).
            callback: invoked with ("committed", payload) or
                ("rejected", error) once the outcome is known.
            mode: "sync" (fire-and-forget) or "async" (callback-driven).
            shard_hint: on a sharded deployment, pin the transaction's
                home shard instead of letting the router derive it; a
                single cluster ignores it.

        Returns:
            A :class:`SubmitResult`; ``accepted`` reflects only receiver
            admission, not final commitment.
        """
        payload = transaction.to_dict() if isinstance(transaction, Transaction) else transaction
        if mode not in ("sync", "async"):
            raise ReproError(f"unknown driver mode {mode!r}")
        if mode != "async" or self.redirect_retries <= 0:
            effective_callback = callback if mode == "async" else None
            return self._cluster.submit_payload(
                payload, callback=effective_callback, shard_hint=shard_hint
            )
        return self._submit_with_redirect_retry(payload, callback, shard_hint)

    def _submit_with_redirect_retry(
        self,
        payload: dict[str, Any],
        callback: DriverCallback | None,
        shard_hint: str | None,
    ) -> SubmitResult:
        """Async submit that absorbs redirect/stale-epoch rejections.

        A payload refused because its home shard is mid-migration (or the
        caller's routing state predates a cutover epoch bump) is valid —
        it just raced a reshard.  Retry it against fresh routing state
        (hint dropped) after a deterministic exponential backoff; only a
        non-redirect rejection or retry exhaustion reaches the caller's
        callback.
        """
        tx_id = payload.get("id", "")

        def on_outcome(status: str, detail: Any, attempt: int = 0) -> None:
            if (
                status == "rejected"
                and attempt < self.redirect_retries
                and is_redirect_rejection(detail)
            ):
                next_attempt = attempt + 1
                self.retry_log[tx_id] = next_attempt
                delay = self.redirect_backoff * (2**attempt)
                self._cluster.loop.schedule_in(
                    delay,
                    lambda: self._cluster.submit_payload(
                        payload,
                        callback=lambda s, d: on_outcome(s, d, next_attempt),
                        shard_hint=None,
                    ),
                )
                return
            if callback is not None:
                callback(status, detail)

        return self._cluster.submit_payload(
            payload, callback=on_outcome, shard_hint=shard_hint
        )
