"""The SmartchainDB Driver: prepare, sign, submit, callback.

The paper's Driver (Java in the original; Python here) turns client
intent into signed transactions using per-type templates, submits them to
a randomly selected receiver node, and invokes a callback "when the
transaction is committed or if any validation error is raised" (Fig. 4).

Two modes mirror Section 4.2's execution modes:

* ``sync``  — the call returns immediately after submission (response
  before validation);
* ``async`` — the registered callback fires on commit or on rejection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.common.errors import ReproError
from repro.core import builders
from repro.core.transaction import Transaction
from repro.crypto.keys import KeyPair

#: callback(status, payload_or_error) with status in {"committed", "rejected"}.
DriverCallback = Callable[[str, Any], None]


@dataclass
class SubmitResult:
    """What the driver hands back at submission time."""

    tx_id: str
    operation: str
    accepted: bool
    error: str | None = None


class Driver:
    """Client-side driver bound to one cluster."""

    def __init__(self, cluster: "SmartchainCluster"):  # noqa: F821 (circular by design)
        self._cluster = cluster
        self.escrow_public_key = cluster.reserved.escrow.public_key

    # -- prepare-and-sign templates ------------------------------------------------

    def prepare_create(self, owner: KeyPair, asset_data: dict[str, Any], **kwargs: Any) -> Transaction:
        """Template for CREATE (signs with ``owner``)."""
        return builders.build_create(owner, asset_data, **kwargs).sign([owner])

    def prepare_transfer(
        self,
        sender: KeyPair,
        spent: list[tuple[str, int, int]],
        asset_id: str,
        recipients: list[tuple[str, int]],
        **kwargs: Any,
    ) -> Transaction:
        """Template for TRANSFER."""
        return builders.build_transfer(sender, spent, asset_id, recipients, **kwargs).sign([sender])

    def prepare_request(self, requester: KeyPair, capabilities: list[str], **kwargs: Any) -> Transaction:
        """Template for REQUEST."""
        return builders.build_request(requester, capabilities, **kwargs).sign([requester])

    def prepare_bid(
        self,
        bidder: KeyPair,
        request_id: str,
        bid_asset_id: str,
        spent: list[tuple[str, int, int]],
        **kwargs: Any,
    ) -> Transaction:
        """Template for BID (outputs escrowed automatically, CBID.6)."""
        return builders.build_bid(
            bidder, request_id, bid_asset_id, spent, self.escrow_public_key, **kwargs
        ).sign([bidder])

    def prepare_accept_bid(
        self,
        requester: KeyPair,
        request_id: str,
        winning_bid: Transaction | dict[str, Any],
        **kwargs: Any,
    ) -> Transaction:
        """Template for ACCEPT_BID."""
        if isinstance(winning_bid, dict):
            winning_bid = Transaction.from_dict(winning_bid)
        return builders.build_accept_bid(requester, request_id, winning_bid, **kwargs).sign(
            [requester]
        )

    # -- submission ------------------------------------------------------------------

    def submit(
        self,
        transaction: Transaction | dict[str, Any],
        callback: DriverCallback | None = None,
        mode: str = "async",
        shard_hint: str | None = None,
    ) -> SubmitResult:
        """Submit a signed transaction to a random receiver node.

        Args:
            transaction: signed transaction (or raw payload dict).
            callback: invoked with ("committed", payload) or
                ("rejected", error) once the outcome is known.
            mode: "sync" (fire-and-forget) or "async" (callback-driven).
            shard_hint: on a sharded deployment, pin the transaction's
                home shard instead of letting the router derive it; a
                single cluster ignores it.

        Returns:
            A :class:`SubmitResult`; ``accepted`` reflects only receiver
            admission, not final commitment.
        """
        payload = transaction.to_dict() if isinstance(transaction, Transaction) else transaction
        if mode not in ("sync", "async"):
            raise ReproError(f"unknown driver mode {mode!r}")
        effective_callback = callback if mode == "async" else None
        return self._cluster.submit_payload(
            payload, callback=effective_callback, shard_hint=shard_hint
        )
