"""Blockchain transaction workflows (Definition 5).

A workflow is a sequence ``T1 .. Tn`` where the head spends nothing and
every later transaction's inputs come from committed transactions.  The
module ships the reverse-auction workflows the paper names as the only
valid ones for the procurement marketplace::

    CREATE
    CREATE -> TRANSFER
    CREATE -> REQUEST -> BID -> ACCEPT_BID -> TRANSFER

and a :class:`WorkflowEngine` that checks concrete transaction sequences
against declared workflow shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.common.errors import WorkflowError
from repro.core.transaction import (
    ACCEPT_BID,
    BID,
    CREATE,
    GENESIS_OPERATIONS,
    REQUEST,
    RETURN,
    TRANSFER,
)


@dataclass(frozen=True)
class WorkflowSpec:
    """A named, ordered shape of operations.

    ``repeatable`` marks positions that may occur one-or-more times
    (BID in a reverse auction: many suppliers bid on one request).
    """

    name: str
    operations: tuple[str, ...]
    repeatable: frozenset[int] = frozenset()

    def matches(self, operations: Sequence[str]) -> bool:
        """True if the operation sequence fits this shape."""
        position = 0
        for spec_index, expected in enumerate(self.operations):
            if position >= len(operations):
                return False
            if operations[position] != expected:
                return False
            position += 1
            if spec_index in self.repeatable:
                while position < len(operations) and operations[position] == expected:
                    position += 1
        return position == len(operations)


#: The marketplace's valid workflows (Section 3.2).
MARKETPLACE_WORKFLOWS: tuple[WorkflowSpec, ...] = (
    WorkflowSpec("create", (CREATE,)),
    WorkflowSpec("create-transfer", (CREATE, TRANSFER)),
    WorkflowSpec(
        "reverse-auction",
        (CREATE, REQUEST, BID, ACCEPT_BID, TRANSFER),
        repeatable=frozenset({2}),
    ),
    WorkflowSpec(
        "reverse-auction-with-returns",
        (CREATE, REQUEST, BID, ACCEPT_BID, RETURN, TRANSFER),
        repeatable=frozenset({2, 4}),
    ),
)


class WorkflowEngine:
    """Validates transaction sequences against registered workflows."""

    def __init__(self, specs: Sequence[WorkflowSpec] = MARKETPLACE_WORKFLOWS):
        self._specs = list(specs)

    def register(self, spec: WorkflowSpec) -> None:
        """Add a workflow shape."""
        self._specs.append(spec)

    def specs(self) -> list[WorkflowSpec]:
        return list(self._specs)

    def classify(self, payloads: Sequence[dict[str, Any]]) -> WorkflowSpec:
        """Match a concrete sequence to a workflow spec.

        Checks both the *shape* (operations fit a registered spec) and
        Definition 5's structural conditions:

        * the head's inputs spend nothing;
        * every non-head transaction's spent inputs reference transactions
          appearing earlier in the sequence (committed-before semantics)
          or pre-existing committed state, signalled via ``references``.

        Raises:
            WorkflowError: if no spec matches or a condition fails.
        """
        if not payloads:
            raise WorkflowError("empty workflow")
        operations = [payload.get("operation", "?") for payload in payloads]
        spec = next((item for item in self._specs if item.matches(operations)), None)
        if spec is None:
            raise WorkflowError(f"no registered workflow matches {operations}")

        head = payloads[0]
        if head.get("operation") not in GENESIS_OPERATIONS or any(
            item.get("fulfills") for item in head.get("inputs", [])
        ):
            raise WorkflowError("workflow head must have null input (Definition 5)")

        known_ids = {head.get("id")}
        known_ids.discard(None)
        for payload in payloads[1:]:
            for item in payload.get("inputs", []):
                fulfills = item.get("fulfills")
                if fulfills is None:
                    continue
                if fulfills["transaction_id"] not in known_ids:
                    raise WorkflowError(
                        f"{payload.get('operation')} spends "
                        f"{fulfills['transaction_id'][:8]}... which precedes the workflow "
                        "but is not part of it"
                    )
            if payload.get("id"):
                known_ids.add(payload["id"])
        return spec


@dataclass
class WorkflowTrace:
    """Groups committed transactions into per-asset workflow instances."""

    sequences: dict[str, list[dict[str, Any]]] = field(default_factory=dict)

    def observe(self, payload: dict[str, Any]) -> None:
        """Attach a committed payload to its asset's trace."""
        asset = payload.get("asset") or {}
        key = asset.get("id") or payload.get("id")
        if key is None:
            return
        self.sequences.setdefault(key, []).append(payload)

    def operations_for(self, asset_id: str) -> list[str]:
        return [payload.get("operation", "?") for payload in self.sequences.get(asset_id, [])]
