"""The transaction object: ``T = <ID, OP, A, O, I, Ch, R>``.

This module realises Definition 1 of the paper.  A transaction is
fundamentally a JSON document (the wire payload the Driver submits); the
:class:`Transaction` class wraps that document with typed accessors,
id computation, signing and structural checks.

Wire layout (matching the YAML schemas in ``repro.schema.definitions``)::

    {
      "id":         "<sha3-256 hex of the signed body>",
      "operation":  "CREATE" | "TRANSFER" | ... ,
      "version":    "2.0",
      "asset":      {"data": {...}} | {"id": "<txid>"},
      "inputs":     [{"owners_before": [...],
                      "fulfills": {"transaction_id": ..., "output_index": ...} | null,
                      "fulfillment": {"signatures": {pubkey: sig, ...}}}],
      "outputs":    [{"condition": {...}, "amount": n,
                      "public_keys": [...], "owners_before": [...]}],
      "metadata":   {...} | null,
      "references": ["<txid>", ...],          # the R vector
      "children":   ["<txid>", ...]           # the Ch set (nested types)
    }

Outputs carry ``owners_before`` so that condition 8 of ACCEPT_BID — every
unaccepted output returns to its *original bidder* (``pb_prev``) — is
checkable from the transaction alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.encoding import canonical_bytes, deep_copy_json
from repro.common.errors import SchemaValidationError, ValidationError
from repro.crypto.conditions import Condition, Fulfillment
from repro.crypto.hashing import sha3_256_hex
from repro.crypto.keys import KeyPair

VERSION = "2.0"

CREATE = "CREATE"
TRANSFER = "TRANSFER"
REQUEST = "REQUEST"
BID = "BID"
ACCEPT_BID = "ACCEPT_BID"
RETURN = "RETURN"

#: Operations whose inputs spend nothing (the asset is born here).
GENESIS_OPERATIONS = frozenset({CREATE, REQUEST})

#: Operations whose inputs must spend committed outputs.
SPENDING_OPERATIONS = frozenset({TRANSFER, BID, ACCEPT_BID, RETURN})


@dataclass(frozen=True)
class OutputRef:
    """A pointer to the ``k``-th output of transaction ``transaction_id``."""

    transaction_id: str
    output_index: int

    def to_dict(self) -> dict[str, Any]:
        return {"transaction_id": self.transaction_id, "output_index": self.output_index}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "OutputRef":
        return cls(
            transaction_id=data["transaction_id"],
            output_index=int(data["output_index"]),
        )


@dataclass
class Output:
    """Transaction output ``o_j = <pb, amt, pb_prev>`` plus its condition."""

    condition: Condition
    amount: int
    public_keys: list[str]
    owners_before: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "condition": self.condition.to_dict(),
            "amount": self.amount,
            "public_keys": list(self.public_keys),
        }
        if self.owners_before:
            data["owners_before"] = list(self.owners_before)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Output":
        return cls(
            condition=Condition.from_dict(data["condition"]),
            amount=int(data["amount"]),
            public_keys=list(data["public_keys"]),
            owners_before=list(data.get("owners_before", [])),
        )

    @classmethod
    def for_owner(cls, public_key: str, amount: int = 1, owners_before: list[str] | None = None) -> "Output":
        """Single-owner output."""
        return cls(
            condition=Condition.for_owner(public_key),
            amount=amount,
            public_keys=[public_key],
            owners_before=list(owners_before or []),
        )


@dataclass
class Input:
    """Transaction input ``i_k = <T'.o_b, ms>``.

    ``fulfills`` is None for genesis operations (CREATE/REQUEST).
    """

    owners_before: list[str]
    fulfills: OutputRef | None
    fulfillment: Fulfillment = field(default_factory=Fulfillment)

    def to_dict(self) -> dict[str, Any]:
        return {
            "owners_before": list(self.owners_before),
            "fulfills": self.fulfills.to_dict() if self.fulfills else None,
            "fulfillment": self.fulfillment.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Input":
        fulfills = data.get("fulfills")
        return cls(
            owners_before=list(data["owners_before"]),
            fulfills=OutputRef.from_dict(fulfills) if fulfills else None,
            fulfillment=Fulfillment.from_dict(data["fulfillment"]),
        )


class Transaction:
    """A typed view over a transaction payload."""

    def __init__(
        self,
        operation: str,
        asset: dict[str, Any],
        inputs: list[Input],
        outputs: list[Output],
        metadata: dict[str, Any] | None = None,
        references: list[str] | None = None,
        children: list[str] | None = None,
        tx_id: str | None = None,
    ):
        self.operation = operation
        self.asset = asset
        self.inputs = inputs
        self.outputs = outputs
        self.metadata = metadata
        self.references = list(references or [])
        self.children = list(children or [])
        self.tx_id = tx_id
        # Memoised canonical forms.  Serialising and hashing the body is
        # the dominant cost of integrity checks, and validation recomputes
        # them several times per transaction (signing payload for every
        # signature check, the signed-body hash for verify_id and
        # size_bytes).  Reassigning any body field, or calling sign(),
        # invalidates them; callers deep-mutating a field's *contents*
        # (e.g. ``tx.asset["data"]["k"] = v``) must call
        # invalidate_caches() themselves.
        self.invalidate_caches()

    #: Fields whose reassignment changes the canonical body.
    _BODY_FIELDS = frozenset(
        {"operation", "asset", "inputs", "outputs", "metadata", "references", "children"}
    )

    def __setattr__(self, name: str, value: Any) -> None:
        object.__setattr__(self, name, value)
        if name in Transaction._BODY_FIELDS:
            self.invalidate_caches()

    def invalidate_caches(self) -> None:
        """Drop memoised canonical bytes/ids after in-place mutation."""
        object.__setattr__(self, "_cached_signing_payload", None)
        object.__setattr__(self, "_cached_signed_bytes", None)
        object.__setattr__(self, "_cached_id", None)
        # Tri-state signature verdict, written only by the server
        # validation pipeline (which owns the instance for the duration
        # of validation): None = unknown, True/False = already verified
        # for the identical payload.
        object.__setattr__(self, "_signatures_memo", None)

    # -- serialisation --------------------------------------------------------

    def _body(self, with_signatures: bool) -> dict[str, Any]:
        inputs = []
        for item in self.inputs:
            entry = item.to_dict()
            if not with_signatures:
                entry["fulfillment"] = {"signatures": {}}
            inputs.append(entry)
        body: dict[str, Any] = {
            "operation": self.operation,
            "version": VERSION,
            "asset": deep_copy_json(self.asset),
            "inputs": inputs,
            "outputs": [output.to_dict() for output in self.outputs],
            "metadata": deep_copy_json(self.metadata),
        }
        if self.references or self.operation in (BID, ACCEPT_BID, RETURN):
            body["references"] = list(self.references)
        if self.children or self.operation == ACCEPT_BID:
            body["children"] = list(self.children)
        return body

    def signing_payload(self) -> bytes:
        """The byte string each input owner signs.

        The body with *empty* fulfillments, canonically serialised — so
        signatures commit to the asset, outputs, references and metadata
        but not to each other.  Memoised: adding signatures does not
        change it.
        """
        payload = self._cached_signing_payload
        if payload is None:
            payload = canonical_bytes(self._body(with_signatures=False))
            self._cached_signing_payload = payload
        return payload

    def _signed_bytes(self) -> bytes:
        """Canonical bytes of the fully signed body, memoised."""
        signed = self._cached_signed_bytes
        if signed is None:
            signed = canonical_bytes(self._body(with_signatures=True))
            self._cached_signed_bytes = signed
        return signed

    def compute_id(self) -> str:
        """SHA3-256 of the fully signed body (the schema's sha3_hexdigest)."""
        tx_id = self._cached_id
        if tx_id is None:
            tx_id = sha3_256_hex(self._signed_bytes())
            self._cached_id = tx_id
        return tx_id

    def sign(self, keypairs: list[KeyPair]) -> "Transaction":
        """Sign every input with the supplied key pairs, then freeze the id.

        Each input receives a signature from every keypair matching one of
        its ``owners_before`` keys.  Returns self for chaining.

        Raises:
            ValidationError: if an input ends up with no signatures.
        """
        # Start from a clean slate: outputs/asset may have been swapped
        # since the last signing, and the new signatures change the body.
        self.invalidate_caches()
        payload = self.signing_payload()
        by_public = {keypair.public_key: keypair for keypair in keypairs}
        for index, item in enumerate(self.inputs):
            signed = False
            for owner in item.owners_before:
                keypair = by_public.get(owner)
                if keypair is not None:
                    item.fulfillment.add_signature(keypair, payload)
                    signed = True
            if not signed:
                raise ValidationError(
                    f"no key available to sign input {index} (owners {item.owners_before})"
                )
        # The signed body changed; only the signature-free signing payload
        # survives in the cache.
        self._cached_signed_bytes = None
        self._cached_id = None
        self.tx_id = self.compute_id()
        return self

    def to_dict(self) -> dict[str, Any]:
        """Full wire payload (requires a signed transaction).

        Raises:
            ValidationError: if the transaction has not been signed.
        """
        if self.tx_id is None:
            raise ValidationError("transaction must be signed before serialisation")
        body = self._body(with_signatures=True)
        return {"id": self.tx_id, **body}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Transaction":
        """Parse a wire payload into a :class:`Transaction`.

        Raises:
            SchemaValidationError: on structurally broken payloads (schema
                validation should normally run first and give nicer errors).
        """
        try:
            return cls(
                operation=payload["operation"],
                asset=deep_copy_json(payload["asset"]),
                inputs=[Input.from_dict(item) for item in payload["inputs"]],
                outputs=[Output.from_dict(item) for item in payload["outputs"]],
                metadata=deep_copy_json(payload.get("metadata")),
                references=list(payload.get("references", [])),
                children=list(payload.get("children", [])),
                tx_id=payload.get("id"),
            )
        except (KeyError, TypeError) as exc:
            raise SchemaValidationError(f"malformed transaction payload: {exc}") from exc

    # -- integrity -------------------------------------------------------------

    def verify_id(self) -> bool:
        """True if the recorded id matches the body hash."""
        return self.tx_id == self.compute_id()

    def verify_signatures(self) -> bool:
        """Condition ``forall i: verify(s_i, pb_i, m_i)`` (CBID.5 etc.).

        Every input's fulfillment must carry valid signatures from at
        least one of its ``owners_before`` keys; inputs that spend an
        output are checked against that output's condition by the
        semantic validators (which know the prior transaction).

        When the server validation pipeline has already verified this
        exact payload (``_signatures_memo``), the ed25519 verifications
        are skipped; otherwise they always run — the method never stores
        the memo itself, so direct callers see in-place fulfillment
        mutations.
        """
        memo = self._signatures_memo
        if memo is not None:
            return memo
        payload = self.signing_payload()
        for item in self.inputs:
            condition = Condition(public_keys=tuple(item.owners_before), threshold=1)
            if not item.fulfillment.satisfies(condition, payload):
                return False
        return True

    def signature_items(self) -> list[tuple[str, bytes, str]]:
        """Every ``(public_key, payload, signature)`` triple that
        :meth:`verify_signatures` would check, in check order.

        Block validation collects these across all transactions and
        settles them through one batch verification, pre-seeding the
        cluster-wide signature cache the per-input checks then hit.
        """
        payload = self.signing_payload()
        triples: list[tuple[str, bytes, str]] = []
        for item in self.inputs:
            condition = Condition(public_keys=tuple(item.owners_before), threshold=1)
            triples.extend(item.fulfillment.signature_items(condition, payload))
        return triples

    def spent_refs(self) -> list[OutputRef]:
        """Output references consumed by this transaction's inputs."""
        return [item.fulfills for item in self.inputs if item.fulfills is not None]

    def asset_id(self) -> str | None:
        """The linked asset id (TRANSFER-like), or this tx's own id for
        genesis operations once signed."""
        if "id" in self.asset:
            return self.asset["id"]
        return self.tx_id

    def size_bytes(self) -> int:
        """Canonical serialised size — drives network/storage cost models."""
        if self.tx_id is None:
            return len(self._signed_bytes())
        # The wire payload is the signed body plus the sorted-first
        # ``"id":"<64 hex>",`` member; sizing it from the memoised body
        # bytes avoids a second full serialisation.
        return len(self._signed_bytes()) + len('"id":"",') + len(self.tx_id)

    def __repr__(self) -> str:
        short = (self.tx_id or "unsigned")[:8]
        return f"<Transaction {self.operation} {short}>"
