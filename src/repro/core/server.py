"""The SmartchainDB server: the replicated application behind consensus.

Each validator node runs one :class:`SmartchainServer` — the Python
"Server" of the paper's architecture (Fig. 4) — owning:

* the node-local document store (MongoDB stand-in) with the SmartchainDB
  collection layout;
* the two-phase transaction validator (schema + per-type semantics);
* the nested-transaction processor (ReturnQueue + recovery log);
* a calibrated cost model translating real validation work into
  simulated seconds.

It implements the consensus layer's :class:`~repro.consensus.abci.Application`
protocol: ``check_tx`` (mempool admission), ``deliver_tx`` (the third
validation set, stateful), ``commit_block`` (persist + trigger children).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.encoding import deep_copy_json
from repro.common.errors import ValidationError
from repro.consensus.types import Block, TxEnvelope
from repro.core.context import ValidationContext
from repro.core.nested import NestedTransactionProcessor
from repro.core.parallel import ConflictScheduler
from repro.core.transaction import ACCEPT_BID, RETURN, OutputRef
from repro.core.validation import TransactionValidator
from repro.crypto.keys import ReservedAccounts
from repro.sim.clock import SimClock
from repro.storage.database import Database, make_smartchaindb_database


@dataclass
class ServerCostModel:
    """Simulated compute costs of the SmartchainDB server (seconds).

    Calibrated against the paper's Experiment 1 operating point
    (BID latency ~0.1 s, throughput ~43 tps on 4 nodes).  The decisive
    *structural* property is that per-transaction cost is a constant plus
    a negligible per-byte term — indexed lookups and built-in caching
    keep semantic validation independent of payload size, which is why
    SCDB's curves stay flat as transactions grow (Section 5.2.1).
    """

    schema_check: float = 0.0006
    signature_verify: float = 0.0012
    semantic_base: dict[str, float] = field(
        default_factory=lambda: {
            "CREATE": 0.004,
            "TRANSFER": 0.005,
            "REQUEST": 0.0045,
            "BID": 0.0065,
            "ACCEPT_BID": 0.009,
            "RETURN": 0.005,
        }
    )
    #: Hashing/serialisation: seconds per payload byte (tiny, flat-ish).
    per_byte: float = 2.0e-8
    #: Per-block storage commit: base + per-byte disk write.  A replicated
    #: MongoDB block write (transactions + assets + utxos + recovery
    #: bookkeeping) costs tens of milliseconds; pipelining hides it from
    #: the critical path, which is exactly what the pipelining ablation
    #: measures.
    commit_base: float = 0.02
    commit_per_byte: float = 5.0e-9

    def validation_cost(self, operation: str, size_bytes: int) -> float:
        base = self.semantic_base.get(operation, 0.005)
        return self.schema_check + self.signature_verify + base + size_bytes * self.per_byte

    def block_commit_cost(self, size_bytes: int) -> float:
        return self.commit_base + size_bytes * self.commit_per_byte


class SmartchainServer:
    """One node's application state machine."""

    def __init__(
        self,
        node_id: str,
        reserved: ReservedAccounts,
        clock: SimClock | None = None,
        cost_model: ServerCostModel | None = None,
        indexed_storage: bool = True,
        rng: Any = None,
        validation_lanes: int = 4,
        durability: Any = None,
    ):
        self.node_id = node_id
        self.reserved = reserved
        self.clock = clock or SimClock()
        self.costs = cost_model or ServerCostModel()
        #: Optional :class:`~repro.durability.node.NodeDurability`: when
        #: set, every database mutation journals through its group-commit
        #: log and the node can be rebuilt purely from its disk.
        self.durability = durability
        #: ``getrandbits`` provider for batched signature verification —
        #: a named ``sim.rng`` stream in a cluster, so batch coefficients
        #: replay byte-identically per seed (None = hash-derived).
        self._crypto_rng = rng
        #: Conflict-lane scheduler for block validation (None = serial).
        self.scheduler: ConflictScheduler | None = (
            ConflictScheduler(lanes=validation_lanes) if validation_lanes > 1 else None
        )
        self.database: Database = make_smartchaindb_database(
            name=f"smartchaindb-{node_id}",
            indexed=indexed_storage,
            wal=durability.log if durability is not None else None,
        )
        self.validator = TransactionValidator()
        self.context = ValidationContext(self.database, reserved)
        self.nested = NestedTransactionProcessor(reserved.escrow, self.database)
        #: Called for each committed payload (metrics, workflow tracing).
        self.commit_hooks: list[Callable[[dict[str, Any]], None]] = []
        #: Predicates ``(transaction_id, output_index) -> bool`` consulted
        #: before inserting a block's fresh outputs; True suppresses the
        #: insert.  A sharded deployment installs one that checks the
        #: shard's migration registry, so a lagging replica catching up
        #: past a shard split does not resurrect outputs the cutover
        #: already shipped to another shard.
        self.utxo_suppressors: list[Callable[[str, int], bool]] = []
        #: Optional :class:`~repro.telemetry.Telemetry` (set by the
        #: cluster); every site guards on it so a bare server pays zero.
        self.telemetry = None
        self.telemetry_label = node_id
        #: Optional :class:`~repro.views.ViewManager` + the shard key this
        #: node's blocks apply under (set by the cluster in durable
        #: deployments).  When the views have applied every block this
        #: node has committed, reads serve from them instead of scanning
        #: collections; otherwise they fall back to the scan path.
        self.views = None
        self.views_shard = ""
        #: Callable returning this node's committed chain height — the
        #: freshness bar a view must clear before it may answer for the
        #: scan (wired to the consensus validator by the cluster).
        self.chain_height_provider: Callable[[], int] | None = None
        #: Which side served each read (always counted, unlike telemetry).
        self.read_stats = {"view_served": 0, "scan_fallback": 0}
        self.stats = {
            "checked": 0,
            "delivered": 0,
            "rejected": 0,
            "committed": 0,
            "accepts_processed": 0,
            "returns_confirmed": 0,
        }

    # -- receiver-node validation (Fig. 4, "Validate Tx") ----------------------

    def receiver_validate(self, payload: dict[str, Any]) -> None:
        """Full semantic validation at the randomly chosen receiver node.

        Raises:
            ValidationError / SchemaValidationError on rejection — the
            Driver surfaces these through its callback.
        """
        self.context.now = self.clock.now
        self.validator.validate(self.context, payload)
        tel = self.telemetry
        if tel is not None and tel.enabled and tel.tracer.sampled(payload.get("id", "")):
            # Receiver-side semantic validation includes the Ed25519
            # check — the "signature verify" stage of the lifecycle.
            tel.tracer.event(
                payload["id"], "signature_verified", node=self.telemetry_label
            )

    # -- Application protocol ----------------------------------------------------

    def check_tx(self, envelope: TxEnvelope) -> bool:
        """CheckTx: stateless re-validation before mempool admission —
        plus the 2PC lock oracle.  Admission (not delivery) is where
        remote locks must bite: an envelope gossiped or injected
        directly into a node's mempool never passed the facade's
        receiver validation, and once it is pooled nothing before
        delivery would notice its inputs are locked or tombstoned by a
        cross-shard spend.  Per-node and advisory, so the time-varying
        lock table is safe to consult here."""
        self.stats["checked"] += 1
        if not self.validator.check_tx(envelope.payload):
            return False
        if self._spends_guarded_output(envelope.payload):
            return False
        for gate in self.context.ingress_gates:
            if gate(envelope.payload) is not None:
                return False
        return True

    def _spends_guarded_output(self, payload: dict[str, Any]) -> bool:
        """True if any input ref is held by a 2PC lock or tombstone."""
        if not self.context.spend_guards:
            return False
        for item in payload.get("inputs", []):
            fulfills = item.get("fulfills")
            if not fulfills:
                continue
            ref = OutputRef(fulfills["transaction_id"], fulfills["output_index"])
            for guard in self.context.spend_guards:
                if guard(ref) is not None:
                    return True
        return False

    def check_block(self, envelopes: list[TxEnvelope]) -> list[bool]:
        """Whole-block CheckTx: every signature in the block settles
        through one batched verification before the per-transaction
        checks run (the consensus engine's optional batching hook)."""
        self.stats["checked"] += len(envelopes)
        return self.validator.check_block(
            [envelope.payload for envelope in envelopes], rng=self._crypto_rng
        )

    def deliver_tx(self, envelope: TxEnvelope) -> bool:
        """DeliverTx: the final stateful validation before mutating state.

        Runs with the 2PC spend guards disabled: every replica must reach
        the same verdict for the same block, and the guards consult the
        shard agent's live lock table — time-varying state outside the
        chain.  Locks gate *admission* (receiver validation and the
        participant's prepare vote); a transaction that made it into a
        committed block is judged on committed + staged state alone.
        """
        self.context.now = self.clock.now
        self.context.use_spend_guards = False
        try:
            transaction = self.validator.validate_semantics(self.context, envelope.payload)
        except ValidationError:
            self.stats["rejected"] += 1
            return False
        finally:
            self.context.use_spend_guards = True
        self.context.stage(transaction.to_dict())
        self.stats["delivered"] += 1
        tel = self.telemetry
        if tel is not None and tel.enabled and envelope.trace_flags & 1:
            tel.tracer.event(envelope.tx_id, "delivered", node=self.telemetry_label)
        return True

    def commit_block(self, block: Block, delivered: list[TxEnvelope]) -> None:
        """Persist the block and its transactions; trigger nested children."""
        transactions = self.database.collection("transactions")
        assets = self.database.collection("assets")
        utxos = self.database.collection("utxos")
        blocks = self.database.collection("blocks")

        blocks.insert_one(
            {
                "height": block.height,
                "block_id": block.block_id,
                "proposer": block.proposer,
                "transaction_ids": [envelope.tx_id for envelope in delivered],
            }
        )
        accepted_payloads: list[dict[str, Any]] = []
        fresh_utxos: list[dict[str, Any]] = []
        spent_in_block: set[tuple[str, int]] = set()
        for envelope in delivered:
            payload = envelope.payload
            transactions.insert_one(payload)
            asset = payload.get("asset") or {}
            if "data" in asset:
                assets.insert_one({"id": payload["id"], "data": asset.get("data")})
            # UTXO maintenance: consume pre-existing spent refs now, and
            # group-commit the block's fresh outputs in one batched write
            # below — minus any output a later transaction in this same
            # block already spends (intra-block chains must not resurrect).
            for item in payload.get("inputs", []):
                fulfills = item.get("fulfills")
                if fulfills:
                    ref = (fulfills["transaction_id"], fulfills["output_index"])
                    spent_in_block.add(ref)
                    utxos.delete_many(
                        {"transaction_id": ref[0], "output_index": ref[1]}
                    )
            for index, output in enumerate(payload.get("outputs", [])):
                fresh_utxos.append(
                    {
                        "transaction_id": payload["id"],
                        "output_index": index,
                        "public_keys": output.get("public_keys", []),
                        "amount": output.get("amount"),
                    }
                )
            if payload.get("operation") == ACCEPT_BID:
                accepted_payloads.append(payload)
            elif payload.get("operation") == RETURN:
                self.nested.on_return_committed(payload)
                self.stats["returns_confirmed"] += 1
            self.stats["committed"] += 1

        utxos.insert_many(
            [
                document
                for document in fresh_utxos
                if (document["transaction_id"], document["output_index"])
                not in spent_in_block
                and not any(
                    suppress(document["transaction_id"], document["output_index"])
                    for suppress in self.utxo_suppressors
                )
            ]
        )
        self.context.clear_staged()

        # Non-locking nested processing: children are determined *after*
        # the parent is durably committed (Algorithm 3, Commit part).
        for payload in accepted_payloads:
            metadata = payload.get("metadata") or {}
            rfq_id = metadata.get("rfq_id") or (payload.get("references") or [None])[0]
            if rfq_id is None:
                continue
            locked = self.context.locked_bids(rfq_id)
            self.nested.on_accept_committed(payload, locked)
            self.stats["accepts_processed"] += 1

        for envelope in delivered:
            for hook in self.commit_hooks:
                hook(envelope.payload)

    # -- cost model --------------------------------------------------------------

    def execution_cost(self, envelope: TxEnvelope) -> float:
        operation = envelope.payload.get("operation", "TRANSFER")
        return self.costs.validation_cost(operation, envelope.size_bytes)

    def block_validation_cost(self, envelopes: list[TxEnvelope]) -> float:
        """Simulated seconds to validate one block's transactions.

        The declarative access sets partition the block into conflict
        groups before execution (Section 6's "higher level of
        abstraction"), so independent transactions validate in parallel
        lanes and the block charge is ``max(lane sums)``, not the serial
        sum — the paper's modelled speedup made real on the commit path.
        """
        if self.scheduler is None or len(envelopes) <= 1:
            return sum(self.execution_cost(envelope) for envelope in envelopes)
        payloads = [envelope.payload for envelope in envelopes]
        cost_by_identity = {
            id(payload): self.execution_cost(envelope)
            for payload, envelope in zip(payloads, envelopes)
        }
        schedule = self.scheduler.schedule(
            payloads, lambda payload: cost_by_identity[id(payload)]
        )
        return schedule.parallel_cost

    def commit_cost(self, block: Block) -> float:
        return self.costs.block_commit_cost(block.size_bytes)

    # -- queries (the "reliable queryability" the storage model enables) -----------

    def get_transaction(self, tx_id: str) -> dict[str, Any] | None:
        return self.database.collection("transactions").find_one({"id": tx_id})

    def views_current(self) -> bool:
        """May the materialized views answer for this node right now?

        True when the view layer has applied at least as many of this
        shard's blocks as this node has committed — a view answer is then
        a superset-in-time of the node's own state, never stale.
        """
        if self.views is None or self.chain_height_provider is None:
            return False
        return self.views.height(self.views_shard) >= self.chain_height_provider()

    def _count_read(self, served_from: str) -> None:
        self.read_stats[served_from] += 1
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter(f"reads_{served_from}", node=self.telemetry_label).inc()

    def open_requests(
        self, capability: str | None = None, source: str = "auto"
    ) -> list[dict[str, Any]]:
        """Open RFQs, optionally filtered by requested capability —
        the query the paper's Section 2.1 laments smart contracts cannot
        answer ("finding open service requests for 3-D printing").

        ``source`` selects the read path: ``"auto"`` serves from the
        WAL-fed materialized views whenever they are at least as fresh as
        this node's chain (falling back to the collection scan), while
        ``"views"`` / ``"scan"`` force one side (golden parity tests).
        """
        if source != "scan" and self.views is not None:
            if source == "views" or self.views_current():
                self._count_read("view_served")
                return [
                    deep_copy_json(request)
                    for request in self.views.open_requests(
                        capability, shard=self.views_shard
                    )
                ]
        self._count_read("scan_fallback")
        # Scan zero-copy; only the surviving open requests are copied for
        # the caller, instead of every committed REQUEST.
        requests = self.database.collection("transactions").find(
            {"operation": "REQUEST"}, copy=False
        )
        open_requests = []
        for request in requests:
            if self.context.accept_for_request(request["id"]) is not None:
                continue
            if capability is not None:
                data = (request.get("asset") or {}).get("data") or {}
                if capability not in (data.get("capabilities") or []):
                    continue
            open_requests.append(deep_copy_json(request))
        return open_requests

    def bids_for(self, request_id: str) -> list[dict[str, Any]]:
        return self.context.bids_for_request(request_id)

    def outputs_for(
        self, public_key: str, source: str = "auto"
    ) -> list[dict[str, Any]]:
        """Unspent outputs held by an account (wallet view).

        Same ``source`` contract as :meth:`open_requests`.
        """
        if source != "scan" and self.views is not None:
            if source == "views" or self.views_current():
                self._count_read("view_served")
                return [
                    deep_copy_json(document)
                    for document in self.views.outputs_for(
                        public_key, shard=self.views_shard
                    )
                ]
        self._count_read("scan_fallback")
        return self.database.collection("utxos").find({"public_keys": public_key})
