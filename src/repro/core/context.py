"""Ledger view used by semantic validation.

Wraps a node's document store behind the query helpers the paper's
algorithms call (``getTxFromDB``, ``getLockedBids``,
``getAcceptTxForRFQ``) plus UTXO bookkeeping, and tracks the
*currently staged* transactions of the block being validated so that
intra-block double spends are caught (the ``CurrentTxs`` parameter of
Algorithms 2-3).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.errors import DoubleSpendError, InputDoesNotExistError
from repro.core.transaction import CREATE, OutputRef, REQUEST
from repro.crypto.keys import ReservedAccounts
from repro.storage.database import Database

#: External double-spend oracle: returns the id of whatever holds/spends
#: the output, or None.  Installed by cross-shard machinery so that a
#: remote 2PC lock on a local UTXO is visible to local validation.
SpendGuard = Callable[[OutputRef], "str | None"]


class ValidationContext:
    """Read view over committed state + the in-flight block."""

    def __init__(self, database: Database, reserved: ReservedAccounts, now: float = 0.0):
        self._database = database
        self.reserved = reserved
        self.now = now
        #: Output refs spent by transactions staged in the current block.
        self._staged_spends: set[tuple[str, int]] = set()
        #: Payloads staged in the current block, by id.
        self._staged_txs: dict[str, dict[str, Any]] = {}
        #: Extra spend oracles consulted by :meth:`output_spender` —
        #: the lock hook the sharding coordinator installs.
        self.spend_guards: list[SpendGuard] = []
        #: Admission-only gatekeepers ``payload -> reason | None`` —
        #: the sharding layer uses one to refuse transactions spending
        #: foreign-homed outputs unless they arrive through their 2PC
        #: commit-point submission.  Never consulted by block delivery.
        self.ingress_gates: list[Any] = []
        #: Whether :meth:`output_spender` consults the guards.  Admission
        #: paths leave this True; block delivery turns it off, because
        #: the guards read the shard agent's *live* lock table — replicas
        #: deliver the same block at different simulated instants, and a
        #: lock released in between would make them disagree on the
        #: block's valid transactions (found by the byzantine chaos
        #: sweep, seed 7).  DeliverTx must be a pure function of
        #: committed + staged state.
        self.use_spend_guards = True

    # -- committed-state queries (Algorithm 2/3 helpers) -----------------------

    def get_tx(self, tx_id: str) -> dict[str, Any] | None:
        """``getTxFromDB``: committed transaction payload or None.

        Returns the frozen stored payload (zero-copy): validation reads
        prior transactions, it never mutates them.
        """
        staged = self._staged_txs.get(tx_id)
        if staged is not None:
            return staged
        return self._database.collection("transactions").find_one({"id": tx_id}, copy=False)

    def is_committed(self, tx_id: str) -> bool:
        """True if the transaction is committed (or staged in this block)."""
        return self.get_tx(tx_id) is not None

    def require_committed(self, tx_id: str, what: str) -> dict[str, Any]:
        """Fetch a committed transaction or raise (Algorithm 2 line 3-4).

        Raises:
            InputDoesNotExistError: if the transaction is unknown.
        """
        payload = self.get_tx(tx_id)
        if payload is None:
            raise InputDoesNotExistError(f"{what} transaction {tx_id[:8]}... is not committed")
        return payload

    def output_spender(self, ref: OutputRef) -> str | None:
        """Id of the committed transaction spending ``ref``, or None."""
        if (ref.transaction_id, ref.output_index) in self._staged_spends:
            return "<staged>"
        if self.use_spend_guards:
            for guard in self.spend_guards:
                holder = guard(ref)
                if holder is not None:
                    return holder
        spender = self._database.collection("transactions").find_one(
            {
                "inputs.fulfills.transaction_id": ref.transaction_id,
                "inputs": {
                    "$elemMatch": {
                        "fulfills.transaction_id": ref.transaction_id,
                        "fulfills.output_index": ref.output_index,
                    }
                },
            },
            copy=False,
        )
        return spender["id"] if spender else None

    def require_unspent(self, ref: OutputRef) -> None:
        """Raise if ``ref`` was already spent (double-spend protection).

        Raises:
            DoubleSpendError: naming the conflicting spender.
        """
        spender = self.output_spender(ref)
        if spender is not None:
            raise DoubleSpendError(
                f"output {ref.transaction_id[:8]}..:{ref.output_index} already spent by {spender[:8]}"
            )

    def bids_for_request(self, request_id: str, *, copy: bool = True) -> list[dict[str, Any]]:
        """All committed BIDs referencing ``request_id``.

        ``copy=False`` returns the frozen stored payloads for read-only
        consumers (validation, the nested-transaction processor).
        """
        return self._database.collection("transactions").find(
            {"operation": "BID", "references": request_id}, copy=copy
        )

    def locked_bids(self, request_id: str) -> list[dict[str, Any]]:
        """``getLockedBids``: bids whose escrow output is still unspent."""
        locked = []
        for bid in self.bids_for_request(request_id, copy=False):
            ref = OutputRef(bid["id"], 0)
            if self.output_spender(ref) is None:
                locked.append(bid)
        return locked

    def accept_for_request(self, request_id: str) -> dict[str, Any] | None:
        """``getAcceptTxForRFQ``: existing ACCEPT_BID for the RFQ, if any."""
        for tx_id, staged in self._staged_txs.items():
            if staged.get("operation") == "ACCEPT_BID" and request_id in staged.get("references", []):
                return staged
        return self._database.collection("transactions").find_one(
            {"operation": "ACCEPT_BID", "references": request_id}, copy=False
        )

    def signer_of(self, payload: dict[str, Any]) -> str | None:
        """The first ``owners_before`` key of the first input — the
        account that authored the transaction (Algorithm 3 line 6)."""
        inputs = payload.get("inputs") or []
        if not inputs:
            return None
        owners = inputs[0].get("owners_before") or []
        return owners[0] if owners else None

    def asset_lineage_id(self, payload: dict[str, Any]) -> str | None:
        """The asset id a transaction operates on.

        Genesis operations (CREATE/REQUEST) *are* their asset; spending
        operations link to it via ``asset.id``.
        """
        asset = payload.get("asset") or {}
        if "id" in asset:
            return asset["id"]
        if payload.get("operation") in (CREATE, REQUEST):
            return payload.get("id")
        return None

    # -- staging ---------------------------------------------------------------

    def stage(self, payload: dict[str, Any]) -> None:
        """Record a validated transaction of the current block."""
        self._staged_txs[payload["id"]] = payload
        for item in payload.get("inputs", []):
            fulfills = item.get("fulfills")
            if fulfills:
                self._staged_spends.add(
                    (fulfills["transaction_id"], fulfills["output_index"])
                )

    def clear_staged(self) -> None:
        """Forget the current block's staged state (post-commit)."""
        self._staged_spends.clear()
        self._staged_txs.clear()
