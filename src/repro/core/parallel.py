"""Speculative parallel validation of declarative transactions.

Section 6 of the paper surveys concurrent smart-contract execution and
notes that read/write-set conflict detection "might be too aggressive,
resulting in many unnecessary conflicts ... suggesting the need for
reasoning about conflicts at a slightly higher level of abstraction."

Declarative transactions *are* that higher level: each type declares
exactly which ledger objects it touches (spent output refs, referenced
transactions, asset lineages), so a scheduler can partition a block into
conflict groups **before** execution — no speculative aborts needed.

:class:`ConflictScheduler` builds the access sets from payloads alone,
unions overlapping transactions (union-find), topologically keeps
intra-group order, and packs groups into a bounded number of parallel
validation lanes.  The simulated time for a block's validation then
drops from ``sum(costs)`` to ``max(lane sums)`` — the quantity the
worker-width ablation measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence


@dataclass(frozen=True)
class AccessSet:
    """The ledger objects one transaction reads or writes.

    * ``writes`` — objects the transaction consumes or creates (spent
      output refs, its own asset lineage).
    * ``reads`` — objects it only checks (referenced transactions:
      the REQUEST a BID answers, the bids an ACCEPT_BID considers).

    Two transactions conflict iff one's writes intersect the other's
    reads or writes.
    """

    tx_id: str
    writes: frozenset[str]
    reads: frozenset[str]

    def conflicts_with(self, other: "AccessSet") -> bool:
        if self.writes & other.writes:
            return True
        if self.writes & other.reads:
            return True
        if self.reads & other.writes:
            return True
        return False


def access_set_of(payload: dict[str, Any]) -> AccessSet:
    """Derive the declared access set of a transaction payload."""
    writes: set[str] = set()
    reads: set[str] = set()
    for item in payload.get("inputs", []):
        fulfills = item.get("fulfills")
        if fulfills:
            writes.add(f"utxo:{fulfills['transaction_id']}:{fulfills['output_index']}")
    asset = payload.get("asset") or {}
    asset_id = asset.get("id")
    if asset_id:
        writes.add(f"asset:{asset_id}")
    for reference in payload.get("references", []):
        reads.add(f"tx:{reference}")
    operation = payload.get("operation")
    if operation == "ACCEPT_BID":
        # Settling an RFQ excludes concurrent accepts on it: treat the
        # referenced request as written.
        for reference in payload.get("references", []):
            writes.add(f"rfq:{reference}")
            reads.discard(f"tx:{reference}")
    return AccessSet(
        tx_id=payload.get("id", ""),
        writes=frozenset(writes),
        reads=frozenset(reads),
    )


class _UnionFind:
    def __init__(self, size: int):
        self._parent = list(range(size))

    def find(self, index: int) -> int:
        root = index
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[index] != root:
            self._parent[index], index = root, self._parent[index]
        return root

    def union(self, left: int, right: int) -> None:
        self._parent[self.find(left)] = self.find(right)


@dataclass
class Schedule:
    """The scheduler's output for one block.

    ``groups`` holds conflict groups (original order preserved inside a
    group); ``lanes`` maps each group to a validation lane.
    """

    groups: list[list[str]]
    lanes: list[list[int]]
    serial_cost: float
    parallel_cost: float

    @property
    def speedup(self) -> float:
        if self.parallel_cost <= 0:
            return 1.0
        return self.serial_cost / self.parallel_cost


class ConflictScheduler:
    """Partition block transactions into parallel validation lanes.

    Args:
        lanes: number of parallel validation workers (1 = serial).
    """

    def __init__(self, lanes: int = 4):
        if lanes < 1:
            raise ValueError("need at least one lane")
        self.lanes = lanes

    def conflict_groups(self, payloads: Sequence[dict[str, Any]]) -> list[list[int]]:
        """Indices of payloads grouped by transitive conflict."""
        access_sets = [access_set_of(payload) for payload in payloads]
        union_find = _UnionFind(len(payloads))
        # Index objects -> last toucher per mode, avoiding O(n^2) pairwise
        # comparisons: a conflict exists iff some shared object is written
        # by at least one side (read-read sharing is safe).
        last_writer: dict[str, int] = {}
        last_reader: dict[str, int] = {}
        for index, access in enumerate(access_sets):
            for key in access.writes:
                if key in last_writer:
                    union_find.union(index, last_writer[key])
                if key in last_reader:
                    union_find.union(index, last_reader[key])
                last_writer[key] = index
            for key in access.reads:
                if key in last_writer:
                    union_find.union(index, last_writer[key])
                last_reader[key] = index
        groups: dict[int, list[int]] = {}
        for index in range(len(payloads)):
            groups.setdefault(union_find.find(index), []).append(index)
        return [sorted(members) for _, members in sorted(groups.items())]

    def schedule(
        self,
        payloads: Sequence[dict[str, Any]],
        cost_of: Callable[[dict[str, Any]], float],
    ) -> Schedule:
        """Pack conflict groups into lanes (longest-processing-time first).

        Returns a :class:`Schedule` with serial and parallel simulated
        validation costs for the block.
        """
        index_groups = self.conflict_groups(payloads)
        group_costs = [
            sum(cost_of(payloads[index]) for index in group) for group in index_groups
        ]
        serial_cost = sum(group_costs)

        lane_loads = [0.0] * self.lanes
        lane_members: list[list[int]] = [[] for _ in range(self.lanes)]
        # LPT bin packing: heaviest group to the lightest lane.
        order = sorted(range(len(index_groups)), key=lambda g: -group_costs[g])
        for group_index in order:
            lane = min(range(self.lanes), key=lambda l: lane_loads[l])
            lane_loads[lane] += group_costs[group_index]
            lane_members[lane].append(group_index)
        parallel_cost = max(lane_loads) if lane_loads else 0.0

        return Schedule(
            groups=[
                [payloads[index].get("id", "") for index in group]
                for group in index_groups
            ],
            lanes=lane_members,
            serial_cost=serial_cost,
            parallel_cost=parallel_cost,
        )


def parallel_validation_cost(
    payloads: Sequence[dict[str, Any]],
    cost_of: Callable[[dict[str, Any]], float],
    lanes: int,
) -> float:
    """Simulated seconds to validate a block with ``lanes`` workers."""
    if lanes <= 1:
        return sum(cost_of(payload) for payload in payloads)
    scheduler = ConflictScheduler(lanes=lanes)
    return scheduler.schedule(payloads, cost_of).parallel_cost
