"""Validation orchestrator: typing scheme dispatch.

Implements the paper's typing scheme ``tau_alpha = <T_alpha, C_alpha>``:
a transaction is valid with respect to its type iff it meets *all* the
type's conditions.  The orchestrator layers the two phases of Fig. 4:

1. **Schema validation** (Algorithm 1) — structure against the YAML
   schema, via :mod:`repro.schema`.
2. **Semantic validation** — the per-type ``validateT_alpha`` methods,
   via the registered :mod:`repro.core.types` validators.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Protocol

from repro.common.errors import SchemaValidationError, ValidationError
from repro.core.context import ValidationContext
from repro.core.transaction import Transaction
from repro.crypto import sigcache
from repro.crypto.keys import verify_signatures_batch
from repro.core.types import (
    AcceptBidValidator,
    BidValidator,
    CreateValidator,
    RequestValidator,
    ReturnValidator,
    TransferValidator,
)
from repro.schema import SchemaRegistry, default_registry


class TypeValidator(Protocol):
    """A per-type semantic validator."""

    operation: str

    def validate(self, ctx: ValidationContext, transaction: Transaction) -> None: ...


class ValidationCache:
    """Bounded memo of payload objects whose integrity already verified.

    A transaction is validated several times on its way into a block:
    receiver-node validation, every validator's CheckTx, and the final
    DeliverTx before commit.  The expensive parts — canonical
    serialisation + SHA3 for ``verify_id`` and the ed25519
    ``verify_signatures`` — are pure functions of the payload, so
    re-running them on the *same payload object* is wasted work.

    Entries are keyed by transaction id but a hit additionally requires
    the cached entry to be the **same object** (``is``) as the payload
    being checked: a different dict claiming a cached id misses and goes
    through full verification, so a forged body cannot ride on a cached
    verdict.  The cache holds strong references, which is what makes the
    identity test sound while an entry lives.

    Ownership contract: a payload handed to the validator must not be
    mutated in place between validation calls — an identity hit cannot
    detect such tampering without re-hashing, which is exactly the cost
    being cached away.  ``SmartchainCluster.submit_payload`` enforces
    this at the driver trust boundary by deep-copying the payload once
    on entry, so nothing outside the pipeline holds a reference to the
    object the cache vouches for; standalone ``TransactionValidator``
    users who mutate and re-check a payload must construct a fresh dict
    (or disable the cache).
    """

    def __init__(self, maxsize: int = 8192):
        self._maxsize = maxsize
        self._entries: "OrderedDict[str, dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def check(self, payload: dict[str, Any]) -> bool:
        """True if this exact payload object already verified."""
        tx_id = payload.get("id")
        entry = self._entries.get(tx_id) if isinstance(tx_id, str) else None
        if entry is not None and entry is payload:
            self.hits += 1
            self._entries.move_to_end(tx_id)
            return True
        self.misses += 1
        return False

    def record(self, payload: dict[str, Any]) -> None:
        """Remember a payload whose id and signatures verified."""
        tx_id = payload.get("id")
        if not isinstance(tx_id, str):
            return
        self._entries[tx_id] = payload
        self._entries.move_to_end(tx_id)
        if len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


class TransactionValidator:
    """Schema + semantic validation for every registered type.

    Extensible by design: :meth:`register` adds new declarative types at
    runtime (the paper's "hope is that this set can be extended over
    time").
    """

    def __init__(
        self,
        schema_registry: SchemaRegistry | None = None,
        verification_cache: bool = True,
    ):
        self._schemas = schema_registry or default_registry()
        #: Integrity/signature memo; None when caching is disabled (the
        #: hot-path benchmark measures both configurations).
        self.verification_cache: ValidationCache | None = (
            ValidationCache() if verification_cache else None
        )
        self._validators: dict[str, TypeValidator] = {}
        for validator in (
            CreateValidator(),
            TransferValidator(),
            RequestValidator(),
            BidValidator(),
            AcceptBidValidator(),
            ReturnValidator(),
        ):
            self.register(validator)

    def register(self, validator: TypeValidator) -> None:
        """Register (or replace) the validator for an operation."""
        self._validators[validator.operation] = validator

    def operations(self) -> list[str]:
        """All operations with a registered semantic validator."""
        return sorted(self._validators)

    # -- phases -----------------------------------------------------------------

    def validate_schema(self, payload: dict[str, Any]) -> None:
        """Phase 1 (Algorithm 1).

        Raises:
            SchemaValidationError on structural violations.
        """
        self._schemas.validate_transaction(payload)

    def validate_semantics(self, ctx: ValidationContext, payload: dict[str, Any]) -> Transaction:
        """Phase 2: the type's C_alpha conditions.  Returns the parsed tx.

        Raises:
            ValidationError (or a subclass) on the first violated condition.
        """
        transaction = Transaction.from_dict(payload)
        validator = self._validators.get(transaction.operation)
        if validator is None:
            raise ValidationError(
                f"no semantic validator registered for {transaction.operation!r}"
            )
        cache = self.verification_cache
        if cache is not None and cache.check(payload):
            # Integrity and signatures verified earlier for this exact
            # payload object; pre-seed the transaction's memos so the
            # semantic conditions below see them for free.
            transaction._cached_id = transaction.tx_id
            transaction._signatures_memo = True
        else:
            if not transaction.verify_id():
                raise ValidationError("transaction id does not match body hash", "integrity")
            if cache is not None:
                # Verify eagerly and memoise the verdict either way —
                # the per-type validator's signature condition then costs
                # nothing, including on the rejection path.
                signatures_ok = transaction.verify_signatures()
                transaction._signatures_memo = signatures_ok
                if signatures_ok:
                    cache.record(payload)
        validator.validate(ctx, transaction)
        return transaction

    def validate(self, ctx: ValidationContext, payload: dict[str, Any]) -> Transaction:
        """Both phases in order (receiver-node validation of Fig. 4)."""
        self.validate_schema(payload)
        return self.validate_semantics(ctx, payload)

    def check_block(self, payloads: list[dict[str, Any]], rng: Any = None) -> list[bool]:
        """Block-grade :meth:`check_tx`: verify signatures batch-first.

        Every signature of every uncached payload in the block is settled
        through one random-linear-combination batch check (seeding the
        cluster-wide signature cache), and only then do the per-payload
        checks run — their per-signature verifications become cache hits.
        Verdicts match per-payload ``check_tx`` exactly; a bad signature
        anywhere in the block falls back to independent verification, so
        it can neither veto nor ride along with its batchmates.

        Args:
            payloads: the block's transaction payloads, in block order.
            rng: optional ``getrandbits`` provider for the batch
                coefficients (a seeded ``sim.rng`` stream).
        """
        cache = self.verification_cache
        verdicts: list[bool | None] = [None] * len(payloads)
        parsed: list[tuple[int, Transaction]] = []
        triples: list[tuple[str, bytes, str]] = []
        for index, payload in enumerate(payloads):
            try:
                self.validate_schema(payload)
                if cache is not None and cache.check(payload):
                    verdicts[index] = True
                    continue
                transaction = Transaction.from_dict(payload)
                if not transaction.verify_id():
                    verdicts[index] = False
                    continue
                parsed.append((index, transaction))
                triples.extend(transaction.signature_items())
            except (SchemaValidationError, ValidationError):
                verdicts[index] = False
        # Batch pre-pass only pays off when the verdicts can be handed to
        # the per-signature checks through the shared cache.
        if triples and sigcache.shared_cache() is not None:
            verify_signatures_batch(triples, rng=rng)
        for index, transaction in parsed:
            signatures_ok = transaction.verify_signatures()
            verdicts[index] = signatures_ok
            if signatures_ok and cache is not None:
                cache.record(payloads[index])
        return [bool(verdict) for verdict in verdicts]

    def check_tx(self, payload: dict[str, Any]) -> bool:
        """Mempool-grade stateless check (schema + id + signatures).

        This is the CheckTx re-validation other validators run to confirm
        "the validator node did not tamper the transaction" (Fig. 4) —
        it needs no ledger state.
        """
        try:
            self.validate_schema(payload)
            cache = self.verification_cache
            if cache is not None and cache.check(payload):
                return True
            transaction = Transaction.from_dict(payload)
            if not transaction.verify_id():
                return False
            if not transaction.verify_signatures():
                return False
            if cache is not None:
                cache.record(payload)
            return True
        except (SchemaValidationError, ValidationError):
            return False
