"""Validation orchestrator: typing scheme dispatch.

Implements the paper's typing scheme ``tau_alpha = <T_alpha, C_alpha>``:
a transaction is valid with respect to its type iff it meets *all* the
type's conditions.  The orchestrator layers the two phases of Fig. 4:

1. **Schema validation** (Algorithm 1) — structure against the YAML
   schema, via :mod:`repro.schema`.
2. **Semantic validation** — the per-type ``validateT_alpha`` methods,
   via the registered :mod:`repro.core.types` validators.
"""

from __future__ import annotations

from typing import Any, Protocol

from repro.common.errors import SchemaValidationError, ValidationError
from repro.core.context import ValidationContext
from repro.core.transaction import Transaction
from repro.core.types import (
    AcceptBidValidator,
    BidValidator,
    CreateValidator,
    RequestValidator,
    ReturnValidator,
    TransferValidator,
)
from repro.schema import SchemaRegistry, default_registry


class TypeValidator(Protocol):
    """A per-type semantic validator."""

    operation: str

    def validate(self, ctx: ValidationContext, transaction: Transaction) -> None: ...


class TransactionValidator:
    """Schema + semantic validation for every registered type.

    Extensible by design: :meth:`register` adds new declarative types at
    runtime (the paper's "hope is that this set can be extended over
    time").
    """

    def __init__(self, schema_registry: SchemaRegistry | None = None):
        self._schemas = schema_registry or default_registry()
        self._validators: dict[str, TypeValidator] = {}
        for validator in (
            CreateValidator(),
            TransferValidator(),
            RequestValidator(),
            BidValidator(),
            AcceptBidValidator(),
            ReturnValidator(),
        ):
            self.register(validator)

    def register(self, validator: TypeValidator) -> None:
        """Register (or replace) the validator for an operation."""
        self._validators[validator.operation] = validator

    def operations(self) -> list[str]:
        """All operations with a registered semantic validator."""
        return sorted(self._validators)

    # -- phases -----------------------------------------------------------------

    def validate_schema(self, payload: dict[str, Any]) -> None:
        """Phase 1 (Algorithm 1).

        Raises:
            SchemaValidationError on structural violations.
        """
        self._schemas.validate_transaction(payload)

    def validate_semantics(self, ctx: ValidationContext, payload: dict[str, Any]) -> Transaction:
        """Phase 2: the type's C_alpha conditions.  Returns the parsed tx.

        Raises:
            ValidationError (or a subclass) on the first violated condition.
        """
        transaction = Transaction.from_dict(payload)
        validator = self._validators.get(transaction.operation)
        if validator is None:
            raise ValidationError(
                f"no semantic validator registered for {transaction.operation!r}"
            )
        if not transaction.verify_id():
            raise ValidationError("transaction id does not match body hash", "integrity")
        validator.validate(ctx, transaction)
        return transaction

    def validate(self, ctx: ValidationContext, payload: dict[str, Any]) -> Transaction:
        """Both phases in order (receiver-node validation of Fig. 4)."""
        self.validate_schema(payload)
        return self.validate_semantics(ctx, payload)

    def check_tx(self, payload: dict[str, Any]) -> bool:
        """Mempool-grade stateless check (schema + id + signatures).

        This is the CheckTx re-validation other validators run to confirm
        "the validator node did not tamper the transaction" (Fig. 4) —
        it needs no ledger state.
        """
        try:
            self.validate_schema(payload)
            transaction = Transaction.from_dict(payload)
            if not transaction.verify_id():
                return False
            return transaction.verify_signatures()
        except (SchemaValidationError, ValidationError):
            return False
