"""Transaction templates — the Driver's "Prepare" step.

The paper's Driver generates transactions from "pre-existing templates
customised to each transaction type" (Section 4).  Each function here
assembles an unsigned :class:`~repro.core.transaction.Transaction` from
high-level intent; callers then ``sign(...)`` it.  No user-written
transaction logic is ever needed — that is the declarative pitch.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import ValidationError
from repro.core.asset import CAPABILITIES_KEY
from repro.core.transaction import (
    ACCEPT_BID,
    BID,
    CREATE,
    REQUEST,
    RETURN,
    TRANSFER,
    Input,
    Output,
    OutputRef,
    Transaction,
)
from repro.crypto.keys import KeyPair


def build_create(
    owner: KeyPair,
    asset_data: dict[str, Any],
    amount: int = 1,
    metadata: dict[str, Any] | None = None,
    recipients: list[tuple[str, int]] | None = None,
) -> Transaction:
    """CREATE: mint a new asset owned by ``owner`` (or custom recipients).

    Args:
        owner: the minting account (signs the genesis input).
        asset_data: the asset's nested key/value document.
        amount: total shares when no explicit recipients are given.
        recipients: optional ``(public_key, amount)`` split of the shares.
    """
    if recipients:
        outputs = [Output.for_owner(public_key, share) for public_key, share in recipients]
    else:
        outputs = [Output.for_owner(owner.public_key, amount)]
    return Transaction(
        operation=CREATE,
        asset={"data": dict(asset_data)},
        inputs=[Input(owners_before=[owner.public_key], fulfills=None)],
        outputs=outputs,
        metadata=metadata,
    )


def build_transfer(
    sender: KeyPair,
    spent: list[tuple[str, int, int]],
    asset_id: str,
    recipients: list[tuple[str, int]],
    metadata: dict[str, Any] | None = None,
) -> Transaction:
    """TRANSFER: spend committed outputs and assign new owners.

    Args:
        sender: current owner signing the spend.
        spent: list of ``(transaction_id, output_index, amount)`` being
            consumed (amounts are informational; validation recomputes).
        asset_id: id of the CREATE transaction that minted the asset.
        recipients: ``(public_key, amount)`` pairs for the new outputs.
    """
    inputs = [
        Input(
            owners_before=[sender.public_key],
            fulfills=OutputRef(transaction_id, output_index),
        )
        for transaction_id, output_index, _ in spent
    ]
    outputs = [
        Output.for_owner(public_key, amount, owners_before=[sender.public_key])
        for public_key, amount in recipients
    ]
    return Transaction(
        operation=TRANSFER,
        asset={"id": asset_id},
        inputs=inputs,
        outputs=outputs,
        metadata=metadata,
    )


def build_request(
    requester: KeyPair,
    capabilities: list[str],
    metadata: dict[str, Any] | None = None,
    extra_asset_data: dict[str, Any] | None = None,
) -> Transaction:
    """REQUEST: post an RFQ asking for the given capabilities.

    The requested capabilities live in the request's asset data so BID
    validation (Algorithm 2) can read them with an indexed lookup.
    """
    asset_data: dict[str, Any] = dict(extra_asset_data or {})
    asset_data[CAPABILITIES_KEY] = list(capabilities)
    return Transaction(
        operation=REQUEST,
        asset={"data": asset_data},
        inputs=[Input(owners_before=[requester.public_key], fulfills=None)],
        outputs=[Output.for_owner(requester.public_key, 1)],
        metadata=metadata,
    )


def build_bid(
    bidder: KeyPair,
    request_id: str,
    bid_asset_id: str,
    spent: list[tuple[str, int, int]],
    escrow_public_key: str,
    metadata: dict[str, Any] | None = None,
) -> Transaction:
    """BID: escrow an asset in response to a REQUEST (Definition 3).

    The bid's inputs spend the bidder's committed outputs of
    ``bid_asset_id``; every output is owned by the escrow account
    (CBID.6), with the bidder recorded as ``owners_before`` so RETURNs
    know where to send the asset back.
    """
    if not spent:
        raise ValidationError("a BID must spend at least one output (CBID.1)", "CBID.1")
    inputs = [
        Input(
            owners_before=[bidder.public_key],
            fulfills=OutputRef(transaction_id, output_index),
        )
        for transaction_id, output_index, _ in spent
    ]
    total = sum(amount for _, _, amount in spent)
    outputs = [
        Output.for_owner(escrow_public_key, total, owners_before=[bidder.public_key])
    ]
    return Transaction(
        operation=BID,
        asset={"id": bid_asset_id},
        inputs=inputs,
        outputs=outputs,
        metadata=metadata,
        references=[request_id],
    )


def build_accept_bid(
    requester: KeyPair,
    request_id: str,
    winning_bid: Transaction,
    metadata: dict[str, Any] | None = None,
) -> Transaction:
    """ACCEPT_BID: select the winning bid (Definition 4, Algorithm 3).

    Spends the winning bid's escrow-held output; the output assigns the
    escrowed asset to the requester.  RETURN children for losing bids are
    determined by the server at block commit (non-locking execution) and
    recorded in ``children`` afterwards.
    """
    if winning_bid.tx_id is None:
        raise ValidationError("winning bid must be committed (have an id)")
    escrow_output = winning_bid.outputs[0]
    inputs = [
        Input(
            owners_before=[requester.public_key],
            fulfills=OutputRef(winning_bid.tx_id, 0),
        )
    ]
    outputs = [
        Output.for_owner(
            requester.public_key,
            escrow_output.amount,
            owners_before=list(escrow_output.public_keys),
        )
    ]
    meta = dict(metadata or {})
    meta.setdefault("rfq_id", request_id)
    meta.setdefault("win_bid_id", winning_bid.tx_id)
    return Transaction(
        operation=ACCEPT_BID,
        asset={"id": winning_bid.tx_id},
        inputs=inputs,
        outputs=outputs,
        metadata=meta,
        references=[request_id],
    )


def build_return(
    escrow: KeyPair,
    losing_bid_payload: dict[str, Any],
    accept_id: str,
    metadata: dict[str, Any] | None = None,
) -> Transaction:
    """RETURN: system-issued child sending a losing bid back to its bidder.

    Built by ``deterRtrnTxs`` (Algorithm 3) on the server from the losing
    BID's payload: spends the escrow-held output and re-assigns it to the
    recorded ``owners_before`` (the original bidder, CACCEPT_BID.8).
    """
    bid_id = losing_bid_payload["id"]
    escrow_output = losing_bid_payload["outputs"][0]
    original_bidders = escrow_output.get("owners_before") or []
    if not original_bidders:
        raise ValidationError(
            f"bid {bid_id[:8]} has no recorded original bidder to return to",
            "CACCEPT_BID.8",
        )
    inputs = [
        Input(owners_before=[escrow.public_key], fulfills=OutputRef(bid_id, 0))
    ]
    outputs = [
        Output.for_owner(
            original_bidders[0],
            int(escrow_output["amount"]),
            owners_before=[escrow.public_key],
        )
    ]
    meta = dict(metadata or {})
    meta.setdefault("accept_id", accept_id)
    return Transaction(
        operation=RETURN,
        asset={"id": losing_bid_payload["asset"]["id"]},
        inputs=inputs,
        outputs=outputs,
        metadata=meta,
        references=[bid_id, accept_id],
    )
