"""Extension transaction types built with the predicate DSL.

The paper's "hope is that this set can be extended over time resulting
in a corresponding decrease in the dependence on smart contracts".  The
reserved-operation enum in the base schema already names two further
marketplace primitives; here they are, defined *entirely declaratively*
— each is a name plus a composed condition expression, no validator
class:

* **INTEREST** — a supplier signals interest in an open REQUEST before
  committing an asset-backed BID (a common pre-auction step).  One per
  (supplier, request); spends nothing.
* **PRE_REQUEST** — a buyer publishes a draft RFQ for market feedback;
  a later REQUEST can reference it.  Spends nothing, must declare the
  draft capabilities.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.core.context import ValidationContext
from repro.core.predicates import (
    DeclarativeType,
    Predicate,
    declarative_type,
    genesis_inputs,
    id_integral,
    min_references,
    references_committed_operation,
    signatures_valid,
    unique_per_reference,
)
from repro.core.transaction import Input, Output, Transaction
from repro.core.validation import TransactionValidator
from repro.crypto.keys import KeyPair

INTEREST = "INTEREST"
PRE_REQUEST = "PRE_REQUEST"


def _declares_capabilities() -> Predicate:
    def check(ctx: ValidationContext, transaction: Transaction) -> None:
        data = (transaction.asset or {}).get("data") or {}
        capabilities = data.get("capabilities")
        if not isinstance(capabilities, list) or not capabilities:
            raise ValidationError("draft must declare at least one capability")

    return Predicate("declares-capabilities", check)


def interest_type() -> DeclarativeType:
    """tau_INTEREST, composed from reusable predicates."""
    return declarative_type(
        INTEREST,
        [
            id_integral(),
            genesis_inputs(),
            signatures_valid(),
            min_references(1),
            references_committed_operation("REQUEST", exactly=1),
            unique_per_reference(INTEREST),
        ],
    )


def pre_request_type() -> DeclarativeType:
    """tau_PRE_REQUEST."""
    return declarative_type(
        PRE_REQUEST,
        [
            id_integral(),
            genesis_inputs(),
            signatures_valid(),
            _declares_capabilities(),
        ],
    )


def register_marketplace_extensions(validator: TransactionValidator) -> None:
    """Register INTEREST and PRE_REQUEST on a validator instance."""
    validator.register(interest_type())
    validator.register(pre_request_type())


# -- builders (Driver templates for the new types) --------------------------------


def build_interest(
    supplier: KeyPair, request_id: str, metadata: dict | None = None
) -> Transaction:
    """INTEREST: register interest in an open REQUEST."""
    return Transaction(
        operation=INTEREST,
        asset={"data": {"kind": "interest"}},
        inputs=[Input(owners_before=[supplier.public_key], fulfills=None)],
        outputs=[Output.for_owner(supplier.public_key, 1)],
        metadata=metadata,
        references=[request_id],
    )


def build_pre_request(
    buyer: KeyPair, capabilities: list[str], metadata: dict | None = None
) -> Transaction:
    """PRE_REQUEST: publish a draft RFQ for feedback."""
    return Transaction(
        operation=PRE_REQUEST,
        asset={"data": {"capabilities": list(capabilities), "kind": "draft"}},
        inputs=[Input(owners_before=[buyer.public_key], fulfills=None)],
        outputs=[Output.for_owner(buyer.public_key, 1)],
        metadata=metadata,
    )
