"""RETURN type: system-issued children of ACCEPT_BID (Section 4.2).

A RETURN sends an unaccepted bid's escrow-held asset back to the original
bidder.  It is signed by the escrow account (the server holds that key)
and must be traceable to a committed ACCEPT_BID.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.core.context import ValidationContext
from repro.core.transaction import Transaction
from repro.core.types.common import validate_transfer_inputs, verify_own_signatures


class ReturnValidator:
    """Conditions for returning a losing bid from escrow.

    C_RETURN:
      1. references name the losing BID and the parent ACCEPT_BID, both
         committed;
      2. signatures verify (the escrow key authorises the spend);
      3. the spent output is the losing bid's escrow output;
      4. the sole output re-assigns the asset to the bid's recorded
         original owner (``owners_before`` — CACCEPT_BID.8's pb_prev);
      5. transfer-input rules hold (committed, unspent, balanced).
    """

    operation = "RETURN"

    def validate(self, ctx: ValidationContext, transaction: Transaction) -> None:
        """Raise on the first violated condition."""
        bid_payload, _ = self.check_c1(ctx, transaction)
        self.check_c2(transaction)
        self.check_c3(transaction, bid_payload)
        self.check_c4(transaction, bid_payload)
        validate_transfer_inputs(
            ctx, transaction, check_conditions=True, check_asset_lineage=False
        )

    def check_c1(self, ctx: ValidationContext, transaction: Transaction):
        if len(transaction.references) < 2:
            raise ValidationError(
                "RETURN must reference the losing BID and its ACCEPT_BID", "CRETURN.1"
            )
        bid_id, accept_id = transaction.references[0], transaction.references[1]
        bid_payload = ctx.get_tx(bid_id)
        accept_payload = ctx.get_tx(accept_id)
        if bid_payload is None or bid_payload.get("operation") != "BID":
            raise ValidationError("RETURN reference 0 must be a committed BID", "CRETURN.1")
        if accept_payload is None or accept_payload.get("operation") != "ACCEPT_BID":
            raise ValidationError(
                "RETURN reference 1 must be a committed ACCEPT_BID", "CRETURN.1"
            )
        return bid_payload, accept_payload

    def check_c2(self, transaction: Transaction) -> None:
        verify_own_signatures(transaction)

    def check_c3(self, transaction: Transaction, bid_payload: dict) -> None:
        refs = transaction.spent_refs()
        if len(refs) != 1 or refs[0].transaction_id != bid_payload["id"]:
            raise ValidationError(
                "RETURN must spend exactly the losing bid's escrow output", "CRETURN.3"
            )

    def check_c4(self, transaction: Transaction, bid_payload: dict) -> None:
        escrow_output = (bid_payload.get("outputs") or [{}])[0]
        original = escrow_output.get("owners_before") or []
        if not original:
            raise ValidationError(
                "losing BID recorded no original bidder", "CRETURN.4"
            )
        if len(transaction.outputs) != 1:
            raise ValidationError("RETURN must have exactly one output", "CRETURN.4")
        recipient_keys = set(transaction.outputs[0].public_keys)
        if not recipient_keys & set(original):
            raise ValidationError(
                "RETURN output does not go back to the original bidder", "CRETURN.4"
            )
