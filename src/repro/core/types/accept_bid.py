"""ACCEPT_BID type: ``tau_ACCEPT_BID`` (Definition 4, Algorithm 3).

The nested transaction: its commit triggers children (the winning-bid
transfer embodied in its own outputs, plus RETURNs for every losing bid)
under non-locking, eventually-commit semantics.  Validation here is the
parent-side part of Algorithm 3 (lines 1-13); child determination lives
in :mod:`repro.core.nested`.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import (
    DuplicateTransactionError,
    InputDoesNotExistError,
    ValidationError,
)
from repro.core.context import ValidationContext
from repro.core.transaction import REQUEST, Transaction
from repro.core.types.common import validate_transfer_inputs, verify_own_signatures


class AcceptBidValidator:
    """The nine C_ACCEPT_BID conditions, sequenced as in Algorithm 3."""

    operation = "ACCEPT_BID"

    def validate(self, ctx: ValidationContext, transaction: Transaction) -> None:
        """``validateTACCEPT_BID``: raise on the first violated condition."""
        rfq_id, win_bid_id = self.extract_ids(transaction)
        # Lines 1-2: fetch RFQ and winning bid; lines 4-5: both committed.
        request_payload = self.check_committed(ctx, rfq_id, "REQUEST")
        win_payload = self.check_committed(ctx, win_bid_id, "winning BID")
        self.check_c2_c3(ctx, transaction)
        self.check_c5(transaction)
        # Line 6-7: signer(ACCEPT_BID) == signer(RFQ).
        self.check_signer(ctx, transaction, request_payload)
        # Lines 8-10: no duplicate ACCEPT for this RFQ.
        self.check_duplicate(ctx, transaction, rfq_id)
        # Lines 11-12: the winning bid is escrow-held (locked) for the RFQ.
        self.check_c7_locked(ctx, rfq_id, win_payload)
        # Line 13 + C9: transfer-input rules; output goes to the requester.
        validate_transfer_inputs(
            ctx,
            transaction,
            check_conditions=False,  # escrow outputs are spent by protocol rule
            check_asset_lineage=False,
            check_balance=True,
        )
        self.check_c9(ctx, transaction, request_payload)

    # -- extraction ------------------------------------------------------------

    def extract_ids(self, transaction: Transaction) -> tuple[str, str]:
        """Pull (rfq_id, win_bid_id) from metadata/references/asset.

        Raises:
            ValidationError: if either id is missing.
        """
        metadata = transaction.metadata or {}
        rfq_id = metadata.get("rfq_id")
        if rfq_id is None and transaction.references:
            rfq_id = transaction.references[0]
        win_bid_id = metadata.get("win_bid_id") or transaction.asset.get("id")
        if not rfq_id or not win_bid_id:
            raise ValidationError(
                "ACCEPT_BID must identify its RFQ and winning bid", "CACCEPT_BID"
            )
        return rfq_id, win_bid_id

    # -- conditions --------------------------------------------------------------

    def check_committed(self, ctx: ValidationContext, tx_id: str, what: str) -> dict[str, Any]:
        """Algorithm 3 lines 4-5.

        Raises:
            InputDoesNotExistError: if not committed.
        """
        payload = ctx.get_tx(tx_id)
        if payload is None:
            raise InputDoesNotExistError(f"{what} {tx_id[:8]}... is not committed")
        return payload

    def check_c2_c3(self, ctx: ValidationContext, transaction: Transaction) -> None:
        """CACCEPT_BID.2-3: exactly one reference, and it is a REQUEST."""
        if len(transaction.references) != 1:
            raise ValidationError(
                "ACCEPT_BID reference vector must contain exactly one element",
                "CACCEPT_BID.2",
            )
        payload = ctx.get_tx(transaction.references[0])
        if payload is None or payload.get("operation") != REQUEST:
            raise ValidationError(
                "ACCEPT_BID must reference a committed REQUEST", "CACCEPT_BID.3"
            )

    def check_c5(self, transaction: Transaction) -> None:
        """CACCEPT_BID.5: every input signature verifies."""
        verify_own_signatures(transaction)

    def check_signer(
        self,
        ctx: ValidationContext,
        transaction: Transaction,
        request_payload: dict[str, Any],
    ) -> None:
        """Algorithm 3 line 6: only the requester may accept a bid."""
        accept_signer = ctx.signer_of(transaction.to_dict())
        request_signer = ctx.signer_of(request_payload)
        if accept_signer is None or accept_signer != request_signer:
            raise ValidationError(
                "ACCEPT_BID signer differs from REQUEST signer", "CACCEPT_BID.signer"
            )

    def check_duplicate(
        self, ctx: ValidationContext, transaction: Transaction, rfq_id: str
    ) -> None:
        """Algorithm 3 lines 8-10: one ACCEPT_BID per RFQ, ever.

        Raises:
            DuplicateTransactionError: if another accept exists.
        """
        existing = ctx.accept_for_request(rfq_id)
        if existing is not None and existing.get("id") != transaction.tx_id:
            raise DuplicateTransactionError(
                f"RFQ {rfq_id[:8]}... already has ACCEPT_BID {existing['id'][:8]}..."
            )

    def check_c7_locked(
        self,
        ctx: ValidationContext,
        rfq_id: str,
        win_payload: dict[str, Any],
    ) -> None:
        """CACCEPT_BID.7 / Algorithm 3 lines 11-12: the winning bid's
        escrow output must be among the locked (escrow-held, unspent)
        bids for this RFQ."""
        if win_payload.get("operation") != "BID":
            raise ValidationError("winning transaction is not a BID", "CACCEPT_BID.7")
        if rfq_id not in (win_payload.get("references") or []):
            raise ValidationError(
                "winning BID does not reference this RFQ", "CACCEPT_BID.7"
            )
        outputs = win_payload.get("outputs") or []
        if not outputs:
            raise ValidationError("winning BID has no outputs", "CACCEPT_BID.7")
        for public_key in outputs[0].get("public_keys", []):
            if not ctx.reserved.is_reserved(public_key):
                raise ValidationError(
                    "winning BID output is not escrow-held", "CACCEPT_BID.7"
                )

    def check_c9(
        self,
        ctx: ValidationContext,
        transaction: Transaction,
        request_payload: dict[str, Any],
    ) -> None:
        """CACCEPT_BID.9: exactly one output transfers to the requester."""
        requester = ctx.signer_of(request_payload)
        to_requester = [
            output
            for output in transaction.outputs
            if requester in output.public_keys
        ]
        if len(to_requester) != 1:
            raise ValidationError(
                f"ACCEPT_BID must have exactly one output to the requester, found "
                f"{len(to_requester)}",
                "CACCEPT_BID.9",
            )
