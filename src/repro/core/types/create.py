"""CREATE type: ``tau_CREATE``."""

from __future__ import annotations

from repro.common.errors import AmountError, ValidationError
from repro.core.context import ValidationContext
from repro.core.transaction import Transaction
from repro.core.types.common import verify_genesis_inputs, verify_own_signatures


class CreateValidator:
    """Conditions for minting a new asset.

    C_CREATE:
      1. inputs spend nothing (the asset is born here);
      2. every input signature verifies;
      3. the asset carries an inline data document;
      4. every output amount is >= 1;
      5. the transaction id is the hash of its body (tamper evidence).
    """

    operation = "CREATE"

    def validate(self, ctx: ValidationContext, transaction: Transaction) -> None:
        """Raise on the first violated condition."""
        self.check_c1(transaction)
        self.check_c2(transaction)
        self.check_c3(transaction)
        self.check_c4(transaction)
        self.check_c5(transaction)

    def check_c1(self, transaction: Transaction) -> None:
        verify_genesis_inputs(transaction)

    def check_c2(self, transaction: Transaction) -> None:
        verify_own_signatures(transaction)

    def check_c3(self, transaction: Transaction) -> None:
        data = transaction.asset.get("data")
        if not isinstance(data, dict):
            raise ValidationError("CREATE asset must carry a data document", "CCREATE.3")

    def check_c4(self, transaction: Transaction) -> None:
        if any(output.amount < 1 for output in transaction.outputs):
            raise AmountError("CREATE output amounts must be >= 1")

    def check_c5(self, transaction: Transaction) -> None:
        if not transaction.verify_id():
            raise ValidationError("transaction id does not match body hash", "CCREATE.5")
