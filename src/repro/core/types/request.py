"""REQUEST type: ``tau_REQUEST`` — post an RFQ into the marketplace."""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.core.asset import extract_capabilities
from repro.core.context import ValidationContext
from repro.core.transaction import Transaction
from repro.core.types.common import verify_genesis_inputs, verify_own_signatures


class RequestValidator:
    """Conditions for publishing a request-for-quotes.

    C_REQUEST:
      1. inputs spend nothing (a request consumes no asset);
      2. signatures verify;
      3. the asset data declares a non-empty capability list — the
         requested manufacturing capabilities BIDs are matched against;
      4. the id matches the body hash;
      5. optional deadline metadata, when present, must be a number
         strictly in the future of the validating node's clock.
    """

    operation = "REQUEST"

    def validate(self, ctx: ValidationContext, transaction: Transaction) -> None:
        """Raise on the first violated condition."""
        self.check_c1(transaction)
        self.check_c2(transaction)
        self.check_c3(transaction)
        self.check_c4(transaction)
        self.check_c5(ctx, transaction)

    def check_c1(self, transaction: Transaction) -> None:
        verify_genesis_inputs(transaction)

    def check_c2(self, transaction: Transaction) -> None:
        verify_own_signatures(transaction)

    def check_c3(self, transaction: Transaction) -> None:
        capabilities = extract_capabilities(transaction.asset)
        if not capabilities:
            raise ValidationError(
                "REQUEST must declare at least one requested capability", "CREQUEST.3"
            )

    def check_c4(self, transaction: Transaction) -> None:
        if not transaction.verify_id():
            raise ValidationError("transaction id does not match body hash", "CREQUEST.4")

    def check_c5(self, ctx: ValidationContext, transaction: Transaction) -> None:
        metadata = transaction.metadata or {}
        deadline = metadata.get("deadline")
        if deadline is None:
            return
        if not isinstance(deadline, (int, float)) or isinstance(deadline, bool):
            raise ValidationError("REQUEST deadline must be a number", "CREQUEST.5")
        if deadline <= ctx.now:
            raise ValidationError(
                f"REQUEST deadline {deadline} is not in the future (now={ctx.now})",
                "CREQUEST.5",
            )
