"""Per-type semantic validators (the C_alpha condition sets)."""

from repro.core.types.accept_bid import AcceptBidValidator
from repro.core.types.bid import BidValidator
from repro.core.types.common import (
    spent_output,
    validate_transfer_inputs,
    verify_genesis_inputs,
    verify_own_signatures,
)
from repro.core.types.create import CreateValidator
from repro.core.types.request import RequestValidator
from repro.core.types.return_tx import ReturnValidator
from repro.core.types.transfer import TransferValidator

__all__ = [
    "AcceptBidValidator",
    "BidValidator",
    "CreateValidator",
    "RequestValidator",
    "ReturnValidator",
    "TransferValidator",
    "spent_output",
    "validate_transfer_inputs",
    "verify_genesis_inputs",
    "verify_own_signatures",
]
