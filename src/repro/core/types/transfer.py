"""TRANSFER type: ``tau_TRANSFER`` — the classic native primitive."""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.core.context import ValidationContext
from repro.core.transaction import Transaction
from repro.core.types.common import validate_transfer_inputs, verify_own_signatures


class TransferValidator:
    """Conditions for moving asset shares between accounts.

    C_TRANSFER:
      1. at least one input, each spending a committed, unspent output;
      2. each spent output's condition is satisfied by the input's
         fulfillment (current owners authorise);
      3. all spent outputs belong to the declared asset lineage;
      4. spent shares == produced shares (no inflation);
      5. input signatures verify;
      6. the id matches the body hash.

    Native TRANSFER "automatically handles validation against errors like
    double-spending" (Section 2.1) — rule 1's unspent check is exactly
    that, applied by the platform instead of user contract code.
    """

    operation = "TRANSFER"

    def validate(self, ctx: ValidationContext, transaction: Transaction) -> None:
        """Raise on the first violated condition."""
        self.check_c6(transaction)
        self.check_c5(transaction)
        if "id" not in transaction.asset:
            raise ValidationError("TRANSFER must link an existing asset", "CTRANSFER.3")
        validate_transfer_inputs(ctx, transaction)

    def check_c5(self, transaction: Transaction) -> None:
        verify_own_signatures(transaction)

    def check_c6(self, transaction: Transaction) -> None:
        if not transaction.verify_id():
            raise ValidationError("transaction id does not match body hash", "CTRANSFER.6")
