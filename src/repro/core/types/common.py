"""Shared validation machinery: transfer-input rules.

Every spending type (TRANSFER, BID, ACCEPT_BID, RETURN) ends with
``validateTransferInputs`` (Algorithm 2 line 12, Algorithm 3 line 13):
inputs must spend committed, unspent outputs of the right asset, with
authorising signatures, and amounts must balance.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import (
    AmountError,
    InputDoesNotExistError,
    ValidationError,
)
from repro.core.context import ValidationContext
from repro.core.transaction import Transaction
from repro.crypto.conditions import Condition


def spent_output(ctx: ValidationContext, transaction: Transaction, index: int) -> dict[str, Any]:
    """Resolve the committed output an input spends.

    Raises:
        InputDoesNotExistError: if the prior transaction or output index
            does not exist.
        ValidationError: if the input spends nothing (genesis-style input
            on a spending operation).
    """
    item = transaction.inputs[index]
    if item.fulfills is None:
        raise ValidationError(
            f"{transaction.operation} input {index} must spend an output", "transfer.fulfills"
        )
    prior = ctx.require_committed(item.fulfills.transaction_id, "spent")
    outputs = prior.get("outputs") or []
    if item.fulfills.output_index >= len(outputs):
        raise InputDoesNotExistError(
            f"transaction {item.fulfills.transaction_id[:8]} has no output "
            f"{item.fulfills.output_index}"
        )
    return outputs[item.fulfills.output_index]


def validate_transfer_inputs(
    ctx: ValidationContext,
    transaction: Transaction,
    check_conditions: bool = True,
    check_asset_lineage: bool = True,
    check_balance: bool = True,
) -> int:
    """Run the transfer-input rule set; returns the total spent amount.

    Args:
        check_conditions: verify each spent output's crypto-condition
            against the input's fulfillment.  ACCEPT_BID disables this —
            escrow-held outputs are spendable by protocol rule when the
            type's own conditions hold (declarative authorisation).
        check_asset_lineage: require every spent output to belong to the
            transaction's ``asset.id`` lineage.
        check_balance: require spent amount == produced amount.

    Raises:
        InputDoesNotExistError / DoubleSpendError / ValidationError /
        AmountError per the violated rule.
    """
    message = transaction.signing_payload()
    asset_id = transaction.asset.get("id")
    total_spent = 0
    seen_refs: set[tuple[str, int]] = set()
    for index, item in enumerate(transaction.inputs):
        output = spent_output(ctx, transaction, index)
        ref = item.fulfills
        assert ref is not None  # guarded by spent_output
        key = (ref.transaction_id, ref.output_index)
        if key in seen_refs:
            raise ValidationError(
                f"input {index} repeats spend of {ref.transaction_id[:8]}:{ref.output_index}",
                "transfer.duplicate-input",
            )
        seen_refs.add(key)
        ctx.require_unspent(ref)

        if check_asset_lineage and asset_id is not None:
            prior = ctx.get_tx(ref.transaction_id)
            lineage = ctx.asset_lineage_id(prior) if prior else None
            if lineage != asset_id and ref.transaction_id != asset_id:
                raise ValidationError(
                    f"input {index} spends asset {str(lineage)[:8]} but transaction "
                    f"declares asset {asset_id[:8]}",
                    "transfer.asset-lineage",
                )

        if check_conditions:
            condition = Condition.from_dict(output["condition"])
            if not item.fulfillment.satisfies(condition, message):
                raise ValidationError(
                    f"input {index} fulfillment does not satisfy the spent output's condition",
                    "transfer.condition",
                )
        total_spent += int(output["amount"])

    produced = sum(output.amount for output in transaction.outputs)
    if any(output.amount < 1 for output in transaction.outputs):
        raise AmountError("every output amount must be >= 1")
    if check_balance and total_spent != produced:
        raise AmountError(
            f"spent amount {total_spent} != produced amount {produced}"
        )
    return total_spent


def verify_own_signatures(transaction: Transaction) -> None:
    """CBID.5 and friends: every input carries a valid owner signature.

    Raises:
        ValidationError: if any input's fulfillment fails.
    """
    if not transaction.verify_signatures():
        raise ValidationError("input signature verification failed", "signatures")


def verify_genesis_inputs(transaction: Transaction) -> None:
    """Genesis operations must not spend anything.

    Raises:
        ValidationError: if any input has a ``fulfills`` pointer.
    """
    for index, item in enumerate(transaction.inputs):
        if item.fulfills is not None:
            raise ValidationError(
                f"{transaction.operation} input {index} must not spend an output",
                "genesis.fulfills",
            )
