"""BID type: ``tau_BID`` (Definition 3, Algorithm 2).

A BID answers a REQUEST by escrowing an asset.  Each numbered check
below is the corresponding boolean condition of C_BID in the paper; the
`validate` entry point sequences them exactly like ``validateTBID``.
"""

from __future__ import annotations

from repro.common.errors import (
    InputDoesNotExistError,
    InsufficientCapabilitiesError,
    ValidationError,
)
from repro.core.asset import capabilities_satisfied, extract_capabilities
from repro.core.context import ValidationContext
from repro.core.transaction import REQUEST, Transaction
from repro.core.types.common import validate_transfer_inputs, verify_own_signatures


class BidValidator:
    """The eight C_BID conditions plus Algorithm 2's capability check."""

    operation = "BID"

    def validate(self, ctx: ValidationContext, transaction: Transaction) -> None:
        """``validateTBID``: raise on the first violated condition."""
        self.check_c1(transaction)
        self.check_c2(transaction)
        request_payload = self.check_c3(ctx, transaction)
        self.check_c5(transaction)
        self.check_c6(ctx, transaction)
        self.check_deadline(ctx, request_payload)
        self.check_c7(ctx, transaction, request_payload)
        # C4 and C8 are established by the transfer-input rules: every
        # input must spend a committed output with a positive amount.
        total = validate_transfer_inputs(ctx, transaction)
        self.check_c4(total)

    def check_c1(self, transaction: Transaction) -> None:
        """CBID.1: |I| >= 1."""
        if len(transaction.inputs) < 1:
            raise ValidationError("BID requires at least one input", "CBID.1")

    def check_c2(self, transaction: Transaction) -> None:
        """CBID.2: |R| >= 1."""
        if len(transaction.references) < 1:
            raise ValidationError("BID must reference a REQUEST", "CBID.2")

    def check_c3(self, ctx: ValidationContext, transaction: Transaction) -> dict:
        """CBID.3: exactly one committed REQUEST in the reference vector.

        Returns the REQUEST payload (Algorithm 2 line 1: ``getTxFromDB``).

        Raises:
            InputDoesNotExistError: if the referenced REQUEST is not
                committed (Algorithm 2 lines 3-4).
        """
        requests = []
        for reference in transaction.references:
            payload = ctx.get_tx(reference)
            if payload is not None and payload.get("operation") == REQUEST:
                requests.append(payload)
        if len(requests) != 1:
            if not requests:
                raise InputDoesNotExistError(
                    "BID references no committed REQUEST transaction"
                )
            raise ValidationError(
                f"BID references {len(requests)} REQUESTs; exactly 1 required", "CBID.3"
            )
        return requests[0]

    def check_c4(self, total_spent: int) -> None:
        """CBID.4: at least one input carries a non-null asset amount."""
        if total_spent <= 0:
            raise ValidationError("BID must escrow a positive asset amount", "CBID.4")

    def check_c5(self, transaction: Transaction) -> None:
        """CBID.5: every input signature verifies."""
        verify_own_signatures(transaction)

    def check_c6(self, ctx: ValidationContext, transaction: Transaction) -> None:
        """CBID.6: every output is owned by a reserved (escrow) account.

        Algorithm 2 lines 5-7.
        """
        for index, output in enumerate(transaction.outputs):
            for public_key in output.public_keys:
                if not ctx.reserved.is_reserved(public_key):
                    raise ValidationError(
                        f"BID output {index} must be held by the escrow account",
                        "CBID.6",
                    )

    def check_c7(
        self,
        ctx: ValidationContext,
        transaction: Transaction,
        request_payload: dict,
    ) -> None:
        """CBID.7: requested capabilities subset of the bid asset's.

        Algorithm 2 lines 8-11: fetch both capability sets and compare.

        Raises:
            InsufficientCapabilitiesError: on a shortfall, naming the
                missing capabilities.
        """
        asset_id = transaction.asset.get("id")
        if asset_id is None:
            raise ValidationError("BID must link the asset backing the bid", "CBID.7")
        asset_tx = ctx.require_committed(asset_id, "bid asset")
        requested = extract_capabilities(request_payload.get("asset"))
        offered = extract_capabilities(asset_tx.get("asset"))
        if not capabilities_satisfied(requested, offered):
            missing = sorted(set(requested) - set(offered))
            raise InsufficientCapabilitiesError(
                f"bid asset lacks requested capabilities: {missing}"
            )

    def check_deadline(self, ctx: ValidationContext, request_payload: dict) -> None:
        """Reject bids on expired requests (deadline extension)."""
        metadata = request_payload.get("metadata") or {}
        deadline = metadata.get("deadline")
        if deadline is None:
            return
        if isinstance(deadline, (int, float)) and not isinstance(deadline, bool):
            if ctx.now > deadline:
                raise ValidationError(
                    f"REQUEST deadline {deadline} has passed (now={ctx.now})",
                    "CBID.deadline",
                )
