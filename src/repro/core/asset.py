"""Assets: the things transactions create, escrow and transfer.

Formal model (Section 3.1): an asset is a tuple ``<(k_i, v_i), amt>`` —
a nested key/value document plus a non-negative number of divisible
shares.  In the marketplace use case the document carries *capabilities*
(certifications, work history, machine specs) that BID validation matches
against REQUEST requirements (CBID.7 / Algorithm 2 lines 8-11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import AmountError

#: Conventional key under which capability lists live in asset data.
CAPABILITIES_KEY = "capabilities"


@dataclass(frozen=True)
class Asset:
    """An asset definition: arbitrary nested data + total shares."""

    data: dict[str, Any] = field(default_factory=dict)
    amount: int = 1

    def __post_init__(self) -> None:
        if self.amount < 1:
            raise AmountError(f"asset amount must be >= 1, got {self.amount}")

    def capabilities(self) -> list[str]:
        """The asset's declared capability strings (possibly empty)."""
        value = self.data.get(CAPABILITIES_KEY, [])
        if isinstance(value, list):
            return [item for item in value if isinstance(item, str)]
        return []

    def to_dict(self) -> dict[str, Any]:
        """Inline-asset wire form (used by CREATE/REQUEST)."""
        return {"data": dict(self.data)}


def extract_capabilities(asset_section: dict[str, Any] | None) -> list[str]:
    """Pull capability strings out of a transaction's asset section.

    Works for both inline assets (``{"data": {...}}``) and, defensively,
    bare data documents.  Implements ``getCapsFromRFQ`` /
    ``getCapsFromAsset`` of Algorithm 2.
    """
    if not isinstance(asset_section, dict):
        return []
    data = asset_section.get("data", asset_section)
    if not isinstance(data, dict):
        return []
    value = data.get(CAPABILITIES_KEY, [])
    if not isinstance(value, list):
        return []
    return [item for item in value if isinstance(item, str)]


def capabilities_satisfied(requested: list[str], offered: list[str]) -> bool:
    """CBID.7: the requested capabilities must be a subset of the offered.

    SmartchainDB evaluates this with set semantics — O(n) — whereas the
    Solidity baseline's nested-loop string comparison is O(n^2)
    (Section 5.2.1 analysis).
    """
    return set(requested) <= set(offered)
