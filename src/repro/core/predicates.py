"""Declarative condition composition — the paper's future-work direction.

Section 8: "Our future work will be to generalize our modeling framework
further to support more complex transaction modeling, including
transaction conditions and compositions."  This module implements that
generalisation: transaction-type conditions become first-class,
composable *predicates*, and a new transaction type is just a name plus
a predicate expression — no imperative validator class required.

A predicate is evaluated against ``(ctx, transaction)`` and either
passes or raises :class:`~repro.common.errors.ValidationError` with the
condition label that failed.  Combinators::

    all_of(p, q, ...)    every sub-predicate must hold (C_alpha sets)
    any_of(p, q, ...)    at least one must hold
    negate(p)            p must fail

Primitive predicate factories cover the vocabulary the built-in types
use (input/output shape, references, signatures, escrow ownership,
capability subsets), so the six built-in types could be re-expressed in
this DSL — and `declarative_type` lets users add new ones at runtime,
which is exactly the extensibility story of Section 2.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.common.errors import ValidationError
from repro.core.asset import capabilities_satisfied, extract_capabilities
from repro.core.context import ValidationContext
from repro.core.transaction import Transaction
from repro.core.types.common import (
    validate_transfer_inputs,
    verify_genesis_inputs,
    verify_own_signatures,
)

#: A predicate body: raises ValidationError on failure.
PredicateFn = Callable[[ValidationContext, Transaction], None]


@dataclass(frozen=True)
class Predicate:
    """A named, composable validation condition."""

    label: str
    check: PredicateFn

    def __call__(self, ctx: ValidationContext, transaction: Transaction) -> None:
        try:
            self.check(ctx, transaction)
        except ValidationError as error:
            if error.condition is None:
                raise ValidationError(str(error), self.label) from error
            raise

    def holds(self, ctx: ValidationContext, transaction: Transaction) -> bool:
        """Boolean view (used by combinators)."""
        try:
            self(ctx, transaction)
        except ValidationError:
            return False
        return True


# -- combinators ----------------------------------------------------------------


def all_of(*predicates: Predicate, label: str = "all") -> Predicate:
    """Conjunction: every predicate must hold (evaluated in order)."""

    def check(ctx: ValidationContext, transaction: Transaction) -> None:
        for predicate in predicates:
            predicate(ctx, transaction)

    return Predicate(label, check)


def any_of(*predicates: Predicate, label: str = "any") -> Predicate:
    """Disjunction: at least one predicate must hold."""

    def check(ctx: ValidationContext, transaction: Transaction) -> None:
        failures = []
        for predicate in predicates:
            try:
                predicate(ctx, transaction)
                return
            except ValidationError as error:
                failures.append(str(error))
        raise ValidationError(
            "no branch satisfied: " + " | ".join(failures), label
        )

    return Predicate(label, check)


def negate(predicate: Predicate, label: str | None = None) -> Predicate:
    """Negation: the wrapped predicate must fail."""

    def check(ctx: ValidationContext, transaction: Transaction) -> None:
        if predicate.holds(ctx, transaction):
            raise ValidationError(
                f"negated condition {predicate.label!r} unexpectedly holds",
                label or f"not({predicate.label})",
            )

    return Predicate(label or f"not({predicate.label})", check)


# -- primitive predicate factories -------------------------------------------------


def min_inputs(count: int) -> Predicate:
    """|I| >= count."""

    def check(ctx: ValidationContext, transaction: Transaction) -> None:
        if len(transaction.inputs) < count:
            raise ValidationError(f"requires at least {count} input(s)")

    return Predicate(f"min_inputs({count})", check)


def min_references(count: int) -> Predicate:
    """|R| >= count."""

    def check(ctx: ValidationContext, transaction: Transaction) -> None:
        if len(transaction.references) < count:
            raise ValidationError(f"requires at least {count} reference(s)")

    return Predicate(f"min_references({count})", check)


def references_committed_operation(operation: str, exactly: int = 1) -> Predicate:
    """Exactly ``exactly`` references resolve to committed ``operation`` txs."""

    def check(ctx: ValidationContext, transaction: Transaction) -> None:
        found = 0
        for reference in transaction.references:
            payload = ctx.get_tx(reference)
            if payload is not None and payload.get("operation") == operation:
                found += 1
        if found != exactly:
            raise ValidationError(
                f"expected exactly {exactly} committed {operation} reference(s), found {found}"
            )

    return Predicate(f"references({operation}x{exactly})", check)


def signatures_valid() -> Predicate:
    """Every input fulfillment carries a valid owner signature."""
    return Predicate(
        "signatures", lambda ctx, transaction: verify_own_signatures(transaction)
    )


def id_integral() -> Predicate:
    """The transaction id equals its body hash."""

    def check(ctx: ValidationContext, transaction: Transaction) -> None:
        if not transaction.verify_id():
            raise ValidationError("transaction id does not match body hash")

    return Predicate("id-integrity", check)


def genesis_inputs() -> Predicate:
    """Inputs spend nothing (CREATE/REQUEST-style)."""
    return Predicate(
        "genesis-inputs", lambda ctx, transaction: verify_genesis_inputs(transaction)
    )


def spends_committed_outputs(
    check_conditions: bool = True, check_balance: bool = True
) -> Predicate:
    """The transfer-input rule set (committed, unspent, balanced)."""

    def check(ctx: ValidationContext, transaction: Transaction) -> None:
        validate_transfer_inputs(
            ctx,
            transaction,
            check_conditions=check_conditions,
            check_asset_lineage=False,
            check_balance=check_balance,
        )

    return Predicate("transfer-inputs", check)


def outputs_reserved_only() -> Predicate:
    """Every output is held by a reserved (escrow/admin) account (CBID.6)."""

    def check(ctx: ValidationContext, transaction: Transaction) -> None:
        for index, output in enumerate(transaction.outputs):
            for public_key in output.public_keys:
                if not ctx.reserved.is_reserved(public_key):
                    raise ValidationError(f"output {index} must be escrow-held")

    return Predicate("outputs-reserved", check)


def asset_covers_request_capabilities() -> Predicate:
    """CBID.7 as a reusable predicate."""

    def check(ctx: ValidationContext, transaction: Transaction) -> None:
        request_payload = None
        for reference in transaction.references:
            payload = ctx.get_tx(reference)
            if payload is not None and payload.get("operation") == "REQUEST":
                request_payload = payload
                break
        if request_payload is None:
            raise ValidationError("no committed REQUEST referenced")
        asset_id = transaction.asset.get("id")
        if asset_id is None:
            raise ValidationError("transaction must link its backing asset")
        asset_tx = ctx.require_committed(asset_id, "backing asset")
        requested = extract_capabilities(request_payload.get("asset"))
        offered = extract_capabilities(asset_tx.get("asset"))
        if not capabilities_satisfied(requested, offered):
            raise ValidationError("asset does not cover the requested capabilities")

    return Predicate("capability-subset", check)


def metadata_field_present(field: str) -> Predicate:
    """Metadata must carry a non-null ``field``."""

    def check(ctx: ValidationContext, transaction: Transaction) -> None:
        metadata = transaction.metadata or {}
        if metadata.get(field) is None:
            raise ValidationError(f"metadata field {field!r} is required")

    return Predicate(f"metadata({field})", check)


def unique_per_reference(operation: str) -> Predicate:
    """At most one committed ``operation`` tx may reference each target —
    e.g. one INTEREST per (supplier, REQUEST)."""

    def check(ctx: ValidationContext, transaction: Transaction) -> None:
        signer = transaction.inputs[0].owners_before[0] if transaction.inputs else None
        for reference in transaction.references:
            existing = ctx._database.collection("transactions").find(
                {"operation": operation, "references": reference}, copy=False
            )
            for payload in existing:
                if payload.get("id") == transaction.tx_id:
                    continue
                if ctx.signer_of(payload) == signer:
                    raise ValidationError(
                        f"{operation} by this account already references "
                        f"{reference[:8]}..."
                    )

    return Predicate(f"unique({operation})", check)


# -- declarative type assembly -------------------------------------------------------


@dataclass(frozen=True)
class DeclarativeType:
    """A transaction type defined purely by a predicate expression.

    Plugs into :class:`~repro.core.validation.TransactionValidator` via
    ``register`` — the same registry the built-in validators use.
    """

    operation: str
    conditions: Predicate

    def validate(self, ctx: ValidationContext, transaction: Transaction) -> None:
        """Evaluate the composed condition expression."""
        self.conditions(ctx, transaction)


def declarative_type(operation: str, conditions: Sequence[Predicate]) -> DeclarativeType:
    """Build a :class:`DeclarativeType` from a list of conditions (ANDed)."""
    return DeclarativeType(
        operation=operation,
        conditions=all_of(*conditions, label=f"C_{operation}"),
    )
